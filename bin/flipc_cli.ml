(* flipc: command-line driver for the FLIPC reproduction.

   Subcommands run individual experiments with adjustable parameters —
   useful for exploring the design space beyond the fixed settings the
   benchmark harness (bench/main.exe) uses to mirror the paper. *)

open Cmdliner
module Config = Flipc.Config
module Machine = Flipc.Machine
module Pingpong = Flipc_workload.Pingpong
module Streams = Flipc_workload.Streams
module Rpc = Flipc_workload.Rpc
module Summary = Flipc_stats.Summary
module Regression = Flipc_stats.Regression

(* --- shared options --- *)

let payload =
  let doc = "Application payload size in bytes." in
  Arg.(value & opt int 120 & info [ "payload" ] ~docv:"BYTES" ~doc)

let exchanges =
  let doc = "Number of measured two-way exchanges." in
  Arg.(value & opt int 300 & info [ "exchanges"; "n" ] ~docv:"N" ~doc)

let cols = Arg.(value & opt int 4 & info [ "cols" ] ~docv:"N" ~doc:"Mesh columns.")
let rows = Arg.(value & opt int 4 & info [ "rows" ] ~docv:"N" ~doc:"Mesh rows.")

let locked =
  let doc = "Use the test-and-set (locked) interface variant." in
  Arg.(value & flag & info [ "locked" ] ~doc)

let packed =
  let doc = "Use the pre-tuning packed (false-sharing) buffer layout." in
  Arg.(value & flag & info [ "packed" ] ~doc)

let checks =
  let doc = "Enable the engine's validity checks." in
  Arg.(value & flag & info [ "checks" ] ~doc)

let touch =
  let doc = "Read/write the payload on every exchange." in
  Arg.(value & flag & info [ "touch-payload" ] ~doc)

let config_of locked packed checks =
  {
    Config.default with
    Config.lock_mode = (if locked then Config.Test_and_set else Config.Lock_free);
    layout_mode = (if packed then Config.Packed else Config.Padded);
    validity_checks = checks;
  }

(* Every subcommand accepts --trace FILE: a process-wide capture window
   turns on typed event tracing for every machine the command builds
   (however deep inside a workload helper) and merges their timelines
   into one Chrome trace_event document.

   --capture FILE is the persistent sibling: a streaming flight-data
   sink (JSONL, one typed event per line) attached to every machine the
   command creates, replayable offline with [flipc doctor --replay]. *)

let trace_out =
  let doc =
    "Write a Chrome trace_event JSON timeline of the run to $(docv) (open \
     in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let capture_out =
  let doc =
    "Write a persistent flight-data capture of the run to $(docv): compact \
     JSONL, one self-describing event per line with virtual timestamps \
     preserved — or, when $(docv) ends in $(b,.ftrace), the versioned \
     binary frame format (several times smaller, same fidelity). Either \
     form is replayable offline with $(b,flipc doctor --replay), which \
     auto-detects the format."
  in
  Arg.(value & opt (some string) None & info [ "capture" ] ~docv:"FILE" ~doc)

let obs_out =
  Term.(const (fun trace capture -> (trace, capture)) $ trace_out $ capture_out)

(* The sink the current command is streaming to, if any: doctor stamps
   its run summary into the trailer so a replay can echo the live
   context fields byte-for-byte. *)
let active_sink : Flipc_obs.Sink.t option ref = ref None

let with_trace (trace_file, capture_file) f =
  let sink =
    Option.map
      (fun path ->
        let s = Flipc_obs.Sink.create ~path () in
        active_sink := Some s;
        (* Attach to every machine the workload builds, however deep. *)
        let unhook = Flipc_obs.Obs.on_create (Flipc_obs.Sink.attach s) in
        (path, s, unhook))
      capture_file
  in
  if trace_file <> None then Flipc_obs.Obs.start_capture ();
  Fun.protect
    ~finally:(fun () ->
      (match trace_file with
      | None -> ()
      | Some path ->
          (* Merged multi-machine document: named process/thread rows per
             machine plus cross-machine causal flow arrows (Causal). *)
          let json = Flipc_obs.Causal.captured_chrome_json () in
          Flipc_obs.Obs.stop_capture ();
          let oc = open_out path in
          Flipc_obs.Json.to_channel oc json;
          output_char oc '\n';
          close_out oc;
          Fmt.epr "trace written to %s@." path);
      match sink with
      | None -> ()
      | Some (path, s, unhook) ->
          unhook ();
          active_sink := None;
          Flipc_obs.Sink.close s;
          Fmt.epr "capture written to %s (%d events)@." path
            (Flipc_obs.Sink.events_written s))
    f

(* --- latency --- *)

let latency_cmd =
  let run trace payload exchanges cols rows locked packed checks touch =
    with_trace trace @@ fun () ->
    let config = config_of locked packed checks in
    let r =
      Pingpong.measure ~config ~cols ~rows ~touch_payload:touch
        ~payload_bytes:payload ~exchanges ()
    in
    Fmt.pr "payload %dB in %dB messages, %d exchanges, %dx%d mesh@." payload
      r.Pingpong.message_bytes exchanges cols rows;
    Fmt.pr "one-way latency: %a us@." Summary.pp r.Pingpong.one_way;
    Fmt.pr "aggregate (total / 2N): %.2f us@." r.Pingpong.aggregate_one_way_us;
    Fmt.pr "drops: %d@." r.Pingpong.drops
  in
  let doc = "Measure one-way message latency with a ping-pong exchange." in
  Cmd.v
    (Cmd.info "latency" ~doc)
    Term.(
      const run $ obs_out $ payload $ exchanges $ cols $ rows $ locked
      $ packed $ checks $ touch)

(* --- sweep (FIG4) --- *)

let sweep_cmd =
  let run trace exchanges locked packed checks =
    with_trace trace @@ fun () ->
    let sizes = [ 64; 96; 128; 160; 192; 224; 256 ] in
    let config = config_of locked packed checks in
    let points =
      List.map
        (fun msg ->
          let r =
            Pingpong.measure ~config
              ~payload_bytes:(msg - Config.header_bytes)
              ~exchanges ()
          in
          Fmt.pr "%4dB  %.2f us  (sd %.2f)@." msg
            r.Pingpong.aggregate_one_way_us r.Pingpong.one_way.Summary.stddev;
          (float_of_int msg, r.Pingpong.aggregate_one_way_us))
        sizes
    in
    let fit = Regression.linear points in
    Fmt.pr "fit: %.2fus + %.3fns/B (r2=%.4f)@." fit.Regression.intercept
      (fit.Regression.slope *. 1000.)
      fit.Regression.r2
  in
  let doc = "Latency vs message size sweep (the paper's Figure 4)." in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(const run $ obs_out $ exchanges $ locked $ packed $ checks)

(* --- compare --- *)

let compare_cmd =
  let run trace payload exchanges =
    with_trace trace @@ fun () ->
    let flipc =
      (Pingpong.measure ~payload_bytes:payload ~exchanges ()).Pingpong
      .aggregate_one_way_us
    in
    Fmt.pr "FLIPC : %6.2f us@." flipc;
    Fmt.pr "PAM   : %6.2f us@."
      (Flipc_baselines.Pam.one_way_latency_us ~payload_bytes:payload ~exchanges ());
    Fmt.pr "SUNMOS: %6.2f us@."
      (Flipc_baselines.Sunmos.one_way_latency_us ~payload_bytes:payload
         ~exchanges ());
    if payload <= 4096 then
      Fmt.pr "NX    : %6.2f us@."
        (Flipc_baselines.Nx.one_way_latency_us ~payload_bytes:payload ~exchanges ())
  in
  let doc = "Compare FLIPC with the NX, PAM and SUNMOS models." in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(const run $ obs_out $ payload $ exchanges)

(* --- streams --- *)

let streams_cmd =
  let high_period =
    Arg.(
      value & opt int 100
      & info [ "high-period" ] ~docv:"US"
          ~doc:"High-priority inter-message gap (us).")
  in
  let low_period =
    Arg.(
      value & opt int 10
      & info [ "low-period" ] ~docv:"US"
          ~doc:"Low-priority inter-message gap (us).")
  in
  let low_buffers =
    Arg.(
      value & opt int 2
      & info [ "low-buffers" ] ~docv:"N"
          ~doc:"Receive buffers for the low-priority endpoint.")
  in
  let ms =
    Arg.(
      value & opt int 50
      & info [ "ms" ] ~docv:"MS" ~doc:"Virtual milliseconds to simulate.")
  in
  let run trace high_period low_period low_buffers ms =
    with_trace trace @@ fun () ->
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let horizon_ns = ms * 1_000_000 in
    let count_for period_us = horizon_ns / (max 1 period_us * 1000) + 1 in
    let results =
      Streams.run ~machine ~node_src:0 ~node_dst:1
        ~until:(Flipc_sim.Vtime.ms ms)
        [
          Streams.make ~name:"high" ~priority:10
            ~period_ns:(high_period * 1000)
            ~count:(count_for high_period) ~recv_buffers:8 ~consume_ns:8_000 ();
          Streams.make ~name:"low" ~priority:1 ~period_ns:(low_period * 1000)
            ~count:(count_for low_period) ~recv_buffers:low_buffers
            ~consume_ns:80_000 ();
        ]
    in
    List.iter
      (fun (r : Streams.stream_result) ->
        Fmt.pr "%-5s sent=%6d delivered=%6d dropped=%6d %a@." r.Streams.name
          r.Streams.sent r.Streams.delivered r.Streams.dropped
          (Fmt.option Summary.pp) r.Streams.latency)
      results
  in
  let doc = "Two priority streams with per-endpoint resource isolation." in
  Cmd.v
    (Cmd.info "streams" ~doc)
    Term.(const run $ obs_out $ high_period $ low_period $ low_buffers $ ms)

(* --- rpc --- *)

let rpc_cmd =
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Client count.")
  in
  let requests =
    Arg.(
      value & opt int 50
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let run trace clients requests =
    with_trace trace @@ fun () ->
    let side = 4 in
    let machine = Machine.create (Machine.Mesh { cols = side; rows = side }) () in
    let nodes = side * side in
    let client_nodes = List.init clients (fun i -> ((i + 1) mod (nodes - 1)) + 1) in
    let r =
      Rpc.run ~machine ~server_node:0 ~client_nodes ~requests_per_client:requests
        ~server_work_ns:2_000 ()
    in
    Fmt.pr "requests=%d replies=%d drops=%d@." r.Rpc.requests r.Rpc.replies
      r.Rpc.server_drops;
    Fmt.pr "round trip: %a us@." Summary.pp r.Rpc.latency
  in
  let doc = "Closed-loop RPC with statically provisioned server buffers." in
  Cmd.v
    (Cmd.info "rpc" ~doc)
    Term.(const run $ obs_out $ clients $ requests)

(* --- kkt --- *)

let kkt_cmd =
  let fabric =
    let fabric_conv =
      Arg.enum [ ("mesh", `Mesh); ("ethernet", `Ethernet); ("scsi", `Scsi) ]
    in
    Arg.(
      value & opt fabric_conv `Mesh
      & info [ "fabric" ] ~docv:"FABRIC"
          ~doc:"Underlying fabric: mesh, ethernet or scsi.")
  in
  let run trace fabric payload exchanges =
    with_trace trace @@ fun () ->
    let kind, cost =
      match fabric with
      | `Mesh ->
          (Machine.Mesh { cols = 2; rows = 1 }, Flipc_memsim.Cost_model.paragon)
      | `Ethernet ->
          (Machine.Ethernet { nodes = 2 }, Flipc_memsim.Cost_model.pc_cluster)
      | `Scsi -> (Machine.Scsi { nodes = 2 }, Flipc_memsim.Cost_model.pc_cluster)
    in
    let machine = Flipc_kkt.Kkt_flipc.machine ~cost kind () in
    let r =
      Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:payload
        ~exchanges ()
    in
    Fmt.pr "FLIPC over KKT: one-way %.2f us (payload %dB)@."
      r.Pingpong.aggregate_one_way_us payload
  in
  let doc = "FLIPC with the portable KKT (RPC-per-message) engine." in
  Cmd.v
    (Cmd.info "kkt" ~doc)
    Term.(const run $ obs_out $ fabric $ payload $ exchanges)

(* --- throughput --- *)

let throughput_cmd =
  let msgs =
    Arg.(value & opt int 500 & info [ "messages" ] ~docv:"N"
           ~doc:"Messages to stream.")
  in
  let run trace payload msgs =
    with_trace trace @@ fun () ->
    let r =
      Flipc_workload.Throughput.measure ~payload_bytes:payload ~messages:msgs ()
    in
    Fmt.pr "%d x %dB messages in %.1fus@." r.Flipc_workload.Throughput.messages
      payload r.Flipc_workload.Throughput.elapsed_us;
    Fmt.pr "rate: %.0f kmsg/s, %.1f MB/s payload, drops=%d@."
      (r.Flipc_workload.Throughput.msgs_per_sec /. 1000.)
      r.Flipc_workload.Throughput.mb_per_sec r.Flipc_workload.Throughput.drops
  in
  let doc = "Streaming message-throughput measurement." in
  Cmd.v
    (Cmd.info "throughput" ~doc)
    Term.(const run $ obs_out $ payload $ msgs)

(* --- bulk --- *)

let bulk_cmd =
  let bytes =
    Arg.(value & opt int 65536 & info [ "bytes" ] ~docv:"N"
           ~doc:"Transfer size in bytes.")
  in
  let run trace bytes =
    with_trace trace @@ fun () ->
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let bulk = Flipc_bulk.Bulk.create machine in
    let region = Flipc_bulk.Bulk.export bulk ~node:1 ~len:bytes in
    let sim = Machine.sim machine in
    let put_us = ref 0. and get_us = ref 0. in
    Machine.spawn_app machine ~node:0 (fun _api ->
        let t0 = Flipc_sim.Engine.now sim in
        Flipc_bulk.Bulk.put bulk ~from:0 region (Bytes.create bytes);
        let t1 = Flipc_sim.Engine.now sim in
        ignore (Flipc_bulk.Bulk.get bulk ~into:0 region ~len:bytes : Bytes.t);
        let t2 = Flipc_sim.Engine.now sim in
        put_us := float_of_int (t1 - t0) /. 1000.;
        get_us := float_of_int (t2 - t1) /. 1000.);
    Machine.run machine;
    Machine.stop_engines machine;
    Machine.run machine;
    Fmt.pr "put %dB: %.1fus (%.0f MB/s)@." bytes !put_us
      (float_of_int bytes /. !put_us);
    Fmt.pr "get %dB: %.1fus (%.0f MB/s)@." bytes !get_us
      (float_of_int bytes /. !get_us)
  in
  let doc = "One-sided bulk put/get of a remote-memory region." in
  Cmd.v (Cmd.info "bulk" ~doc) Term.(const run $ obs_out $ bytes)

(* --- faults --- *)

let faults_cmd =
  let module Sim = Flipc_sim.Engine in
  let module Mailbox = Flipc_sim.Sync.Mailbox in
  let module Mem_port = Flipc_memsim.Mem_port in
  let module Api = Flipc.Api in
  let module Endpoint_kind = Flipc.Endpoint_kind in
  let module Faulty = Flipc_net.Faulty in
  let module Retrans = Flipc_flow.Retrans in
  let module Provision = Flipc_flow.Provision in
  let fabric =
    let fabric_conv =
      Arg.enum [ ("mesh", `Mesh); ("ethernet", `Ethernet); ("scsi", `Scsi) ]
    in
    Arg.(
      value & opt fabric_conv `Mesh
      & info [ "fabric" ] ~docv:"FABRIC"
          ~doc:"Underlying fabric: mesh, ethernet or scsi.")
  in
  let loss =
    Arg.(
      value & opt float 0.05
      & info [ "loss" ] ~docv:"P" ~doc:"Packet drop probability (0..1).")
  in
  let dup =
    Arg.(
      value & opt float 0.
      & info [ "dup" ] ~docv:"P" ~doc:"Packet duplication probability (0..1).")
  in
  let reorder =
    Arg.(
      value & opt float 0.
      & info [ "reorder" ] ~docv:"P" ~doc:"Packet reordering probability (0..1).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"PRNG seed for fault injection (runs replay bit-identically).")
  in
  let msgs =
    Arg.(
      value & opt int 400
      & info [ "messages" ] ~docv:"N" ~doc:"Messages to deliver reliably.")
  in
  let run trace fabric loss dup reorder seed msgs payload =
    with_trace trace @@ fun () ->
    let check_prob name p =
      if p < 0. || p > 1. then begin
        Fmt.epr "flipc faults: %s must be in [0,1] (got %g)@." name p;
        exit 2
      end
    in
    check_prob "--loss" loss;
    check_prob "--dup" dup;
    check_prob "--reorder" reorder;
    let kind, cost, rto_ns =
      match fabric with
      | `Mesh ->
          ( Machine.Mesh { cols = 2; rows = 1 },
            Flipc_memsim.Cost_model.paragon,
            200_000 )
      | `Ethernet ->
          ( Machine.Ethernet { nodes = 2 },
            Flipc_memsim.Cost_model.pc_cluster,
            1_000_000 )
      | `Scsi ->
          ( Machine.Scsi { nodes = 2 },
            Flipc_memsim.Cost_model.pc_cluster,
            1_000_000 )
    in
    let fault =
      Faulty.config ~drop:loss ~duplicate:dup ~reorder ~seed ()
    in
    let config = Provision.config_for ~base:Config.default ~buffers:12 in
    let machine = Machine.create ~config ~cost ~fault kind () in
    let rcfg =
      { Retrans.default_config with Retrans.rto_ns; max_rto_ns = 8 * rto_ns }
    in
    let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
    let ok = function
      | Ok v -> v
      | Error e -> failwith (Api.error_to_string e)
    in
    let latencies = ref [] in
    let r_stats = ref (0, 0, 0) and s_stats = ref (0, 0) in
    (* The receiver lingers past its final delivery until the sender's
       flush completes: a dropped final cumulative ack otherwise strands
       the sender retransmitting at a peer that no longer posts buffers
       (DESIGN.md §14). *)
    let tx_done = ref false in
    Machine.spawn_app machine ~node:1 (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        Mailbox.put data_addr (Api.address api data_ep);
        Api.connect api ack_ep (Mailbox.take ack_addr);
        let r =
          Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep
            ~ack_ep ~config:rcfg ()
        in
        let deadline = Flipc_sim.Vtime.s 4 in
        while
          Retrans.delivered r < msgs && Sim.now (Machine.sim machine) < deadline
        do
          match Retrans.recv r with
          | Some p ->
              let stamp = Int64.to_int (Bytes.get_int64_le p 0) in
              latencies :=
                (float_of_int (Sim.now (Machine.sim machine) - stamp) /. 1_000.)
                :: !latencies
          | None -> Mem_port.instr (Api.port api) 200
        done;
        while (not !tx_done) && Sim.now (Machine.sim machine) < deadline do
          (match Retrans.recv r with
          | Some _ -> ()
          | None -> Sim.delay (4 * rto_ns / 32));
          Mem_port.instr (Api.port api) 200
        done;
        r_stats :=
          (Retrans.duplicates r, Retrans.reordered r, Retrans.transport_drops r));
    Machine.spawn_app machine ~node:0 (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        Mailbox.put ack_addr (Api.address api ack_ep);
        Api.connect api data_ep (Mailbox.take data_addr);
        let s =
          Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
            ~config:rcfg ()
        in
        let bytes = min (max payload 8) (Retrans.capacity api) in
        Fun.protect
          ~finally:(fun () -> tx_done := true)
          (fun () ->
            for _ = 1 to msgs do
              let p = Bytes.create bytes in
              Bytes.set_int64_le p 0
                (Int64.of_int (Sim.now (Machine.sim machine)));
              let deadline =
                Sim.now (Machine.sim machine) + Flipc_sim.Vtime.s 2
              in
              (match Retrans.send_deadline s ~deadline p with
              | Ok () -> ()
              | Error `Timeout -> failwith "sender timed out: peer unreachable?");
              Sim.delay (4 * rto_ns / 32)
            done;
            let deadline =
              Sim.now (Machine.sim machine) + Flipc_sim.Vtime.s 1
            in
            match Retrans.flush_deadline s ~deadline with
            | Ok () -> ()
            | Error `Timeout -> failwith "flush timed out: peer unreachable?");
        s_stats := (Retrans.retransmits s, Retrans.ack_drops s));
    (try Machine.run machine with
    | Flipc_sim.Engine.Process_failure (_, Failure msg) ->
        (* The retransmission layer's bounded waits reported `Timeout:
           surface it as a result, not a crash. *)
        Fmt.epr "flipc faults: %s@." msg;
        exit 1);
    Machine.stop_engines machine;
    Machine.run machine;
    let duplicates, reordered, transport_drops = !r_stats in
    let retransmits, ack_drops = !s_stats in
    (match Machine.fault_stats machine with
    | Some f ->
        Fmt.pr "wire faults: dropped=%d duplicated=%d reordered=%d delayed=%d@."
          f.Faulty.dropped f.Faulty.duplicated f.Faulty.reordered
          f.Faulty.delayed
    | None -> ());
    Fmt.pr
      "receiver: delivered=%d dup-discards=%d gap-discards=%d \
       transport-drops=%d@."
      (List.length !latencies) duplicates reordered transport_drops;
    Fmt.pr "sender: retransmits=%d ack-drops=%d@." retransmits ack_drops;
    if !latencies <> [] then
      Fmt.pr "delivery latency: %a us@." Summary.pp
        (Summary.of_samples (List.rev !latencies))
  in
  let doc =
    "Reliable (exactly-once, in-order) delivery over a fault-injected \
     fabric: drops, duplicates and reordering repaired by the \
     retransmission library."
  in
  Cmd.v
    (Cmd.info "faults" ~doc)
    Term.(
      const run $ obs_out $ fabric $ loss $ dup $ reorder $ seed $ msgs
      $ payload)

(* --- retrans --- *)

let retrans_cmd =
  let module Sim = Flipc_sim.Engine in
  let module Mailbox = Flipc_sim.Sync.Mailbox in
  let module Mem_port = Flipc_memsim.Mem_port in
  let module Api = Flipc.Api in
  let module Endpoint_kind = Flipc.Endpoint_kind in
  let module Faulty = Flipc_net.Faulty in
  let module Retrans = Flipc_flow.Retrans in
  let module Provision = Flipc_flow.Provision in
  let module Json = Flipc_obs.Json in
  let fabric =
    let fabric_conv =
      Arg.enum [ ("mesh", `Mesh); ("ethernet", `Ethernet); ("scsi", `Scsi) ]
    in
    Arg.(
      value & opt fabric_conv `Mesh
      & info [ "fabric" ] ~docv:"FABRIC"
          ~doc:"Underlying fabric: mesh, ethernet or scsi.")
  in
  let mode =
    let mode_conv = Arg.enum [ ("sr", `Sr); ("gbn", `Gbn) ] in
    Arg.(
      value & opt mode_conv `Sr
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Retransmission mode: sr (selective repeat, default) or gbn \
             (go-back-N ablation).")
  in
  let reorder =
    Arg.(
      value & opt float 0.3
      & info [ "reorder" ] ~docv:"P"
          ~doc:"Packet reordering probability (0..1).")
  in
  let drop =
    Arg.(
      value & opt float 0.
      & info [ "drop" ] ~docv:"P" ~doc:"Packet drop probability (0..1).")
  in
  let dup =
    Arg.(
      value & opt float 0.
      & info [ "dup" ] ~docv:"P" ~doc:"Packet duplication probability (0..1).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"PRNG seed for fault injection (runs replay bit-identically).")
  in
  let msgs =
    Arg.(
      value & opt int 400
      & info [ "messages" ] ~docv:"N" ~doc:"Messages to deliver reliably.")
  in
  let json_flag =
    let doc = "Emit one machine-readable JSON object instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let max_ratio =
    let doc =
      "Fail (exit 1) when retransmits/messages exceeds $(docv). Selective \
       repeat on a reorder-only wire should barely retransmit, so a small \
       bound makes a sharp CI smoke check."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "max-retransmit-ratio" ] ~docv:"R" ~doc)
  in
  let run trace fabric mode reorder drop dup seed msgs payload json_out
      max_ratio =
    with_trace trace @@ fun () ->
    let check_prob name p =
      if p < 0. || p > 1. then begin
        Fmt.epr "flipc retrans: %s must be in [0,1] (got %g)@." name p;
        exit 2
      end
    in
    check_prob "--reorder" reorder;
    check_prob "--drop" drop;
    check_prob "--dup" dup;
    let kind, cost, rto_ns, reorder_hold_ns =
      match fabric with
      | `Mesh ->
          ( Machine.Mesh { cols = 2; rows = 1 },
            Flipc_memsim.Cost_model.paragon,
            200_000,
            100_000 )
      | `Ethernet ->
          ( Machine.Ethernet { nodes = 2 },
            Flipc_memsim.Cost_model.pc_cluster,
            1_000_000,
            500_000 )
      | `Scsi ->
          ( Machine.Scsi { nodes = 2 },
            Flipc_memsim.Cost_model.pc_cluster,
            1_000_000,
            500_000 )
    in
    let rmode, mode_name =
      match mode with
      | `Sr -> (Retrans.Selective_repeat, "sr")
      | `Gbn -> (Retrans.Go_back_n, "gbn")
    in
    let fault =
      Faulty.config ~drop ~duplicate:dup ~reorder ~reorder_hold_ns ~seed ()
    in
    let config = Provision.config_for ~base:Config.default ~buffers:12 in
    let machine = Machine.create ~config ~cost ~fault kind () in
    let rcfg =
      {
        Retrans.default_config with
        Retrans.rto_ns;
        max_rto_ns = 8 * rto_ns;
        mode = rmode;
      }
    in
    let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
    let ok = function
      | Ok v -> v
      | Error e -> failwith (Api.error_to_string e)
    in
    let latencies = ref [] in
    let r_stats = ref (0, 0, 0, 0, 0) and s_stats = ref (0, 0, 0, 0) in
    Machine.spawn_app machine ~node:1 (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        Mailbox.put data_addr (Api.address api data_ep);
        Api.connect api ack_ep (Mailbox.take ack_addr);
        let r =
          Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep
            ~ack_ep ~config:rcfg ()
        in
        let deadline = Flipc_sim.Vtime.s 8 in
        while
          Retrans.delivered r < msgs && Sim.now (Machine.sim machine) < deadline
        do
          match Retrans.recv r with
          | Some p ->
              let stamp = Int64.to_int (Bytes.get_int64_le p 0) in
              latencies :=
                (float_of_int (Sim.now (Machine.sim machine) - stamp) /. 1_000.)
                :: !latencies
          | None -> Mem_port.instr (Api.port api) 200
        done;
        r_stats :=
          ( Retrans.duplicates r,
            Retrans.reordered r,
            Retrans.ooo_buffered r,
            Retrans.acks_sent r,
            Retrans.reacks_suppressed r ));
    Machine.spawn_app machine ~node:0 (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        Mailbox.put ack_addr (Api.address api ack_ep);
        Api.connect api data_ep (Mailbox.take data_addr);
        let s =
          Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
            ~config:rcfg ()
        in
        let bytes = min (max payload 8) (Retrans.capacity api) in
        for _ = 1 to msgs do
          let p = Bytes.create bytes in
          Bytes.set_int64_le p 0 (Int64.of_int (Sim.now (Machine.sim machine)));
          (match Retrans.send s p with
          | Ok () -> ()
          | Error `Timeout -> failwith "sender timed out: peer unreachable?");
          Sim.delay (4 * rto_ns / 32)
        done;
        (match Retrans.flush s ~timeout_ns:(Flipc_sim.Vtime.s 2) with
        | Ok () -> ()
        | Error `Timeout -> failwith "flush timed out: peer unreachable?");
        s_stats :=
          ( Retrans.retransmits s,
            Retrans.backpressure s,
            Retrans.srtt_ns s,
            Retrans.rto_current_ns s ));
    (try Machine.run machine with
    | Flipc_sim.Engine.Process_failure (_, Failure msg) ->
        Fmt.epr "flipc retrans: %s@." msg;
        exit 1);
    Machine.stop_engines machine;
    Machine.run machine;
    let duplicates, reordered, ooo_buffered, acks_sent, reacks_suppressed =
      !r_stats
    in
    let retransmits, backpressure, srtt_ns, rto_cur = !s_stats in
    let delivered = List.length !latencies in
    let summary = Summary.of_samples (List.rev !latencies) in
    let ratio =
      if msgs = 0 then 0. else float_of_int retransmits /. float_of_int msgs
    in
    if json_out then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("mode", Json.String mode_name);
                ("messages", Json.Int msgs);
                ("delivered", Json.Int delivered);
                ("retransmits", Json.Int retransmits);
                ("retransmit_ratio", Json.Float ratio);
                ("backpressure", Json.Int backpressure);
                ("srtt_ns", Json.Int srtt_ns);
                ("rto_current_ns", Json.Int rto_cur);
                ("duplicates", Json.Int duplicates);
                ("reordered", Json.Int reordered);
                ("ooo_buffered", Json.Int ooo_buffered);
                ("acks_sent", Json.Int acks_sent);
                ("reacks_suppressed", Json.Int reacks_suppressed);
                ("p50_us", Json.Float summary.Summary.p50);
                ("p99_us", Json.Float summary.Summary.p99);
              ]))
    else begin
      (match Machine.fault_stats machine with
      | Some f ->
          Fmt.pr
            "wire faults: dropped=%d duplicated=%d reordered=%d delayed=%d@."
            f.Faulty.dropped f.Faulty.duplicated f.Faulty.reordered
            f.Faulty.delayed
      | None -> ());
      Fmt.pr
        "receiver (%s): delivered=%d dup-discards=%d reordered=%d \
         ooo-buffered=%d acks=%d reacks-suppressed=%d@."
        mode_name delivered duplicates reordered ooo_buffered acks_sent
        reacks_suppressed;
      Fmt.pr
        "sender: retransmits=%d (ratio %.3f) backpressure=%d srtt=%dns \
         rto=%dns@."
        retransmits ratio backpressure srtt_ns rto_cur;
      if delivered > 0 then
        Fmt.pr "delivery latency: %a us@." Summary.pp summary
    end;
    match max_ratio with
    | Some bound when ratio > bound ->
        Fmt.epr
          "flipc retrans: retransmit ratio %.3f exceeds --max-retransmit-ratio \
           %.3f@."
          ratio bound;
        exit 1
    | _ -> ()
  in
  let doc =
    "Reliable delivery over a reordering/lossy fabric with the selective \
     repeat vs go-back-N ablation and the adaptive-RTO probes exposed; \
     $(b,--max-retransmit-ratio) turns it into a CI smoke check."
  in
  Cmd.v
    (Cmd.info "retrans" ~doc)
    Term.(
      const run $ obs_out $ fabric $ mode $ reorder $ drop $ dup $ seed
      $ msgs $ payload $ json_flag $ max_ratio)

(* --- firehose --- *)

let firehose_cmd =
  let module Firehose = Flipc_workload.Firehose in
  let module Sketch = Flipc_obs.Sketch in
  let module Json = Flipc_obs.Json in
  let senders =
    Arg.(value & opt int 2
         & info [ "senders" ] ~docv:"M" ~doc:"Sender nodes.")
  in
  let receivers =
    Arg.(value & opt int 2
         & info [ "receivers" ] ~docv:"N" ~doc:"Receiver nodes.")
  in
  let duration =
    Arg.(value & opt int 2000
         & info [ "duration-us" ] ~docv:"US"
             ~doc:"Open-loop generation window per sender (virtual us).")
  in
  let mean_gap =
    Arg.(value & opt int 2000
         & info [ "mean-gap-ns" ] ~docv:"NS"
             ~doc:"Mean inter-arrival gap per sender (offered load).")
  in
  let arrival =
    let arrival_conv =
      Arg.enum
        [ ("poisson", `P); ("periodic", `D); ("jittered", `J); ("bursty", `B) ]
    in
    Arg.(value & opt arrival_conv `P
         & info [ "arrival" ] ~docv:"KIND"
             ~doc:"Arrival process: poisson, periodic, jittered or bursty.")
  in
  let jitter =
    Arg.(value & opt float 0.3
         & info [ "jitter" ] ~docv:"F"
             ~doc:"Jitter fraction for --arrival jittered.")
  in
  let arrival_burst =
    Arg.(value & opt int 8
         & info [ "arrival-burst" ] ~docv:"K"
             ~doc:"Arrivals per burst for --arrival bursty.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Arrival PRNG seed (runs replay bit-identically).")
  in
  let payload =
    Arg.(value & opt int 32
         & info [ "payload" ] ~docv:"BYTES"
             ~doc:"Payload bytes per message (>= 8 for the sojourn stamp).")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"K" ~doc:"Engine shards per node.")
  in
  let streams =
    Arg.(value & opt int 1
         & info [ "streams" ] ~docv:"S"
             ~doc:
               "Endpoint pairs per node; streams spread across engine \
                shards (endpoint g is owned by shard g mod K).")
  in
  let tx_batch =
    Arg.(value & opt int 1
         & info [ "tx-batch" ] ~docv:"K"
             ~doc:"Engine-side DMA descriptor-chain batch.")
  in
  let queue_capacity =
    Arg.(value & opt int Config.default.Config.queue_capacity
         & info [ "queue-capacity" ] ~docv:"SLOTS"
             ~doc:
               "Ring slots per endpoint (holds SLOTS-1 buffers); bursts \
                and batches are capped by the ring depth.")
  in
  let total_buffers =
    Arg.(value & opt int Config.default.Config.total_buffers
         & info [ "total-buffers" ] ~docv:"N"
             ~doc:"Message buffers per communication buffer.")
  in
  let send_burst =
    Arg.(value & opt int 1
         & info [ "send-burst" ] ~docv:"K"
             ~doc:"Application send burst (messages per doorbell).")
  in
  let recv_burst =
    Arg.(value & opt int 1
         & info [ "recv-burst" ] ~docv:"K"
             ~doc:"Application receive burst (messages per drain).")
  in
  let wallclock =
    Arg.(value & opt int 0
         & info [ "wallclock" ] ~docv:"DOMAINS"
             ~doc:
               "Opt-in wall-clock mode: run DOMAINS independent machines on \
                real OCaml domains (0 = deterministic virtual time, the \
                default).")
  in
  let assert_clean =
    Arg.(value & flag
         & info [ "assert-clean" ]
             ~doc:
               "Attach the online invariant monitor and fail (exit 1) on any \
                violation.")
  in
  let min_ratio =
    Arg.(value & opt (some float) None
         & info [ "min-delivered-ratio" ] ~docv:"R"
             ~doc:
               "Fail (exit 1) when delivered/offered falls below $(docv) — \
                turns the command into a CI smoke gate.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one machine-readable JSON object instead of text.")
  in
  let run trace senders receivers duration mean_gap arrival jitter
      arrival_burst seed streams payload shards tx_batch queue_capacity
      total_buffers send_burst recv_burst wallclock assert_clean min_ratio
      json_out =
    with_trace trace @@ fun () ->
    let arrival =
      match arrival with
      | `P -> `Poisson
      | `D -> `Periodic
      | `J -> `Jittered jitter
      | `B -> `Bursty arrival_burst
    in
    let config =
      {
        Config.default with
        Config.engine_shards = shards;
        engine_tx_batch = tx_batch;
        app_send_burst = send_burst;
        app_recv_burst = recv_burst;
        queue_capacity;
        total_buffers;
      }
    in
    let q sk p =
      match Sketch.quantile sk p with Some v -> v | None -> 0.
    in
    let engines_json engines =
      Json.List
        (List.map
           (fun (node, shard, s) ->
             Json.Obj
               [
                 ("node", Json.Int node);
                 ("shard", Json.Int shard);
                 ("iterations", Json.Int s.Flipc.Msg_engine.iterations);
                 ("sends", Json.Int s.Flipc.Msg_engine.sends);
                 ("recvs", Json.Int s.Flipc.Msg_engine.recvs);
                 ("drops", Json.Int s.Flipc.Msg_engine.drops);
                 ("parks", Json.Int s.Flipc.Msg_engine.parks);
                 ("doorbell_hits", Json.Int s.Flipc.Msg_engine.doorbell_hits);
               ])
           engines)
    in
    let report (r : Firehose.result) =
      let sk = r.Firehose.sojourn_us in
      if json_out then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("senders", Json.Int r.Firehose.senders);
                  ("receivers", Json.Int r.Firehose.receivers);
                  ("duration_us", Json.Int r.Firehose.duration_us);
                  ("offered", Json.Int r.Firehose.offered);
                  ("sent", Json.Int r.Firehose.sent);
                  ("shed", Json.Int r.Firehose.shed);
                  ("delivered", Json.Int r.Firehose.delivered);
                  ("rx_drops", Json.Int r.Firehose.rx_drops);
                  ("elapsed_us", Json.Float r.Firehose.elapsed_us);
                  ("offered_per_sec", Json.Float r.Firehose.offered_per_sec);
                  ( "delivered_per_sec",
                    Json.Float r.Firehose.delivered_per_sec );
                  ("delivered_ratio", Json.Float r.Firehose.delivered_ratio);
                  ("sojourn_p50_us", Json.Float (q sk 0.50));
                  ("sojourn_p99_us", Json.Float (q sk 0.99));
                  ("sojourn_p999_us", Json.Float (q sk 0.999));
                  ("violations", Json.Int r.Firehose.violations);
                  ("engines", engines_json r.Firehose.engines);
                ]))
      else begin
        Fmt.pr
          "firehose: %d senders -> %d receivers, %dus window, mean gap %dns@."
          r.Firehose.senders r.Firehose.receivers r.Firehose.duration_us
          mean_gap;
        Fmt.pr
          "offered %d (%.0f kmsg/s) | delivered %d (%.0f kmsg/s) | shed %d | \
           rx-drops %d | ratio %.3f@."
          r.Firehose.offered
          (r.Firehose.offered_per_sec /. 1000.)
          r.Firehose.delivered
          (r.Firehose.delivered_per_sec /. 1000.)
          r.Firehose.shed r.Firehose.rx_drops r.Firehose.delivered_ratio;
        Fmt.pr "sojourn: p50 %.1fus p99 %.1fus p999 %.1fus (n=%d)@."
          (q sk 0.50) (q sk 0.99) (q sk 0.999) (Sketch.count sk);
        List.iter
          (fun (node, shard, s) ->
            if
              s.Flipc.Msg_engine.sends > 0
              || s.Flipc.Msg_engine.recvs > 0
              || shards > 1
            then
              Fmt.pr
                "  node %d shard %d: iters=%d sends=%d recvs=%d drops=%d \
                 parks=%d doorbells=%d@."
                node shard s.Flipc.Msg_engine.iterations
                s.Flipc.Msg_engine.sends s.Flipc.Msg_engine.recvs
                s.Flipc.Msg_engine.drops s.Flipc.Msg_engine.parks
                s.Flipc.Msg_engine.doorbell_hits)
          r.Firehose.engines;
        if assert_clean then
          Fmt.pr "monitor: %d violation(s)@." r.Firehose.violations
      end;
      r
    in
    let gate (ratio, violations) =
      if assert_clean && violations > 0 then begin
        Fmt.epr "flipc firehose: %d monitor violation(s)@." violations;
        exit 1
      end;
      match min_ratio with
      | Some bound when ratio < bound ->
          Fmt.epr
            "flipc firehose: delivered ratio %.3f below \
             --min-delivered-ratio %.3f@."
            ratio bound;
          exit 1
      | _ -> ()
    in
    if wallclock > 0 then begin
      let w =
        Firehose.measure_wallclock ~config ~monitor:assert_clean
          ~domains:wallclock ~senders ~receivers ~duration_us:duration
          ~mean_gap_ns:mean_gap ~arrival ~seed ~streams ~payload_bytes:payload
          ()
      in
      let rs = List.map report w.Firehose.per_domain in
      let sk = w.Firehose.merged_sojourn_us in
      Fmt.pr
        "wallclock: %d domains, %.2fs host time, %.0f kmsg/s aggregate; \
         merged sojourn p50 %.1fus p99 %.1fus@."
        wallclock w.Firehose.wall_s
        (w.Firehose.wall_delivered_per_sec /. 1000.)
        (q sk 0.50) (q sk 0.99);
      let offered = List.fold_left (fun a r -> a + r.Firehose.offered) 0 rs in
      let delivered =
        List.fold_left (fun a r -> a + r.Firehose.delivered) 0 rs
      in
      let violations =
        List.fold_left (fun a r -> a + r.Firehose.violations) 0 rs
      in
      gate
        ( (if offered = 0 then 1.
           else float_of_int delivered /. float_of_int offered),
          violations )
    end
    else
      let r =
        report
          (Firehose.measure ~config ~monitor:assert_clean ~senders ~receivers
             ~duration_us:duration ~mean_gap_ns:mean_gap ~arrival ~seed ~streams
             ~payload_bytes:payload ())
      in
      gate (r.Firehose.delivered_ratio, r.Firehose.violations)
  in
  let doc =
    "Open-loop sustained-load throughput: M senders firehose N receivers at \
     an external arrival rate, reporting offered vs delivered rate, shed \
     load and sojourn quantiles; $(b,--min-delivered-ratio) and \
     $(b,--assert-clean) turn it into a CI smoke gate, $(b,--wallclock) runs \
     independent machines on real OCaml domains."
  in
  Cmd.v
    (Cmd.info "firehose" ~doc)
    Term.(
      const run $ obs_out $ senders $ receivers $ duration $ mean_gap
      $ arrival $ jitter $ arrival_burst $ seed $ streams $ payload $ shards
      $ tx_batch $ queue_capacity $ total_buffers
      $ send_burst $ recv_burst $ wallclock $ assert_clean $ min_ratio
      $ json_flag)

(* --- doctor --- *)

let doctor_cmd =
  let module Sim = Flipc_sim.Engine in
  let module Vtime = Flipc_sim.Vtime in
  let module Mailbox = Flipc_sim.Sync.Mailbox in
  let module Mem_port = Flipc_memsim.Mem_port in
  let module Api = Flipc.Api in
  let module Endpoint_kind = Flipc.Endpoint_kind in
  let module Faulty = Flipc_net.Faulty in
  let module Retrans = Flipc_flow.Retrans in
  let module Provision = Flipc_flow.Provision in
  let module Monitor = Flipc_obs.Monitor in
  let module Causal = Flipc_obs.Causal in
  let module Json = Flipc_obs.Json in
  let flows_arg =
    Arg.(
      value & opt int 6
      & info [ "flows" ] ~docv:"N"
          ~doc:"Concurrent reliable flows on the 4x4 mesh (1-8).")
  in
  let msgs =
    Arg.(
      value & opt int 40
      & info [ "messages" ] ~docv:"N" ~doc:"Messages per flow.")
  in
  let drop =
    Arg.(
      value & opt float 0.05
      & info [ "drop" ] ~docv:"P" ~doc:"Packet drop probability (0..1).")
  in
  let dup =
    Arg.(
      value & opt float 0.02
      & info [ "dup" ] ~docv:"P" ~doc:"Packet duplication probability (0..1).")
  in
  let reorder =
    Arg.(
      value & opt float 0.2
      & info [ "reorder" ] ~docv:"P"
          ~doc:"Packet reordering probability (0..1).")
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"PRNG seed for fault injection (runs replay bit-identically).")
  in
  let assert_clean =
    Arg.(
      value & flag
      & info [ "assert-clean" ]
          ~doc:
            "Exit 1 unless every flow completes, no watchdog fires and every \
             invariant monitor stays clean — the CI health gate.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one machine-readable JSON object instead of text.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Skip the live run: load a flight-data capture written by \
             $(b,--capture) and re-derive the whole diagnosis (spans, \
             monitor verdicts, stalled stages) offline. Produces the same \
             report — byte-for-byte in $(b,--json) mode — as the run that \
             wrote the capture.")
  in
  let against_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "against" ] ~docv:"FILE"
          ~doc:
            "With $(b,--replay) CANDIDATE: load a second capture as the \
             baseline and report the cross-run diff instead of a single \
             diagnosis — monitor-violation keys added/removed, per-stage \
             latency quantile deltas, per-site median latency shifts and \
             event-count deltas. Under $(b,--assert-clean), exit 1 when \
             the candidate adds any violation key the baseline did not \
             have.")
  in
  (* One report body for both modes: the live run passes its measured
     context, a replay echoes the context stored in the capture trailer;
     everything diagnostic (spans, verdicts, monitor state) is
     recomputed from the event stream in both. *)
  let report ~json_out ~assert_clean ~flows ~msgs ~expected ~delivered
      ~retransmits ~faults ~stalled ~stall_report ~spans ~mon =
    let branches = Causal.retransmissions spans in
    let clean = Monitor.clean mon && (not stalled) && delivered = expected in
    let verdicts =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun s ->
          let v = Causal.stalled_stage s in
          Hashtbl.replace tbl v
            (1 + Option.value (Hashtbl.find_opt tbl v) ~default:0))
        spans;
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    in
    if json_out then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("flows", Json.Int flows);
                ("messages_per_flow", Json.Int msgs);
                ("expected", Json.Int expected);
                ("delivered", Json.Int delivered);
                ("retransmits", Json.Int retransmits);
                ("faults", faults);
                ("spans_traced", Json.Int (List.length spans));
                ("retransmitted_frames", Json.Int (List.length branches));
                ( "span_verdicts",
                  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) verdicts)
                );
                ("monitor_events_seen", Json.Int (Monitor.events_seen mon));
                ( "monitor_violations",
                  Json.Int (List.length (Monitor.violations mon)) );
                ("stalled", Json.Bool stalled);
                ("clean", Json.Bool clean);
              ]))
    else begin
      Fmt.pr "flipc doctor: %d reliable flows x %d messages on a lossy 4x4 \
              mesh@." flows msgs;
      (match faults with
      | Json.Obj
          [
            ("dropped", Json.Int d);
            ("duplicated", Json.Int du);
            ("reordered", Json.Int re);
            ("delayed", Json.Int dl);
          ] ->
          Fmt.pr
            "wire faults: dropped=%d duplicated=%d reordered=%d delayed=%d@."
            d du re dl
      | _ -> ());
      Fmt.pr "delivered %d/%d messages, %d retransmissions@." delivered
        expected retransmits;
      Fmt.pr "causal tracing: %d message spans reconstructed@."
        (List.length spans);
      List.iter (fun (v, n) -> Fmt.pr "  %4d span(s): %s@." n v) verdicts;
      (match branches with
      | [] -> ()
      | _ ->
          Fmt.pr "frames transmitted more than once:@.";
          List.iter
            (fun (node, ep, seq, mids) ->
              Fmt.pr "  node %d ep %d seq %d: mids %s@." node ep seq
                (String.concat "," (List.map string_of_int mids)))
            branches);
      (* One sample span end to end, preferring a retransmitted frame's
         (the most interesting causal history on a lossy wire). *)
      (match
         match branches with
         | (_, _, _, mid :: _) :: _ -> Causal.find spans mid
         | _ -> ( match spans with s :: _ -> Some s | [] -> None)
       with
      | Some s ->
          Fmt.pr "sample span (msg %d, %s):@.@[<v 2>  %a@]@." s.Causal.mid
            (Causal.stalled_stage s) Causal.pp_span s
      | None -> ());
      Fmt.pr "@[<v>%a@]@." Monitor.pp_report mon;
      match stall_report with
      | Some report -> Fmt.pr "%s@." report
      | None -> ()
    end;
    if assert_clean && not clean then begin
      if not json_out then
        Fmt.epr
          "flipc doctor: NOT clean (delivered %d/%d, %d violations, \
           stalled=%b)@."
          delivered expected
          (List.length (Monitor.violations mon))
          stalled;
      exit 1
    end
  in
  let replay_run path ~json_out ~assert_clean =
    let module Replay = Flipc_obs.Replay in
    match Replay.load path with
    | Error e ->
        Fmt.epr "flipc doctor: cannot replay %s: %s@." path e;
        exit 2
    | Ok capture ->
        let summary =
          match Replay.summary capture with
          | Some s -> s
          | None ->
              Fmt.epr
                "flipc doctor: %s has no run summary in its trailer — was it \
                 written by flipc doctor --capture?@." path;
              exit 2
        in
        let want_int name =
          match Option.bind (Json.member name summary) Json.to_int with
          | Some v -> v
          | None ->
              Fmt.epr "flipc doctor: capture summary lacks %S@." name;
              exit 2
        in
        let spans = Replay.spans capture in
        let mon =
          Monitor.create
            ~history:(fun mid ->
              match Causal.find spans mid with
              | Some span -> Fmt.str "@[<v>%a@]" Causal.pp_span span
              | None -> "")
            ()
        in
        List.iter
          (fun r -> Monitor.feed mon ~now:r.Replay.r_ts r.Replay.r_ev)
          (Replay.records capture);
        report ~json_out ~assert_clean ~flows:(want_int "flows")
          ~msgs:(want_int "messages_per_flow")
          ~expected:(want_int "expected")
          ~delivered:(want_int "delivered")
          ~retransmits:(want_int "retransmits")
          ~faults:
            (Option.value (Json.member "faults" summary) ~default:Json.Null)
          ~stalled:(Json.member "stalled" summary = Some (Json.Bool true))
          ~stall_report:None ~spans ~mon
  in
  let diff_run ~cand_path ~base_path ~json_out ~assert_clean =
    let module Replay = Flipc_obs.Replay in
    let module Diff = Flipc_obs.Diff in
    let load side path =
      match Replay.load path with
      | Ok c -> c
      | Error e ->
          Fmt.epr "flipc doctor: cannot load %s capture %s: %s@." side path e;
          exit 2
    in
    let cand = load "candidate" cand_path in
    let base = load "baseline" base_path in
    let d = Diff.compare_runs ~base ~cand in
    if json_out then print_endline (Json.to_string (Diff.json d))
    else Fmt.pr "@[<v>%a@]@." Diff.pp d;
    if assert_clean && Diff.regressions d > 0 then begin
      if not json_out then
        Fmt.epr "flipc doctor: %d violation key(s) added vs baseline@."
          (Diff.regressions d);
      exit 1
    end
  in
  let run trace replay against flows msgs drop dup reorder seed assert_clean
      json_out =
    with_trace trace @@ fun () ->
    match (replay, against) with
    | Some cand, Some base ->
        diff_run ~cand_path:cand ~base_path:base ~json_out ~assert_clean
    | None, Some _ ->
        Fmt.epr "flipc doctor: --against requires --replay CANDIDATE@.";
        exit 2
    | Some path, None -> replay_run path ~json_out ~assert_clean
    | None, None ->
    if flows < 1 || flows > 8 then begin
      Fmt.epr "flipc doctor: --flows must be in [1,8]@.";
      exit 2
    end;
    let check_prob name p =
      if p < 0. || p > 1. then begin
        Fmt.epr "flipc doctor: %s must be in [0,1] (got %g)@." name p;
        exit 2
      end
    in
    check_prob "--drop" drop;
    check_prob "--dup" dup;
    check_prob "--reorder" reorder;
    let fault =
      Faulty.config ~drop ~duplicate:dup ~reorder ~reorder_hold_ns:100_000
        ~seed ()
    in
    let config = Provision.config_for ~base:Config.default ~buffers:16 in
    let machine =
      Machine.create ~config ~fault (Machine.Mesh { cols = 4; rows = 4 }) ()
    in
    let mon = Machine.attach_monitor machine in
    let sim = Machine.sim machine in
    let obs = Machine.obs machine in
    let rcfg =
      {
        Retrans.default_config with
        Retrans.rto_ns = 200_000;
        max_rto_ns = 1_600_000;
      }
    in
    (* A watchdog expiry aborts the run but keeps the flight recorder. *)
    let stalled = ref None in
    let stall wd ?mid () =
      if !stalled = None then
        stalled := Some (Monitor.Watchdog.report ?mid wd [ obs ]);
      failwith (Printf.sprintf "watchdog '%s' expired" (Monitor.Watchdog.name wd))
    in
    let delivered = ref 0 and retransmits = ref 0 in
    for flow = 0 to flows - 1 do
      (* Disjoint node pairs across the 16-node mesh. *)
      let src = flow and dst = 15 - flow in
      let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
      let ok = function
        | Ok v -> v
        | Error e -> failwith (Api.error_to_string e)
      in
      let wname dir = Printf.sprintf "doctor-flow-%d-%s" flow dir in
      (* Set by the sender once its flush completes; the receiver lingers
         until then, re-acking retransmitted duplicates. Exiting at the
         final delivery would strand the sender whenever the last
         cumulative ack is dropped: nothing new arrives at the receiver,
         so nothing re-triggers an ack (DESIGN.md §14). *)
      let tx_done = ref false in
      Machine.spawn_app ~name:(wname "rx") machine ~node:dst (fun api ->
          let data_ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
          in
          let ack_ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ())
          in
          Mailbox.put data_addr (Api.address api data_ep);
          Api.connect api ack_ep (Mailbox.take ack_addr);
          let r =
            Retrans.create_receiver api ~sim ~data_ep ~ack_ep ~config:rcfg ()
          in
          let wd = Monitor.Watchdog.create ~sim ~name:(wname "rx") () in
          while Retrans.delivered r < msgs do
            match Retrans.recv r with
            | Some _ -> Monitor.Watchdog.progress wd
            | None ->
                if Monitor.Watchdog.expired wd then
                  stall wd ~mid:(Api.last_recv_msg_id api) ();
                Mem_port.instr (Api.port api) 200
          done;
          while (not !tx_done) && not (Monitor.Watchdog.expired wd) do
            (match Retrans.recv r with
            | Some _ -> ()
            | None -> Sim.delay 25_000);
            Mem_port.instr (Api.port api) 200
          done);
      Machine.spawn_app ~name:(wname "tx") machine ~node:src (fun api ->
          let data_ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ())
          in
          let ack_ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
          in
          Mailbox.put ack_addr (Api.address api ack_ep);
          Api.connect api data_ep (Mailbox.take data_addr);
          let s =
            Retrans.create_sender api ~sim ~data_ep ~ack_ep ~config:rcfg ()
          in
          let wd = Monitor.Watchdog.create ~sim ~name:(wname "tx") () in
          let bytes = min 32 (Retrans.capacity api) in
          Fun.protect
            ~finally:(fun () -> tx_done := true)
            (fun () ->
              for i = 1 to msgs do
                let p = Bytes.make bytes (Char.chr (i land 0x7f)) in
                (match Retrans.send s p with
                | Ok () -> Monitor.Watchdog.progress wd
                | Error `Timeout -> stall wd ~mid:(Api.last_msg_id api) ());
                Sim.delay 25_000
              done;
              match Retrans.flush s ~timeout_ns:(Vtime.s 2) with
              | Ok () -> ()
              | Error `Timeout -> stall wd ~mid:(Api.last_msg_id api) ());
          retransmits := !retransmits + Retrans.retransmits s;
          delivered := !delivered + msgs)
    done;
    (try Machine.run machine with
    | Flipc_sim.Engine.Process_failure (_, Failure msg) ->
        Fmt.epr "flipc doctor: %s@." msg);
    Machine.stop_engines machine;
    Machine.run machine;
    let spans = Causal.spans [ obs ] in
    let expected = flows * msgs in
    let faults_json =
      match Machine.fault_stats machine with
      | Some f ->
          Json.Obj
            [
              ("dropped", Json.Int f.Faulty.dropped);
              ("duplicated", Json.Int f.Faulty.duplicated);
              ("reordered", Json.Int f.Faulty.reordered);
              ("delayed", Json.Int f.Faulty.delayed);
            ]
      | None -> Json.Null
    in
    (* Stamp the run context into the capture trailer, so a replaying
       doctor can echo the fields it cannot recompute from events. *)
    (match !active_sink with
    | Some sink ->
        Flipc_obs.Sink.set_summary sink
          (Json.Obj
             [
               ("flows", Json.Int flows);
               ("messages_per_flow", Json.Int msgs);
               ("expected", Json.Int expected);
               ("delivered", Json.Int !delivered);
               ("retransmits", Json.Int !retransmits);
               ("faults", faults_json);
               ("stalled", Json.Bool (!stalled <> None));
             ])
    | None -> ());
    report ~json_out ~assert_clean ~flows ~msgs ~expected
      ~delivered:!delivered ~retransmits:!retransmits ~faults:faults_json
      ~stalled:(!stalled <> None) ~stall_report:!stalled ~spans ~mon
  in
  let doc =
    "Self-diagnosis on a lossy mesh: run reliable flows with causal tracing, \
     online invariant monitors and progress watchdogs attached, then report \
     spans, retransmission branches and the invariant verdict. \
     $(b,--assert-clean) turns it into a CI health gate; $(b,--capture) \
     writes a flight-data file (binary when it ends in $(b,.ftrace)) that \
     $(b,--replay) re-diagnoses offline, and $(b,--against) diffs two \
     captures."
  in
  Cmd.v
    (Cmd.info "doctor" ~doc)
    Term.(
      const run $ obs_out $ replay_arg $ against_arg $ flows_arg $ msgs $ drop
      $ dup $ reorder $ seed $ assert_clean $ json_flag)

(* --- soakmatrix --- *)

(* The standing adversarial gate: all-to-all reliable flows on every
   fabric, swept across the whole fault matrix (uniform loss, Gilbert–
   Elliott bursts, payload corruption, a single faulted link, and all of
   it combined), with the frame checksum on, invariant monitors attached
   and a progress watchdog per flow. Receivers verify every delivered
   payload against the pattern the sender wrote, so a corrupt frame that
   leaks past the checksum into the application is counted — the number
   that must stay zero. *)
let soakmatrix_cmd =
  let module Sim = Flipc_sim.Engine in
  let module Vtime = Flipc_sim.Vtime in
  let module Mailbox = Flipc_sim.Sync.Mailbox in
  let module Mem_port = Flipc_memsim.Mem_port in
  let module Api = Flipc.Api in
  let module Endpoint_kind = Flipc.Endpoint_kind in
  let module Faulty = Flipc_net.Faulty in
  let module Retrans = Flipc_flow.Retrans in
  let module Provision = Flipc_flow.Provision in
  let module Monitor = Flipc_obs.Monitor in
  let module Json = Flipc_obs.Json in
  let msgs_arg =
    Arg.(
      value & opt int 25
      & info [ "messages" ] ~docv:"N" ~doc:"Messages per flow.")
  in
  let seed_arg =
    Arg.(
      value & opt int 21
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"PRNG seed for fault injection (runs replay bit-identically).")
  in
  let fabric_filter =
    Arg.(
      value
      & opt (enum [ ("all", `All); ("mesh", `Mesh); ("ethernet", `Ethernet);
                    ("scsi", `Scsi) ]) `All
      & info [ "fabric" ] ~docv:"FABRIC" ~doc:"Run one fabric only.")
  in
  let scenario_filter =
    Arg.(
      value
      & opt string "all"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Run one fault scenario only (uniform, burst, corrupt, perlink, \
             combined).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_soak_matrix.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the JSON document ('-' = stdout only).")
  in
  let assert_clean =
    Arg.(
      value & flag
      & info [ "assert-clean" ]
          ~doc:
            "Exit 1 unless every cell is clean: all messages delivered, no \
             invariant violation, no watchdog expiry, zero corrupt frames \
             reaching the application.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the JSON document on stdout instead of the text table.")
  in
  let scenario_names =
    [ "uniform"; "burst"; "corrupt"; "perlink"; "combined" ]
  in
  (* One directed bad link (node 0 toward its partner): drops, bursts and
     corrupts while every other link stays clean. *)
  let scenario_fault name ~seed ~hold ~half =
    let bad_link () =
      Faulty.config ~drop:0.15 ~corrupt:0.1
        ~burst:(Faulty.burst ~p_good_bad:0.05 ~p_bad_good:0.3 ~drop_bad:0.5 ())
        ~seed:(seed + 1) ()
    in
    let only_link_0 bad ~src ~dst =
      if src = 0 && dst = half then Some bad else None
    in
    match name with
    | "uniform" ->
        ( Faulty.config ~drop:0.05 ~duplicate:0.02 ~reorder:0.15
            ~reorder_hold_ns:hold ~seed (),
          None )
    | "burst" ->
        ( Faulty.config
            ~burst:
              (Faulty.burst ~p_good_bad:0.05 ~p_bad_good:0.3 ~drop_bad:0.5 ())
            ~seed (),
          None )
    | "corrupt" -> (Faulty.config ~corrupt:0.08 ~seed (), None)
    | "perlink" ->
        (Faulty.config ~seed (), Some (only_link_0 (bad_link ())))
    | "combined" ->
        ( Faulty.config ~drop:0.03 ~duplicate:0.02 ~reorder:0.1
            ~reorder_hold_ns:hold ~corrupt:0.03
            ~burst:
              (Faulty.burst ~p_good_bad:0.03 ~p_bad_good:0.3 ~drop_bad:0.4 ())
            ~seed (),
          Some (only_link_0 (bad_link ())) )
    | _ -> assert false
  in
  (* One soak cell: [nodes] flows, node i sending to node (i + n/2) mod n,
     so every node both sends and receives through the faulted fabric. *)
  let run_cell ~fabric_name ~kind ~cost ~nodes ~rto_ns ~pace_ns ~budget ~hold
      ~msgs ~seed ~scenario =
    let half = nodes / 2 in
    let fault, links = scenario_fault scenario ~seed ~hold ~half in
    let config =
      {
        (Provision.config_for ~base:Config.default ~buffers:16) with
        Config.frame_checksum = true;
      }
    in
    let machine =
      Machine.create ~config ~cost ~fault ?fault_links:links kind ()
    in
    let mon = Machine.attach_monitor machine in
    let sim = Machine.sim machine in
    let rcfg =
      {
        Retrans.default_config with
        Retrans.rto_ns;
        max_rto_ns = 8 * rto_ns;
      }
    in
    let stalled = ref 0 in
    (* Counted once, in the Process_failure handler below. *)
    let stall wd =
      failwith
        (Printf.sprintf "watchdog '%s' expired" (Monitor.Watchdog.name wd))
    in
    let delivered = ref 0
    and retransmits = ref 0
    and corrupt_leaks = ref 0 in
    let payload_of ~flow ~idx ~bytes =
      Bytes.init bytes (fun j -> Char.chr (((flow * 131) + (idx * 31) + j) land 0xff))
    in
    let ok = function
      | Ok v -> v
      | Error e -> failwith (Api.error_to_string e)
    in
    let senders_left = ref nodes in
    for flow = 0 to nodes - 1 do
      let src = flow and dst = (flow + half) mod nodes in
      let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
      let wname dir = Printf.sprintf "soak-%s-%s-%d-%s" fabric_name scenario flow dir in
      (* rx on cpu 1, tx on cpu 0: each role gets its own memory port. *)
      Machine.spawn_app ~name:(wname "rx") ~cpu:1 machine ~node:dst
        (fun api ->
          let data_ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
          in
          let ack_ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ())
          in
          Mailbox.put data_addr (Api.address api data_ep);
          Api.connect api ack_ep (Mailbox.take ack_addr);
          let r =
            Retrans.create_receiver api ~sim ~data_ep ~ack_ep ~config:rcfg ()
          in
          let wd = Monitor.Watchdog.create ~budget ~sim ~name:(wname "rx") () in
          let bytes = min 32 (Retrans.capacity api) in
          let next = ref 1 in
          while Retrans.delivered r < msgs do
            match Retrans.recv r with
            | Some p ->
                Monitor.Watchdog.progress wd;
                if not (Bytes.equal p (payload_of ~flow ~idx:!next ~bytes))
                then incr corrupt_leaks;
                incr next;
                incr delivered
            | None ->
                if Monitor.Watchdog.expired wd then stall wd;
                Mem_port.instr (Api.port api) 200
          done;
          (* Linger: a dropped final ack leaves the sender retransmitting
             a message we already have. Keep draining (recv re-acks
             duplicates) until every sender in the cell has flushed; the
             watchdog bounds the linger if a sender dies. *)
          Monitor.Watchdog.progress wd;
          while !senders_left > 0 && not (Monitor.Watchdog.expired wd) do
            (match Retrans.recv r with
            | Some _ -> ()
            | None -> Sim.delay pace_ns);
            Mem_port.instr (Api.port api) 200
          done);
      Machine.spawn_app ~name:(wname "tx") ~cpu:0 machine ~node:src
        (fun api ->
          let data_ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ())
          in
          let ack_ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
          in
          Mailbox.put ack_addr (Api.address api ack_ep);
          Api.connect api data_ep (Mailbox.take data_addr);
          let s =
            Retrans.create_sender api ~sim ~data_ep ~ack_ep ~config:rcfg ()
          in
          let wd = Monitor.Watchdog.create ~budget ~sim ~name:(wname "tx") () in
          let bytes = min 32 (Retrans.capacity api) in
          Fun.protect
            ~finally:(fun () -> decr senders_left)
            (fun () ->
              for i = 1 to msgs do
                (match Retrans.send s (payload_of ~flow ~idx:i ~bytes) with
                | Ok () -> Monitor.Watchdog.progress wd
                | Error `Timeout -> stall wd);
                Sim.delay pace_ns
              done;
              (match Retrans.flush s ~timeout_ns:(Vtime.s 4) with
              | Ok () -> ()
              | Error `Timeout -> stall wd);
              retransmits := !retransmits + Retrans.retransmits s))
    done;
    (* Each Process_failure kills exactly one simulation process; keep
       running so the remaining flows finish and the cell reports how far
       it got (the failure itself already marks the cell unclean). *)
    let rec run_all stopping =
      match
        if stopping then Machine.stop_engines machine;
        Machine.run machine
      with
      | () -> if not stopping then run_all true
      | exception Flipc_sim.Engine.Process_failure (who, exn) ->
          incr stalled;
          Fmt.epr "flipc soakmatrix: %s/%s: %s: %s@." fabric_name scenario who
            (Printexc.to_string exn);
          run_all stopping
    in
    run_all false;
    let corrupt_dropped = ref 0 in
    for i = 0 to Machine.node_count machine - 1 do
      let st = Flipc.Msg_engine.stats (Machine.msg_engine (Machine.node machine i)) in
      corrupt_dropped := !corrupt_dropped + st.Flipc.Msg_engine.corrupt_frames
    done;
    let expected = nodes * msgs in
    let violations = List.length (Monitor.violations mon) in
    let clean =
      Monitor.clean mon && !stalled = 0 && !delivered = expected
      && !corrupt_leaks = 0
    in
    let faults_json =
      match Machine.fault_stats machine with
      | Some f ->
          Json.Obj
            [
              ("dropped", Json.Int f.Faulty.dropped);
              ("burst_dropped", Json.Int f.Faulty.burst_dropped);
              ("duplicated", Json.Int f.Faulty.duplicated);
              ("reordered", Json.Int f.Faulty.reordered);
              ("delayed", Json.Int f.Faulty.delayed);
              ("corrupted", Json.Int f.Faulty.corrupted);
              ("ge_bursts", Json.Int f.Faulty.ge_bursts);
              ("ge_bad_pkts", Json.Int f.Faulty.ge_bad_pkts);
              ("ge_good_pkts", Json.Int f.Faulty.ge_good_pkts);
            ]
      | None -> Json.Null
    in
    ( clean,
      Json.Obj
        [
          ("fabric", Json.String fabric_name);
          ("scenario", Json.String scenario);
          ("flows", Json.Int nodes);
          ("expected", Json.Int expected);
          ("delivered", Json.Int !delivered);
          ("retransmits", Json.Int !retransmits);
          ("corrupt_leaks", Json.Int !corrupt_leaks);
          ("corrupt_frames_dropped", Json.Int !corrupt_dropped);
          ("monitor_violations", Json.Int violations);
          ("watchdogs_expired", Json.Int !stalled);
          ("faults", faults_json);
          ("clean", Json.Bool clean);
        ] )
  in
  let run trace msgs seed fabric_sel scenario_sel out assert_flag json_out =
    with_trace trace @@ fun () ->
    if msgs < 1 then begin
      Fmt.epr "flipc soakmatrix: --messages must be >= 1@.";
      exit 2
    end;
    (if scenario_sel <> "all" && not (List.mem scenario_sel scenario_names)
     then begin
       Fmt.epr "flipc soakmatrix: unknown scenario %s@." scenario_sel;
       exit 2
     end);
    (* Per-fabric tuning: (tag, name, kind, cost model, nodes, rto_ns,
       pace_ns, watchdog budget, reorder_hold_ns). The 10 Mb/s shared
       Ethernet serializes every frame (~120 us each), so 8 all-to-all
       flows must pace well below medium capacity and start from an RTO
       above the contended round trip, or the cell measures a congestion
       collapse instead of fault recovery. *)
    let fabrics =
      [
        ( `Mesh,
          "mesh",
          Machine.Mesh { cols = 4; rows = 4 },
          Flipc_memsim.Cost_model.paragon,
          16, 200_000, 25_000, Flipc_sim.Vtime.ms 50, 100_000 );
        ( `Ethernet,
          "ethernet",
          Machine.Ethernet { nodes = 8 },
          Flipc_memsim.Cost_model.pc_cluster,
          8, 8_000_000, 2_000_000, Flipc_sim.Vtime.ms 500, 500_000 );
        ( `Scsi,
          "scsi",
          Machine.Scsi { nodes = 4 },
          Flipc_memsim.Cost_model.pc_cluster,
          4, 1_000_000, 125_000, Flipc_sim.Vtime.ms 50, 500_000 );
      ]
      |> List.filter (fun (tag, _, _, _, _, _, _, _, _) ->
             fabric_sel = `All || fabric_sel = tag)
    in
    let scenarios =
      List.filter
        (fun s -> scenario_sel = "all" || scenario_sel = s)
        scenario_names
    in
    let cells =
      List.concat_map
        (fun (_, fabric_name, kind, cost, nodes, rto_ns, pace_ns, budget, hold)
           ->
          List.map
            (fun scenario ->
              run_cell ~fabric_name ~kind ~cost ~nodes ~rto_ns ~pace_ns ~budget
                ~hold ~msgs ~seed ~scenario)
            scenarios)
        fabrics
    in
    let clean = List.for_all fst cells in
    let doc =
      Json.Obj
        [
          ("experiment", Json.String "soak_matrix");
          ("messages_per_flow", Json.Int msgs);
          ("seed", Json.Int seed);
          ("cells", Json.List (List.map snd cells));
          ("clean", Json.Bool clean);
        ]
    in
    (if out <> "-" then begin
       let oc = open_out out in
       output_string oc (Json.to_string doc);
       output_char oc '\n';
       close_out oc
     end);
    if json_out then print_endline (Json.to_string doc)
    else begin
      Fmt.pr "flipc soakmatrix: %d cells x %d messages/flow (seed %d)@."
        (List.length cells) msgs seed;
      List.iter
        (fun (cell_clean, j) ->
          match j with
          | Json.Obj fields ->
              let str k =
                match List.assoc k fields with
                | Json.String s -> s
                | _ -> "?"
              in
              let int k =
                match List.assoc k fields with Json.Int i -> i | _ -> -1
              in
              Fmt.pr
                "  %-8s %-8s delivered %d/%d retrans=%d corrupt-dropped=%d \
                 leaks=%d violations=%d stalls=%d %s@."
                (str "fabric") (str "scenario") (int "delivered")
                (int "expected") (int "retransmits")
                (int "corrupt_frames_dropped") (int "corrupt_leaks")
                (int "monitor_violations") (int "watchdogs_expired")
                (if cell_clean then "ok" else "NOT CLEAN")
          | _ -> ())
        cells;
      if out <> "-" then Fmt.pr "wrote %s@." out
    end;
    if assert_flag && not clean then begin
      if not json_out then Fmt.epr "flipc soakmatrix: NOT clean@.";
      exit 1
    end
  in
  let doc =
    "Adversarial soak matrix: all-to-all reliable flows on \
     mesh/Ethernet/SCSI swept across the fault matrix (uniform, burst, \
     corrupt, per-link, combined) with frame checksums, invariant monitors \
     and per-flow watchdogs. $(b,--assert-clean) turns it into the standing \
     CI gate; the JSON lands in $(b,BENCH_soak_matrix.json) for \
     $(b,bench_diff.sh)."
  in
  Cmd.v
    (Cmd.info "soakmatrix" ~doc)
    Term.(
      const run $ obs_out $ msgs_arg $ seed_arg $ fabric_filter
      $ scenario_filter $ out_arg $ assert_clean $ json_flag)

(* --- stack --- *)

(* The layered-transport gate: every {!Flipc_flow.Transport} composition
   Stackflow can build, swept across fault scenarios — but only where
   the stack makes a delivery promise. The optimistic stacks (bare
   channel, window-over-channel) and the retrans-over-window tower run
   on the clean fabric only: the first two guarantee nothing under
   loss, and the tower is excluded by the stacking rule (a dropped data
   frame permanently consumes a window credit, so reliability must sit
   below flow control on a lossy base). Retrans-over-channel is the
   reliable composition and must deliver exactly-once through the whole
   fault sweep. *)
let stack_cmd =
  let module Vtime = Flipc_sim.Vtime in
  let module Faulty = Flipc_net.Faulty in
  let module Stackflow = Flipc_workload.Stackflow in
  let module Json = Flipc_obs.Json in
  let msgs_arg =
    Arg.(
      value & opt int 25
      & info [ "messages" ] ~docv:"N" ~doc:"Messages per flow.")
  in
  let seed_arg =
    Arg.(
      value & opt int 31
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"PRNG seed for fault injection (runs replay bit-identically).")
  in
  let stack_names =
    [
      ("channel", Stackflow.Bare_channel);
      ("window", Stackflow.Window_over_channel);
      ("retrans", Stackflow.Retrans_over_channel);
      ("tower", Stackflow.Retrans_over_window);
    ]
  in
  let stack_filter =
    Arg.(
      value & opt string "all"
      & info [ "stack" ] ~docv:"NAME"
          ~doc:
            "Run one composition only (channel, window, retrans, tower).")
  in
  let scenario_names =
    [ "clean"; "uniform"; "burst"; "corrupt"; "perlink"; "combined" ]
  in
  let scenario_filter =
    Arg.(
      value & opt string "all"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Run one fault scenario only (clean, uniform, burst, corrupt, \
             perlink, combined).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_stack.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the JSON document ('-' = stdout only).")
  in
  let assert_clean =
    Arg.(
      value & flag
      & info [ "assert-clean" ]
          ~doc:
            "Exit 1 unless every cell is clean: all messages delivered \
             exactly once, no invariant violation, no watchdog expiry, zero \
             corrupt payloads reaching the application.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the JSON document on stdout instead of the text table.")
  in
  let nodes = 4 in
  let half = nodes / 2 in
  let hold = 100_000 in
  let scenario_fault name ~seed =
    let bad_link () =
      Faulty.config ~drop:0.15 ~corrupt:0.1
        ~burst:(Faulty.burst ~p_good_bad:0.05 ~p_bad_good:0.3 ~drop_bad:0.5 ())
        ~seed:(seed + 1) ()
    in
    let only_link_0 bad ~src ~dst =
      if src = 0 && dst = half then Some bad else None
    in
    match name with
    | "clean" -> (None, None)
    | "uniform" ->
        ( Some
            (Faulty.config ~drop:0.05 ~duplicate:0.02 ~reorder:0.15
               ~reorder_hold_ns:hold ~seed ()),
          None )
    | "burst" ->
        ( Some
            (Faulty.config
               ~burst:
                 (Faulty.burst ~p_good_bad:0.05 ~p_bad_good:0.3 ~drop_bad:0.5
                    ())
               ~seed ()),
          None )
    | "corrupt" -> (Some (Faulty.config ~corrupt:0.08 ~seed ()), None)
    | "perlink" ->
        (Some (Faulty.config ~seed ()), Some (only_link_0 (bad_link ())))
    | "combined" ->
        ( Some
            (Faulty.config ~drop:0.03 ~duplicate:0.02 ~reorder:0.1
               ~reorder_hold_ns:hold ~corrupt:0.03
               ~burst:
                 (Faulty.burst ~p_good_bad:0.03 ~p_bad_good:0.3 ~drop_bad:0.4
                    ())
               ~seed ()),
          Some (only_link_0 (bad_link ())) )
    | _ -> assert false
  in
  (* Which scenarios a composition promises to survive. *)
  let scenarios_for stack =
    match stack with
    | Stackflow.Retrans_over_channel -> scenario_names
    | Stackflow.Bare_channel | Stackflow.Window_over_channel
    | Stackflow.Retrans_over_window ->
        [ "clean" ]
  in
  let run_cell ~stack ~scenario ~msgs ~seed =
    let fault, links = scenario_fault scenario ~seed in
    let r =
      Stackflow.run ~stack ?fault ?fault_links:links
        ~kind:(Machine.Mesh { cols = 2; rows = 2 })
        ~nodes ~messages:msgs ()
    in
    ( r.Stackflow.clean,
      Json.Obj
        [
          ("stack", Json.String (Stackflow.stack_name stack));
          ("scenario", Json.String scenario);
          ("flows", Json.Int nodes);
          ("expected", Json.Int r.Stackflow.expected);
          ("delivered", Json.Int r.Stackflow.delivered);
          ("retransmits", Json.Int r.Stackflow.retransmits);
          ("corrupt_leaks", Json.Int r.Stackflow.corrupt_leaks);
          ("transport_drops", Json.Int r.Stackflow.transport_drops);
          ("monitor_violations", Json.Int r.Stackflow.monitor_violations);
          ("watchdogs_expired", Json.Int r.Stackflow.watchdogs_expired);
          ("clean", Json.Bool r.Stackflow.clean);
        ] )
  in
  let run trace msgs seed stack_sel scenario_sel out assert_flag json_out =
    with_trace trace @@ fun () ->
    if msgs < 1 then begin
      Fmt.epr "flipc stack: --messages must be >= 1@.";
      exit 2
    end;
    (if stack_sel <> "all" && not (List.mem_assoc stack_sel stack_names) then begin
       Fmt.epr "flipc stack: unknown stack %s@." stack_sel;
       exit 2
     end);
    (if scenario_sel <> "all" && not (List.mem scenario_sel scenario_names)
     then begin
       Fmt.epr "flipc stack: unknown scenario %s@." scenario_sel;
       exit 2
     end);
    let cells =
      List.concat_map
        (fun (sname, stack) ->
          if stack_sel <> "all" && stack_sel <> sname then []
          else
            scenarios_for stack
            |> List.filter (fun s ->
                   scenario_sel = "all" || scenario_sel = s)
            |> List.map (fun scenario -> run_cell ~stack ~scenario ~msgs ~seed))
        stack_names
    in
    if cells = [] then begin
      Fmt.epr
        "flipc stack: no cells selected (the %s stack only runs the clean \
         scenario)@."
        stack_sel;
      exit 2
    end;
    let clean = List.for_all fst cells in
    let doc =
      Json.Obj
        [
          ("experiment", Json.String "stack_matrix");
          ("messages_per_flow", Json.Int msgs);
          ("seed", Json.Int seed);
          ("cells", Json.List (List.map snd cells));
          ("clean", Json.Bool clean);
        ]
    in
    (if out <> "-" then begin
       let oc = open_out out in
       output_string oc (Json.to_string doc);
       output_char oc '\n';
       close_out oc
     end);
    if json_out then print_endline (Json.to_string doc)
    else begin
      Fmt.pr "flipc stack: %d cells x %d messages/flow (seed %d)@."
        (List.length cells) msgs seed;
      List.iter
        (fun (cell_clean, j) ->
          match j with
          | Json.Obj fields ->
              let str k =
                match List.assoc k fields with
                | Json.String s -> s
                | _ -> "?"
              in
              let int k =
                match List.assoc k fields with Json.Int i -> i | _ -> -1
              in
              Fmt.pr
                "  %-22s %-8s delivered %d/%d retrans=%d drops=%d leaks=%d \
                 violations=%d stalls=%d %s@."
                (str "stack") (str "scenario") (int "delivered")
                (int "expected") (int "retransmits") (int "transport_drops")
                (int "corrupt_leaks") (int "monitor_violations")
                (int "watchdogs_expired")
                (if cell_clean then "ok" else "NOT CLEAN")
          | _ -> ())
        cells;
      if out <> "-" then Fmt.pr "wrote %s@." out
    end;
    if assert_flag && not clean then begin
      if not json_out then Fmt.epr "flipc stack: NOT clean@.";
      exit 1
    end
  in
  let doc =
    "Layered-transport matrix: every Stackflow composition (bare channel, \
     window flow control, retransmission, the full tower) on a mesh, each \
     swept across the fault scenarios it promises to survive. \
     $(b,--assert-clean) turns it into a CI gate; the JSON lands in \
     $(b,BENCH_stack.json)."
  in
  Cmd.v (Cmd.info "stack" ~doc)
    Term.(
      const run $ obs_out $ msgs_arg $ seed_arg $ stack_filter
      $ scenario_filter $ out_arg $ assert_clean $ json_flag)

(* --- trace --- *)

let trace_cmd =
  let msgs =
    Arg.(value & opt int 3 & info [ "messages" ] ~docv:"N"
           ~doc:"Messages to trace.")
  in
  let run trace msgs =
    with_trace trace @@ fun () ->
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let tr = Flipc_sim.Trace.create ~enabled:true () in
    for i = 0 to 1 do
      Flipc.Msg_engine.set_trace
        (Machine.msg_engine (Machine.node machine i))
        tr
    done;
    let ns = Machine.names machine in
    let ok = Result.get_ok in
    Machine.spawn_app machine ~node:1 (fun api ->
        let ep = ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Recv ()) in
        for _ = 1 to 4 do
          ok (Flipc.Api.post_receive api ep (ok (Flipc.Api.allocate_buffer api)))
        done;
        Flipc.Nameservice.register ns "rx" (Flipc.Api.address api ep);
        for _ = 1 to msgs do
          let rec poll () =
            match Flipc.Api.receive api ep with
            | Some b -> b
            | None ->
                Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 5;
                poll ()
          in
          let b = poll () in
          ok (Flipc.Api.post_receive api ep b)
        done);
    Machine.spawn_app machine ~node:0 (fun api ->
        let ep = ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Send ()) in
        Flipc.Api.connect api ep (Flipc.Nameservice.lookup ns "rx");
        let buf = ok (Flipc.Api.allocate_buffer api) in
        for _ = 1 to msgs do
          ok (Flipc.Api.send api ep buf);
          let rec reclaim () =
            match Flipc.Api.reclaim api ep with
            | Some _ -> ()
            | None ->
                Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 5;
                reclaim ()
          in
          reclaim ();
          Flipc_sim.Engine.delay (Flipc_sim.Vtime.us 50)
        done);
    Machine.run machine;
    Machine.stop_engines machine;
    Machine.run machine;
    Fmt.pr "%a" Flipc_sim.Trace.dump tr
  in
  let doc = "Dump the messaging engines' event timeline for a few messages." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ obs_out $ msgs)

(* --- metrics --- *)

let metrics_cmd =
  let module Obs = Flipc_obs.Obs in
  let module Metrics = Flipc_obs.Metrics in
  let module Latency = Flipc_obs.Latency in
  let module Series = Flipc_obs.Series in
  let module Json = Flipc_obs.Json in
  let module Vtime = Flipc_sim.Vtime in
  let json_flag =
    let doc = "Emit one machine-readable JSON object instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let prom_flag =
    let doc =
      "Emit the metrics snapshot as a Prometheus-style text exposition \
       (counters, gauges, histogram summaries with quantile labels)."
    in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let series_us =
    let doc =
      "Attach a virtual-time series sampler with $(docv)-microsecond windows \
       and include the per-window counter rates, gauges and quantiles in the \
       output."
    in
    Arg.(value & opt (some int) None & info [ "series" ] ~docv:"US" ~doc)
  in
  let alerts_arg =
    let doc =
      "Evaluate the alert rules in $(docv) (JSON; same grammar as \
       $(b,flipc alert)) over the series windows and report the firings. \
       Each firing is also emitted into the event stream as a typed \
       alert_fired event, so it lands in any $(b,--capture) file. Implies \
       a series tap (window size from $(b,--series), default 100 us)."
    in
    Arg.(value & opt (some string) None & info [ "alerts" ] ~docv:"RULES" ~doc)
  in
  let run trace json_out prom payload exchanges series_us alerts_path =
    with_trace trace @@ fun () ->
    let module Alert = Flipc_obs.Alert in
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let obs = Machine.obs machine in
    let alert =
      Option.map
        (fun path ->
          match Alert.load_rules path with
          | Error e ->
              Fmt.epr "flipc metrics: %s@." e;
              exit 2
          | Ok rules ->
              let interval = Vtime.us (Option.value series_us ~default:100) in
              Alert.attach ~rules ~interval obs)
        alerts_path
    in
    let series =
      Option.map
        (fun us -> Series.attach ~interval:(Vtime.us us) obs)
        series_us
    in
    let r =
      Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:payload
        ~exchanges ()
    in
    Option.iter Series.sample series;
    Option.iter Alert.sample alert;
    let snap = Metrics.snapshot (Obs.metrics obs) in
    let lat = Obs.latency obs in
    if prom then print_string (Series.prom_of_snapshot snap)
    else if json_out then
      print_endline
        (Json.to_string
           (Json.Obj
              ([
                 ("workload", Json.String "pingpong");
                 ("fabric", Json.String "mesh 2x1");
                 ("message_bytes", Json.Int r.Pingpong.message_bytes);
                 ("exchanges", Json.Int r.Pingpong.exchanges);
                 ( "aggregate_one_way_us",
                   Json.Float r.Pingpong.aggregate_one_way_us );
                 ("metrics", Metrics.snapshot_json snap);
                 ("latency", Latency.json lat);
               ]
              @ (match series with
                | Some s -> [ ("series", Series.json s) ]
                | None -> [])
              @
              match alert with
              | Some a -> [ ("alerts", Alert.json a) ]
              | None -> [])))
    else begin
      Fmt.pr "pingpong on a 2x1 mesh: %d exchanges of %dB messages@."
        r.Pingpong.exchanges r.Pingpong.message_bytes;
      Fmt.pr "aggregate one-way: %.2f us@.@." r.Pingpong.aggregate_one_way_us;
      Fmt.pr "metrics registry snapshot:@.%a@." Metrics.pp_snapshot snap;
      Fmt.pr "per-message latency breakdown:@.%a" Latency.pp lat;
      (match series with
      | Some s ->
          Fmt.pr "@.series: %d window(s) sampled (use --json for contents)@."
            (Series.window_count s)
      | None -> ());
      match alert with
      | Some a -> Fmt.pr "@.@[<v>%a@]@." Alert.pp_report a
      | None -> ()
    end
  in
  let doc =
    "Run a short ping-pong workload and dump the machine's metrics-registry \
     snapshot and per-message latency breakdown (deterministic for a fixed \
     configuration). $(b,--prom) switches to Prometheus text exposition; \
     $(b,--series) adds windowed time-series output; $(b,--alerts) \
     evaluates a declarative rule set over the windows."
  in
  Cmd.v
    (Cmd.info "metrics" ~doc)
    Term.(
      const run $ obs_out $ json_flag $ prom_flag $ payload $ exchanges
      $ series_us $ alerts_arg)

(* --- alert --- *)

let alert_cmd =
  let module Alert = Flipc_obs.Alert in
  let module Series = Flipc_obs.Series in
  let module Json = Flipc_obs.Json in
  let module Vtime = Flipc_sim.Vtime in
  let rules_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:
            "Alert rule set: a JSON document {\"rules\": [...]} where each \
             rule has a \"name\", a \"kind\" (rate_band, counter_zero or \
             quantile_ceiling) and kind-specific fields (see DESIGN.md, \
             section 18).")
  in
  let interval_us =
    Arg.(
      value & opt int 100
      & info [ "interval" ] ~docv:"US"
          ~doc:"Series window size in virtual microseconds.")
  in
  let json_flag =
    let doc = "Emit one machine-readable JSON object instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let expect_fire =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-fire" ] ~docv:"RULE"
          ~doc:
            "Invert the gate: exit 0 only when rule $(docv) fired at least \
             once — a self-test that the tripwire actually trips.")
  in
  let run trace rules_path interval_us json_out expect payload exchanges =
    with_trace trace @@ fun () ->
    let rules =
      match Alert.load_rules rules_path with
      | Ok r -> r
      | Error e ->
          Fmt.epr "flipc alert: %s@." e;
          exit 2
    in
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let obs = Machine.obs machine in
    let a = Alert.attach ~rules ~interval:(Vtime.us interval_us) obs in
    let r =
      Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:payload
        ~exchanges ()
    in
    Alert.sample a;
    let fired = Alert.fired a in
    if json_out then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("workload", Json.String "pingpong");
                ("exchanges", Json.Int r.Pingpong.exchanges);
                ("rules", Json.Int (List.length rules));
                ( "windows",
                  Json.Int (Series.window_count (Alert.series a)) );
                ("fired", Alert.json a);
                ("clean", Json.Bool (fired = []));
              ]))
    else begin
      Fmt.pr "flipc alert: %d rule(s) over %d window(s) of a pingpong run@."
        (List.length rules)
        (Series.window_count (Alert.series a));
      Fmt.pr "@[<v>%a@]@." Alert.pp_report a
    end;
    match expect with
    | Some rule ->
        if not (List.exists (fun f -> f.Alert.a_rule = rule) fired) then begin
          if not json_out then
            Fmt.epr "flipc alert: expected rule %S to fire; it did not@." rule;
          exit 1
        end
    | None -> if fired <> [] then exit 1
  in
  let doc =
    "Run the deterministic ping-pong workload with a declarative alert rule \
     set attached to windowed telemetry, report every firing, and exit 1 if \
     any rule fired — a CI tripwire over live metrics. Firings are also \
     emitted as typed events, so they land in $(b,--capture) files and \
     survive $(b,flipc doctor --replay)."
  in
  Cmd.v
    (Cmd.info "alert" ~doc)
    Term.(
      const run $ obs_out $ rules_arg $ interval_us $ json_flag $ expect_fire
      $ payload $ exchanges)

(* --- engine --- *)

let engine_cmd =
  let module Obs = Flipc_obs.Obs in
  let module Metrics = Flipc_obs.Metrics in
  let module Json = Flipc_obs.Json in
  let endpoints =
    Arg.(
      value & opt int 64
      & info [ "endpoints" ] ~docv:"N" ~doc:"Configured endpoints per node.")
  in
  let full_scan =
    let doc = "Use the pre-doorbell full-scan scheduler (ablation)." in
    Arg.(value & flag & info [ "full-scan" ] ~doc)
  in
  let json_flag =
    let doc = "Emit one machine-readable JSON object instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let max_rebuilds =
    let doc =
      "Fail (exit 1) when any node's schedule-rebuild count exceeds $(docv) \
       — the steady-state invariant is one rebuild per endpoint-set \
       change, not per message, so a workload with a fixed endpoint set \
       should stay below a small constant. Intended for CI smoke."
    in
    Arg.(
      value & opt (some int) None
      & info [ "max-rebuilds" ] ~docv:"N" ~doc)
  in
  let run trace json_out endpoints full_scan max_rebuilds payload exchanges =
    with_trace trace @@ fun () ->
    let config =
      {
        Config.default with
        Config.endpoints;
        sched_mode = (if full_scan then Config.Full_scan else Config.Doorbell);
      }
    in
    let machine =
      Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) ()
    in
    let r =
      Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:payload
        ~exchanges ()
    in
    let snap = Metrics.snapshot (Obs.metrics (Machine.obs machine)) in
    (* The engine exports its scheduler counters as pull-probes named
       node<i>.engine.<counter>; everything else in the registry
       (latency histograms, fabric stats) is out of scope here. *)
    let engine_snap =
      List.filter
        (fun (name, _) ->
          match String.split_on_char '.' name with
          | _node :: "engine" :: _ -> true
          | _ -> false)
        snap
    in
    if json_out then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("workload", Json.String "pingpong");
                ("endpoints", Json.Int endpoints);
                ( "sched_mode",
                  Json.String (if full_scan then "full_scan" else "doorbell") );
                ("exchanges", Json.Int r.Pingpong.exchanges);
                ( "aggregate_one_way_us",
                  Json.Float r.Pingpong.aggregate_one_way_us );
                ("engine", Metrics.snapshot_json engine_snap);
              ]))
    else begin
      Fmt.pr "pingpong on a 2x1 mesh: %d exchanges, %d endpoints/node, %s@."
        r.Pingpong.exchanges endpoints
        (if full_scan then "full-scan scheduler" else "doorbell scheduler");
      Fmt.pr "aggregate one-way: %.2f us@.@." r.Pingpong.aggregate_one_way_us;
      Fmt.pr "engine scheduler counters:@.%a@." Metrics.pp_snapshot engine_snap
    end;
    match max_rebuilds with
    | None -> ()
    | Some budget ->
        let worst =
          List.fold_left
            (fun acc (n, v) ->
              match (String.split_on_char '.' n, v) with
              | _ :: "engine" :: [ "sched_rebuilds" ], Metrics.Snap_gauge g ->
                  max acc (int_of_float g)
              | _ -> acc)
            0 engine_snap
        in
        if worst > budget then begin
          Fmt.epr
            "flipc engine: sched_rebuilds=%d exceeds --max-rebuilds %d (the \
             schedule is being rebuilt on the steady-state path)@."
            worst budget;
          exit 1
        end
  in
  let doc =
    "Run a short ping-pong workload and dump the messaging engines' \
     scheduler counters (doorbell hits, schedule rebuilds, receive \
     truncations, avoided idle scans)."
  in
  Cmd.v
    (Cmd.info "engine" ~doc)
    Term.(
      const run $ obs_out $ json_flag $ endpoints $ full_scan $ max_rebuilds
      $ payload $ exchanges)

(* --- info --- *)

let field_name = function
  | Flipc.Layout.Ep_type -> "Ep_type"
  | Flipc.Layout.Queue_base -> "Queue_base"
  | Flipc.Layout.Queue_capacity -> "Queue_capacity"
  | Flipc.Layout.Sem_flag -> "Sem_flag"
  | Flipc.Layout.Priority -> "Priority"
  | Flipc.Layout.Burst -> "Burst"
  | Flipc.Layout.Allowed_node -> "Allowed_node"
  | Flipc.Layout.Dest_addr -> "Dest_addr"
  | Flipc.Layout.Release -> "Release"
  | Flipc.Layout.Acquire -> "Acquire"
  | Flipc.Layout.Drop_read -> "Drop_read"
  | Flipc.Layout.Send_pending -> "Send_pending"
  | Flipc.Layout.Lock -> "Lock"
  | Flipc.Layout.Process -> "Process"
  | Flipc.Layout.Drop_count -> "Drop_count"
  | Flipc.Layout.Scan_stamp -> "Scan_stamp"

let info_cmd =
  let run trace locked packed checks =
    with_trace trace @@ fun () ->
    let config = config_of locked packed checks in
    let layout = Flipc.Layout.compute config in
    Fmt.pr "configuration: %a@." Config.pp config;
    Fmt.pr "message: %dB total, %dB header, %dB payload@."
      config.Config.message_bytes Config.header_bytes
      (Config.payload_bytes config);
    Fmt.pr "communication buffer: %d bytes total@."
      (Flipc.Layout.total_bytes layout);
    let clo, chi = Flipc.Layout.control_region layout in
    let blo, bhi = Flipc.Layout.buffer_region layout in
    Fmt.pr "  control region: [%d, %d)@." clo chi;
    Fmt.pr "  buffer region:  [%d, %d)@." blo bhi;
    Fmt.pr "endpoint 0 field addresses (32B cache lines):@.";
    List.iter
      (fun f ->
        let writer =
          match Flipc.Layout.writer_of_field f with
          | Flipc.Layout.App -> "app"
          | Flipc.Layout.Engine -> "engine"
          | Flipc.Layout.Setup -> "setup"
        in
        let addr = Flipc.Layout.ep_field layout ~ep:0 f in
        Fmt.pr "  %-16s %5d  line %3d  (%s-written)@." (field_name f) addr
          (addr / 32) writer)
      Flipc.Layout.all_fields
  in
  let doc = "Print configuration and communication-buffer layout details." in
  Cmd.v
    (Cmd.info "info" ~doc)
    Term.(const run $ obs_out $ locked $ packed $ checks)

let () =
  let doc = "FLIPC low-latency messaging system reproduction" in
  let info = Cmd.info "flipc" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            latency_cmd; sweep_cmd; compare_cmd; streams_cmd; rpc_cmd; kkt_cmd;
            throughput_cmd; firehose_cmd; bulk_cmd; faults_cmd; retrans_cmd;
            doctor_cmd; soakmatrix_cmd; stack_cmd;
            trace_cmd; metrics_cmd; alert_cmd;
            engine_cmd; info_cmd;
          ]))
