(* Integration tests: full machines, end-to-end message transfer, discard
   semantics, blocking receive, endpoint groups, engine robustness. *)

module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Config = Flipc.Config
module Address = Flipc.Address
module Api = Flipc.Api
module Machine = Flipc.Machine
module Msg_engine = Flipc.Msg_engine
module Endpoint_kind = Flipc.Endpoint_kind
module Endpoint_group = Flipc.Endpoint_group
module Layout = Flipc.Layout
module Rt_semaphore = Flipc_rt.Rt_semaphore

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("api error: " ^ Api.error_to_string e)

let mesh2 ?config () =
  Machine.create ?config (Machine.Mesh { cols = 2; rows = 1 }) ()

let poll_receive api ep =
  let rec loop () =
    match Api.receive api ep with
    | Some b -> b
    | None ->
        Mem_port.instr (Api.port api) 5;
        loop ()
  in
  loop ()

let finish machine =
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine

(* One message, payload checked byte-for-byte. *)
let test_basic_transfer () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  let received = ref "" in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let buf = ok (Api.allocate_buffer api) in
      ok (Api.post_receive api ep buf);
      Mailbox.put addr_box (Api.address api ep);
      let got = poll_receive api ep in
      received := Bytes.to_string (Api.read_payload api got 11));
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      Api.write_payload api buf (Bytes.of_string "hello flipc");
      ok (Api.send api ep buf));
  finish machine;
  Alcotest.(check string) "payload intact" "hello flipc" !received

(* FIFO ordering from one source endpoint to one destination endpoint. *)
let test_ordering () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  let n = 30 in
  let order = ref [] in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 6 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Mailbox.put addr_box (Api.address api ep);
      for _ = 1 to n do
        let buf = poll_receive api ep in
        let v = Bytes.get_int32_le (Api.read_payload api buf 4) 0 in
        order := Int32.to_int v :: !order;
        ok (Api.post_receive api ep buf)
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let pool = List.init 4 (fun _ -> ok (Api.allocate_buffer api)) in
      let free = Queue.create () in
      List.iter (fun b -> Queue.push b free) pool;
      for i = 1 to n do
        let rec get () =
          (match Api.reclaim api ep with
          | Some b -> Queue.push b free
          | None -> ());
          match Queue.take_opt free with
          | Some b -> b
          | None ->
              Mem_port.instr (Api.port api) 5;
              get ()
        in
        let buf = get () in
        let payload = Bytes.create 4 in
        Bytes.set_int32_le payload 0 (Int32.of_int i);
        Api.write_payload api buf payload;
        ok (Api.send api ep buf)
      done);
  finish machine;
  Alcotest.(check (list int)) "FIFO" (List.init n (fun i -> i + 1))
    (List.rev !order)

(* Optimistic discard: no posted buffer => message dropped and counted;
   later messages with buffers still arrive. *)
let test_discard_semantics () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  let got = ref 0 and drops = ref 0 in
  let to_receiver = Mailbox.create () and to_sender = Mailbox.create () in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Mailbox.put addr_box (Api.address api ep);
      (* Phase 1: no buffers posted; the sender fires 3 messages. *)
      ignore (Mailbox.take to_receiver : int);
      (* Phase 2: post a buffer and receive one more message. *)
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      Mailbox.put to_sender 2;
      ignore (poll_receive api ep : Api.buffer);
      incr got;
      drops := Api.drops_read_and_reset api ep);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      for _ = 1 to 3 do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ()
      done;
      (* Let the wire drain before the receiver posts its buffer. *)
      Sim.delay (Flipc_sim.Vtime.us 200);
      Mailbox.put to_receiver 1;
      ignore (Mailbox.take to_sender : int);
      ok (Api.send api ep buf));
  finish machine;
  check "one delivered" 1 !got;
  check "three dropped and counted" 3 !drops

(* The engine's statistics and the dropped-message counter agree. *)
let test_engine_stats () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 8 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Mailbox.put addr_box (Api.address api ep);
      for _ = 1 to 5 do
        let b = poll_receive api ep in
        ok (Api.post_receive api ep b)
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      for _ = 1 to 5 do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ()
      done);
  finish machine;
  let s0 = Msg_engine.stats (Machine.msg_engine (Machine.node machine 0)) in
  let s1 = Msg_engine.stats (Machine.msg_engine (Machine.node machine 1)) in
  check "sender engine sends" 5 s0.Msg_engine.sends;
  check "receiver engine recvs" 5 s1.Msg_engine.recvs;
  check "no drops" 0 s1.Msg_engine.drops;
  check_bool "engines iterated" true (s0.Msg_engine.iterations > 0)

(* Blocking receive via the real-time semaphore. *)
let test_receive_wait () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  let woke_with = ref "" in
  let n1 = Machine.node machine 1 in
  let sem = Rt_semaphore.create (Machine.sched n1) in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep =
        ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ~semaphore:sem ())
      in
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      Mailbox.put addr_box (Api.address api ep);
      ignore
        (Machine.spawn_thread machine ~node:1 ~priority:5 (fun thr api ->
             let buf = Api.receive_wait api ep thr in
             woke_with := Bytes.to_string (Api.read_payload api buf 4))
          : Flipc_rt.Sched.thread));
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      Sim.delay (Flipc_sim.Vtime.us 100);
      let buf = ok (Api.allocate_buffer api) in
      Api.write_payload api buf (Bytes.of_string "wake");
      ok (Api.send api ep buf));
  finish machine;
  Alcotest.(check string) "woken with payload" "wake" !woke_with

(* Endpoint groups: receive_any scans members; blocking group receive works
   through the shared semaphore. *)
let test_endpoint_group () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  let got = ref [] in
  let n1 = Machine.node machine 1 in
  let sem = Rt_semaphore.create (Machine.sched n1) in
  Machine.spawn_app machine ~node:1 (fun api ->
      let group = Endpoint_group.create ~semaphore:sem api in
      let eps =
        List.init 3 (fun _ ->
            let ep =
              ok
                (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv
                   ~semaphore:sem ())
            in
            Endpoint_group.add group ep;
            ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
            ep)
      in
      check "group size" 3 (Endpoint_group.size group);
      List.iter (fun ep -> Mailbox.put addr_box (Api.address api ep)) eps;
      ignore
        (Machine.spawn_thread machine ~node:1 ~priority:5 (fun thr api ->
             ignore api;
             for _ = 1 to 3 do
               let ep, buf = Endpoint_group.receive_any_wait group thr in
               got := Api.endpoint_index ep :: !got;
               ignore (buf : Api.buffer)
             done)
          : Flipc_rt.Sched.thread));
  Machine.spawn_app machine ~node:0 (fun api ->
      let send_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let targets = List.init 3 (fun _ -> Mailbox.take addr_box) in
      let buf = ok (Api.allocate_buffer api) in
      List.iter
        (fun target ->
          ok (Api.send_to api send_ep buf target);
          let rec reclaim () =
            match Api.reclaim api send_ep with
            | Some _ -> ()
            | None ->
                Mem_port.instr (Api.port api) 5;
                reclaim ()
          in
          reclaim ())
        targets);
  finish machine;
  check "three messages through group" 3 (List.length !got);
  check_bool "from distinct endpoints" true
    (List.sort_uniq Int.compare !got |> List.length = 3)

(* Endpoint free and reuse: a freed endpoint index is recycled and works. *)
let test_endpoint_free_reuse () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  let received = ref "" in
  Machine.spawn_app machine ~node:1 (fun api ->
      let first = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let first_index = Api.endpoint_index first in
      Api.free_endpoint api first;
      let again = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      check "index recycled" first_index (Api.endpoint_index again);
      ok (Api.post_receive api again (ok (Api.allocate_buffer api)));
      Mailbox.put addr_box (Api.address api again);
      let got = poll_receive api again in
      received := Bytes.to_string (Api.read_payload api got 7));
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      Api.write_payload api buf (Bytes.of_string "recycle");
      ok (Api.send api ep buf));
  finish machine;
  Alcotest.(check string) "reused endpoint delivers" "recycle" !received

(* Group maintenance: remove drops a member from scanning; group drop
   counts aggregate across members. *)
let test_group_remove_and_drops () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  Machine.spawn_app machine ~node:1 (fun api ->
      let group = Endpoint_group.create api in
      let ep1 = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let ep2 = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Endpoint_group.add group ep1;
      Endpoint_group.add group ep2;
      check "two members" 2 (Endpoint_group.size group);
      Endpoint_group.remove group ep1;
      check "one member" 1 (Endpoint_group.size group);
      check_bool "remaining is ep2" true
        (List.map Api.endpoint_index (Endpoint_group.members group)
        = [ Api.endpoint_index ep2 ]);
      (* No buffers posted on ep2: traffic to it is discarded and the group
         drop aggregate sees it. *)
      Mailbox.put addr_box (Api.address api ep2);
      Sim.delay (Flipc_sim.Vtime.us 500);
      check_bool "group drops counted" true (Endpoint_group.drops group >= 1);
      check_bool "nothing receivable" true (Endpoint_group.receive_any group = None));
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      ok (Api.send api ep (ok (Api.allocate_buffer api))));
  finish machine

(* Regression: removing a member below the round-robin cursor must shift
   the cursor with the compacted array. The buggy remove left [next]
   pointing one slot past the member whose fair turn was due, so after
   consuming from ep0 and removing it, the next scan started at ep2 and
   ep1 lost its turn even with a message waiting. *)
let test_group_remove_cursor () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  let sent_box = Mailbox.create () in
  Machine.spawn_app machine ~node:1 (fun api ->
      let group = Endpoint_group.create api in
      let eps =
        Array.init 3 (fun _ ->
            let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
            Endpoint_group.add group ep;
            ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
            ep)
      in
      Array.iter (fun ep -> Mailbox.put addr_box (Api.address api ep)) eps;
      (* Wait until all three deposits are in their queues, so every scan
         below sees a message on every member and the cursor alone decides
         which endpoint is served. *)
      Mailbox.take sent_box;
      Sim.delay (Flipc_sim.Vtime.us 500);
      let expect label ep =
        match Endpoint_group.receive_any group with
        | None -> Alcotest.fail (label ^ ": nothing receivable")
        | Some (got, buf) ->
            ignore (buf : Api.buffer);
            check label (Api.endpoint_index ep) (Api.endpoint_index got)
      in
      expect "first scan serves ep0" eps.(0);
      (* Cursor now sits on ep1. Removing ep0 compacts the array: ep1
         shifts into slot 0 and the cursor must follow it there. *)
      Endpoint_group.remove group eps.(0);
      expect "ep1 keeps its turn after remove" eps.(1);
      expect "then ep2" eps.(2));
  Machine.spawn_app machine ~node:0 (fun api ->
      let send_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let targets = List.init 3 (fun _ -> Mailbox.take addr_box) in
      let buf = ok (Api.allocate_buffer api) in
      List.iter
        (fun target ->
          ok (Api.send_to api send_ep buf target);
          let rec reclaim () =
            match Api.reclaim api send_ep with
            | Some _ -> ()
            | None ->
                Mem_port.instr (Api.port api) 5;
                reclaim ()
          in
          reclaim ())
        targets;
      Mailbox.put sent_box ());
  finish machine

(* Wait-freedom: an application that stalls forever in the middle of an
   operation cannot stop the engine from serving other endpoints. *)
let test_engine_wait_freedom () =
  let machine = mesh2 () in
  let addr_box = Mailbox.create () in
  let delivered = ref false in
  (* Application A on node 1 "stalls": it allocates a receive endpoint,
     posts nothing, and writes garbage directly into its queue slot area
     without ever advancing the release pointer (a half-completed
     operation). *)
  Machine.spawn_app machine ~node:1 (fun api ->
      let _stalled = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let port = Api.port api in
      let layout = Api.layout api in
      Mem_port.poke port (Layout.slot_addr layout ~ep:0 ~slot:0) 12345;
      (* Then the thread hangs forever. *)
      Sim.suspend (fun _resume -> ()));
  (* Application B on node 1 uses a second endpoint normally. *)
  Machine.spawn_app machine ~node:1 (fun api ->
      Sim.delay (Flipc_sim.Vtime.us 10);
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      Mailbox.put addr_box (Api.address api ep);
      ignore (poll_receive api ep : Api.buffer);
      delivered := true);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      ok (Api.send api ep buf));
  finish machine;
  check_bool "stalled app cannot block delivery" true !delivered

(* Validity checks: a corrupt queued pointer is rejected (message dropped,
   engine keeps running) instead of crashing the engine. *)
let test_validity_rejects_corrupt_slot () =
  let config = { Config.default with Config.validity_checks = true } in
  let machine = mesh2 ~config () in
  let addr_box = Mailbox.create () in
  let later = ref false in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Mailbox.put addr_box (Api.address api ep);
      let port = Api.port api in
      let layout = Api.layout api in
      let epi = Api.endpoint_index ep in
      (* Corrupt: insert a bogus buffer pointer by writing the slot and
         release cursor directly. *)
      Mem_port.poke port (Layout.slot_addr layout ~ep:epi ~slot:0) 12342;
      Mem_port.poke port (Layout.ep_field layout ~ep:epi Layout.Release) 1;
      (* Now wait for the engine to have consumed the corrupt slot and a
         real message to follow. *)
      Sim.delay (Flipc_sim.Vtime.us 300);
      (* Repair our own queue: skip the corrupt slot on the acquire side
         (the engine already advanced past it). *)
      Mem_port.poke port (Layout.ep_field layout ~ep:epi Layout.Acquire) 1;
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      ignore (poll_receive api ep : Api.buffer);
      later := true);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      ok (Api.send api ep buf);
      Sim.delay (Flipc_sim.Vtime.us 500);
      ok (Api.send api ep buf));
  finish machine;
  check_bool "engine survived corruption" true !later;
  let s1 = Msg_engine.stats (Machine.msg_engine (Machine.node machine 1)) in
  check_bool "reject counted" true (s1.Msg_engine.rejects >= 1)

(* Send to an invalid destination: counted, buffer still recovered. *)
let test_bad_destination () =
  let machine = mesh2 () in
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      (* Node 77 does not exist. *)
      Api.connect api ep (Address.make ~node:77 ~endpoint:0);
      let buf = ok (Api.allocate_buffer api) in
      ok (Api.send api ep buf);
      let rec reclaim () =
        match Api.reclaim api ep with
        | Some _ -> ()
        | None ->
            Mem_port.instr (Api.port api) 5;
            reclaim ()
      in
      reclaim ());
  finish machine;
  let s0 = Msg_engine.stats (Machine.msg_engine (Machine.node machine 0)) in
  check "bad dest counted" 1 s0.Msg_engine.bad_dest

(* API error paths. *)
let test_api_errors () =
  let machine = mesh2 () in
  Machine.spawn_app machine ~node:0 (fun api ->
      let send_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let recv_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let buf = ok (Api.allocate_buffer api) in
      (match Api.send api send_ep buf with
      | Error `No_destination -> ()
      | _ -> Alcotest.fail "expected No_destination");
      (match Api.send api recv_ep buf with
      | Error `Wrong_kind -> ()
      | _ -> Alcotest.fail "expected Wrong_kind on send");
      (match Api.post_receive api send_ep buf with
      | Error `Wrong_kind -> ()
      | _ -> Alcotest.fail "expected Wrong_kind on post");
      (* Fill a receive queue to Full. *)
      let cap = (Api.config api).Config.queue_capacity in
      for _ = 1 to cap - 1 do
        ok (Api.post_receive api recv_ep (ok (Api.allocate_buffer api)))
      done;
      (match Api.post_receive api recv_ep (ok (Api.allocate_buffer api)) with
      | Error `Full -> ()
      | _ -> Alcotest.fail "expected Full");
      (* Exhaust endpoints. *)
      let rec exhaust () =
        match Api.allocate_endpoint api ~kind:Endpoint_kind.Recv () with
        | Ok _ -> exhaust ()
        | Error `No_resources -> ()
        | Error e -> Alcotest.fail (Api.error_to_string e)
      in
      exhaust ());
  finish machine

(* Buffer pool exhaustion surfaces as No_resources. *)
let test_buffer_exhaustion () =
  let machine = mesh2 () in
  Machine.spawn_app machine ~node:0 (fun api ->
      let total = (Api.config api).Config.total_buffers in
      for _ = 1 to total do
        ignore (ok (Api.allocate_buffer api) : Api.buffer)
      done;
      match Api.allocate_buffer api with
      | Error `No_resources -> ()
      | Ok _ -> Alcotest.fail "pool should be exhausted"
      | Error e -> Alcotest.fail (Api.error_to_string e));
  finish machine

(* Locked interface variant: functional equivalence with the lock-free
   interface (ablation only changes timing). *)
let test_locked_mode_functional () =
  let config = { Config.default with Config.lock_mode = Config.Test_and_set } in
  let machine = mesh2 ~config () in
  let addr_box = Mailbox.create () in
  let received = ref 0 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 4 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Mailbox.put addr_box (Api.address api ep);
      for _ = 1 to 10 do
        let b = poll_receive api ep in
        incr received;
        ok (Api.post_receive api ep b)
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      for _ = 1 to 10 do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ()
      done);
  finish machine;
  check "all delivered under locks" 10 !received

(* Packed layout variant is likewise functionally identical. *)
let test_packed_mode_functional () =
  let config = { Config.default with Config.layout_mode = Config.Packed } in
  let machine = mesh2 ~config () in
  let addr_box = Mailbox.create () in
  let received = ref "" in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      Mailbox.put addr_box (Api.address api ep);
      let got = poll_receive api ep in
      received := Bytes.to_string (Api.read_payload api got 6));
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      Api.write_payload api buf (Bytes.of_string "packed");
      ok (Api.send api ep buf));
  finish machine;
  Alcotest.(check string) "packed delivers" "packed" !received

(* Messages across several nodes of a larger mesh simultaneously. *)
let test_many_nodes () =
  let machine = Machine.create (Machine.Mesh { cols = 4; rows = 4 }) () in
  let server_addr = Mailbox.create () in
  let received = ref 0 in
  let senders = [ 1; 3; 5; 12; 15 ] in
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 8 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      for _ = 1 to List.length senders do
        Mailbox.put server_addr (Api.address api ep)
      done;
      for _ = 1 to 3 * List.length senders do
        let b = poll_receive api ep in
        incr received;
        ok (Api.post_receive api ep b)
      done);
  List.iter
    (fun node ->
      Machine.spawn_app machine ~node (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          Api.connect api ep (Mailbox.take server_addr);
          let buf = ok (Api.allocate_buffer api) in
          for _ = 1 to 3 do
            ok (Api.send api ep buf);
            let rec reclaim () =
              match Api.reclaim api ep with
              | Some _ -> ()
              | None ->
                  Mem_port.instr (Api.port api) 5;
                  reclaim ()
            in
            reclaim ()
          done))
    senders;
  finish machine;
  check "all messages arrive" (3 * List.length senders) !received

(* Ethernet and SCSI machines run the identical application code: the
   paper's portability claim for the library + communication buffer. *)
let portability_roundtrip kind =
  let machine = Machine.create ~cost:Flipc_memsim.Cost_model.pc_cluster kind () in
  let addr_box = Mailbox.create () in
  let received = ref "" in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      Mailbox.put addr_box (Api.address api ep);
      let got = poll_receive api ep in
      received := Bytes.to_string (Api.read_payload api got 4));
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      Api.write_payload api buf (Bytes.of_string "port");
      ok (Api.send api ep buf));
  finish machine;
  Alcotest.(check string) "delivered" "port" !received

let test_ethernet_machine () = portability_roundtrip (Machine.Ethernet { nodes = 2 })
let test_scsi_machine () = portability_roundtrip (Machine.Scsi { nodes = 2 })

(* Engine lifecycle: parks when idle, wakes on traffic, stops cleanly. *)
let test_engine_park_and_stop () =
  let machine = mesh2 () in
  Machine.spawn_app machine ~node:0 (fun api -> ignore (Api.payload_bytes api));
  Machine.run machine;
  let e0 = Machine.msg_engine (Machine.node machine 0) in
  check_bool "parked when idle" true ((Msg_engine.stats e0).Msg_engine.parks >= 1);
  check_bool "still running" true (Msg_engine.running e0);
  Machine.stop_engines machine;
  Machine.run machine;
  check_bool "stopped" false (Msg_engine.running e0)

(* Two application CPUs of one node share a single send endpoint under the
   locked (test-and-set) interface: the multiprocessor mutual exclusion the
   paper's original interface provided. Every message must arrive, exactly
   once, whatever the interleaving of the two CPUs. *)
let test_two_cpus_share_locked_endpoint () =
  let config = { Config.default with Config.lock_mode = Config.Test_and_set } in
  let machine = mesh2 ~config () in
  let addr_box = Mailbox.create () in
  let per_cpu = 12 in
  let received = ref 0 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 8 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      (* Both CPUs look the address up. *)
      Mailbox.put addr_box (Api.address api ep);
      Mailbox.put addr_box (Api.address api ep);
      for _ = 1 to 2 * per_cpu do
        let b = poll_receive api ep in
        incr received;
        ok (Api.post_receive api ep b)
      done);
  (* The shared endpoint is allocated once by CPU 0's attachment and used
     by both CPUs through their own attachments. *)
  let shared_ep = Mailbox.create () in
  Machine.spawn_app ~cpu:0 machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      Mailbox.put shared_ep ep;
      let buf = ok (Api.allocate_buffer api) in
      for _ = 1 to per_cpu do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 7;
              reclaim ()
        in
        reclaim ()
      done);
  Machine.spawn_app ~cpu:1 machine ~node:0 (fun api ->
      ignore (Mailbox.take addr_box : Flipc.Address.t);
      let ep = Mailbox.take shared_ep in
      let buf = ok (Api.allocate_buffer api) in
      for _ = 1 to per_cpu do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ()
      done);
  finish machine;
  check "all messages from both CPUs" (2 * per_cpu) !received

(* Distinct CPUs get distinct cached attachments; same CPU is cached. *)
let test_api_attachment_caching () =
  let machine = mesh2 () in
  let a0 = Machine.api machine ~node:0 ~cpu:0 () in
  let a0' = Machine.api machine ~node:0 ~cpu:0 () in
  let a1 = Machine.api machine ~node:0 ~cpu:1 () in
  check_bool "same cpu cached" true (a0 == a0');
  check_bool "different cpu distinct" true (not (a0 == a1));
  check_bool "distinct ports" true (not (Api.port a0 == Api.port a1));
  check_bool "shared comm buffer" true (Api.comm a0 == Api.comm a1)

(* Engine tracing records the message lifecycle. *)
let test_engine_trace () =
  let machine = mesh2 () in
  let tr = Flipc_sim.Trace.create ~enabled:true () in
  Msg_engine.set_trace (Machine.msg_engine (Machine.node machine 0)) tr;
  Msg_engine.set_trace (Machine.msg_engine (Machine.node machine 1)) tr;
  let addr_box = Mailbox.create () in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      Mailbox.put addr_box (Api.address api ep);
      ignore (poll_receive api ep : Api.buffer));
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      ok (Api.send api ep (ok (Api.allocate_buffer api))));
  finish machine;
  let entries = Flipc_sim.Trace.to_list tr in
  let has prefix =
    List.exists
      (fun (e : Flipc_sim.Trace.entry) ->
        String.length e.Flipc_sim.Trace.message >= String.length prefix
        && String.sub e.Flipc_sim.Trace.message 0 (String.length prefix)
           = prefix)
      entries
  in
  check_bool "transmit traced" true (has "transmit");
  check_bool "deposit traced" true (has "deposit");
  check_bool "park traced" true (has "park")

let () =
  Alcotest.run "integration"
    [
      ( "transfer",
        [
          Alcotest.test_case "basic" `Quick test_basic_transfer;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "discard semantics" `Quick test_discard_semantics;
          Alcotest.test_case "engine stats" `Quick test_engine_stats;
          Alcotest.test_case "many nodes" `Quick test_many_nodes;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "receive_wait" `Quick test_receive_wait;
          Alcotest.test_case "endpoint group" `Quick test_endpoint_group;
          Alcotest.test_case "endpoint free/reuse" `Quick
            test_endpoint_free_reuse;
          Alcotest.test_case "group remove & drops" `Quick
            test_group_remove_and_drops;
          Alcotest.test_case "group remove keeps cursor fair" `Quick
            test_group_remove_cursor;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "wait freedom" `Quick test_engine_wait_freedom;
          Alcotest.test_case "validity checks" `Quick
            test_validity_rejects_corrupt_slot;
          Alcotest.test_case "bad destination" `Quick test_bad_destination;
          Alcotest.test_case "api errors" `Quick test_api_errors;
          Alcotest.test_case "buffer exhaustion" `Quick test_buffer_exhaustion;
        ] );
      ( "variants",
        [
          Alcotest.test_case "locked mode" `Quick test_locked_mode_functional;
          Alcotest.test_case "packed mode" `Quick test_packed_mode_functional;
          Alcotest.test_case "ethernet machine" `Quick test_ethernet_machine;
          Alcotest.test_case "scsi machine" `Quick test_scsi_machine;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "park and stop" `Quick test_engine_park_and_stop;
          Alcotest.test_case "engine trace" `Quick test_engine_trace;
          Alcotest.test_case "two CPUs, locked endpoint" `Quick
            test_two_cpus_share_locked_endpoint;
          Alcotest.test_case "attachment caching" `Quick
            test_api_attachment_caching;
        ] );
    ]
