(* Tests for the interconnect models: topology, mesh, ethernet, SCSI, NIC,
   DMA. *)

module Engine = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Cost_model = Flipc_memsim.Cost_model
module Shared_mem = Flipc_memsim.Shared_mem
module Cache = Flipc_memsim.Cache
module Bus = Flipc_memsim.Bus
module Topology = Flipc_net.Topology
module Packet = Flipc_net.Packet
module Fabric = Flipc_net.Fabric
module Mesh = Flipc_net.Mesh
module Ethernet = Flipc_net.Ethernet
module Scsi_bus = Flipc_net.Scsi_bus
module Nic = Flipc_net.Nic
module Dma = Flipc_net.Dma
module Faulty = Flipc_net.Faulty

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Topology --- *)

let test_topology_coords () =
  let t = Topology.create ~cols:4 ~rows:3 in
  check "count" 12 (Topology.node_count t);
  Alcotest.(check (pair int int)) "coords 0" (0, 0) (Topology.coords t 0);
  Alcotest.(check (pair int int)) "coords 5" (1, 1) (Topology.coords t 5);
  check "node_at inverse" 5 (Topology.node_at t ~x:1 ~y:1)

let test_topology_hops () =
  let t = Topology.create ~cols:4 ~rows:4 in
  check "self" 0 (Topology.hops t ~src:5 ~dst:5);
  check "adjacent" 1 (Topology.hops t ~src:0 ~dst:1);
  check "corner to corner" 6 (Topology.hops t ~src:0 ~dst:15)

let test_topology_route () =
  let t = Topology.create ~cols:3 ~rows:3 in
  (* 0=(0,0) -> 8=(2,2): X first then Y. *)
  Alcotest.(check (list int)) "dimension order" [ 0; 1; 2; 5; 8 ]
    (Topology.route t ~src:0 ~dst:8)

let route_prop =
  QCheck.Test.make ~name:"route length = hops + 1, endpoints correct" ~count:200
    QCheck.(pair (int_bound 24) (int_bound 24))
    (fun (src, dst) ->
      let t = Topology.create ~cols:5 ~rows:5 in
      let route = Topology.route t ~src ~dst in
      List.length route = Topology.hops t ~src ~dst + 1
      && List.hd route = src
      && List.nth route (List.length route - 1) = dst)

let route_adjacent_prop =
  QCheck.Test.make ~name:"route steps are mesh-adjacent" ~count:200
    QCheck.(pair (int_bound 24) (int_bound 24))
    (fun (src, dst) ->
      let t = Topology.create ~cols:5 ~rows:5 in
      let route = Topology.route t ~src ~dst in
      let rec ok = function
        | a :: (b :: _ as rest) ->
            Topology.hops t ~src:a ~dst:b = 1 && ok rest
        | _ -> true
      in
      ok route)

(* --- Packet --- *)

let test_packet_wire_bytes () =
  let p = Packet.make ~src:0 ~dst:1 ~protocol:Packet.Raw (Bytes.create 100) in
  check "wire bytes" (100 + Packet.header_bytes) (Packet.wire_bytes p)

(* --- Mesh --- *)

let mesh_env ?(cols = 4) ?(rows = 4) () =
  let sim = Engine.create () in
  let topology = Topology.create ~cols ~rows in
  let fabric = Mesh.create ~engine:sim ~topology ~config:Mesh.paragon_config in
  (sim, topology, fabric)

let test_mesh_delivers () =
  let sim, _, fabric = mesh_env () in
  let got = ref None in
  fabric.Fabric.set_handler 5 (fun p -> got := Some p);
  Engine.spawn sim (fun () ->
      fabric.Fabric.send
        (Packet.make ~src:0 ~dst:5 ~protocol:Packet.Raw
           (Bytes.of_string "ping")));
  Engine.run sim;
  match !got with
  | Some p ->
      Alcotest.(check string) "payload" "ping" (Bytes.to_string p.Packet.payload)
  | None -> Alcotest.fail "not delivered"

let test_mesh_latency_matches_estimate () =
  let sim, topology, fabric = mesh_env () in
  let arrival = ref 0 in
  fabric.Fabric.set_handler 15 (fun _ -> arrival := Engine.now sim);
  Engine.spawn sim (fun () ->
      fabric.Fabric.send
        (Packet.make ~src:0 ~dst:15 ~protocol:Packet.Raw (Bytes.create 120)));
  Engine.run sim;
  let expected =
    Mesh.latency_estimate ~config:Mesh.paragon_config ~topology ~src:0 ~dst:15
      ~bytes:120
  in
  check "uncontended latency" expected !arrival

let test_mesh_fifo_per_pair () =
  let sim, _, fabric = mesh_env () in
  let order = ref [] in
  fabric.Fabric.set_handler 1 (fun p -> order := p.Packet.seq :: !order);
  Engine.spawn sim (fun () ->
      for i = 1 to 10 do
        fabric.Fabric.send
          (Packet.make ~src:0 ~dst:1 ~protocol:Packet.Raw ~seq:i
             (Bytes.create 64))
      done);
  Engine.run sim;
  Alcotest.(check (list int))
    "in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !order)

let test_mesh_injection_serializes () =
  let sim, _, fabric = mesh_env () in
  let arrivals = ref [] in
  fabric.Fabric.set_handler 1 (fun _ -> arrivals := Engine.now sim :: !arrivals);
  Engine.spawn sim (fun () ->
      for _ = 1 to 3 do
        fabric.Fabric.send
          (Packet.make ~src:0 ~dst:1 ~protocol:Packet.Raw (Bytes.create 1000))
      done);
  Engine.run sim;
  match List.rev !arrivals with
  | [ a; b; c ] ->
      (* Serialization of a 1008-byte frame at 5 ns/B spaces arrivals. *)
      check_bool "spaced" true (b - a >= 5000 && c - b >= 5000)
  | _ -> Alcotest.fail "three arrivals expected"

let test_mesh_min_frame () =
  let sim, topology, fabric = mesh_env () in
  ignore fabric;
  (* A 1-byte packet still occupies a 64-byte frame. *)
  let est_small =
    Mesh.latency_estimate ~config:Mesh.paragon_config ~topology ~src:0 ~dst:1
      ~bytes:1
  in
  let est_56 =
    Mesh.latency_estimate ~config:Mesh.paragon_config ~topology ~src:0 ~dst:1
      ~bytes:56
  in
  check "min frame pads" est_56 est_small;
  ignore sim

let test_mesh_bad_node_rejected () =
  let sim, _, fabric = mesh_env () in
  Engine.spawn sim (fun () ->
      Alcotest.check_raises "bad dst"
        (Invalid_argument "Fabric.send: bad destination node") (fun () ->
          fabric.Fabric.send
            (Packet.make ~src:0 ~dst:99 ~protocol:Packet.Raw (Bytes.create 8))));
  Engine.run sim

let test_mesh_shared_link_contention () =
  (* Flows 0->2 and 1->2 share the directed link 1->2: simultaneous large
     packets must serialize there and accumulate stall time. *)
  let sim, _, fabric = mesh_env ~cols:3 ~rows:1 () in
  fabric.Fabric.set_handler 2 (fun _ -> ());
  Engine.spawn sim (fun () ->
      fabric.Fabric.send
        (Packet.make ~src:0 ~dst:2 ~protocol:Packet.Raw (Bytes.create 2000));
      fabric.Fabric.send
        (Packet.make ~src:1 ~dst:2 ~protocol:Packet.Raw (Bytes.create 2000)));
  Engine.run sim;
  check_bool "stall recorded" true (Mesh.contention_stall_ns fabric > 0)

let test_mesh_disjoint_paths_no_contention () =
  let sim, _, fabric = mesh_env ~cols:4 ~rows:1 () in
  fabric.Fabric.set_handler 1 (fun _ -> ());
  fabric.Fabric.set_handler 3 (fun _ -> ());
  Engine.spawn sim (fun () ->
      fabric.Fabric.send
        (Packet.make ~src:0 ~dst:1 ~protocol:Packet.Raw (Bytes.create 2000));
      fabric.Fabric.send
        (Packet.make ~src:2 ~dst:3 ~protocol:Packet.Raw (Bytes.create 2000)));
  Engine.run sim;
  check "no stall on disjoint paths" 0 (Mesh.contention_stall_ns fabric)

(* --- Hypercube --- *)

module Hypercube = Flipc_net.Hypercube

let test_cube_geometry () =
  let t = Hypercube.create ~dims:4 in
  check "nodes" 16 (Hypercube.node_count t);
  check "self" 0 (Hypercube.hops t ~src:5 ~dst:5);
  check "one bit" 1 (Hypercube.hops t ~src:0 ~dst:8);
  check "all bits" 4 (Hypercube.hops t ~src:0 ~dst:15)

let test_cube_route_ecube () =
  let t = Hypercube.create ~dims:3 in
  (* 0 -> 7: e-cube corrects bit 0, then 1, then 2. *)
  Alcotest.(check (list int)) "e-cube order" [ 0; 1; 3; 7 ]
    (Hypercube.route t ~src:0 ~dst:7)

let cube_route_prop =
  QCheck.Test.make ~name:"cube route: length and single-bit steps" ~count:200
    QCheck.(pair (int_bound 31) (int_bound 31))
    (fun (src, dst) ->
      let t = Hypercube.create ~dims:5 in
      let route = Hypercube.route t ~src ~dst in
      let rec steps_ok = function
        | a :: (b :: _ as rest) ->
            Hypercube.hops t ~src:a ~dst:b = 1 && steps_ok rest
        | _ -> true
      in
      List.length route = Hypercube.hops t ~src ~dst + 1
      && List.hd route = src
      && List.nth route (List.length route - 1) = dst
      && steps_ok route)

let test_cube_fabric_delivers () =
  let sim = Engine.create () in
  let topology = Hypercube.create ~dims:3 in
  let fabric =
    Hypercube.fabric ~engine:sim ~topology ~config:Hypercube.ipsc2_config
  in
  let got = ref 0 in
  fabric.Fabric.set_handler 6 (fun _ -> got := Engine.now sim);
  Engine.spawn sim (fun () ->
      fabric.Fabric.send
        (Packet.make ~src:1 ~dst:6 ~protocol:Packet.Raw (Bytes.create 100)));
  Engine.run sim;
  (* 1 xor 6 = 7: three hops; the slow iPSC/2 wire dominates. *)
  check_bool "delivered with era latency" true (!got > 30_000 && !got < 200_000)

(* --- Ethernet / SCSI --- *)

let test_ethernet_shared_medium () =
  let sim = Engine.create () in
  let fabric =
    Ethernet.create ~engine:sim ~node_count:3 ~config:Ethernet.default_config
  in
  let arrivals = ref [] in
  fabric.Fabric.set_handler 2 (fun p ->
      arrivals := (p.Packet.src, Engine.now sim) :: !arrivals);
  Engine.spawn sim (fun () ->
      (* Two different senders contend for the one wire. *)
      fabric.Fabric.send
        (Packet.make ~src:0 ~dst:2 ~protocol:Packet.Raw (Bytes.create 500));
      fabric.Fabric.send
        (Packet.make ~src:1 ~dst:2 ~protocol:Packet.Raw (Bytes.create 500)));
  Engine.run sim;
  match List.rev !arrivals with
  | [ (0, a); (1, b) ] ->
      (* The second frame must wait for the first: >= 508 B * 800 ns/B. *)
      check_bool "medium serialized" true (b - a >= 400_000)
  | _ -> Alcotest.fail "two arrivals expected"

let test_ethernet_slower_than_mesh () =
  let sim = Engine.create () in
  let fabric =
    Ethernet.create ~engine:sim ~node_count:2 ~config:Ethernet.default_config
  in
  let arrival = ref 0 in
  fabric.Fabric.set_handler 1 (fun _ -> arrival := Engine.now sim);
  Engine.spawn sim (fun () ->
      fabric.Fabric.send
        (Packet.make ~src:0 ~dst:1 ~protocol:Packet.Raw (Bytes.create 128)));
  Engine.run sim;
  check_bool "order of 100us" true (!arrival > 100_000)

let test_scsi_between () =
  let sim = Engine.create () in
  let fabric =
    Scsi_bus.create ~engine:sim ~node_count:2 ~config:Scsi_bus.default_config
  in
  let arrival = ref 0 in
  fabric.Fabric.set_handler 1 (fun _ -> arrival := Engine.now sim);
  Engine.spawn sim (fun () ->
      fabric.Fabric.send
        (Packet.make ~src:0 ~dst:1 ~protocol:Packet.Raw (Bytes.create 128)));
  Engine.run sim;
  (* SCSI: much faster than ethernet, much slower than the mesh. *)
  check_bool "tens of us" true (!arrival > 20_000 && !arrival < 200_000)

(* --- NIC --- *)

let test_nic_protocol_demux () =
  let sim, _, fabric = mesh_env ~cols:2 ~rows:1 () in
  let nic0 = Nic.create ~engine:sim ~fabric ~node:0 in
  let nic1 = Nic.create ~engine:sim ~fabric ~node:1 in
  let raw_got = ref 0 in
  Nic.set_callback nic1 Packet.Raw (fun _ -> incr raw_got);
  Engine.spawn sim (fun () ->
      Nic.send nic0 (Packet.make ~src:0 ~dst:1 ~protocol:Packet.Raw (Bytes.create 8));
      Nic.send nic0 (Packet.make ~src:0 ~dst:1 ~protocol:Packet.Kkt (Bytes.create 8)));
  Engine.run sim;
  check "raw via callback" 1 !raw_got;
  check "kkt queued" 1 (Mailbox.length (Nic.rx_queue nic1 Packet.Kkt));
  check "received total" 2 (Nic.received nic1);
  check "received raw" 1 (Nic.received_for nic1 Packet.Raw)

let test_nic_wrong_source () =
  let sim, _, fabric = mesh_env ~cols:2 ~rows:1 () in
  let nic0 = Nic.create ~engine:sim ~fabric ~node:0 in
  Alcotest.check_raises "wrong src" (Invalid_argument "Nic.send: wrong source node")
    (fun () ->
      Nic.send nic0 (Packet.make ~src:1 ~dst:0 ~protocol:Packet.Raw (Bytes.create 8)))

(* --- DMA --- *)

let test_dma_roundtrip_and_cost () =
  let sim = Engine.create () in
  let mem = Shared_mem.create ~size:1024 in
  let bus = Bus.create ~cost:Cost_model.paragon () in
  let cache = Cache.create ~name:"cpu" in
  let _port =
    Flipc_memsim.Mem_port.create ~engine:sim ~mem ~bus ~cache:(cache ()) ~name:"cpu"
  in
  let dma = Dma.create ~engine:sim ~mem ~bus ~setup_ns:500 ~ns_per_byte:1.0 in
  Engine.spawn sim (fun () ->
      let t0 = Engine.now sim in
      Dma.write dma ~pos:64 (Bytes.of_string "0123456789abcdef");
      let t1 = Engine.now sim in
      check "write cost" (500 + 16) (t1 - t0);
      let back = Dma.read dma ~pos:64 ~len:16 in
      Alcotest.(check string) "data" "0123456789abcdef" (Bytes.to_string back);
      check "read cost" (500 + 16) (Engine.now sim - t1));
  Engine.run sim;
  check "transfers" 2 (Dma.stats dma).Dma.transfers;
  check "bytes" 32 (Dma.stats dma).Dma.bytes

(* --- Faulty wrapper registry --- *)

(* A fabric whose wire is a plain counter: enough to drive Faulty.wrap
   without a machine behind it. *)
let counting_fabric () =
  let arrived = ref 0 in
  ( arrived,
    {
      Fabric.name = "counter";
      node_count = 2;
      send = (fun _ -> incr arrived);
      set_handler = (fun _ _ -> ());
      stats = Fabric.fresh_stats ();
    } )

(* Wrapping the same inner fabric twice must merge both layers' faults
   into one tally: stats_of used to answer with whichever wrap
   registered last, hiding the other layer entirely. *)
let test_faulty_double_wrap_merges () =
  let sim = Engine.create () in
  let arrived, inner = counting_fabric () in
  let w1 =
    Faulty.wrap ~engine:sim ~config:(Faulty.config ~drop:1.0 ~seed:1 ()) inner
  in
  let w2 =
    Faulty.wrap ~engine:sim
      ~config:(Faulty.config ~duplicate:1.0 ~seed:2 ())
      w1
  in
  Engine.spawn sim (fun () ->
      for i = 1 to 10 do
        w2.Fabric.send
          (Packet.make ~src:0 ~dst:1 ~protocol:Packet.Raw ~seq:i
             (Bytes.create 16))
      done);
  Engine.run sim;
  let tally f =
    match Faulty.stats_of f with
    | Some t -> t
    | None -> Alcotest.fail "wrapped fabric not in registry"
  in
  (* Outer layer duplicates every packet; inner layer drops every copy. *)
  check "nothing reaches the wire" 0 !arrived;
  check "outer layer's duplicates visible" 10 (tally w2).Faulty.duplicated;
  check "inner layer's drops visible through the same entry" 20
    (tally w2).Faulty.dropped;
  check_bool "all three fabrics resolve to one tally" true
    (tally inner == tally w1 && tally w1 == tally w2)

(* The registry must stay bounded across arbitrarily many wraps: weak
   keys let dead fabrics be swept, and a hard cap covers stats records
   that stay strongly rooted elsewhere. *)
let test_faulty_registry_bounded () =
  let sim = Engine.create () in
  for seed = 1 to 200 do
    ignore
      (Faulty.wrap ~engine:sim
         ~config:(Faulty.config ~drop:0.5 ~seed ())
         (snd (counting_fabric ())))
  done;
  check_bool "registry bounded after 200 wraps" true
    (Faulty.registry_size () <= 64);
  (* Nothing above kept its fabric alive; after a major collection the
     weak sweep clears what the cap kept. *)
  Gc.full_major ();
  check_bool "dead fabrics swept" true (Faulty.registry_size () <= 16)

(* Eviction order under the cap: with more live fabrics than the cap
   admits, the newest entries win — the oldest wraps lose their tallies
   (stats_of answers None) while every recently wrapped fabric still
   resolves. The fabrics are all strongly rooted, so only the cap (not
   the weak sweep) can be responsible for the evictions. *)
let test_faulty_registry_cap_eviction () =
  let sim = Engine.create () in
  let fabrics =
    List.init 80 (fun i ->
        let _, inner = counting_fabric () in
        ignore
          (Faulty.wrap ~engine:sim
             ~config:(Faulty.config ~drop:0.5 ~seed:(i + 1) ())
             inner);
        inner)
  in
  check "registry pinned at the cap" 64 (Faulty.registry_size ());
  let resolvable =
    List.filter (fun f -> Faulty.stats_of f <> None) fabrics
  in
  check "only the newest cap-many entries survive" 64 (List.length resolvable);
  (* The survivors are exactly the most recent wraps. *)
  let newest = List.filteri (fun i _ -> i >= 16) fabrics in
  check_bool "eviction is oldest-first" true
    (List.for_all (fun f -> Faulty.stats_of f <> None) newest);
  ignore (Sys.opaque_identity fabrics)

let () =
  Alcotest.run "net"
    [
      ( "topology",
        [
          Alcotest.test_case "coords" `Quick test_topology_coords;
          Alcotest.test_case "hops" `Quick test_topology_hops;
          Alcotest.test_case "route" `Quick test_topology_route;
          QCheck_alcotest.to_alcotest route_prop;
          QCheck_alcotest.to_alcotest route_adjacent_prop;
        ] );
      ("packet", [ Alcotest.test_case "wire bytes" `Quick test_packet_wire_bytes ]);
      ( "mesh",
        [
          Alcotest.test_case "delivers" `Quick test_mesh_delivers;
          Alcotest.test_case "latency estimate" `Quick
            test_mesh_latency_matches_estimate;
          Alcotest.test_case "fifo per pair" `Quick test_mesh_fifo_per_pair;
          Alcotest.test_case "injection serializes" `Quick
            test_mesh_injection_serializes;
          Alcotest.test_case "min frame" `Quick test_mesh_min_frame;
          Alcotest.test_case "bad node" `Quick test_mesh_bad_node_rejected;
          Alcotest.test_case "shared-link contention" `Quick
            test_mesh_shared_link_contention;
          Alcotest.test_case "disjoint paths" `Quick
            test_mesh_disjoint_paths_no_contention;
        ] );
      ( "hypercube",
        [
          Alcotest.test_case "geometry" `Quick test_cube_geometry;
          Alcotest.test_case "e-cube route" `Quick test_cube_route_ecube;
          QCheck_alcotest.to_alcotest cube_route_prop;
          Alcotest.test_case "fabric delivers" `Quick test_cube_fabric_delivers;
        ] );
      ( "clusters",
        [
          Alcotest.test_case "ethernet shared medium" `Quick
            test_ethernet_shared_medium;
          Alcotest.test_case "ethernet slow" `Quick test_ethernet_slower_than_mesh;
          Alcotest.test_case "scsi between" `Quick test_scsi_between;
        ] );
      ( "nic",
        [
          Alcotest.test_case "protocol demux" `Quick test_nic_protocol_demux;
          Alcotest.test_case "wrong source" `Quick test_nic_wrong_source;
        ] );
      ("dma", [ Alcotest.test_case "roundtrip and cost" `Quick test_dma_roundtrip_and_cost ]);
      ( "faulty-registry",
        [
          Alcotest.test_case "double wrap merges tallies" `Quick
            test_faulty_double_wrap_merges;
          Alcotest.test_case "registry stays bounded" `Quick
            test_faulty_registry_bounded;
          Alcotest.test_case "registry cap evicts oldest-first" `Quick
            test_faulty_registry_cap_eviction;
        ] );
    ]
