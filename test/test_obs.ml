(* Tests for the observability layer: bounded rings, the metrics
   registry, the typed tracer, the JSON serializer, and the per-message
   latency breakdown — including the end-to-end invariant that the stage
   latencies of a lossless run sum to the end-to-end latency. *)

module Ring = Flipc_obs.Ring
module Json = Flipc_obs.Json
module Event = Flipc_obs.Event
module Metrics = Flipc_obs.Metrics
module Tracer = Flipc_obs.Tracer
module Latency = Flipc_obs.Latency
module Obs = Flipc_obs.Obs
module Trace = Flipc_sim.Trace
module Machine = Flipc.Machine
module Pingpong = Flipc_workload.Pingpong

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Ring --- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  check_bool "empty" true (Ring.is_empty r);
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  check "length" 3 (Ring.length r);
  check "dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Ring.to_list r)

let test_ring_wrap_drops_oldest () =
  let r = Ring.create ~capacity:3 in
  for i = 1 to 7 do
    Ring.push r i
  done;
  check "length capped" 3 (Ring.length r);
  check "dropped counts evictions" 4 (Ring.dropped r);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 5; 6; 7 ]
    (Ring.to_list r);
  Ring.clear r;
  check "clear resets length" 0 (Ring.length r);
  check "clear resets dropped" 0 (Ring.dropped r)

let test_ring_fold_iter () =
  let r = Ring.create ~capacity:8 in
  for i = 1 to 5 do
    Ring.push r i
  done;
  check "fold sum" 15 (Ring.fold r ~init:0 (fun acc x -> acc + x));
  let seen = ref [] in
  Ring.iter r (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "iter oldest first" [ 1; 2; 3; 4; 5 ]
    (List.rev !seen)

(* --- sim Trace ring (the old unbounded-growth bug) --- *)

let test_trace_bounded () =
  let tr = Trace.create ~capacity:10 ~enabled:true () in
  for i = 1 to 25 do
    Trace.record tr ~now:i ~tag:"t" (string_of_int i)
  done;
  check "length capped" 10 (Trace.length tr);
  check "dropped" 15 (Trace.dropped tr);
  (match Trace.to_list tr with
  | first :: _ ->
      check_str "oldest retained entry" "16" first.Trace.message;
      check "its timestamp" 16 first.Trace.time
  | [] -> Alcotest.fail "empty trace");
  Trace.clear tr;
  check "clear resets dropped" 0 (Trace.dropped tr);
  (* Disabled traces record (and drop) nothing. *)
  Trace.disable tr;
  Trace.record tr ~now:1 ~tag:"t" "x";
  check "disabled records nothing" 0 (Trace.length tr)

(* --- Metrics --- *)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.sends" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check "counter" 5 (Metrics.counter_value c);
  (* find-or-register returns the same counter *)
  Metrics.incr (Metrics.counter m "a.sends");
  check "shared" 6 (Metrics.counter_value c);
  let g = Metrics.gauge m "a.depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 0.)) "gauge" 3.5 (Metrics.gauge_value g);
  (* registering the same name as a different type is an error *)
  check_bool "type clash raises" true
    (try
       ignore (Metrics.gauge m "a.sends");
       false
     with Invalid_argument _ -> true);
  check_bool "bad name raises" true
    (try
       ignore (Metrics.counter m "spaces not allowed");
       false
     with Invalid_argument _ -> true)

let test_histogram_sketch () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 1.; 2.; 3.; 4.; 5.; 6. ];
  check "all-time count" 6 (Metrics.histo_count h);
  Alcotest.(check (float 1e-9)) "exact sum" 21.0 (Metrics.histo_sum h);
  (match Metrics.histo_summary h with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
      Alcotest.(check (float 1e-9)) "exact min" 1.0 s.Flipc_stats.Summary.min;
      Alcotest.(check (float 1e-9)) "exact max" 6.0 s.Flipc_stats.Summary.max;
      Alcotest.(check (float 1e-9)) "exact mean" 3.5 s.Flipc_stats.Summary.mean);
  match Metrics.histo_quantile h 0.5 with
  | None -> Alcotest.fail "quantile expected"
  | Some p50 ->
      (* within one sketch bucket (~9%) of the true median *)
      check_bool "p50 within bucket width" true (p50 >= 2.5 && p50 <= 3.7)

let test_snapshot_sorted_and_probed () =
  let m = Metrics.create () in
  let state = ref 7 in
  Metrics.probe m "z.probe" (fun () -> float_of_int !state);
  Metrics.incr (Metrics.counter m "b.count");
  Metrics.set (Metrics.gauge m "a.gauge") 1.0;
  state := 9;
  let snap = Metrics.snapshot m in
  Alcotest.(check (list string)) "sorted by name"
    [ "a.gauge"; "b.count"; "z.probe" ]
    (List.map fst snap);
  (match List.assoc "z.probe" snap with
  | Metrics.Snap_gauge v -> Alcotest.(check (float 0.)) "probe sampled" 9.0 v
  | _ -> Alcotest.fail "probe should snapshot as a gauge");
  (* JSON renders and parses as one object in the same order *)
  let s = Json.to_string (Metrics.snapshot_json snap) in
  check_bool "json object" true
    (String.length s > 2 && s.[0] = '{' && s.[String.length s - 1] = '}')

(* --- Json --- *)

let test_json_rendering () =
  check_str "escaping"
    {|{"s":"a\"b\\c\n","i":-3,"f":1.5,"t":true,"x":null,"l":[1,2]}|}
    (Json.to_string
       (Json.Obj
          [
            ("s", Json.String "a\"b\\c\n");
            ("i", Json.Int (-3));
            ("f", Json.Float 1.5);
            ("t", Json.Bool true);
            ("x", Json.Null);
            ("l", Json.List [ Json.Int 1; Json.Int 2 ]);
          ]));
  check_str "integral float keeps decimal point" "2.0"
    (Json.to_string (Json.Float 2.0));
  check_str "nan is null" "null" (Json.to_string (Json.Float Float.nan))

(* --- Tracer --- *)

let test_tracer_bounded_and_chrome () =
  let tr = Tracer.create ~capacity:8 ~enabled:false () in
  Tracer.emit tr ~now:5 (Event.Engine_wake { node = 0 });
  check "disabled emits nothing" 0 (Tracer.length tr);
  Tracer.enable tr;
  for i = 1 to 12 do
    Tracer.emit tr ~now:(i * 10)
      (Event.Wire_rx { node = 1; ep = i; mid = i })
  done;
  check "capped" 8 (Tracer.length tr);
  check "dropped" 4 (Tracer.dropped tr);
  let doc = Json.to_string (Tracer.chrome_json tr) in
  check_bool "has traceEvents" true
    (String.length doc > 0
    && String.sub doc 0 15 = {|{"traceEvents":|});
  (* timestamps are microseconds: vtime 50ns -> 0.05us *)
  let ev_doc = Tracer.chrome_events tr in
  check_bool "metadata + events" true (List.length ev_doc > 8)

(* --- Latency pairing --- *)

let test_latency_stage_pipeline () =
  let l = Latency.create () in
  (* one message: enqueue at 100, tx at 400, wire arrival at 600,
     deposited, dequeued at 1000 (all ns) *)
  Latency.send_enqueued l ~now:100 ~dst_node:1 ~dst_ep:2;
  Latency.engine_tx l ~now:400 ~dst_node:1 ~dst_ep:2;
  Latency.wire_rx l ~now:600 ~node:1 ~ep:2;
  Latency.deposited l ~node:1 ~ep:2;
  Latency.recv_dequeued l ~now:1000 ~node:1 ~ep:2;
  check "send count" 1 (Latency.stage_count l Latency.Send_stage);
  check "total count" 1 (Latency.stage_count l Latency.Total_stage);
  let mean st =
    match Latency.stage_mean_us l st with
    | Some v -> v
    | None -> Alcotest.fail "missing stage"
  in
  Alcotest.(check (float 1e-9)) "send 0.3us" 0.3 (mean Latency.Send_stage);
  Alcotest.(check (float 1e-9)) "wire 0.2us" 0.2 (mean Latency.Wire_stage);
  Alcotest.(check (float 1e-9)) "recv 0.4us" 0.4 (mean Latency.Recv_stage);
  Alcotest.(check (float 1e-9)) "total 0.9us" 0.9 (mean Latency.Total_stage);
  check "unmatched" 0 (Latency.unmatched l);
  check "dropped in flight" 0 (Latency.dropped_in_flight l)

let test_latency_discard_retires_stamp () =
  let l = Latency.create () in
  Latency.send_enqueued l ~now:0 ~dst_node:0 ~dst_ep:1;
  Latency.engine_tx l ~now:10 ~dst_node:0 ~dst_ep:1;
  Latency.wire_rx l ~now:20 ~node:0 ~ep:1;
  Latency.discarded l ~node:0 ~ep:1;
  check "no total sample" 0 (Latency.stage_count l Latency.Total_stage);
  check "dropped in flight" 1 (Latency.dropped_in_flight l);
  check "unmatched" 0 (Latency.unmatched l)

(* --- end to end on a real machine --- *)

let run_pingpong () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let r =
    Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:64 ~exchanges:50
      ()
  in
  (machine, r)

(* The tentpole invariant: stage deltas are exact decompositions of each
   message's end-to-end latency. Per-message samples are no longer
   retained (constant-storage sketches), but sums survive exactly, so
   on a lossless in-order mesh the per-stage sums reconstruct the total
   sum to float precision. *)
let test_stages_sum_to_total () =
  let machine, r = run_pingpong () in
  Alcotest.(check int) "no transport drops" 0 r.Pingpong.drops;
  let l = Obs.latency (Machine.obs machine) in
  check "nothing unmatched" 0 (Latency.unmatched l);
  check "nothing dropped in flight" 0 (Latency.dropped_in_flight l);
  let n = Latency.stage_count l Latency.Total_stage in
  check_bool "saw every exchange twice" true (n >= 2 * 50);
  List.iter
    (fun st ->
      check (Latency.stage_name st ^ " count") n (Latency.stage_count l st))
    Latency.all_stages;
  let sum st = Latency.stage_sum_us l st in
  let stage_total =
    sum Latency.Send_stage +. sum Latency.Wire_stage +. sum Latency.Recv_stage
  in
  let total = sum Latency.Total_stage in
  Alcotest.(check (float (Float.max 1e-6 (total *. 1e-9))))
    "stage sums reconstruct the end-to-end sum" total stage_total

let test_engine_probes_on_registry () =
  let machine, _ = run_pingpong () in
  let snap = Metrics.snapshot (Obs.metrics (Machine.obs machine)) in
  let get name =
    match List.assoc_opt name snap with
    | Some (Metrics.Snap_gauge v) -> int_of_float v
    | _ -> Alcotest.fail (name ^ " missing from snapshot")
  in
  check_bool "node0 sent messages" true (get "node0.engine.sends" > 0);
  check_bool "node1 received them" true (get "node1.engine.recvs" > 0);
  check "no drops on provisioned run" 0 (get "node1.engine.drops")

let snapshot_fingerprint () =
  let machine, _ = run_pingpong () in
  let obs = Machine.obs machine in
  let snap = Metrics.snapshot (Obs.metrics obs) in
  Json.to_string
    (Json.Obj
       [
         ("metrics", Metrics.snapshot_json snap);
         ("latency", Latency.json (Obs.latency obs));
       ])

let test_snapshot_deterministic () =
  let a = snapshot_fingerprint () in
  let b = snapshot_fingerprint () in
  check_str "identical runs produce identical snapshots" a b

let test_machine_tracing_capture () =
  Obs.start_capture ();
  let finally () = Obs.stop_capture () in
  Fun.protect ~finally (fun () ->
      let machine, _ = run_pingpong () in
      check_bool "machine captured" true
        (List.exists (fun o -> Obs.id o = Obs.id (Machine.obs machine))
           (Obs.captured ()));
      check_bool "capture enables tracing" true
        (Obs.tracing (Machine.obs machine));
      check_bool "events recorded" true
        (Tracer.length (Obs.tracer (Machine.obs machine)) > 0);
      let doc = Json.to_string (Obs.captured_chrome_json ()) in
      check_bool "merged chrome doc" true
        (String.length doc > 15 && String.sub doc 0 15 = {|{"traceEvents":|}))

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basic;
          Alcotest.test_case "wrap drops oldest" `Quick
            test_ring_wrap_drops_oldest;
          Alcotest.test_case "fold/iter" `Quick test_ring_fold_iter;
          Alcotest.test_case "sim trace bounded" `Quick test_trace_bounded;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "histogram sketch" `Quick test_histogram_sketch;
          Alcotest.test_case "snapshot sorted + probes" `Quick
            test_snapshot_sorted_and_probed;
          Alcotest.test_case "json rendering" `Quick test_json_rendering;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "bounded + chrome export" `Quick
            test_tracer_bounded_and_chrome;
        ] );
      ( "latency",
        [
          Alcotest.test_case "stage pipeline" `Quick
            test_latency_stage_pipeline;
          Alcotest.test_case "discard retires stamp" `Quick
            test_latency_discard_retires_stamp;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "stages sum to total" `Quick
            test_stages_sum_to_total;
          Alcotest.test_case "engine probes on registry" `Quick
            test_engine_probes_on_registry;
          Alcotest.test_case "snapshot deterministic" `Quick
            test_snapshot_deterministic;
          Alcotest.test_case "capture window" `Quick
            test_machine_tracing_capture;
        ] );
    ]
