(* Work-proportional engine scheduling: doorbell wakeup, epoch-driven
   schedule invalidation, and the steady-state no-rebuild invariant.

   The doorbell protocol is a pure load/store handshake (app bumps a
   per-endpoint word after releasing into the ring; the engine compares
   it against a private shadow), so its failure mode is a lost wakeup: a
   release that lands while the engine is deciding to park, leaving a
   message stranded in a ring nobody will ever visit. The property test
   here drives exactly that race, with send gaps straddling the park
   threshold so the engine parks and re-wakes many times per run. *)

module Sim = Flipc_sim.Engine
module Mem_port = Flipc_memsim.Mem_port
module Config = Flipc.Config
module Api = Flipc.Api
module Machine = Flipc.Machine
module Msg_engine = Flipc.Msg_engine
module Endpoint_kind = Flipc.Endpoint_kind
module Endpoint_group = Flipc.Endpoint_group
module Nameservice = Flipc.Nameservice
module Rt_semaphore = Flipc_rt.Rt_semaphore

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("api error: " ^ Api.error_to_string e)

let finish machine =
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine

let engine_stats machine node =
  Msg_engine.stats (Machine.msg_engine (Machine.node machine node))

(* ------------------------------------------------------------------ *)
(* No lost wakeup: every sent message is eventually delivered, however
   the sender's gaps interleave with the engine's park decisions.

   Gap units are scaled so the schedule mixes back-to-back sends (the
   doorbell coalesces) with idle stretches several times the park
   threshold (the engine is provably parked when the next send's
   doorbell ring must revive it). Receive buffers outnumber in-flight
   messages, so a stranded message cannot hide behind a drop: delivered
   must equal sent exactly. *)

let no_lost_wakeup_prop =
  QCheck.Test.make ~name:"doorbell: no lost wakeup across park/wake races"
    ~count:20
    QCheck.(list_of_size Gen.(int_range 5 30) (int_bound 4))
    (fun gaps ->
      (* A small park threshold makes parking frequent; the poll period
         is the default, so a gap of 4 units = 40 poll periods is far
         past the threshold. *)
      let config = { Config.default with Config.engine_park_after = 4 } in
      let park_ns =
        config.Config.engine_park_after * config.Config.engine_poll_ns
      in
      let machine =
        Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) ()
      in
      let ns = Machine.names machine in
      let total = List.length gaps in
      let got = ref 0 in
      let deadline = Flipc_sim.Vtime.ms 50 in
      Machine.spawn_app machine ~node:1 (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
          for _ = 1 to 6 do
            ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
          done;
          Nameservice.register ns "rx" (Api.address api ep);
          while !got < total && Sim.now (Machine.sim machine) < deadline do
            (match Api.receive api ep with
            | Some buf ->
                incr got;
                ok (Api.post_receive api ep buf)
            | None -> ());
            Mem_port.instr (Api.port api) 20
          done);
      Machine.spawn_app machine ~node:0 (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          Api.connect api ep (Nameservice.lookup ns "rx");
          let buf = ok (Api.allocate_buffer api) in
          List.iter
            (fun gap ->
              ok (Api.send api ep buf);
              let rec reclaim () =
                match Api.reclaim api ep with
                | Some _ -> ()
                | None ->
                    Mem_port.instr (Api.port api) 5;
                    reclaim ()
              in
              reclaim ();
              (* gap=0: immediate re-send; gap>=1: multiples of ten poll
                 periods, from "just past the park threshold" upward. *)
              if gap > 0 then Sim.delay (gap * 10 * park_ns / 4))
            gaps);
      Machine.run ~until:deadline machine;
      Machine.stop_engines machine;
      Machine.run machine;
      let s0 = engine_stats machine 0 in
      (* The run must actually exercise parking for the property to mean
         anything; with gap units of 10x the threshold this always
         holds unless every sampled gap was 0. *)
      let parked_enough =
        s0.Msg_engine.parks >= 1 || List.for_all (fun g -> g = 0) gaps
      in
      !got = total && parked_enough)

(* ------------------------------------------------------------------ *)
(* Group membership has its own lost-wakeup window, one level above the
   doorbell: a message deposited on an endpoint *before* it joins a
   group posts (and a waiter consumes) the shared semaphore while no
   member can surface the buffer, so a thread blocked in
   [receive_any_wait] would sleep forever on traffic that is already
   here. [Endpoint_group.add] closes it with one spurious post; this
   property races the add against delivery at varying offsets, from
   "add long before the message lands" to "message waits in the queue
   well before the add". Every interleaving must deliver everything. *)

let group_add_no_lost_wakeup_prop =
  QCheck.Test.make ~name:"group add: no lost wakeup for early deposits"
    ~count:15
    QCheck.(pair (int_bound 40) (int_range 1 3))
    (fun (add_delay_units, total) ->
      let machine =
        Machine.create (Machine.Mesh { cols = 2; rows = 1 }) ()
      in
      let ns = Machine.names machine in
      let got = ref 0 in
      let deadline = Flipc_sim.Vtime.ms 20 in
      let sem = Rt_semaphore.create (Machine.sched (Machine.node machine 1)) in
      Machine.spawn_app machine ~node:1 (fun api ->
          let group = Endpoint_group.create ~semaphore:sem api in
          (* The group starts with one silent member, so the waiter below
             is genuinely parked on the semaphore (scanning an empty but
             non-empty-membered group) when the race fires. *)
          let quiet =
            ok
              (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv
                 ~semaphore:sem ())
          in
          ok (Api.post_receive api quiet (ok (Api.allocate_buffer api)));
          Endpoint_group.add group quiet;
          let late =
            ok
              (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv
                 ~semaphore:sem ())
          in
          for _ = 1 to total do
            ok (Api.post_receive api late (ok (Api.allocate_buffer api)))
          done;
          Nameservice.register ns "late" (Api.address api late);
          ignore
            (Machine.spawn_thread machine ~node:1 ~priority:5 (fun thr api ->
                 ignore api;
                 for _ = 1 to total do
                   let ep, buf = Endpoint_group.receive_any_wait group thr in
                   ignore (ep : Api.endpoint);
                   ignore (buf : Api.buffer);
                   incr got
                 done)
              : Flipc_rt.Sched.thread);
          (* The racing add: anywhere from before the first delivery to
             long after every message is sitting in [late]'s queue. *)
          if add_delay_units > 0 then
            Sim.delay (add_delay_units * Flipc_sim.Vtime.us 5);
          Endpoint_group.add group late);
      Machine.spawn_app machine ~node:0 (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          Api.connect api ep (Nameservice.lookup ns "late");
          let buf = ok (Api.allocate_buffer api) in
          for _ = 1 to total do
            ok (Api.send api ep buf);
            let rec reclaim () =
              match Api.reclaim api ep with
              | Some _ -> ()
              | None ->
                  Mem_port.instr (Api.port api) 5;
                  reclaim ()
            in
            reclaim ()
          done);
      Machine.run ~until:deadline machine;
      Machine.stop_engines machine;
      Machine.run machine;
      !got = total)

(* ------------------------------------------------------------------ *)
(* Epoch invalidation: endpoint-set and priority changes rebuild the
   cached schedule exactly once each, and the change is honoured by the
   next iteration (traffic keeps flowing through the re-sorted table). *)

let test_epoch_invalidation () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let ns = Machine.names machine in
  let phase = Flipc_sim.Sync.Mailbox.create () in
  let got = ref 0 in
  let rebuilds_before_change = ref (-1) in
  let rebuilds_after_change = ref (-1) in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 4 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "rx" (Api.address api ep);
      while !got < 20 do
        (match Api.receive api ep with
        | Some buf ->
            incr got;
            ok (Api.post_receive api ep buf)
        | None -> ());
        Mem_port.instr (Api.port api) 20
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Nameservice.lookup ns "rx");
      let buf = ok (Api.allocate_buffer api) in
      let send_batch n =
        for _ = 1 to n do
          ok (Api.send api ep buf);
          let rec reclaim () =
            match Api.reclaim api ep with
            | Some _ -> ()
            | None ->
                Mem_port.instr (Api.port api) 5;
                reclaim ()
          in
          reclaim ()
        done
      in
      send_batch 10;
      (* Let the engine settle, then snapshot the rebuild count from
         inside the simulation (the engine runs concurrently). *)
      Sim.delay (Flipc_sim.Vtime.us 100);
      rebuilds_before_change :=
        (engine_stats machine 0).Msg_engine.sched_rebuilds;
      Api.set_priority api ep 9;
      Sim.delay (Flipc_sim.Vtime.us 100);
      rebuilds_after_change :=
        (engine_stats machine 0).Msg_engine.sched_rebuilds;
      (* Traffic still flows through the re-sorted schedule. *)
      send_batch 10;
      Flipc_sim.Sync.Mailbox.put phase ());
  finish machine;
  Flipc_sim.Sync.Mailbox.take phase;
  Alcotest.(check int) "all messages delivered across the priority change" 20
    !got;
  Alcotest.(check int) "exactly one rebuild for one priority change"
    (!rebuilds_before_change + 1)
    !rebuilds_after_change

(* ------------------------------------------------------------------ *)
(* Steady state allocates and sorts nothing: the rebuild counter is the
   witness. Every schedule rebuild is counted at its single call site
   (the only code that allocates or sorts on the engine's send path), so
   "rebuilds constant while messages flow" pins the hot path to the
   preallocated arrays. *)

let test_steady_state_no_rebuilds () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let ns = Machine.names machine in
  let got = ref 0 in
  let total = 60 in
  let mid_rebuilds = ref (-1) in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 4 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "rx" (Api.address api ep);
      while !got < total do
        (match Api.receive api ep with
        | Some buf ->
            incr got;
            ok (Api.post_receive api ep buf)
        | None -> ());
        Mem_port.instr (Api.port api) 20
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Nameservice.lookup ns "rx");
      let buf = ok (Api.allocate_buffer api) in
      for i = 1 to total do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ();
        (* Snapshot after the endpoint set has settled (10 messages in),
           leaving 50 messages of pure steady state. *)
        if i = 10 then
          mid_rebuilds := (engine_stats machine 0).Msg_engine.sched_rebuilds
      done);
  finish machine;
  let s0 = engine_stats machine 0 in
  Alcotest.(check int) "all delivered" total !got;
  Alcotest.(check int) "no rebuilds during steady-state traffic"
    !mid_rebuilds s0.Msg_engine.sched_rebuilds;
  Alcotest.(check bool) "doorbell hits observed" true
    (s0.Msg_engine.doorbell_hits > 0)

(* ------------------------------------------------------------------ *)
(* The full-scan ablation still delivers: both scheduler modes drive the
   same transport, so the bench's mode comparison measures scheduling
   cost, not behavioural drift. *)

let test_full_scan_equivalence () =
  let run sched_mode =
    let config = { Config.default with Config.sched_mode } in
    let r =
      Flipc_workload.Pingpong.measure ~config ~payload_bytes:120 ~exchanges:30
        ()
    in
    r.Flipc_workload.Pingpong.drops
  in
  Alcotest.(check int) "doorbell drops" 0 (run Config.Doorbell);
  Alcotest.(check int) "full-scan drops" 0 (run Config.Full_scan)

let () =
  Alcotest.run "engine_sched"
    [
      ( "doorbell",
        [
          QCheck_alcotest.to_alcotest no_lost_wakeup_prop;
          QCheck_alcotest.to_alcotest group_add_no_lost_wakeup_prop;
          Alcotest.test_case "full-scan equivalence" `Quick
            test_full_scan_equivalence;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "epoch invalidation" `Quick test_epoch_invalidation;
          Alcotest.test_case "steady state rebuilds nothing" `Quick
            test_steady_state_no_rebuilds;
        ] );
    ]
