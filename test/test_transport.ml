(* The functorized transport conformance suite.

   One set of behavioural tests written once against {!Transport.S} and
   instantiated for every stack: the in-memory loopback, the bare
   channel transport on a machine, Window-over-Channel,
   Retrans-over-Channel, Retrans-over-Window — and Retrans-over-lossy-
   Loopback, which exercises the reliability layer with no machine
   underneath at all. A stack passes by construction of the functor
   application; the suite never names a concrete layer.

   Each STACK provides [run_pair], which builds its fabric, creates two
   connected ends and runs the two closures as concurrent simulation
   processes. Shared refs between the closures are the test's side
   channel (processes are cooperatively scheduled, so no races). *)

module Engine = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mailbox = Flipc_sim.Sync.Mailbox
module Machine = Flipc.Machine
module Api = Flipc.Api
module Config = Flipc.Config
module Faulty = Flipc_net.Faulty
module Transport = Flipc_flow.Transport
module Loopback = Flipc_flow.Loopback
module CT = Flipc_flow.Channel_transport
module WL = Flipc_flow.Window_layer.Make (CT)
module RC = Flipc_flow.Retrans_layer.Make (CT)
module RW = Flipc_flow.Retrans_layer.Make (WL)
module RLoop = Flipc_flow.Retrans_layer.Make (Loopback)

let check_bool = Alcotest.(check bool)

let terr = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Transport.error_to_string e)

module type STACK = sig
  val name : string

  module T : Transport.S

  (** Exactly-once delivery guaranteed even with [faulty:true]. *)
  val reliable : bool

  val run_pair :
    ?faulty:bool -> a:(T.t -> unit) -> b:(T.t -> unit) -> unit -> unit
end

(* Retrans config tuned for the 2-node mesh round trip. *)
let rcfg =
  {
    Flipc_flow.Retrans_layer.default_config with
    Flipc_flow.Retrans_layer.rto_ns = 200_000;
    max_rto_ns = 1_600_000;
  }

(* Loopback-based pairs: a bare engine, two queues, virtual time. *)
let loopback_run_pair ~wrap ?(faulty = false) ~a ~b () =
  let eng = Engine.create () in
  let drop, dup = if faulty then (0.12, 0.04) else (0., 0.) in
  let ca, cb = Loopback.create_pair ~drop ~dup ~seed:42 eng () in
  Engine.spawn ~name:"pair-a" eng (fun () -> a (wrap ca));
  Engine.spawn ~name:"pair-b" eng (fun () -> b (wrap cb));
  Engine.run eng

(* Machine-based pairs: two nodes of a mesh, channel transports at the
   base, addresses exchanged through mailboxes. *)
let machine_run_pair ~wrap ?(faulty = false) ~a ~b () =
  let config =
    {
      (Flipc_flow.Provision.config_for ~base:Config.default ~buffers:16) with
      Config.frame_checksum = true;
    }
  in
  let fault =
    if faulty then
      Some
        (Faulty.config ~drop:0.08 ~duplicate:0.03 ~reorder:0.1
           ~reorder_hold_ns:100_000 ~seed:7 ())
    else None
  in
  let machine =
    Machine.create ~config ?fault (Machine.Mesh { cols = 2; rows = 1 }) ()
  in
  let a_addr = Mailbox.create () and b_addr = Mailbox.create () in
  Machine.spawn_app ~name:"pair-a" machine ~node:0 (fun api ->
      let base = terr (CT.create api ~pool:4 ~depth:8 ()) in
      Mailbox.put a_addr (CT.address base);
      terr (CT.connect base (Mailbox.take b_addr));
      a (wrap base));
  Machine.spawn_app ~name:"pair-b" machine ~node:1 (fun api ->
      let base = terr (CT.create api ~pool:4 ~depth:8 ()) in
      Mailbox.put b_addr (CT.address base);
      terr (CT.connect base (Mailbox.take a_addr));
      b (wrap base));
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine

module Loopback_stack = struct
  let name = "loopback"

  module T = Loopback

  let reliable = false
  let run_pair ?faulty ~a ~b () = loopback_run_pair ~wrap:Fun.id ?faulty ~a ~b ()
end

module Retrans_loopback_stack = struct
  let name = "retrans-loopback"

  module T = RLoop

  let reliable = true

  let run_pair ?faulty ~a ~b () =
    loopback_run_pair
      ~wrap:(fun c -> RLoop.create c ~config:rcfg ())
      ?faulty ~a ~b ()
end

module Channel_stack = struct
  let name = "channel"

  module T = CT

  let reliable = false
  let run_pair ?faulty ~a ~b () = machine_run_pair ~wrap:Fun.id ?faulty ~a ~b ()
end

module Window_channel_stack = struct
  let name = "window-channel"

  module T = WL

  let reliable = false

  let run_pair ?faulty ~a ~b () =
    machine_run_pair ~wrap:(fun c -> WL.create c ~window:6 ()) ?faulty ~a ~b ()
end

module Retrans_channel_stack = struct
  let name = "retrans-channel"

  module T = RC

  let reliable = true

  let run_pair ?faulty ~a ~b () =
    machine_run_pair ~wrap:(fun c -> RC.create c ~config:rcfg ()) ?faulty ~a ~b ()
end

module Retrans_window_stack = struct
  let name = "retrans-window-channel"

  module T = RW

  (* Reliable on a clean fabric only: a wire-dropped data frame
     permanently consumes a window credit (the window receiver never
     sees it, so never grants it back), and every retransmission burns
     another — the window starves before the retry budget is spent.
     The stacking rule this encodes: on a lossy base, reliability goes
     {e below} flow control (see Window_retrans_stack). *)
  let reliable = false

  let run_pair ?faulty ~a ~b () =
    machine_run_pair
      ~wrap:(fun c -> RW.create (WL.create c ~window:6 ()) ~config:rcfg ())
      ?faulty ~a ~b ()
end

module WR = Flipc_flow.Window_layer.Make (RC)

module Window_retrans_stack = struct
  let name = "window-retrans-channel"

  module T = WR

  (* Flow control over exactly-once delivery: the window layer's data
     and credit frames ride the reliable channel, so no credit is ever
     lost and the composition stays exactly-once under any fault mix. *)
  let reliable = true

  let run_pair ?faulty ~a ~b () =
    machine_run_pair
      ~wrap:(fun c -> WR.create (RC.create c ~config:rcfg ()) ~window:6 ())
      ?faulty ~a ~b ()
end

(* --- the conformance suite proper --- *)

module Conformance (S : STACK) = struct
  module T = S.T

  let sec = Vtime.s 2

  let oke what = function
    | Ok v -> v
    | Error e ->
        Alcotest.fail
          (Printf.sprintf "%s: %s: %s" S.name what
             (Transport.error_to_string e))

  (* Deterministic variable-length payloads, checkable from (index)
     alone. *)
  let payload i =
    Bytes.init
      (1 + (i * 7 mod 29))
      (fun j -> Char.chr (((i * 31) + j) land 0xff))

  let expect what i got =
    if not (Bytes.equal got (payload i)) then
      Alcotest.fail (Printf.sprintf "%s: %s: payload %d mismatch" S.name what i)

  (* Closed-loop echo: content, order, and both directions of the
     duplex connection. *)
  let pingpong () =
    let n = 25 in
    S.run_pair
      ~a:(fun c ->
        for i = 1 to n do
          oke "send" (T.send c ~deadline:(T.now c + sec) (payload i));
          let echo = oke "recv" (T.recv_deadline c ~deadline:(T.now c + sec)) in
          expect "echo" i echo
        done)
      ~b:(fun c ->
        for _ = 1 to n do
          let m = oke "recv" (T.recv_deadline c ~deadline:(T.now c + sec)) in
          oke "reply" (T.send c ~deadline:(T.now c + sec) m)
        done)
      ()

  (* A bounded burst queues ahead of the receiver and drains in order.
     Six messages fit every stack's tightest bound (window = 6). *)
  let burst () =
    let n = 6 in
    S.run_pair
      ~a:(fun c ->
        for i = 1 to n do
          oke "send" (T.send c ~deadline:(T.now c + sec) (payload i))
        done;
        let done_mark =
          oke "recv" (T.recv_deadline c ~deadline:(T.now c + sec))
        in
        check_bool
          (S.name ^ ": drain confirmed")
          true
          (Bytes.equal done_mark (Bytes.of_string "ok")))
      ~b:(fun c ->
        for i = 1 to n do
          let m = oke "recv" (T.recv_deadline c ~deadline:(T.now c + sec)) in
          expect "burst" i m
        done;
        oke "confirm" (T.send c ~deadline:(T.now c + sec) (Bytes.of_string "ok")))
      ()

  (* A deadline against a silent peer expires with [`Timeout] — and the
     virtual clock has actually advanced past it. *)
  let recv_timeout () =
    S.run_pair
      ~a:(fun c ->
        let deadline = T.now c + 200_000 in
        match T.recv_deadline c ~deadline with
        | Error `Timeout ->
            check_bool
              (S.name ^ ": clock reached deadline")
              true
              (T.now c >= deadline)
        | Ok _ -> Alcotest.fail (S.name ^ ": message from a silent peer")
        | Error e ->
            Alcotest.fail (S.name ^ ": " ^ Transport.error_to_string e))
      ~b:(fun _ -> ())
      ()

  (* Full-capacity payload roundtrips intact; oversized raises. *)
  let capacity () =
    S.run_pair
      ~a:(fun c ->
        let cap = T.capacity c in
        check_bool (S.name ^ ": positive capacity") true (cap > 0);
        let big = Bytes.init cap (fun j -> Char.chr (j land 0xff)) in
        oke "send" (T.send c ~deadline:(T.now c + sec) big);
        let echo = oke "recv" (T.recv_deadline c ~deadline:(T.now c + sec)) in
        check_bool (S.name ^ ": capacity payload intact") true
          (Bytes.equal echo big);
        match T.try_send c (Bytes.create (cap + 1)) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail (S.name ^ ": oversized payload accepted"))
      ~b:(fun c ->
        let m = oke "recv" (T.recv_deadline c ~deadline:(T.now c + sec)) in
        oke "reply" (T.send c ~deadline:(T.now c + sec) m))
      ()

  (* After close, everything reports [`Closed]. *)
  let closed () =
    S.run_pair
      ~a:(fun c ->
        T.close c;
        (match T.try_send c (Bytes.of_string "x") with
        | Error `Closed -> ()
        | Ok () -> Alcotest.fail (S.name ^ ": send on closed accepted")
        | Error e ->
            Alcotest.fail (S.name ^ ": " ^ Transport.error_to_string e));
        match T.recv c with
        | Error `Closed -> ()
        | Ok _ -> Alcotest.fail (S.name ^ ": recv on closed accepted")
        | Error e ->
            Alcotest.fail (S.name ^ ": " ^ Transport.error_to_string e))
      ~b:(fun _ -> ())
      ()

  (* Reliable stacks only: a faulted wire (drop/duplicate/reorder) must
     not break exactly-once in-order delivery. The receiver lingers
     re-acknowledging until the sender stands down, so a dropped final
     ack cannot strand the pair. *)
  let faulty_exactly_once () =
    let n = 40 in
    let rx_done = ref false and tx_done = ref false in
    S.run_pair ~faulty:true
      ~a:(fun c ->
        for i = 1 to n do
          oke "send" (T.send c ~deadline:(T.now c + sec) (payload i))
        done;
        let limit = T.now c + Vtime.s 4 in
        while (not !rx_done) && T.now c < limit do
          oke "pump" (T.pump c);
          T.idle c
        done;
        tx_done := true;
        check_bool (S.name ^ ": receiver completed under faults") true !rx_done)
      ~b:(fun c ->
        for i = 1 to n do
          let m = oke "recv" (T.recv_deadline c ~deadline:(T.now c + sec)) in
          expect "exactly-once" i m
        done;
        rx_done := true;
        let limit = T.now c + Vtime.s 4 in
        while (not !tx_done) && T.now c < limit do
          ignore (T.recv c : (Bytes.t option, Transport.error) result);
          T.idle c
        done)
      ()

  let tests =
    [
      Alcotest.test_case (S.name ^ ": pingpong") `Quick pingpong;
      Alcotest.test_case (S.name ^ ": burst") `Quick burst;
      Alcotest.test_case (S.name ^ ": recv timeout") `Quick recv_timeout;
      Alcotest.test_case (S.name ^ ": capacity") `Quick capacity;
      Alcotest.test_case (S.name ^ ": closed") `Quick closed;
    ]
    @
    if S.reliable then
      [
        Alcotest.test_case
          (S.name ^ ": exactly-once under faults")
          `Quick faulty_exactly_once;
      ]
    else []
end

module C_loopback = Conformance (Loopback_stack)
module C_retrans_loopback = Conformance (Retrans_loopback_stack)
module C_channel = Conformance (Channel_stack)
module C_window = Conformance (Window_channel_stack)
module C_retrans = Conformance (Retrans_channel_stack)
module C_retrans_window = Conformance (Retrans_window_stack)
module C_window_retrans = Conformance (Window_retrans_stack)

(* --- receive-any groups over stacks --- *)

module GLoop = Transport.Group (Loopback)
module GRel = Transport.Group (RLoop)

(* Three senders into one group: everything arrives, and the scan is
   round-robin fair (consecutive hits rotate across members). *)
let test_group_receive_any () =
  let eng = Engine.create () in
  let pairs = List.init 3 (fun _ -> Loopback.create_pair eng ()) in
  let g = GLoop.create () in
  List.iter (fun (_, r) -> GLoop.add g r) pairs;
  List.iteri
    (fun k (l, _) ->
      Engine.spawn ~name:(Printf.sprintf "sender-%d" k) eng (fun () ->
          for i = 1 to 5 do
            terr (Loopback.try_send l (Bytes.make 4 (Char.chr (48 + k))));
            ignore i
          done))
    pairs;
  let got = Array.make 3 0 in
  let first_three = ref [] in
  Engine.spawn ~name:"group-rx" eng (fun () ->
      (* Let every sender enqueue first so the fairness of the scan is
         observable. *)
      Engine.delay 1_000;
      for n = 1 to 15 do
        let conn, payload =
          terr
            (GLoop.recv_any_deadline g
               ~deadline:(Engine.now eng + Vtime.s 1))
        in
        ignore conn;
        let k = Char.code (Bytes.get payload 0) - 48 in
        got.(k) <- got.(k) + 1;
        if n <= 3 then first_three := k :: !first_three
      done);
  Engine.run eng;
  Array.iteri
    (fun k n -> Alcotest.(check int) (Printf.sprintf "member %d count" k) 5 n)
    got;
  (* Round-robin: the first full scan visits three distinct members. *)
  Alcotest.(check int)
    "first scan touches all members" 3
    (List.length (List.sort_uniq compare !first_three))

(* Removing the member just scanned keeps the cursor on the member that
   would have been next — the same rule Endpoint_group.remove follows. *)
let test_group_remove_cursor () =
  let eng = Engine.create () in
  let pairs = List.init 3 (fun _ -> Loopback.create_pair eng ()) in
  let rights = List.map snd pairs in
  let g = GLoop.create () in
  List.iter (GLoop.add g) rights;
  Engine.spawn ~name:"cursor" eng (fun () ->
      List.iteri
        (fun k (l, _) ->
          terr (Loopback.try_send l (Bytes.make 1 (Char.chr (48 + k)))))
        pairs;
      Engine.yield ();
      (* First scan hits member 0; cursor now points at member 1. *)
      (match terr (GLoop.recv_any g) with
      | Some (_, p) -> Alcotest.(check char) "first hit" '0' (Bytes.get p 0)
      | None -> Alcotest.fail "no message");
      GLoop.remove g (List.nth rights 0);
      Alcotest.(check int) "member removed" 2 (GLoop.length g);
      (* The cursor must still scan member 1 next, not skip to 2. *)
      (match terr (GLoop.recv_any g) with
      | Some (_, p) ->
          Alcotest.(check char) "cursor preserved after remove" '1'
            (Bytes.get p 0)
      | None -> Alcotest.fail "no message after remove");
      (* Empty group: recv_any is None, deadline wait is `Closed. *)
      GLoop.remove g (List.nth rights 1);
      GLoop.remove g (List.nth rights 2);
      (match terr (GLoop.recv_any g) with
      | None -> ()
      | Some _ -> Alcotest.fail "message from empty group");
      match GLoop.recv_any_deadline g ~deadline:(Engine.now eng + 1_000) with
      | Error `Closed -> ()
      | Ok _ | Error _ -> Alcotest.fail "empty group should report `Closed");
  Engine.run eng

(* Receive-any over reliable stacks: two lossy loopback connections,
   each wrapped in the retransmission layer, fanned into one group —
   every message arrives exactly once despite the drops. *)
let test_group_over_reliable () =
  let eng = Engine.create () in
  let mk () =
    let l, r = Loopback.create_pair ~drop:0.15 ~seed:9 eng () in
    (RLoop.create l ~config:rcfg (), RLoop.create r ~config:rcfg ())
  in
  let l0, r0 = mk () and l1, r1 = mk () in
  let g = GRel.create () in
  GRel.add g r0;
  GRel.add g r1;
  let per_sender = 12 in
  let done_rx = ref false in
  let spawn_tx name conn tag =
    Engine.spawn ~name eng (fun () ->
        for i = 1 to per_sender do
          terr
            (RLoop.send conn
               ~deadline:(Engine.now eng + Vtime.s 2)
               (Bytes.make 3 (Char.chr (48 + (10 * tag) + (i mod 10)))));
          ignore i
        done;
        (* Keep retransmitting until the group has drained everything. *)
        let limit = Engine.now eng + Vtime.s 4 in
        while (not !done_rx) && Engine.now eng < limit do
          terr (RLoop.pump conn);
          RLoop.idle conn
        done)
  in
  spawn_tx "rel-tx-0" l0 0;
  spawn_tx "rel-tx-1" l1 1;
  let got = ref 0 in
  Engine.spawn ~name:"rel-group-rx" eng (fun () ->
      for _ = 1 to 2 * per_sender do
        ignore
          (terr
             (GRel.recv_any_deadline g ~deadline:(Engine.now eng + Vtime.s 2))
            : RLoop.t * Bytes.t);
        incr got
      done;
      done_rx := true);
  Engine.run eng;
  Alcotest.(check int)
    "group over reliable stacks drained" (2 * per_sender) !got;
  Alcotest.(check int)
    "exactly-once per member" per_sender (RLoop.delivered r0);
  Alcotest.(check int)
    "exactly-once per member (1)" per_sender (RLoop.delivered r1)

(* Blocking receive-any on a machine: a scheduler thread sleeps on the
   group semaphore (no polling), two channel transports wired to the
   same semaphore fan into it. The second member joins only after its
   traffic has already been deposited — the add's spurious post must
   wake the sleeping waiter (the lost-wakeup window recv_any_wait
   inherits from Endpoint_group). *)
module Rt_semaphore = Flipc_rt.Rt_semaphore
module GCT = Transport.Group (CT)

let test_group_recv_any_wait () =
  let config =
    Flipc_flow.Provision.config_for ~base:Config.default ~buffers:16
  in
  let machine =
    Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) ()
  in
  let addr0 = Mailbox.create () and addr1 = Mailbox.create () in
  let per_sender = 6 in
  let hits0 = ref 0 and hits1 = ref 0 in
  Machine.spawn_app ~name:"fan-in" machine ~node:1 (fun api ->
      let sem = Rt_semaphore.create (Machine.sched (Machine.node machine 1)) in
      let c0 = terr (CT.create api ~pool:4 ~depth:8 ~semaphore:sem ()) in
      let c1 = terr (CT.create api ~pool:4 ~depth:8 ~semaphore:sem ()) in
      Mailbox.put addr0 (CT.address c0);
      Mailbox.put addr1 (CT.address c1);
      let g = GCT.create ~semaphore:sem () in
      GCT.add g c0;
      ignore
        (Machine.spawn_thread machine ~node:1 ~priority:5 (fun thr _api ->
             (match GCT.recv_any_wait (GCT.create ()) thr with
             | exception Invalid_argument _ -> ()
             | _ -> Alcotest.fail "recv_any_wait without a semaphore");
             for _ = 1 to 2 * per_sender do
               let conn, payload = terr (GCT.recv_any_wait g thr) in
               check_bool "payload intact" true (Bytes.length payload = 4);
               if conn == c0 then incr hits0
               else if conn == c1 then incr hits1
               else Alcotest.fail "delivery from an unknown member"
             done)
          : Flipc_rt.Sched.thread);
      (* By now both senders have long finished: c1's messages sit in
         its queue with the semaphore posts already consumed. *)
      Engine.delay (Vtime.ms 2);
      GCT.add g c1);
  let spawn_tx node mbox =
    Machine.spawn_app ~name:(Printf.sprintf "tx-%d" node) machine ~node:0
      (fun api ->
        let c = terr (CT.create api ~pool:4 ~depth:8 ()) in
        terr (CT.connect c (Mailbox.take mbox));
        for i = 1 to per_sender do
          terr
            (CT.send c
               ~deadline:(Engine.now (Machine.sim machine) + Vtime.s 1)
               (Bytes.make 4 (Char.chr (64 + node + i))))
        done)
  in
  spawn_tx 0 addr0;
  spawn_tx 1 addr1;
  Machine.run ~until:(Vtime.ms 50) machine;
  Machine.stop_engines machine;
  Machine.run machine;
  Alcotest.(check int) "member 0 drained" per_sender !hits0;
  Alcotest.(check int) "late member drained despite early traffic"
    per_sender !hits1

let () =
  Alcotest.run "transport"
    [
      ("conformance: loopback", C_loopback.tests);
      ("conformance: retrans-loopback", C_retrans_loopback.tests);
      ("conformance: channel", C_channel.tests);
      ("conformance: window-channel", C_window.tests);
      ("conformance: retrans-channel", C_retrans.tests);
      ("conformance: retrans-window-channel", C_retrans_window.tests);
      ("conformance: window-retrans-channel", C_window_retrans.tests);
      ( "groups",
        [
          Alcotest.test_case "receive-any fairness" `Quick
            test_group_receive_any;
          Alcotest.test_case "remove keeps cursor" `Quick
            test_group_remove_cursor;
          Alcotest.test_case "receive-any over reliable stacks" `Quick
            test_group_over_reliable;
          Alcotest.test_case "blocking receive-any on the rt semaphore" `Quick
            test_group_recv_any_wait;
        ] );
    ]
