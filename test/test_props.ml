(* Deeper property tests: randomized end-to-end traffic, layout properties
   over random configurations, drop-counter wraparound, channel and bulk
   data integrity. *)

module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Shared_mem = Flipc_memsim.Shared_mem
module Config = Flipc.Config
module Layout = Flipc.Layout
module Api = Flipc.Api
module Machine = Flipc.Machine
module Msg_engine = Flipc.Msg_engine
module Endpoint_kind = Flipc.Endpoint_kind
module Nameservice = Flipc.Nameservice
module Channel = Flipc.Channel
module Drop_counter = Flipc.Drop_counter
module Buffer_queue = Flipc.Buffer_queue
module Bulk = Flipc_bulk.Bulk

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("api error: " ^ Api.error_to_string e)

let finish machine =
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine

(* ------------------------------------------------------------------ *)
(* Conservation and ordering under randomized traffic.

   A sender transmits a random schedule of numbered messages with random
   gaps; the receiver posts buffers erratically (random bursts, random
   idling). Whatever happens:
     delivered + dropped = sent          (conservation; no lost events)
     delivered sequence is increasing    (FIFO per endpoint pair)      *)

let conservation_prop =
  QCheck.Test.make ~name:"conservation & FIFO under random traffic" ~count:25
    QCheck.(
      pair (list_of_size Gen.(int_range 1 40) (int_bound 3))
        (list_of_size Gen.(int_range 1 40) (int_bound 3)))
    (fun (send_gaps, post_plan) ->
      let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
      let ns = Machine.names machine in
      let total = List.length send_gaps in
      let received = ref [] in
      let drops = ref 0 in
      let deadline = Flipc_sim.Vtime.ms 20 in
      Machine.spawn_app machine ~node:1 (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
          Nameservice.register ns "rx" (Api.address api ep);
          (* Erratic posting: bursts of buffers interleaved with idling. *)
          let pool = List.init 6 (fun _ -> ok (Api.allocate_buffer api)) in
          let free = Queue.create () in
          List.iter (fun b -> Queue.push b free) pool;
          let plan = ref post_plan in
          while Sim.now (Machine.sim machine) < deadline do
            (match !plan with
            | burst :: rest ->
                plan := rest;
                for _ = 1 to burst do
                  match Queue.take_opt free with
                  | Some b -> (
                      match Api.post_receive api ep b with
                      | Ok () -> ()
                      | Error `Full -> Queue.push b free
                      | Error _ -> ())
                  | None -> ()
                done
            | [] -> (
                (* Keep the queue topped up once the plan is exhausted so
                   the run terminates with everything accounted. *)
                match Queue.take_opt free with
                | Some b -> (
                    match Api.post_receive api ep b with
                    | Ok () -> ()
                    | Error `Full -> Queue.push b free
                    | Error _ -> ())
                | None -> ()));
            (match Api.receive api ep with
            | Some buf ->
                let v =
                  Int32.to_int (Bytes.get_int32_le (Api.read_payload api buf 4) 0)
                in
                received := v :: !received;
                Queue.push buf free
            | None -> ());
            drops := !drops + Api.drops_read_and_reset api ep;
            Mem_port.instr (Api.port api) (50 + (Sim.now (Machine.sim machine) mod 37))
          done);
      Machine.spawn_app machine ~node:0 (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          Api.connect api ep (Nameservice.lookup ns "rx");
          let buf = ok (Api.allocate_buffer api) in
          List.iteri
            (fun i gap ->
              let payload = Bytes.create 4 in
              Bytes.set_int32_le payload 0 (Int32.of_int (i + 1));
              Api.write_payload api buf payload;
              ok (Api.send api ep buf);
              let rec reclaim () =
                match Api.reclaim api ep with
                | Some _ -> ()
                | None ->
                    Mem_port.instr (Api.port api) 5;
                    reclaim ()
              in
              reclaim ();
              Sim.delay (gap * 7_000))
            send_gaps);
      Machine.run ~until:deadline machine;
      Machine.stop_engines machine;
      Machine.run machine;
      let delivered = List.rev !received in
      let increasing =
        let rec chk = function
          | a :: (b :: _ as rest) -> a < b && chk rest
          | _ -> true
        in
        chk delivered
      in
      increasing && List.length delivered + !drops = total)

(* ------------------------------------------------------------------ *)
(* Layout invariants over random legal configurations.                 *)

let config_gen =
  QCheck.Gen.(
    let* endpoints = int_range 1 16 in
    let* queue_capacity = int_range 2 20 in
    let* total_buffers = int_range 1 40 in
    let* msg_mult = int_range 2 16 in
    let* layout_idx = int_range 0 1 in
    return
      {
        Config.default with
        Config.endpoints;
        queue_capacity;
        total_buffers;
        message_bytes = 32 * msg_mult;
        layout_mode = (if layout_idx = 0 then Config.Padded else Config.Packed);
      })

let config_arb =
  QCheck.make ~print:(fun c -> Fmt.str "%a" Config.pp c) config_gen

let layout_wellformed_prop =
  QCheck.Test.make ~name:"layout invariants over random configs" ~count:200
    config_arb
    (fun config ->
      match Config.validate config with
      | Error _ -> QCheck.assume_fail ()
      | Ok config ->
          let layout = Layout.compute config in
          let clo, chi = Layout.control_region layout in
          let blo, bhi = Layout.buffer_region layout in
          let all_addrs = ref [] in
          for ep = 0 to config.Config.endpoints - 1 do
            List.iter
              (fun f -> all_addrs := Layout.ep_field layout ~ep f :: !all_addrs)
              Layout.all_fields;
            for slot = 0 to config.Config.queue_capacity - 1 do
              all_addrs := Layout.slot_addr layout ~ep ~slot :: !all_addrs
            done
          done;
          let distinct =
            List.length (List.sort_uniq Int.compare !all_addrs)
            = List.length !all_addrs
          in
          let aligned = List.for_all (fun a -> a mod 4 = 0) !all_addrs in
          let in_control = List.for_all (fun a -> a >= clo && a < chi) !all_addrs in
          let buffers_ok =
            List.for_all
              (fun i ->
                let a = Layout.buffer_addr layout i in
                a >= blo && a + config.Config.message_bytes <= bhi && a mod 32 = 0)
              (List.init config.Config.total_buffers Fun.id)
          in
          distinct && aligned && in_control && buffers_ok
          && Layout.total_bytes layout = bhi)

let padded_disjoint_prop =
  QCheck.Test.make ~name:"padded layout: no app/engine line sharing (random configs)"
    ~count:100 config_arb
    (fun config ->
      match Config.validate { config with Config.layout_mode = Config.Padded } with
      | Error _ -> QCheck.assume_fail ()
      | Ok config ->
          let layout = Layout.compute config in
          let line a = a / 32 in
          let lines writer =
            List.concat_map
              (fun ep ->
                Layout.all_fields
                |> List.filter (fun f -> Layout.writer_of_field f = writer)
                |> List.map (fun f -> line (Layout.ep_field layout ~ep f)))
              (List.init config.Config.endpoints Fun.id)
            |> List.sort_uniq Int.compare
          in
          let app = lines Layout.App and eng = lines Layout.Engine in
          List.for_all (fun l -> not (List.mem l eng)) app)

(* ------------------------------------------------------------------ *)
(* Drop counter wraparound: correctness near the 2^30 modulus.         *)

let test_drop_counter_wraparound () =
  let sim = Sim.create () in
  let config = Config.default in
  let layout = Layout.compute config in
  let mem = Shared_mem.create ~size:(Layout.total_bytes layout + 64) in
  let bus = Flipc_memsim.Bus.create ~cost:Flipc_memsim.Cost_model.paragon () in
  let mk name =
    Mem_port.create ~engine:sim ~mem ~bus
      ~cache:(Flipc_memsim.Cache.create ~name ())
      ~name
  in
  let app = mk "app" and eng = mk "eng" in
  Sim.spawn sim (fun () ->
      (* Pre-position both locations just below the modulus. *)
      let near = Drop_counter.modulus - 2 in
      Mem_port.poke app (Layout.ep_field layout ~ep:0 Layout.Drop_count) near;
      Mem_port.poke app (Layout.ep_field layout ~ep:0 Layout.Drop_read) near;
      for _ = 1 to 5 do
        Drop_counter.engine_increment eng layout ~ep:0
      done;
      Alcotest.(check int) "count across wrap" 5
        (Drop_counter.read app layout ~ep:0);
      Alcotest.(check int) "reset across wrap" 5
        (Drop_counter.read_and_reset app layout ~ep:0);
      Alcotest.(check int) "zero after" 0 (Drop_counter.read app layout ~ep:0));
  Sim.run sim

(* A raw two-port rig (application + engine side) over one layout, for
   driving the wait-free structures directly. *)
let with_raw_ports f =
  let sim = Sim.create () in
  let config = Config.default in
  let layout = Layout.compute config in
  let mem = Shared_mem.create ~size:(Layout.total_bytes layout + 64) in
  let bus = Flipc_memsim.Bus.create ~cost:Flipc_memsim.Cost_model.paragon () in
  let mk name =
    Mem_port.create ~engine:sim ~mem ~bus
      ~cache:(Flipc_memsim.Cache.create ~name ())
      ~name
  in
  let app = mk "app" and eng = mk "eng" in
  Sim.spawn sim (fun () -> f config layout app eng);
  Sim.run sim

(* Property: the two-location counter equals the number of engine
   increments since the last reset, wherever the stored words sit
   relative to the 2^30 modulus and however reads and resets interleave. *)
let drop_counter_wrap_prop =
  QCheck.Test.make ~name:"drop counter modular arithmetic under random ops"
    ~count:50
    QCheck.(
      pair (int_bound 100)
        (list_of_size Gen.(int_range 1 25) (pair (int_bound 20) bool)))
    (fun (below, ops) ->
      let result = ref true in
      with_raw_ports (fun _config layout app eng ->
          let check b = if not b then result := false in
          (* Park both words just under the modulus so the run crosses it. *)
          let start = Drop_counter.modulus - 1 - below in
          Mem_port.poke app (Layout.ep_field layout ~ep:0 Layout.Drop_count) start;
          Mem_port.poke app (Layout.ep_field layout ~ep:0 Layout.Drop_read) start;
          let expected = ref 0 in
          List.iter
            (fun (incs, reset) ->
              for _ = 1 to incs do
                Drop_counter.engine_increment eng layout ~ep:0
              done;
              expected := !expected + incs;
              check (Drop_counter.read app layout ~ep:0 = !expected);
              if reset then begin
                check (Drop_counter.read_and_reset app layout ~ep:0 = !expected);
                expected := 0;
                check (Drop_counter.read app layout ~ep:0 = 0)
              end)
            ops);
      !result)

(* Property: the three-cursor ring agrees with a reference model under
   arbitrary release/process/acquire interleavings — including many full
   trips around the ring, so every cursor wraps repeatedly. *)
let buffer_queue_churn_prop =
  QCheck.Test.make ~name:"buffer queue cursors wrap under random churn"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 60 120) (int_bound 2))
    (fun random_ops ->
      let result = ref true in
      with_raw_ports (fun config layout app eng ->
          let check b = if not b then result := false in
          Buffer_queue.init app layout ~ep:0;
          let cap = config.Config.queue_capacity in
          let next = ref 0 in
          let to_process = Queue.create () and to_acquire = Queue.create () in
          let occupancy () = Queue.length to_process + Queue.length to_acquire in
          let step op =
            (match op with
            | 0 -> (
                incr next;
                let addr = 32 * !next in
                match Buffer_queue.app_release app layout ~ep:0 ~buf_addr:addr with
                | Ok () ->
                    check (occupancy () < cap - 1);
                    Queue.push addr to_process
                | Error `Full -> check (occupancy () = cap - 1))
            | 1 -> (
                match Buffer_queue.engine_peek eng layout ~ep:0 with
                | Some (addr, cursor) ->
                    (match Queue.take_opt to_process with
                    | Some m -> check (m = addr)
                    | None -> check false);
                    Buffer_queue.engine_advance eng layout ~ep:0 ~cursor;
                    Queue.push addr to_acquire
                | None -> check (Queue.is_empty to_process))
            | _ -> (
                match Buffer_queue.app_acquire app layout ~ep:0 with
                | Some addr -> (
                    match Queue.take_opt to_acquire with
                    | Some m -> check (m = addr)
                    | None -> check false)
                | None -> check (Queue.is_empty to_acquire)));
            check (Buffer_queue.well_formed (Buffer_queue.snapshot app layout ~ep:0))
          in
          (* Deterministic churn first: more than three full trips around
             the ring, one buffer at a time. *)
          for _ = 1 to 4 * cap do
            step 0;
            step 1;
            step 2
          done;
          List.iter step random_ops);
      !result)

(* ------------------------------------------------------------------ *)
(* Channel data integrity: arbitrary payload sequences arrive exactly.  *)

let channel_integrity_prop =
  QCheck.Test.make ~name:"channel delivers arbitrary payloads exactly" ~count:20
    QCheck.(list_of_size Gen.(int_range 1 15) (string_of_size Gen.(int_range 0 100)))
    (fun payloads ->
      let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
      let ns = Machine.names machine in
      let got = ref [] in
      let n = List.length payloads in
      Machine.spawn_app machine ~node:1 (fun api ->
          let rx = Result.get_ok (Channel.create_rx api ~depth:6 ()) in
          Nameservice.register ns "rx" (Channel.address rx);
          let rec loop k =
            if k < n then
              match Channel.recv rx with
              | Some p ->
                  got := Bytes.to_string p :: !got;
                  loop (k + 1)
              | None ->
                  Mem_port.instr (Api.port api) 5;
                  loop k
          in
          loop 0);
      Machine.spawn_app machine ~node:0 (fun api ->
          let dest = Nameservice.lookup ns "rx" in
          let tx = Result.get_ok (Channel.create_tx api ~dest ~pool:3 ()) in
          List.iter
            (fun s ->
              match Channel.send tx (Bytes.of_string s) with
              | Ok () -> ()
              | Error e -> failwith (Channel.error_to_string e))
            payloads);
      finish machine;
      List.rev !got = payloads)

(* ------------------------------------------------------------------ *)
(* Bulk vs model: random puts into a region match a reference buffer.   *)

let bulk_model_prop =
  QCheck.Test.make ~name:"bulk puts match reference model" ~count:15
    QCheck.(
      list_of_size
        Gen.(int_range 1 6)
        (pair (int_bound 2000) (int_bound 5000)))
    (fun writes ->
      let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
      let bulk = Bulk.create machine in
      let region_len = 8192 in
      let region = Bulk.export bulk ~node:1 ~len:region_len in
      let model = Bytes.make region_len '\000' in
      let planned =
        List.filteri
          (fun i (off, len) ->
            ignore i;
            len > 0 && off + len <= region_len)
          writes
      in
      Machine.spawn_app machine ~node:0 (fun _api ->
          List.iteri
            (fun i (off, len) ->
              let fill = Char.chr (33 + (i mod 90)) in
              let data = Bytes.make len fill in
              Bytes.blit data 0 model off len;
              Bulk.put bulk ~from:0 ~at:off region data)
            planned);
      finish machine;
      let mem = Machine.mem (Machine.node machine 1) in
      let actual =
        Shared_mem.read_bytes mem ~pos:(Bulk.region_base region) ~len:region_len
      in
      Bytes.equal actual model)

(* ------------------------------------------------------------------ *)
(* Machine invariants on random shapes.                                *)

let machine_boot_prop =
  QCheck.Test.make ~name:"machines of random shape boot and park" ~count:20
    QCheck.(pair (int_range 1 5) (int_range 1 4))
    (fun (cols, rows) ->
      let machine = Machine.create (Machine.Mesh { cols; rows }) () in
      Machine.run machine;
      let all_parked = ref true in
      for i = 0 to Machine.node_count machine - 1 do
        let stats = Msg_engine.stats (Machine.msg_engine (Machine.node machine i)) in
        if stats.Msg_engine.parks < 1 then all_parked := false
      done;
      Machine.stop_engines machine;
      Machine.run machine;
      !all_parked && Machine.node_count machine = cols * rows)

(* ------------------------------------------------------------------ *)
(* Whole-stack determinism: identical runs are bit-identical.           *)

let test_determinism () =
  let run () =
    let r =
      Flipc_workload.Pingpong.measure ~payload_bytes:120 ~exchanges:40 ()
    in
    r.Flipc_workload.Pingpong.round_trips_us
  in
  let a = run () and b = run () in
  Alcotest.(check (list (float 0.))) "bit-identical replays" a b

let test_determinism_streams () =
  let run () =
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let results =
      Flipc_workload.Streams.run ~machine ~node_src:0 ~node_dst:1
        ~until:(Flipc_sim.Vtime.ms 5)
        [
          Flipc_workload.Streams.make ~name:"s"
            ~arrival:(Flipc_workload.Arrivals.poisson ~mean_ns:80_000 ~seed:2)
            ~count:40 ~recv_buffers:4 ();
        ]
    in
    match results with
    | [ r ] -> (r.Flipc_workload.Streams.sent, r.Flipc_workload.Streams.delivered)
    | _ -> assert false
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "streams replay identically" a b

let () =
  Alcotest.run "props"
    [
      ( "end-to-end",
        [
          QCheck_alcotest.to_alcotest conservation_prop;
          QCheck_alcotest.to_alcotest channel_integrity_prop;
          QCheck_alcotest.to_alcotest bulk_model_prop;
          QCheck_alcotest.to_alcotest machine_boot_prop;
        ] );
      ( "layout",
        [
          QCheck_alcotest.to_alcotest layout_wellformed_prop;
          QCheck_alcotest.to_alcotest padded_disjoint_prop;
        ] );
      ( "counters",
        [
          Alcotest.test_case "drop wraparound" `Quick
            test_drop_counter_wraparound;
          QCheck_alcotest.to_alcotest drop_counter_wrap_prop;
          QCheck_alcotest.to_alcotest buffer_queue_churn_prop;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pingpong replay" `Quick test_determinism;
          Alcotest.test_case "poisson stream replay" `Quick
            test_determinism_streams;
        ] );
    ]
