(* The correlation-and-diagnosis layer: online invariant monitors catch
   seeded violations with the offending message id, causal spans
   reconstruct a message's cross-machine path in stage order, clean runs
   over a lossy fabric produce zero false positives, and the progress
   watchdog renders a flight-recorder report naming the stalled stage. *)

module Sim = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Config = Flipc.Config
module Machine = Flipc.Machine
module Api = Flipc.Api
module Layout = Flipc.Layout
module Comm_buffer = Flipc.Comm_buffer
module Endpoint_kind = Flipc.Endpoint_kind
module Nameservice = Flipc.Nameservice
module Faulty = Flipc_net.Faulty
module Retrans = Flipc_flow.Retrans
module Provision = Flipc_flow.Provision
module Obs = Flipc_obs.Obs
module Event = Flipc_obs.Event
module Causal = Flipc_obs.Causal
module Monitor = Flipc_obs.Monitor

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Api.error_to_string e)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  at 0

(* --- seeded violations, synthetic event streams --- *)

let test_monitor_double_delivery () =
  let sim = Sim.create () in
  let obs = Obs.create ~sim () in
  let mon = Monitor.attach obs in
  Obs.event obs (Event.Frame_deliver { node = 1; ep = 0; seq = 1; mid = 11 });
  Obs.event obs (Event.Frame_deliver { node = 1; ep = 0; seq = 2; mid = 12 });
  check_bool "clean so far" true (Monitor.clean mon);
  (* The reliability layer must release each frame exactly once: replay
     seq 2 under a fresh mid (a retransmitted copy leaking through). *)
  Obs.event obs (Event.Frame_deliver { node = 1; ep = 0; seq = 2; mid = 13 });
  (match Monitor.violations mon with
  | [ v ] ->
      check_str "rule" "retrans.duplicate_delivery" v.Monitor.rule;
      check "offending mid" 13 v.Monitor.mid;
      check "node" 1 v.Monitor.node;
      check_bool "causal history attached" true (v.Monitor.history <> "")
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs)));
  (* One report per site: replaying again stays at one violation. *)
  Obs.event obs (Event.Frame_deliver { node = 1; ep = 0; seq = 2; mid = 14 });
  check "deduplicated per site" 1 (List.length (Monitor.violations mon))

let test_monitor_credit_leak () =
  let sim = Sim.create () in
  let obs = Obs.create ~sim () in
  let mon = Monitor.attach obs in
  Obs.event obs
    (Event.Window_send
       { node = 0; ep = 1; mid = 21; sent = 1; granted = 0; window = 4 });
  check_bool "in-window send is clean" true (Monitor.clean mon);
  (* A sender that leaked credits: 6 outstanding against a window of 4. *)
  Obs.event obs
    (Event.Window_send
       { node = 0; ep = 1; mid = 22; sent = 6; granted = 0; window = 4 });
  match Monitor.violations mon with
  | [ v ] ->
      check_str "rule" "window.credit_conservation" v.Monitor.rule;
      check "offending mid" 22 v.Monitor.mid
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs))

let test_monitor_sack_window () =
  let sim = Sim.create () in
  let obs = Obs.create ~sim () in
  let mon = Monitor.attach obs in
  Obs.event obs (Event.Frame_deliver { node = 1; ep = 0; seq = 1; mid = 31 });
  (* Acknowledging frame 3 when only frame 1 was ever delivered. *)
  Obs.event obs (Event.Ack_tx { node = 1; ep = 0; cum = 3; sacked = 0 });
  match Monitor.violations mon with
  | [ v ] -> check_str "rule" "retrans.sack_window" v.Monitor.rule
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs))

(* --- seeded violation, end to end: corrupt a queue cursor word --- *)

let test_monitor_corrupt_queue_pointer () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let mon = Machine.attach_monitor machine in
  let ns = Machine.names machine in
  let count = 4 in
  Machine.spawn_app ~name:"rx" machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      (* A second, idle endpoint whose cursor we corrupt mid-run; nothing
         uses it, so only the monitor can notice. *)
      let victim = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to count do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "rx" (Api.address api ep);
      let got = ref 0 in
      while !got < count do
        match Api.receive api ep with
        | Some _ ->
            incr got;
            if !got = 1 then begin
              let layout =
                Comm_buffer.layout (Machine.comm (Machine.node machine 1))
              in
              Mem_port.poke (Api.port api)
                (Layout.ep_field layout ~ep:(Api.endpoint_index victim)
                   Layout.Acquire)
                7777
            end
        | None -> Mem_port.instr (Api.port api) 5
      done);
  Machine.spawn_app ~name:"tx" machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Nameservice.lookup ns "rx");
      let buf = ok (Api.allocate_buffer api) in
      for _ = 1 to count do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ();
        Sim.delay (Vtime.us 20)
      done);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  match
    List.find_opt
      (fun v -> v.Monitor.rule = "queue.pointer_order")
      (Monitor.violations mon)
  with
  | Some v ->
      check "node" 1 v.Monitor.node;
      check_bool "names the endpoint" true (contains ~needle:"endpoint" v.Monitor.detail);
      check_bool "cursor value reported" true (contains ~needle:"7777" v.Monitor.detail)
  | None -> Alcotest.fail "queue.pointer_order violation not caught"

(* --- clean lossy soak: zero false positives --- *)

let test_monitor_clean_on_lossy_mesh () =
  let fault =
    Faulty.config ~drop:0.04 ~duplicate:0.02 ~reorder:0.2
      ~reorder_hold_ns:100_000 ~seed:5 ()
  in
  let config = Provision.config_for ~base:Config.default ~buffers:16 in
  let machine =
    Machine.create ~config ~fault (Machine.Mesh { cols = 4; rows = 4 }) ()
  in
  let mon = Machine.attach_monitor machine in
  let sim = Machine.sim machine in
  let rcfg =
    { Retrans.default_config with Retrans.rto_ns = 200_000; max_rto_ns = 1_600_000 }
  in
  let msgs = 12 in
  let flows = 2 in
  let delivered = ref 0 in
  for flow = 0 to flows - 1 do
    let src = flow and dst = 15 - flow in
    let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
    Machine.spawn_app machine ~node:dst (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        Mailbox.put data_addr (Api.address api data_ep);
        Api.connect api ack_ep (Mailbox.take ack_addr);
        let r = Retrans.create_receiver api ~sim ~data_ep ~ack_ep ~config:rcfg () in
        while Retrans.delivered r < msgs do
          match Retrans.recv r with
          | Some _ -> incr delivered
          | None -> Mem_port.instr (Api.port api) 200
        done);
    Machine.spawn_app machine ~node:src (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        Mailbox.put ack_addr (Api.address api ack_ep);
        Api.connect api data_ep (Mailbox.take data_addr);
        let s = Retrans.create_sender api ~sim ~data_ep ~ack_ep ~config:rcfg () in
        for i = 1 to msgs do
          (match Retrans.send s (Bytes.make 24 (Char.chr (64 + i))) with
          | Ok () -> ()
          | Error `Timeout -> Alcotest.fail "sender timed out");
          Sim.delay (Vtime.us 25)
        done;
        match Retrans.flush s ~timeout_ns:(Vtime.s 2) with
        | Ok () -> ()
        | Error `Timeout -> Alcotest.fail "flush timed out")
  done;
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  check "all delivered" (flows * msgs) !delivered;
  check_bool "monitor saw traffic" true (Monitor.events_seen mon > 0);
  if not (Monitor.clean mon) then
    Alcotest.fail (Format.asprintf "false positives:@.%a" Monitor.pp_report mon);
  check_bool "spans reconstructed" true
    (Causal.spans [ Machine.obs machine ] <> [])

(* --- causal span stage order --- *)

let test_causal_span_stages () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let obs = Machine.obs machine in
  Flipc_obs.Tracer.enable (Obs.tracer obs);
  let ns = Machine.names machine in
  let sent_mid = ref 0 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      Nameservice.register ns "rx" (Api.address api ep);
      let rec poll () =
        match Api.receive api ep with
        | Some _ -> ()
        | None ->
            Mem_port.instr (Api.port api) 5;
            poll ()
      in
      poll ());
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Nameservice.lookup ns "rx");
      ok (Api.send api ep (ok (Api.allocate_buffer api)));
      sent_mid := Api.last_msg_id api);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  check_bool "mid stamped" true (!sent_mid > 0);
  let spans = Causal.spans [ obs ] in
  match Causal.find spans !sent_mid with
  | None -> Alcotest.fail "span not reconstructed"
  | Some span ->
      check_str "delivered" "delivered" (Causal.stalled_stage span);
      let stages = List.map (fun s -> Causal.stage_of s.Causal.ev) span.Causal.steps in
      (* The lifecycle stages must appear in path order. *)
      let rec subseq needles hay =
        match (needles, hay) with
        | [], _ -> true
        | _, [] -> false
        | n :: ns, h :: hs -> if n = h then subseq ns hs else subseq needles hs
      in
      check_bool
        (Printf.sprintf "stage order (got: %s)" (String.concat "," stages))
        true
        (subseq [ "send"; "engine_tx"; "wire_rx"; "queue"; "recv" ] stages)

(* --- watchdog flight recorder --- *)

let test_watchdog_flight_recorder () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  ignore (Machine.attach_monitor machine : Monitor.t);
  let obs = Machine.obs machine in
  let sim = Machine.sim machine in
  let ns = Machine.names machine in
  let report = ref "" in
  let sent_mid = ref 0 in
  Machine.spawn_app ~name:"starved-rx" machine ~node:1 (fun api ->
      (* No posted buffers: the message is discarded at the destination
         and the receive loop can never progress. *)
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Nameservice.register ns "rx" (Api.address api ep);
      let wd =
        Monitor.Watchdog.create ~budget:(Vtime.us 300) ~sim ~name:"starved-rx" ()
      in
      let rec poll () =
        match Api.receive api ep with
        | Some _ -> Alcotest.fail "delivered without a posted buffer"
        | None ->
            if Monitor.Watchdog.expired wd then
              report := Monitor.Watchdog.report ~mid:!sent_mid wd [ obs ]
            else begin
              Mem_port.instr (Api.port api) 20;
              poll ()
            end
      in
      poll ());
  Machine.spawn_app ~name:"tx" machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Nameservice.lookup ns "rx");
      ok (Api.send api ep (ok (Api.allocate_buffer api)));
      sent_mid := Api.last_msg_id api);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  check_bool "watchdog fired" true (!report <> "");
  check_bool "names itself" true (contains ~needle:"starved-rx" !report);
  check_bool "flight recorder header" true
    (contains ~needle:"FLIGHT RECORDER" !report);
  check_bool "stalled stage named" true
    (contains ~needle:"dropped at destination (no_posted_buffer)" !report);
  check_bool "causal trace of the stalled message" true
    (contains ~needle:(Printf.sprintf "msg %d" !sent_mid) !report);
  check_bool "engine state dumped" true (contains ~needle:"engine iters=" !report)

let () =
  Alcotest.run "doctor"
    [
      ( "monitor",
        [
          Alcotest.test_case "double delivery" `Quick test_monitor_double_delivery;
          Alcotest.test_case "credit leak" `Quick test_monitor_credit_leak;
          Alcotest.test_case "sack window" `Quick test_monitor_sack_window;
          Alcotest.test_case "corrupt queue pointer" `Quick
            test_monitor_corrupt_queue_pointer;
          Alcotest.test_case "clean on lossy mesh" `Quick
            test_monitor_clean_on_lossy_mesh;
        ] );
      ( "causal",
        [ Alcotest.test_case "span stage order" `Quick test_causal_span_stages ] );
      ( "watchdog",
        [
          Alcotest.test_case "flight recorder" `Quick
            test_watchdog_flight_recorder;
        ] );
    ]
