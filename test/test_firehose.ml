(* Properties of the throughput path (DESIGN.md §16): batched send and
   receive must be observationally identical to the singleton path —
   same per-endpoint FIFO, same conservation, clean invariant monitors —
   for every batch size, with and without fabric faults; the
   one-doorbell-per-burst protocol must never lose a wakeup, including
   when several applications ring the shared summary word concurrently;
   and the sharded multi-engine runs must stay deterministic with their
   per-shard metrics snapshot in a stable order. *)

module Sim = Flipc_sim.Engine
module Mem_port = Flipc_memsim.Mem_port
module Config = Flipc.Config
module Api = Flipc.Api
module Machine = Flipc.Machine
module Msg_engine = Flipc.Msg_engine
module Endpoint_kind = Flipc.Endpoint_kind
module Nameservice = Flipc.Nameservice
module Monitor = Flipc_obs.Monitor
module Faulty = Flipc_net.Faulty
module Firehose = Flipc_workload.Firehose

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("api error: " ^ Api.error_to_string e)

let finish machine =
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine

let seq_payload i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  b

let seq_of_payload b = Int64.to_int (Bytes.get_int64_le b 0)

(* One sender streams [total] numbered messages to one receiver using
   the burst interface sized by the config knobs; the receiver drains
   with [receive_burst] and records the sequence numbers it saw. Returns
   (received sequence, receiver-side engine drops, monitor). *)
let run_numbered ~config ?fault ~total () =
  let machine =
    match fault with
    | Some fault ->
        Machine.create ~config ~fault (Machine.Mesh { cols = 2; rows = 1 }) ()
    | None -> Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) ()
  in
  let mon = Machine.attach_monitor machine in
  let ns = Machine.names machine in
  let sim = Machine.sim machine in
  let qcap = config.Config.queue_capacity - 1 in
  let received = ref [] in
  let drops = ref 0 in
  let deadline = Flipc_sim.Vtime.ms 30 in
  let sent = ref 0 in
  Machine.spawn_app ~name:"rx" machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to qcap do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "rx" (Api.address api ep);
      let burst = max 1 config.Config.app_recv_burst in
      let out = Array.make burst (ok (Api.allocate_buffer api)) in
      Api.free_buffer api out.(0);
      while Sim.now sim < deadline do
        let n = Api.receive_burst api ep ~out in
        if n = 0 then Sim.delay 500
        else begin
          for i = 0 to n - 1 do
            received := seq_of_payload (Api.read_payload api out.(i) 8)
                        :: !received
          done;
          ignore (ok (Api.post_receive_burst api ep (Array.sub out 0 n)))
        end;
        drops := !drops + Api.drops_read_and_reset api ep
      done);
  Machine.spawn_app ~name:"tx" machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Nameservice.lookup ns "rx");
      let burst = max 1 config.Config.app_send_burst in
      let free = Queue.create () in
      for _ = 1 to min config.Config.total_buffers (qcap + burst) do
        Queue.push (ok (Api.allocate_buffer api)) free
      done;
      let next = ref 0 in
      let stage = Array.make burst (Queue.peek free) in
      while !next < total && Sim.now sim < deadline do
        let n = ref 0 in
        while !n < burst && !next + !n < total && not (Queue.is_empty free) do
          let b = Queue.pop free in
          Api.write_payload api b (seq_payload (!next + !n));
          stage.(!n) <- b;
          incr n
        done;
        if !n > 0 then begin
          let accepted = ok (Api.send_burst api ep (Array.sub stage 0 !n)) in
          sent := !sent + accepted;
          next := !next + accepted;
          (* Overflow stays ours: put unaccepted staged buffers back. *)
          for i = accepted to !n - 1 do
            Queue.push stage.(i) free
          done
        end;
        let out = Array.make burst stage.(0) in
        let r = Api.reclaim_burst api ep ~out in
        for i = 0 to r - 1 do
          Queue.push out.(i) free
        done;
        if !n = 0 then Sim.delay 400
      done);
  Machine.run ~until:deadline machine;
  finish machine;
  (List.rev !received, !drops, !sent, mon)

let batch_gen =
  QCheck.Gen.(
    map3
      (fun tx s r -> (tx, s, r))
      (int_range 1 8) (int_range 1 8) (int_range 1 8))

let batch_print (tx, s, r) =
  Printf.sprintf "tx_batch=%d send_burst=%d recv_burst=%d" tx s r

(* Fault-free: every batch-size combination must deliver every message
   exactly once, in order, with clean monitors — byte-identical
   semantics to the singleton path. *)
let batched_fifo_prop =
  QCheck.Test.make ~name:"batched path: FIFO & conservation, any batch size"
    ~count:20
    (QCheck.make ~print:batch_print batch_gen)
    (fun (tx_batch, send_burst, recv_burst) ->
      let config =
        {
          Config.default with
          Config.engine_tx_batch = tx_batch;
          app_send_burst = send_burst;
          app_recv_burst = recv_burst;
        }
      in
      let total = 40 in
      let received, drops, sent, mon = run_numbered ~config ~total () in
      if sent <> total then
        QCheck.Test.fail_reportf "sent %d of %d" sent total;
      if drops <> 0 then
        QCheck.Test.fail_reportf "unexpected engine drops: %d" drops;
      if received <> List.init total Fun.id then
        QCheck.Test.fail_reportf "out of order or lost: got %d msgs, FIFO %b"
          (List.length received)
          (List.sort compare received = received);
      if not (Monitor.clean mon) then
        QCheck.Test.fail_reportf "monitor violations:@ %a" Monitor.pp_report
          mon;
      true)

(* Under drop faults the raw path may lose messages in the fabric, but
   whatever arrives must still be a FIFO subsequence of what was sent
   (frames on one endpoint pair never overtake on the mesh), nothing may
   be duplicated or corrupted, and the monitors must stay clean. Under
   reorder faults arrival order is the fabric's business, so only
   set-containment and cleanliness are asserted. *)
let faulted_batch_prop =
  QCheck.Test.make
    ~name:"batched path under drop/reorder faults: clean, no duplicates"
    ~count:15
    (QCheck.make
       ~print:(fun ((b : int * int * int), drop, reorder, seed) ->
         Printf.sprintf "%s drop=%.2f reorder=%.2f seed=%d" (batch_print b)
           drop reorder seed)
       QCheck.Gen.(
         let pairs =
           map2
             (fun a b -> (a, b))
             (map (fun k -> float_of_int k /. 100.) (int_bound 20))
             (oneofl [ 0.0; 0.25 ])
         in
         map3
           (fun b (drop, reorder) seed -> (b, drop, reorder, seed))
           batch_gen pairs (int_bound 1000)))
    (fun ((tx_batch, send_burst, recv_burst), drop, reorder, seed) ->
      let config =
        {
          Config.default with
          Config.engine_tx_batch = tx_batch;
          app_send_burst = send_burst;
          app_recv_burst = recv_burst;
        }
      in
      let fault =
        Faulty.config ~drop ~reorder ~reorder_hold_ns:40_000 ~seed ()
      in
      let total = 40 in
      let received, _drops, sent, mon = run_numbered ~config ~fault ~total () in
      if sent <> total then
        QCheck.Test.fail_reportf "sent %d of %d" sent total;
      let sorted = List.sort compare received in
      let rec no_dup = function
        | a :: (b :: _ as rest) -> a <> b && no_dup rest
        | _ -> true
      in
      if not (no_dup sorted) then
        QCheck.Test.fail_reportf "duplicate delivery";
      List.iter
        (fun s ->
          if s < 0 || s >= total then
            QCheck.Test.fail_reportf "corrupt sequence %d" s)
        received;
      if reorder = 0.0 && sorted <> received then
        QCheck.Test.fail_reportf "FIFO broken without reorder faults";
      if not (Monitor.clean mon) then
        QCheck.Test.fail_reportf "monitor violations:@ %a" Monitor.pp_report
          mon;
      true)

(* One doorbell ring and one poke cover a whole burst; a parked engine
   woken by that single poke must drain every message of the burst with
   no further application activity beyond polling its own cursors. *)
let no_lost_wakeup_prop =
  QCheck.Test.make ~name:"single poke per burst: no lost wakeup" ~count:20
    QCheck.(map ~rev:(fun k -> k) Fun.id (int_range 1 8))
    (fun k ->
      let config =
        {
          Config.default with
          Config.app_send_burst = k;
          engine_tx_batch = k;
          (* Park almost immediately so the burst lands on a parked
             engine and the single poke is the only thing waking it. *)
          engine_park_after = 2;
        }
      in
      let machine =
        Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) ()
      in
      let ns = Machine.names machine in
      let sim = Machine.sim machine in
      let delivered = ref 0 in
      let reclaimed = ref 0 in
      Machine.spawn_app ~name:"rx" machine ~node:1 (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
          for _ = 1 to 8 do
            ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
          done;
          Nameservice.register ns "rx" (Api.address api ep);
          while Sim.now sim < Flipc_sim.Vtime.ms 3 do
            (match Api.receive api ep with
            | Some b ->
                incr delivered;
                ok (Api.post_receive api ep b)
            | None -> ());
            Sim.delay 1_000
          done);
      Machine.spawn_app ~name:"tx" machine ~node:0 (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          Api.connect api ep (Nameservice.lookup ns "rx");
          let bufs =
            Array.init k (fun _ -> ok (Api.allocate_buffer api))
          in
          Array.iter (fun b -> Api.write_payload api b (seq_payload 0)) bufs;
          (* Let both engines run dry and park. *)
          Sim.delay 200_000;
          let accepted = ok (Api.send_burst api ep bufs) in
          if accepted <> k then
            QCheck.Test.fail_reportf "burst truncated: %d of %d" accepted k;
          (* Pure polling from here: no further doorbells, no pokes. *)
          let out = Array.make k bufs.(0) in
          while !reclaimed < k && Sim.now sim < Flipc_sim.Vtime.ms 3 do
            reclaimed := !reclaimed + Api.reclaim_burst api ep ~out;
            Sim.delay 2_000
          done);
      Machine.run ~until:(Flipc_sim.Vtime.ms 3) machine;
      finish machine;
      if !reclaimed <> k then
        QCheck.Test.fail_reportf "lost wakeup: reclaimed %d of %d burst"
          !reclaimed k;
      if !delivered <> k then
        QCheck.Test.fail_reportf "delivered %d of %d" !delivered k;
      true)

(* The doorbell summary word is shared by every application on a
   communication buffer; concurrent rings must never cancel out into a
   value the engine has already seen (the locked-increment contract).
   Several senders on one node ring at staggered offsets — every
   message must still be processed. *)
let concurrent_ringers_prop =
  QCheck.Test.make ~name:"concurrent doorbell ringers never lose a wakeup"
    ~count:20
    QCheck.(
      make
        ~print:(fun offs ->
          String.concat "," (List.map string_of_int offs))
        Gen.(list_size (int_range 2 4) (int_bound 2_000)))
    (fun offsets ->
      let n = List.length offsets in
      let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
      let ns = Machine.names machine in
      let sim = Machine.sim machine in
      let delivered = ref 0 in
      let reclaimed = ref 0 in
      Machine.spawn_app ~name:"rx" machine ~node:1 (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
          for _ = 1 to 8 do
            ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
          done;
          Nameservice.register ns "rx" (Api.address api ep);
          while Sim.now sim < Flipc_sim.Vtime.ms 3 do
            (match Api.receive api ep with
            | Some b ->
                incr delivered;
                ok (Api.post_receive api ep b)
            | None -> ());
            Sim.delay 1_000
          done);
      List.iteri
        (fun i off ->
          Machine.spawn_app
            ~name:(Printf.sprintf "tx%d" i)
            machine ~node:0
            (fun api ->
              let ep =
                ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ())
              in
              Api.connect api ep (Nameservice.lookup ns "rx");
              let buf = ok (Api.allocate_buffer api) in
              Api.write_payload api buf (seq_payload i);
              (* All senders ring within a few cache-miss times of each
                 other — the window where a plain read-modify-write of
                 the shared summary word loses increments. *)
              Sim.delay (100_000 + off);
              ok (Api.send api ep buf);
              while
                Api.reclaim api ep = None && Sim.now sim < Flipc_sim.Vtime.ms 3
              do
                Sim.delay 1_500
              done;
              incr reclaimed))
        offsets;
      Machine.run ~until:(Flipc_sim.Vtime.ms 3) machine;
      finish machine;
      if !delivered <> n then
        QCheck.Test.fail_reportf "lost wakeup: %d of %d delivered" !delivered
          n;
      if !reclaimed <> n then
        QCheck.Test.fail_reportf "only %d of %d senders reclaimed" !reclaimed
          n;
      true)

(* Sharded runs: same seed, same everything — bit-identical results,
   every shard active, per-shard snapshot in node-major shard order. *)
let test_sharded_deterministic () =
  let config =
    {
      Config.default with
      Config.engine_shards = 2;
      engine_tx_batch = 4;
      app_send_burst = 4;
      app_recv_burst = 4;
    }
  in
  let run () =
    Firehose.measure ~config ~senders:2 ~receivers:2 ~duration_us:200
      ~mean_gap_ns:4_000 ~seed:5 ~streams:4 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "offered" a.Firehose.offered b.Firehose.offered;
  Alcotest.(check int) "delivered" a.Firehose.delivered b.Firehose.delivered;
  Alcotest.(check int) "shed" a.Firehose.shed b.Firehose.shed;
  let keys r = List.map (fun (n, s, _) -> (n, s)) r.Firehose.engines in
  Alcotest.(check (list (pair int int)))
    "node-major shard order"
    [ (0, 0); (0, 1); (1, 0); (1, 1); (2, 0); (2, 1); (3, 0); (3, 1) ]
    (keys a);
  List.iter2
    (fun (n, s, sa) (_, _, sb) ->
      Alcotest.(check int)
        (Printf.sprintf "node%d.s%d sends" n s)
        sa.Msg_engine.sends sb.Msg_engine.sends;
      Alcotest.(check int)
        (Printf.sprintf "node%d.s%d recvs" n s)
        sa.Msg_engine.recvs sb.Msg_engine.recvs)
    a.Firehose.engines b.Firehose.engines;
  List.iter
    (fun (n, s, st) ->
      if st.Msg_engine.sends + st.Msg_engine.recvs = 0 then
        Alcotest.failf "engine node%d shard%d saw no traffic" n s)
    a.Firehose.engines

(* Metric names: single-shard machines keep the historical
   [node<i>.engine.*] names; sharded engines expose
   [node<i>.engine.s<k>.*] with zero-padded shard ids. *)
let test_shard_metric_names () =
  let module Metrics = Flipc_obs.Metrics in
  let names config =
    let machine =
      Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) ()
    in
    Machine.run ~until:1_000 machine;
    Machine.stop_engines machine;
    Machine.run machine;
    List.map fst
      (Metrics.snapshot (Flipc_obs.Obs.metrics (Machine.obs machine)))
  in
  let single = names Config.default in
  Alcotest.(check bool)
    "single-shard historical name" true
    (List.mem "node0.engine.iterations" single);
  Alcotest.(check bool)
    "no shard suffix when unsharded" false
    (List.exists
       (fun n -> n = "node0.engine.s00.iterations")
       single);
  let sharded = names { Config.default with Config.engine_shards = 2 } in
  List.iter
    (fun expect ->
      Alcotest.(check bool) expect true (List.mem expect sharded))
    [
      "node0.engine.s00.iterations";
      "node0.engine.s01.iterations";
      "node1.engine.s00.iterations";
      "node1.engine.s01.iterations";
    ]

let () =
  Alcotest.run "firehose"
    [
      ( "batching",
        [
          QCheck_alcotest.to_alcotest batched_fifo_prop;
          QCheck_alcotest.to_alcotest faulted_batch_prop;
        ] );
      ( "doorbell",
        [
          QCheck_alcotest.to_alcotest no_lost_wakeup_prop;
          QCheck_alcotest.to_alcotest concurrent_ringers_prop;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "deterministic per-shard snapshot" `Quick
            test_sharded_deterministic;
          Alcotest.test_case "probe names keyed by shard" `Quick
            test_shard_metric_names;
        ] );
    ]
