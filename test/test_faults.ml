(* Fault injection and recovery: the Faulty fabric wrapper's drop /
   duplicate / reorder / jitter injection, and the Retrans reliable
   channel's exactly-once in-order delivery over every lossy fabric. *)

module Sim = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Config = Flipc.Config
module Api = Flipc.Api
module Machine = Flipc.Machine
module Endpoint_kind = Flipc.Endpoint_kind
module Faulty = Flipc_net.Faulty
module Fabric = Flipc_net.Fabric
module Packet = Flipc_net.Packet
module Checksum = Flipc.Checksum
module Msg_buffer = Flipc.Msg_buffer
module Msg_engine = Flipc.Msg_engine
module Retrans = Flipc_flow.Retrans
module Provision = Flipc_flow.Provision

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Api.error_to_string e)

let encode_int i =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int i);
  b

let decode_int b = Int32.to_int (Bytes.get_int32_le b 0)

(* ------------------------------------------------------------------ *)
(* The Faulty wrapper itself: raw (unreliable) endpoints, so every wire
   drop is a missing delivery and the tally must account exactly.       *)

let test_faulty_drop_accounting () =
  let fault = Faulty.config ~drop:0.3 ~seed:11 () in
  let machine = Machine.create ~fault (Machine.Mesh { cols = 2; rows = 1 }) () in
  let total = 100 in
  let addr = Mailbox.create () in
  let delivered = ref 0 and endpoint_drops = ref 0 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 8 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Mailbox.put addr (Api.address api ep);
      let deadline = Vtime.ms 20 in
      while Sim.now (Machine.sim machine) < deadline do
        (match Api.receive api ep with
        | Some buf ->
            incr delivered;
            ok (Api.post_receive api ep buf)
        | None -> Mem_port.instr (Api.port api) 50);
        endpoint_drops := !endpoint_drops + Api.drops_read_and_reset api ep
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr);
      let buf = ok (Api.allocate_buffer api) in
      for _ = 1 to total do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ();
        (* Space the sends out so the receiver never overruns: every
           missing message is then a wire drop, not an endpoint discard. *)
        Sim.delay (Vtime.us 40)
      done);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let faults = Option.get (Machine.fault_stats machine) in
  check_bool "some packets dropped" true (faults.Faulty.dropped > 0);
  check "no endpoint discards" 0 !endpoint_drops;
  (* Credit the engine's own traffic: only FLIPC data packets flow here,
     so wire conservation is exact. *)
  check "delivered + dropped = sent" total (!delivered + faults.Faulty.dropped)

let test_faulty_duplicate_and_jitter () =
  let fault = Faulty.config ~duplicate:0.4 ~jitter_ns:3_000 ~seed:7 () in
  let machine = Machine.create ~fault (Machine.Mesh { cols = 2; rows = 1 }) () in
  let total = 60 in
  let addr = Mailbox.create () in
  let delivered = ref 0 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 8 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Mailbox.put addr (Api.address api ep);
      let deadline = Vtime.ms 15 in
      while Sim.now (Machine.sim machine) < deadline do
        (match Api.receive api ep with
        | Some buf ->
            incr delivered;
            ok (Api.post_receive api ep buf)
        | None -> Mem_port.instr (Api.port api) 50)
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr);
      let buf = ok (Api.allocate_buffer api) in
      for _ = 1 to total do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ();
        Sim.delay (Vtime.us 40)
      done);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let faults = Option.get (Machine.fault_stats machine) in
  check_bool "duplicates injected" true (faults.Faulty.duplicated > 0);
  check "every copy arrives" (total + faults.Faulty.duplicated) !delivered

(* ------------------------------------------------------------------ *)
(* Reliable channel: exactly-once, in-order delivery under faults, on
   every fabric.                                                        *)

type reliable_result = {
  got : int list;  (* payload integers in delivery order *)
  retransmits : int;
  duplicates : int;
  reordered : int;
  transport_drops : int;
  fault_dropped : int;
  fault_burst_dropped : int;
  fault_corrupted : int;
  corrupt_frames : int;  (* engine-side checksum discards, all nodes *)
  acks_sent : int;
  reacks_suppressed : int;
  srtt_ns : int;
  rto_current_ns : int;
  elapsed_ns : int;
}

let run_reliable ~kind ?cost ?(frame_checksum = false) ~fault ~messages ~rto_ns
    ?(mode = Retrans.Selective_repeat) ?(ack_every = 1) () =
  let config = Provision.config_for ~base:Config.default ~buffers:12 in
  let config = { config with Config.frame_checksum } in
  let machine =
    match cost with
    | Some cost -> Machine.create ~config ~cost ~fault kind ()
    | None -> Machine.create ~config ~fault kind ()
  in
  let rcfg =
    {
      Retrans.default_config with
      Retrans.rto_ns;
      max_rto_ns = 8 * rto_ns;
      mode;
      ack_every;
    }
  in
  let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
  let got = ref [] in
  let rstats = ref (0, 0, 0, 0, 0) in
  let sstats = ref (0, 0, 0) in
  (* With ack_every > 1 the receiver still owes withheld tail acks after
     the last delivery, so it must keep servicing retransmitted frames
     until the sender's flush has returned. *)
  let sender_done = ref false in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api ack_ep (Mailbox.take ack_addr);
      let r =
        Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      let deadline = Vtime.ms 4_000 in
      while
        (Retrans.delivered r < messages || not !sender_done)
        && Sim.now (Machine.sim machine) < deadline
      do
        match Retrans.recv r with
        | Some payload -> got := decode_int payload :: !got
        | None -> Mem_port.instr (Api.port api) 200
      done;
      rstats :=
        ( Retrans.duplicates r,
          Retrans.reordered r,
          Retrans.transport_drops r,
          Retrans.acks_sent r,
          Retrans.reacks_suppressed r ));
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Mailbox.put ack_addr (Api.address api ack_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let s =
        Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      for i = 1 to messages do
        match Retrans.send s (encode_int i) with
        | Ok () -> ()
        | Error `Timeout -> Alcotest.fail (Fmt.str "send %d timed out" i)
      done;
      (match Retrans.flush s ~timeout_ns:(Vtime.ms 2_000) with
      | Ok () -> ()
      | Error `Timeout -> Alcotest.fail "flush timed out");
      sender_done := true;
      sstats :=
        (Retrans.retransmits s, Retrans.srtt_ns s, Retrans.rto_current_ns s));
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let duplicates, reordered, transport_drops, acks_sent, reacks_suppressed =
    !rstats
  in
  let retransmits, srtt_ns, rto_current_ns = !sstats in
  let fault_dropped, fault_burst_dropped, fault_corrupted =
    match Machine.fault_stats machine with
    | Some f -> (f.Faulty.dropped, f.Faulty.burst_dropped, f.Faulty.corrupted)
    | None -> (0, 0, 0)
  in
  let corrupt_frames = ref 0 in
  for i = 0 to Machine.node_count machine - 1 do
    let st = Msg_engine.stats (Machine.msg_engine (Machine.node machine i)) in
    corrupt_frames := !corrupt_frames + st.Msg_engine.corrupt_frames
  done;
  {
    got = List.rev !got;
    retransmits;
    duplicates;
    reordered;
    transport_drops;
    fault_dropped;
    fault_burst_dropped;
    fault_corrupted;
    corrupt_frames = !corrupt_frames;
    acks_sent;
    reacks_suppressed;
    srtt_ns;
    rto_current_ns;
    elapsed_ns = Sim.now (Machine.sim machine);
  }

let expect_exactly_once ~messages r =
  check "delivered count" messages (List.length r.got);
  check_bool "in order, exactly once" true
    (r.got = List.init messages (fun i -> i + 1))

let test_reliable_mesh_loss () =
  let messages = 200 in
  let r =
    run_reliable
      ~kind:(Machine.Mesh { cols = 2; rows = 1 })
      ~fault:(Faulty.config ~drop:0.10 ~seed:42 ())
      ~messages ~rto_ns:200_000 ()
  in
  expect_exactly_once ~messages r;
  check_bool "wire actually lossy" true (r.fault_dropped > 0);
  check_bool "losses repaired by retransmission" true (r.retransmits > 0)

let test_reliable_ethernet_loss () =
  let messages = 120 in
  let r =
    run_reliable
      ~kind:(Machine.Ethernet { nodes = 2 })
      ~cost:Flipc_memsim.Cost_model.pc_cluster
      ~fault:(Faulty.config ~drop:0.10 ~seed:5 ())
      ~messages ~rto_ns:1_000_000 ()
  in
  expect_exactly_once ~messages r;
  check_bool "wire actually lossy" true (r.fault_dropped > 0);
  check_bool "losses repaired by retransmission" true (r.retransmits > 0)

let test_reliable_scsi_combined () =
  let messages = 120 in
  let r =
    run_reliable
      ~kind:(Machine.Scsi { nodes = 2 })
      ~cost:Flipc_memsim.Cost_model.pc_cluster
      ~fault:
        (Faulty.config ~drop:0.05 ~duplicate:0.05 ~reorder:0.05
           ~reorder_hold_ns:200_000 ~seed:9 ())
      ~messages ~rto_ns:1_000_000 ()
  in
  expect_exactly_once ~messages r

let test_reliable_mesh_dup_reorder () =
  let messages = 200 in
  let r =
    run_reliable
      ~kind:(Machine.Mesh { cols = 2; rows = 1 })
      ~fault:
        (Faulty.config ~duplicate:0.15 ~reorder:0.15 ~reorder_hold_ns:60_000
           ~jitter_ns:2_000 ~seed:3 ())
      ~messages ~rto_ns:200_000 ()
  in
  expect_exactly_once ~messages r;
  check_bool "receiver saw anomalies" true (r.duplicates + r.reordered > 0)

let test_reliable_no_faults_no_retransmits () =
  let messages = 150 in
  let r =
    run_reliable
      ~kind:(Machine.Mesh { cols = 2; rows = 1 })
      ~fault:Faulty.none ~messages ~rto_ns:200_000 ()
  in
  expect_exactly_once ~messages r;
  check "no spurious retransmissions" 0 r.retransmits;
  check "no duplicates" 0 r.duplicates

(* A dead receiver: the sender must report `Timeout, not spin forever. *)
let test_sender_times_out_on_dead_peer () =
  let config = Provision.config_for ~base:Config.default ~buffers:12 in
  let machine =
    Machine.create ~config
      ~fault:(Faulty.config ~drop:1.0 ~seed:1 ())
      (Machine.Mesh { cols = 2; rows = 1 })
      ()
  in
  let rcfg =
    {
      Retrans.default_config with
      Retrans.rto_ns = 50_000;
      max_rto_ns = 100_000;
      max_retries = 4;
    }
  in
  let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
  let outcome = ref None in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api ack_ep (Mailbox.take ack_addr);
      (* Receiver exists but every packet (both directions) is dropped. *)
      ignore
        (Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep
           ~ack_ep ~config:rcfg ()));
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Mailbox.put ack_addr (Api.address api ack_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let s =
        Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      ignore (Retrans.send s (encode_int 1));
      outcome := Some (Retrans.flush s ~timeout_ns:(Vtime.ms 50)));
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  match !outcome with
  | Some (Error `Timeout) -> ()
  | Some (Ok ()) -> Alcotest.fail "flush succeeded with a 100% lossy wire"
  | None -> Alcotest.fail "sender never completed"

(* ------------------------------------------------------------------ *)
(* Selective repeat vs go-back-N, adaptive RTO, and the accounting
   bugfix regressions.                                                  *)

(* Reorder-heavy soak: for the same fault seed, selective repeat must
   repair the stream with strictly fewer wire retransmissions than
   go-back-N (which resends the whole window for every hole). *)
let test_sr_beats_gbn_reorder_soak () =
  let messages = 4_000 in
  let run mode =
    run_reliable
      ~kind:(Machine.Mesh { cols = 2; rows = 1 })
      ~fault:(Faulty.config ~reorder:0.3 ~reorder_hold_ns:60_000 ~seed:21 ())
      ~messages ~rto_ns:200_000 ~mode ()
  in
  let sr = run Retrans.Selective_repeat in
  let gbn = run Retrans.Go_back_n in
  expect_exactly_once ~messages sr;
  expect_exactly_once ~messages gbn;
  check_bool "go-back-N pays for every hole" true (gbn.retransmits > 0);
  check_bool
    (Fmt.str "selective repeat retransmits strictly fewer (%d < %d)"
       sr.retransmits gbn.retransmits)
    true
    (sr.retransmits < gbn.retransmits);
  check_bool "receiver held out-of-order frames" true (sr.reordered > 0)

(* Clean-wire sender with a per-message or streaming load; returns the
   self-measured mean send->ack round trip plus the estimator's view. *)
let rtt_run ~rto_ns ~messages ~per_message () =
  let config = Provision.config_for ~base:Config.default ~buffers:12 in
  let machine = Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) () in
  let rcfg =
    {
      Retrans.default_config with
      Retrans.rto_ns;
      max_rto_ns = max 8_000_000 (8 * rto_ns);
    }
  in
  let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
  let total_rtt = ref 0 and out = ref (0, 0, 0) in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api ack_ep (Mailbox.take ack_addr);
      let r =
        Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      let deadline = Vtime.ms 4_000 in
      while
        Retrans.delivered r < messages
        && Sim.now (Machine.sim machine) < deadline
      do
        match Retrans.recv r with
        | Some _ -> ()
        | None -> Mem_port.instr (Api.port api) 200
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Mailbox.put ack_addr (Api.address api ack_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let s =
        Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      for i = 1 to messages do
        let t0 = Sim.now (Machine.sim machine) in
        (match Retrans.send s (encode_int i) with
        | Ok () -> ()
        | Error `Timeout -> Alcotest.fail (Fmt.str "send %d timed out" i));
        if per_message then begin
          (match Retrans.flush s ~timeout_ns:(Vtime.ms 10) with
          | Ok () -> ()
          | Error `Timeout -> Alcotest.fail "per-message flush timed out");
          total_rtt := !total_rtt + (Sim.now (Machine.sim machine) - t0)
        end
      done;
      (match Retrans.flush s ~timeout_ns:(Vtime.ms 1_000) with
      | Ok () -> ()
      | Error `Timeout -> Alcotest.fail "flush timed out");
      out := (Retrans.srtt_ns s, Retrans.rttvar_ns s, Retrans.rto_current_ns s));
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let srtt, rttvar, rto_cur = !out in
  ((if per_message then !total_rtt / messages else 0), srtt, rttvar, rto_cur)

(* The estimator must converge on the fabric's actual round trip, and
   the live RTO must track it rather than sit on the static config
   value. Self-calibrating: the first (stop-and-wait, generous-floor)
   run measures the true mesh RTT; the second run's floor is set well
   below it, so only measurement can explain the final rto_current. *)
let test_rto_tracks_measured_rtt () =
  let measured, srtt, _, _ =
    rtt_run ~rto_ns:1_000_000 ~messages:50 ~per_message:true ()
  in
  check_bool "stop-and-wait run measured a round trip" true (measured > 0);
  check_bool
    (Fmt.str "srtt within 2x of measured rtt (srtt=%dns measured=%dns)" srtt
       measured)
    true
    (srtt >= measured / 2 && srtt <= 2 * measured);
  let floor = max 1_000 (measured / 4) in
  let _, srtt2, _, rto_cur = rtt_run ~rto_ns:floor ~messages:300 ~per_message:false () in
  check_bool "streaming run sampled the rtt" true (srtt2 > 0);
  check_bool
    (Fmt.str "rto rose above its floor to the measured rtt (%dns > %dns)"
       rto_cur floor)
    true (rto_cur > floor);
  check_bool "rto covers srtt" true (rto_cur >= srtt2)

(* Bugfix regression: a full send ring must not inflate the retransmit
   counter. With the engines stopped nothing ever drains the ring, so
   every attempt past its capacity is pure backpressure; the sender must
   give up with `Timeout after a bounded number of refused rounds and
   report zero (re)transmissions, because none reached the wire. *)
let test_backpressure_not_phantom_retransmits () =
  let base = Provision.config_for ~base:Config.default ~buffers:24 in
  let config = { base with Config.queue_capacity = 5 } in
  let machine = Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) () in
  let rcfg =
    {
      Retrans.default_config with
      Retrans.rto_ns = 50_000;
      max_rto_ns = 400_000;
      max_retries = 5;
    }
  in
  let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
  let result = ref None and stats = ref (0, 0) in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api ack_ep (Mailbox.take ack_addr);
      ignore
        (Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep
           ~ack_ep ~config:rcfg ()));
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Mailbox.put ack_addr (Api.address api ack_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let s =
        Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      (* Wedge the transport: stop both engines, then give their final
         in-flight iteration time to retire while the rings are still
         empty. *)
      Machine.stop_engines machine;
      Sim.delay (Vtime.us 10);
      let rec go i =
        if i > 40 then None
        else
          match Retrans.send s (encode_int i) with
          | Ok () -> go (i + 1)
          | Error `Timeout -> Some i
      in
      result := go 1;
      stats := (Retrans.retransmits s, Retrans.backpressure s));
  Machine.run machine;
  let retransmits, backpressure = !stats in
  check_bool "send eventually reports timeout" true (!result <> None);
  check_bool "transport refused attempts" true (backpressure > 0);
  check "no phantom retransmits counted" 0 retransmits

(* Bugfix regression: transient transmit-pool starvation is not a dead
   peer. With a 15-slot ring, a 10-buffer pool and engines that only
   visit every ~600ms (jitter floor 450ms), the first RTO round drains
   the pool while the ring still holds every buffer; take_buffer's spin
   budget (100k spins x 200 instr x 20ns = 400ms) then expires with the
   peer entirely healthy. The old code surfaced that as the same
   `Timeout as max_retries expiry, aborting the send. *)
let test_pool_starvation_recovers () =
  let base = Provision.config_for ~base:Config.default ~buffers:32 in
  let config =
    { base with Config.queue_capacity = 16; engine_poll_ns = 600_000_000 }
  in
  let machine = Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) () in
  let rcfg =
    { Retrans.default_config with Retrans.rto_ns = 100_000; max_rto_ns = 800_000 }
  in
  let messages = 12 in
  let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
  let got = ref [] and stats = ref (0, 0) in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api ack_ep (Mailbox.take ack_addr);
      let r =
        Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      let deadline = Vtime.ms 4_000 in
      while
        Retrans.delivered r < messages
        && Sim.now (Machine.sim machine) < deadline
      do
        match Retrans.recv r with
        | Some payload -> got := decode_int payload :: !got
        | None -> Mem_port.instr (Api.port api) 200
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Mailbox.put ack_addr (Api.address api ack_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let s =
        Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      for i = 1 to messages do
        match Retrans.send s (encode_int i) with
        | Ok () -> ()
        | Error `Timeout ->
            Alcotest.fail
              (Fmt.str "transient starvation aborted send %d as peer-dead" i)
      done;
      (match Retrans.flush s ~timeout_ns:(Vtime.ms 3_000) with
      | Ok () -> ()
      | Error `Timeout -> Alcotest.fail "flush timed out");
      stats := (Retrans.retransmits s, Retrans.backpressure s));
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let retransmits, backpressure = !stats in
  check "all messages delivered" messages (List.length !got);
  check_bool "in order, exactly once" true
    (List.rev !got = List.init messages (fun i -> i + 1));
  check_bool "pool actually starved mid-run" true (backpressure > 0);
  check_bool "recovery used real retransmissions" true (retransmits > 0)

(* Bugfix regression: a duplicate burst must not become an ack storm.
   Every dup used to trigger an immediate re-ack; with ack_every=4 the
   receiver may now re-ack at most once per 4 anomalies plus one
   RTO-tick refresh, so total acks stay near delivered/4 + dups/4. *)
let test_reack_storm_rate_limited () =
  let messages = 400 in
  let rto_ns = 200_000 in
  let r =
    run_reliable
      ~kind:(Machine.Mesh { cols = 2; rows = 1 })
      ~fault:(Faulty.config ~duplicate:0.5 ~seed:13 ())
      ~messages ~rto_ns ~ack_every:4 ()
  in
  expect_exactly_once ~messages r;
  check_bool "wire duplicated heavily" true (r.duplicates > messages / 4);
  check_bool "rate limiter suppressed re-acks" true (r.reacks_suppressed > 0);
  let bound =
    (messages / 4) + r.reordered + (r.duplicates / 4) + (r.elapsed_ns / rto_ns)
    + 16
  in
  check_bool
    (Fmt.str "ack volume capped (%d <= %d)" r.acks_sent bound)
    true
    (r.acks_sent <= bound)

(* ------------------------------------------------------------------ *)
(* The rewritten injector: per-fault PRNG streams, duplicate aliasing,
   zero-hold reorder normalization, payload corruption, and the
   Gilbert–Elliott burst model — driven through a capturing mock fabric
   so every wire-level packet is inspectable.                            *)

let capture_fabric () =
  let seen = ref [] in
  ( seen,
    {
      Fabric.name = "capture";
      node_count = 2;
      send = (fun p -> seen := p :: !seen);
      set_handler = (fun _ _ -> ());
      stats = Fabric.fresh_stats ();
    } )

let raw_packet ~seq payload = Packet.make ~src:0 ~dst:1 ~protocol:Packet.Raw ~seq payload

(* Bugfix regression: the duplicate path used to submit the same Packet.t
   (same payload bytes) twice. Both copies now carry independent payload
   buffers, so damaging one transmission can never damage the other. *)
let test_duplicate_copies_do_not_alias () =
  let sim = Sim.create () in
  let seen, inner = capture_fabric () in
  let w =
    Faulty.wrap ~engine:sim ~config:(Faulty.config ~duplicate:1.0 ~seed:5 ()) inner
  in
  Sim.spawn sim (fun () ->
      for i = 1 to 10 do
        w.Fabric.send (raw_packet ~seq:i (Bytes.make 16 (Char.chr i)))
      done);
  Sim.run sim;
  let pkts = List.rev !seen in
  check "two copies per send" 20 (List.length pkts);
  let rec pairs = function a :: b :: tl -> (a, b) :: pairs tl | _ -> [] in
  List.iter
    (fun ((a : Packet.t), (b : Packet.t)) ->
      check_bool "copies do not share payload bytes" false
        (a.Packet.payload == b.Packet.payload);
      let before = Bytes.copy b.Packet.payload in
      Bytes.set a.Packet.payload 0 '\255';
      check_bool "mutating one copy leaves the other intact" true
        (Bytes.equal before b.Packet.payload))
    (pairs pkts)

(* Corruption must stay confined to the one transmission it hit: with
   both faults certain, the primary copy is damaged and the duplicate is
   a byte-identical clean copy of the original. *)
let test_corruption_does_not_bleed_into_duplicate () =
  let sim = Sim.create () in
  let seen, inner = capture_fabric () in
  let w =
    Faulty.wrap ~engine:sim
      ~config:(Faulty.config ~duplicate:1.0 ~corrupt:1.0 ~seed:6 ())
      inner
  in
  let original = Bytes.init 32 (fun i -> Char.chr (i * 7 land 0xff)) in
  Sim.spawn sim (fun () ->
      w.Fabric.send (raw_packet ~seq:1 (Bytes.copy original)));
  Sim.run sim;
  match List.rev !seen with
  | [ first; dup ] ->
      check_bool "primary transmission damaged" false
        (Bytes.equal original first.Packet.payload);
      check_bool "duplicate stays clean" true
        (Bytes.equal original dup.Packet.payload)
  | l -> Alcotest.fail (Fmt.str "expected 2 packets, saw %d" (List.length l))

let multiplicities ~drop ~messages =
  let sim = Sim.create () in
  let seen, inner = capture_fabric () in
  let w =
    Faulty.wrap ~engine:sim
      ~config:(Faulty.config ~drop ~duplicate:0.3 ~seed:77 ())
      inner
  in
  Sim.spawn sim (fun () ->
      for i = 1 to messages do
        w.Fabric.send (raw_packet ~seq:i (Bytes.create 8))
      done);
  Sim.run sim;
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (p : Packet.t) ->
      Hashtbl.replace counts p.Packet.seq
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.Packet.seq)))
    !seen;
  (counts, Option.get (Faulty.stats_of w))

(* Bugfix regression: the fault draws used to share one PRNG stream with
   short-circuit evaluation, so enabling drop shifted which packets got
   duplicated. Each fault now has its own stream: whether packet #i is
   duplicated is a function of i alone, so every packet that survives a
   lossy run keeps exactly the multiplicity it had on the clean run. *)
let test_fault_streams_independent () =
  let messages = 400 in
  let clean, clean_stats = multiplicities ~drop:0.0 ~messages in
  let lossy, lossy_stats = multiplicities ~drop:0.9 ~messages in
  check_bool "clean run duplicated some packets" true
    (clean_stats.Faulty.duplicated > 0);
  check_bool "lossy run dropped most packets" true
    (lossy_stats.Faulty.dropped > messages / 2);
  Hashtbl.iter
    (fun seq mult ->
      check
        (Fmt.str "seq %d multiplicity unchanged by the drop stream" seq)
        (Hashtbl.find clean seq) mult)
    lossy

(* Deterministic tallies for a pinned seed: the per-fault stream split is
   part of the seeded-replay contract, so these exact counts are load-
   bearing — a change here means every seeded fault run replays
   differently. *)
let test_fault_tallies_pinned () =
  let sim = Sim.create () in
  let seen, inner = capture_fabric () in
  let w =
    Faulty.wrap ~engine:sim
      ~config:
        (Faulty.config ~drop:0.1 ~duplicate:0.2 ~corrupt:0.2
           ~burst:
             (Faulty.burst ~p_good_bad:0.05 ~p_bad_good:0.3 ~drop_bad:0.5 ())
           ~seed:123 ())
      inner
  in
  Sim.spawn sim (fun () ->
      for i = 1 to 500 do
        w.Fabric.send (raw_packet ~seq:i (Bytes.create 16))
      done);
  Sim.run sim;
  let st = Option.get (Faulty.stats_of w) in
  check "dropped" 54 st.Faulty.dropped;
  check "burst_dropped" 25 st.Faulty.burst_dropped;
  check "duplicated" 81 st.Faulty.duplicated;
  check "corrupted" 82 st.Faulty.corrupted;
  check "ge occupancy accounts every packet" 500
    (st.Faulty.ge_good_pkts + st.Faulty.ge_bad_pkts);
  check "wire conservation" (List.length !seen)
    (500 - st.Faulty.dropped - st.Faulty.burst_dropped + st.Faulty.duplicated)

(* Bugfix regression: reorder_hold_ns = 0 used to count "reorders" and
   defer packets by a zero hold that could never let anything overtake
   them. A zero hold now disables reordering outright: everything arrives
   immediately, in order, with a zero tally. *)
let test_zero_hold_disables_reorder () =
  let sim = Sim.create () in
  let seen, inner = capture_fabric () in
  let w =
    Faulty.wrap ~engine:sim
      ~config:(Faulty.config ~reorder:1.0 ~reorder_hold_ns:0 ~seed:9 ())
      inner
  in
  Sim.spawn sim (fun () ->
      for i = 1 to 50 do
        w.Fabric.send (raw_packet ~seq:i (Bytes.create 8))
      done);
  Sim.run sim;
  let seqs = List.rev_map (fun (p : Packet.t) -> p.Packet.seq) !seen in
  check "all packets arrive" 50 (List.length seqs);
  check_bool "arrivals in send order" true
    (seqs = List.init 50 (fun i -> i + 1));
  let st = Option.get (Faulty.stats_of w) in
  check "no reorders counted" 0 st.Faulty.reordered;
  check "no delays counted" 0 st.Faulty.delayed

(* Property: over many packets the two-state chain obeys its stationary
   distribution — bad-state occupancy ~ p_gb/(p_gb+p_bg), loss ~ the
   occupancy-weighted drop rates, mean burst length ~ 1/p_bg. *)
let ge_stationary_prop =
  QCheck.Test.make ~name:"gilbert-elliott matches its stationary model"
    ~count:6
    QCheck.(
      quad (int_range 2 8) (int_range 20 50) (int_range 30 80)
        (int_range 1 100_000))
    (fun (gb_pct, bg_pct, db_pct, seed) ->
      let p_gb = float_of_int gb_pct /. 100.0 in
      let p_bg = float_of_int bg_pct /. 100.0 in
      let drop_bad = float_of_int db_pct /. 100.0 in
      let n = 20_000 in
      let sim = Sim.create () in
      let seen, inner = capture_fabric () in
      let w =
        Faulty.wrap ~engine:sim
          ~config:
            (Faulty.config
               ~burst:
                 (Faulty.burst ~p_good_bad:p_gb ~p_bad_good:p_bg
                    ~drop_good:0.0 ~drop_bad ())
               ~seed ())
          inner
      in
      Sim.spawn sim (fun () ->
          for i = 1 to n do
            w.Fabric.send (raw_packet ~seq:i (Bytes.create 8))
          done);
      Sim.run sim;
      let st = Option.get (Faulty.stats_of w) in
      let fi = float_of_int in
      let pi_b = p_gb /. (p_gb +. p_bg) in
      let close ?(tol = 0.35) actual expected =
        Float.abs (actual -. expected) <= (tol *. expected) +. 0.005
      in
      st.Faulty.ge_good_pkts + st.Faulty.ge_bad_pkts = n
      && List.length !seen + st.Faulty.burst_dropped = n
      && st.Faulty.ge_bursts > 0
      && close (fi st.Faulty.ge_bad_pkts /. fi n) pi_b
      && close (fi st.Faulty.burst_dropped /. fi n) (pi_b *. drop_bad)
      && close ~tol:0.25
           (fi st.Faulty.ge_bad_pkts /. fi st.Faulty.ge_bursts)
           (1.0 /. p_bg))

(* ------------------------------------------------------------------ *)
(* Frame checksum: digest round-trip, damage detection, and the
   engine-level discard feeding Retrans recovery end to end.            *)

let trailer_image body =
  let digest = Checksum.fold30 (Checksum.of_bytes body) in
  let t = Bytes.create 4 in
  Bytes.set_int32_le t 0 (Int32.of_int digest);
  Bytes.cat body t

let checksum_roundtrip_prop =
  QCheck.Test.make ~name:"checksum round-trips and catches any bit flip"
    ~count:100
    QCheck.(pair (string_of_size Gen.(int_range 4 128)) (int_range 0 max_int))
    (fun (body, r) ->
      let img = trailer_image (Bytes.of_string body) in
      let intact = Msg_buffer.image_checksum_ok img in
      let bit = r mod (Bytes.length img * 8) in
      let flipped = Bytes.copy img in
      Bytes.set flipped (bit lsr 3)
        (Char.chr
           (Char.code (Bytes.get flipped (bit lsr 3)) lxor (1 lsl (bit land 7))));
      intact && not (Msg_buffer.image_checksum_ok flipped))

let test_checksum_of_words_consistent () =
  let b = Bytes.init 64 (fun i -> Char.chr (((i * 37) + 5) land 0xff)) in
  let word i = Int32.to_int (Bytes.get_int32_le b (4 * i)) land 0xFFFFFFFF in
  check "word-at-a-time digest equals byte digest" (Checksum.of_bytes b)
    (Checksum.of_words ~nwords:16 word)

(* End to end: a corrupting wire with the frame checksum on. The engine
   must discard every damaged frame before demultiplexing (they look like
   loss), Retrans must repair the stream, and not one damaged payload may
   reach the application — expect_exactly_once checks content, so a leak
   fails the order/content assertion. *)
let test_reliable_corrupt_checksum () =
  let messages = 150 in
  let r =
    run_reliable
      ~kind:(Machine.Mesh { cols = 2; rows = 1 })
      ~frame_checksum:true
      ~fault:(Faulty.config ~corrupt:0.15 ~seed:17 ())
      ~messages ~rto_ns:200_000 ()
  in
  expect_exactly_once ~messages r;
  check_bool "wire corrupted some frames" true (r.fault_corrupted > 0);
  check_bool "engine discarded corrupt frames" true (r.corrupt_frames > 0);
  check_bool "corruption repaired by retransmission" true (r.retransmits > 0)

(* Gilbert–Elliott burst loss end to end: whole windows can vanish in one
   bad period, and selective repeat must still deliver exactly once. *)
let test_reliable_burst_loss () =
  let messages = 200 in
  let r =
    run_reliable
      ~kind:(Machine.Mesh { cols = 2; rows = 1 })
      ~fault:
        (Faulty.config
           ~burst:
             (Faulty.burst ~p_good_bad:0.05 ~p_bad_good:0.3 ~drop_bad:0.6 ())
           ~seed:23 ())
      ~messages ~rto_ns:200_000 ()
  in
  expect_exactly_once ~messages r;
  check_bool "bursts actually dropped packets" true (r.fault_burst_dropped > 0);
  check_bool "burst losses repaired" true (r.retransmits > 0)

(* Per-link faults: only the data direction of flow 0 is damaged; the
   clean reverse (ack) path and the engine checksum keep recovery exact. *)
let test_reliable_per_link_faults () =
  let messages = 150 in
  let config = Provision.config_for ~base:Config.default ~buffers:12 in
  let config = { config with Config.frame_checksum = true } in
  let bad =
    Faulty.config ~drop:0.15 ~corrupt:0.1
      ~burst:(Faulty.burst ~p_good_bad:0.05 ~p_bad_good:0.3 ~drop_bad:0.5 ())
      ~seed:31 ()
  in
  let links ~src ~dst = if src = 0 && dst = 1 then Some bad else None in
  let machine =
    Machine.create ~config ~fault_links:links
      (Machine.Mesh { cols = 2; rows = 1 })
      ()
  in
  let rcfg =
    {
      Retrans.default_config with
      Retrans.rto_ns = 200_000;
      max_rto_ns = 1_600_000;
    }
  in
  let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
  let got = ref [] in
  let sender_done = ref false in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api ack_ep (Mailbox.take ack_addr);
      let r =
        Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      let deadline = Vtime.ms 4_000 in
      while
        (Retrans.delivered r < messages || not !sender_done)
        && Sim.now (Machine.sim machine) < deadline
      do
        match Retrans.recv r with
        | Some payload -> got := decode_int payload :: !got
        | None -> Mem_port.instr (Api.port api) 200
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      Mailbox.put ack_addr (Api.address api ack_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let s =
        Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
          ~config:rcfg ()
      in
      for i = 1 to messages do
        match Retrans.send s (encode_int i) with
        | Ok () -> ()
        | Error `Timeout -> Alcotest.fail (Fmt.str "send %d timed out" i)
      done;
      (match Retrans.flush s ~timeout_ns:(Vtime.ms 2_000) with
      | Ok () -> ()
      | Error `Timeout -> Alcotest.fail "flush timed out");
      sender_done := true);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  check "delivered count" messages (List.length !got);
  check_bool "in order, exactly once" true
    (List.rev !got = List.init messages (fun i -> i + 1));
  let faults = Option.get (Machine.fault_stats machine) in
  check_bool "the bad link actually faulted" true
    (faults.Faulty.dropped + faults.Faulty.burst_dropped
     + faults.Faulty.corrupted > 0)

(* Property: for any small fault mix and seed, the reliable channel is
   exactly-once and in-order on the mesh. *)
let reliable_exactly_once_prop =
  QCheck.Test.make ~name:"reliable channel exactly-once under random faults"
    ~count:8
    QCheck.(
      quad (int_range 0 10) (int_range 0 10) (int_range 0 10) (int_range 1 1000))
    (fun (drop_pct, dup_pct, reorder_pct, seed) ->
      let messages = 60 in
      let fault =
        Faulty.config
          ~drop:(float_of_int drop_pct /. 100.)
          ~duplicate:(float_of_int dup_pct /. 100.)
          ~reorder:(float_of_int reorder_pct /. 100.)
          ~reorder_hold_ns:60_000 ~seed ()
      in
      let r =
        run_reliable
          ~kind:(Machine.Mesh { cols = 2; rows = 1 })
          ~fault ~messages ~rto_ns:200_000 ()
      in
      r.got = List.init messages (fun i -> i + 1))

let () =
  Alcotest.run "faults"
    [
      ( "faulty-fabric",
        [
          Alcotest.test_case "drop accounting" `Quick
            test_faulty_drop_accounting;
          Alcotest.test_case "duplicate + jitter" `Quick
            test_faulty_duplicate_and_jitter;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "duplicate copies do not alias" `Quick
            test_duplicate_copies_do_not_alias;
          Alcotest.test_case "corruption confined to one copy" `Quick
            test_corruption_does_not_bleed_into_duplicate;
          Alcotest.test_case "fault streams independent" `Quick
            test_fault_streams_independent;
          Alcotest.test_case "seeded tallies pinned" `Quick
            test_fault_tallies_pinned;
          Alcotest.test_case "zero hold disables reorder" `Quick
            test_zero_hold_disables_reorder;
          QCheck_alcotest.to_alcotest ge_stationary_prop;
        ] );
      ( "checksum",
        [
          QCheck_alcotest.to_alcotest checksum_roundtrip_prop;
          Alcotest.test_case "of_words consistent with of_bytes" `Quick
            test_checksum_of_words_consistent;
        ] );
      ( "reliable-channel",
        [
          Alcotest.test_case "mesh 10% loss" `Quick test_reliable_mesh_loss;
          Alcotest.test_case "ethernet 10% loss" `Quick
            test_reliable_ethernet_loss;
          Alcotest.test_case "scsi loss+dup+reorder" `Quick
            test_reliable_scsi_combined;
          Alcotest.test_case "mesh dup+reorder" `Quick
            test_reliable_mesh_dup_reorder;
          Alcotest.test_case "clean wire: zero retransmits" `Quick
            test_reliable_no_faults_no_retransmits;
          Alcotest.test_case "corrupt wire + frame checksum" `Quick
            test_reliable_corrupt_checksum;
          Alcotest.test_case "gilbert-elliott burst loss" `Quick
            test_reliable_burst_loss;
          Alcotest.test_case "per-link faults" `Quick
            test_reliable_per_link_faults;
          Alcotest.test_case "dead peer times out" `Quick
            test_sender_times_out_on_dead_peer;
          QCheck_alcotest.to_alcotest reliable_exactly_once_prop;
        ] );
      ( "selective-repeat",
        [
          Alcotest.test_case "SR beats GBN on reorder soak" `Slow
            test_sr_beats_gbn_reorder_soak;
          Alcotest.test_case "RTO tracks measured RTT" `Quick
            test_rto_tracks_measured_rtt;
          Alcotest.test_case "backpressure is not a retransmit" `Quick
            test_backpressure_not_phantom_retransmits;
          Alcotest.test_case "pool starvation recovers" `Quick
            test_pool_starvation_recovers;
          Alcotest.test_case "re-ack storm rate limited" `Quick
            test_reack_storm_rate_limited;
        ] );
    ]
