(* Soak tests: many concurrent traffic sources on one machine, with
   machine-wide accounting invariants checked at the end.

   The key invariant: with only valid destinations, every message an
   engine transmits is either deposited or discarded at its destination —
   sum(sends) = sum(recvs) + sum(drops) across the whole machine.

   The random flows run over {!Flipc_flow.Window} credit flow control
   rather than the raw optimistic {!Flipc.Channel}: the raw transport
   gives no delivery guarantee, and under unlucky seeds (QCHECK_SEED=12
   derived seed 9888) a victim receiver sharing its CPU port with a busy
   sender drained its posted window, dropped a message, and the
   "receive until count" loop spun forever. The window bounds in-flight
   messages so nothing is dropped, and every poll loop carries a
   virtual-time watchdog that dumps a flight-recorder report instead of
   hanging when progress stops. An online invariant monitor
   ({!Flipc.Machine.attach_monitor}) rides along and must stay clean. *)

module Sim = Flipc_sim.Engine
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Config = Flipc.Config
module Window = Flipc_flow.Window
module Nameservice = Flipc.Nameservice
module Msg_engine = Flipc.Msg_engine
module Endpoint_kind = Flipc.Endpoint_kind
module Monitor = Flipc_obs.Monitor
module Prng = Flipc_sim.Prng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Api.error_to_string e)

let machine_totals machine =
  let sends = ref 0 and recvs = ref 0 and drops = ref 0 in
  for i = 0 to Machine.node_count machine - 1 do
    let s = Msg_engine.stats (Machine.msg_engine (Machine.node machine i)) in
    sends := !sends + s.Msg_engine.sends;
    recvs := !recvs + s.Msg_engine.recvs;
    drops := !drops + s.Msg_engine.drops
  done;
  (!sends, !recvs, !drops)

(* On watchdog expiry, fail loudly with the flight recorder instead of
   spinning: queue depths, engine counters, event-ring tails and (when
   known) the stalled message's causal trace. *)
let stall machine wd ?mid () =
  Alcotest.fail (Monitor.Watchdog.report ?mid wd [ Machine.obs machine ])

(* Flow payloads are length-framed (4-byte little-endian prefix) so the
   receiver can check integrity without a per-flow side channel. *)
let frame payload =
  let b = Bytes.create (4 + Bytes.length payload) in
  Bytes.set_int32_le b 0 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 b 4 (Bytes.length payload);
  b

(* One soak scenario: [pairs] credit-windowed flows between pseudo-random
   node pairs of a 3x3 mesh, each with its own message count and payload
   size; plus one deliberately under-buffered endpoint taking a flood of
   raw optimistic sends (to force discards into the accounting). *)
let run_soak ~seed ~pairs =
  let config =
    { Config.default with Config.endpoints = 32; total_buffers = 192 }
  in
  let machine = Machine.create ~config (Machine.Mesh { cols = 3; rows = 3 }) () in
  let mon = Machine.attach_monitor machine in
  let sim = Machine.sim machine in
  let ns = Machine.names machine in
  let prng = Prng.create ~seed in
  let nodes = Machine.node_count machine in
  let window = 6 in
  let expected = ref 0 in
  let delivered = ref 0 in
  for flow = 0 to pairs - 1 do
    let src = Prng.int prng nodes in
    let dst = (src + 1 + Prng.int prng (nodes - 1)) mod nodes in
    let count = 10 + Prng.int prng 30 in
    let payload = 1 + Prng.int prng 100 in
    let name = Printf.sprintf "flow-%d" flow in
    expected := !expected + count;
    Machine.spawn_app ~name:(name ^ "-rx") machine ~node:dst (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        let credit_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        Nameservice.register ns (name ^ "-data") (Api.address api data_ep);
        Api.connect api credit_ep (Nameservice.lookup ns (name ^ "-credit"));
        let rx = Window.create_receiver api ~data_ep ~credit_ep ~window () in
        let wd = Monitor.Watchdog.create ~sim ~name:(name ^ "-rx") () in
        let got = ref 0 in
        while !got < count do
          match Window.recv rx with
          | Some buf ->
              let hdr = Api.read_payload api buf 4 in
              check ("frame length " ^ name) payload
                (Int32.to_int (Bytes.get_int32_le hdr 0));
              Window.consumed rx buf;
              Monitor.Watchdog.progress wd;
              incr got;
              incr delivered
          | None ->
              if Monitor.Watchdog.expired wd then
                stall machine wd ~mid:(Api.last_recv_msg_id api) ();
              Mem_port.instr (Api.port api) 7
        done);
    Machine.spawn_app ~name:(name ^ "-tx") machine ~node:src (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        let credit_recv_ep =
          ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
        in
        Nameservice.register ns (name ^ "-credit")
          (Api.address api credit_recv_ep);
        Api.connect api data_ep (Nameservice.lookup ns (name ^ "-data"));
        let tx = Window.create_sender api ~data_ep ~credit_recv_ep ~window () in
        let wd = Monitor.Watchdog.create ~sim ~name:(name ^ "-tx") () in
        let image = frame (Bytes.make payload 'x') in
        let free = Queue.create () in
        for _ = 1 to window + 2 do
          Queue.push (ok (Api.allocate_buffer api)) free
        done;
        for _ = 1 to count do
          let rec get () =
            (match Api.reclaim api data_ep with
            | Some b -> Queue.push b free
            | None -> ());
            match Queue.take_opt free with
            | Some b -> b
            | None ->
                if Monitor.Watchdog.expired wd then
                  stall machine wd ~mid:(Api.last_msg_id api) ();
                Mem_port.instr (Api.port api) 5;
                get ()
          in
          let buf = get () in
          Api.write_payload api buf image;
          let rec push () =
            match Window.send_timeout tx ~max_spins:5_000 buf with
            | Ok () -> Monitor.Watchdog.progress wd
            | Error `Timeout ->
                if Monitor.Watchdog.expired wd then
                  stall machine wd ~mid:(Api.last_msg_id api) ();
                push ()
          in
          push ()
        done)
  done;
  (* The flood victim: two buffers, slow consumer, bounded run. *)
  let flood_count = 150 in
  let flood_drops = ref 0 and flood_got = ref 0 in
  Machine.spawn_app ~name:"victim" machine ~node:4 (fun api ->
      let ep =
        Result.get_ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
      in
      for _ = 1 to 2 do
        ignore
          (Api.post_receive api ep (Result.get_ok (Api.allocate_buffer api))
            : (unit, Api.error) result)
      done;
      Nameservice.register ns "victim" (Api.address api ep);
      let wd = Monitor.Watchdog.create ~sim ~name:"victim" () in
      while !flood_got + !flood_drops < flood_count do
        (match Api.receive api ep with
        | Some buf ->
            incr flood_got;
            Monitor.Watchdog.progress wd;
            Mem_port.instr (Api.port api) 3_000;
            ignore (Api.post_receive api ep buf : (unit, Api.error) result)
        | None ->
            if Monitor.Watchdog.expired wd then
              stall machine wd ~mid:(Api.last_recv_msg_id api) ();
            Mem_port.instr (Api.port api) 10);
        let d = Api.drops_read_and_reset api ep in
        if d > 0 then Monitor.Watchdog.progress wd;
        flood_drops := !flood_drops + d
      done);
  Machine.spawn_app ~name:"flooder" machine ~node:8 (fun api ->
      let ep =
        Result.get_ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ())
      in
      Api.connect api ep (Nameservice.lookup ns "victim");
      let buf = Result.get_ok (Api.allocate_buffer api) in
      let wd = Monitor.Watchdog.create ~sim ~name:"flooder" () in
      for _ = 1 to flood_count do
        (match Api.send api ep buf with Ok () -> () | Error _ -> ());
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> Monitor.Watchdog.progress wd
          | None ->
              if Monitor.Watchdog.expired wd then
                stall machine wd ~mid:(Api.last_msg_id api) ();
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ()
      done);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let sends, recvs, drops = machine_totals machine in
  check "all windowed flows complete" !expected !delivered;
  check "flood accounted" flood_count (!flood_got + !flood_drops);
  check_bool "flood actually dropped" true (!flood_drops > 0);
  check "machine-wide conservation" sends (recvs + drops);
  if not (Monitor.clean mon) then
    Alcotest.fail (Format.asprintf "@[<v>%a@]" Monitor.pp_report mon)

let test_soak_small () = run_soak ~seed:101 ~pairs:4
let test_soak_large () = run_soak ~seed:202 ~pairs:10

(* ------------------------------------------------------------------ *)
(* Layered-stack soak matrix: the composed {!Flipc_flow.Transport}
   stacks (Retrans_layer over Channel_transport, and the deeper
   retrans-over-window tower) driven all-to-all through faulted
   fabrics by {!Flipc_workload.Stackflow}, with the invariant monitor
   and per-flow watchdogs attached. Exactly-once is the bar: delivered
   must equal expected, nothing may leak a corrupt payload past the
   frame checksum, no watchdog may expire, and on lossy cells the
   retransmission layer must have visibly worked for the cell to count
   as exercised. *)

module Stackflow = Flipc_workload.Stackflow
module Faulty = Flipc_net.Faulty

let stack_fault ~scenario ~seed =
  let hold = 100_000 in
  match scenario with
  | "uniform" ->
      Faulty.config ~drop:0.05 ~duplicate:0.02 ~reorder:0.15
        ~reorder_hold_ns:hold ~seed ()
  | "burst" ->
      Faulty.config
        ~burst:(Faulty.burst ~p_good_bad:0.05 ~p_bad_good:0.3 ~drop_bad:0.5 ())
        ~seed ()
  | "corrupt" -> Faulty.config ~corrupt:0.08 ~seed ()
  | "combined" ->
      Faulty.config ~drop:0.03 ~duplicate:0.02 ~reorder:0.1
        ~reorder_hold_ns:hold ~corrupt:0.03
        ~burst:(Faulty.burst ~p_good_bad:0.03 ~p_bad_good:0.3 ~drop_bad:0.4 ())
        ~seed ()
  | _ -> assert false

let run_stack_cell ?(stack = Stackflow.Retrans_over_channel) ~scenario
    ~messages () =
  let fault = stack_fault ~scenario ~seed:(4242 + String.length scenario) in
  let r =
    Stackflow.run ~stack ~fault
      ~kind:(Machine.Mesh { cols = 2; rows = 2 })
      ~nodes:4 ~messages ()
  in
  let label fmt =
    Printf.ksprintf
      (fun s -> Printf.sprintf "%s/%s %s" (Stackflow.stack_name stack) scenario s)
      fmt
  in
  check (label "exactly-once delivery") r.Stackflow.expected
    r.Stackflow.delivered;
  check (label "no corrupt payload leaks") 0 r.Stackflow.corrupt_leaks;
  check (label "no stalled flows") 0 r.Stackflow.watchdogs_expired;
  check (label "monitor violations") 0 r.Stackflow.monitor_violations;
  check_bool (label "cell verdict clean") true r.Stackflow.clean;
  check_bool (label "faults actually exercised recovery") true
    (r.Stackflow.retransmits > 0)

(* The clean-fabric control: the deepest tower (retrans over window over
   channel) completes without a single retransmission — flow control
   alone paces it. Under wire loss this composition is excluded by the
   stacking rule (a dropped data frame permanently eats a window
   credit), which the transport conformance suite pins separately. *)
let test_stack_tower_clean () =
  let r =
    Stackflow.run ~stack:Stackflow.Retrans_over_window
      ~kind:(Machine.Mesh { cols = 2; rows = 2 })
      ~nodes:4 ~messages:20 ()
  in
  check "tower exactly-once" r.Stackflow.expected r.Stackflow.delivered;
  check_bool "tower clean" true r.Stackflow.clean;
  check "tower needs no retransmissions on a clean fabric" 0
    r.Stackflow.retransmits

let soak_prop =
  QCheck.Test.make ~name:"soak conservation over random seeds" ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
      run_soak ~seed:(seed + 1) ~pairs:5;
      true)

let () =
  Alcotest.run "soak"
    [
      ( "scenarios",
        [
          Alcotest.test_case "small" `Quick test_soak_small;
          Alcotest.test_case "large" `Slow test_soak_large;
          QCheck_alcotest.to_alcotest soak_prop;
        ] );
      ( "stacks",
        [
          Alcotest.test_case "retrans/channel, uniform faults" `Quick
            (run_stack_cell ~scenario:"uniform" ~messages:12);
          Alcotest.test_case "retrans/channel, burst loss" `Quick
            (run_stack_cell ~scenario:"burst" ~messages:12);
          Alcotest.test_case "retrans/channel, corruption" `Quick
            (run_stack_cell ~scenario:"corrupt" ~messages:12);
          Alcotest.test_case "retrans/channel, combined faults" `Slow
            (run_stack_cell ~scenario:"combined" ~messages:30);
          Alcotest.test_case "retrans/window tower, clean fabric" `Quick
            test_stack_tower_clean;
        ] );
    ]
