(* Calibration regression guards: loose bounds on the headline reproduction
   numbers, so a change to the cost model or the message path that silently
   breaks the paper's shapes fails the suite rather than only showing up in
   EXPERIMENTS.md. Bounds are deliberately wide (the tests assert shape,
   not decimals). *)

module Config = Flipc.Config
module Pingpong = Flipc_workload.Pingpong
module Regression = Flipc_stats.Regression
module Summary = Flipc_stats.Summary

let check_bool = Alcotest.(check bool)

let within msg lo hi v =
  check_bool (Fmt.str "%s: %.2f in [%.2f, %.2f]" msg v lo hi) true
    (v >= lo && v <= hi)

let latency ?config ?(payload = 120) ?(exchanges = 150) () =
  (Pingpong.measure ?config ~payload_bytes:payload ~exchanges ()).Pingpong
    .aggregate_one_way_us

let test_headline_latency () =
  (* Paper: 16.2us at 120B. *)
  within "120B one-way" 14.5 18.5 (latency ())

let test_fig4_fit () =
  let points =
    List.map
      (fun msg ->
        ( float_of_int msg,
          latency ~payload:(msg - Config.header_bytes) ~exchanges:120 () ))
      [ 64; 128; 192; 256 ]
  in
  let fit = Regression.linear points in
  within "intercept" 14.0 17.5 fit.Regression.intercept;
  within "slope ns/B" 5.0 7.5 (fit.Regression.slope *. 1000.);
  check_bool "linear" true (fit.Regression.r2 > 0.97)

let test_ablation_shape () =
  (* Pinned to the scanning engine: the paper's packed-vs-padded ablation
     measures the per-iteration scan's Scan_stamp stores invalidating the
     application's cursor lines. Doorbell scheduling (the default)
     eliminates that per-iteration invalidation entirely, which collapses
     the padding delta to ~0 — so the ablation is run under the engine
     whose behaviour it characterizes. *)
  let v lock_mode layout_mode =
    latency
      ~config:
        {
          Config.default with
          Config.lock_mode;
          layout_mode;
          sched_mode = Config.Full_scan;
        }
      ()
  in
  let tuned = v Config.Lock_free Config.Padded in
  let no_pad = v Config.Lock_free Config.Packed in
  let no_lockfree = v Config.Test_and_set Config.Padded in
  let original = v Config.Test_and_set Config.Packed in
  check_bool "padding helps" true (no_pad > tuned +. 1.0);
  check_bool "lock-free helps" true (no_lockfree > tuned +. 3.0);
  check_bool "worst is worst" true
    (original > no_pad && original > no_lockfree);
  (* Paper: "almost a factor of two". *)
  within "combined factor" 1.5 2.4 (original /. tuned)

let test_validity_cost () =
  let off = latency () in
  let on =
    latency ~config:{ Config.default with Config.validity_checks = true } ()
  in
  (* Paper: +2us. *)
  within "checks delta" 1.0 3.5 (on -. off)

let test_comparison_shape () =
  let flipc = latency () in
  let pam =
    Flipc_baselines.Pam.one_way_latency_us ~payload_bytes:120 ~exchanges:40 ()
  in
  let sunmos =
    Flipc_baselines.Sunmos.one_way_latency_us ~payload_bytes:120 ~exchanges:40 ()
  in
  let nx =
    Flipc_baselines.Nx.one_way_latency_us ~payload_bytes:120 ~exchanges:40 ()
  in
  check_bool "paper ordering" true (flipc < pam && pam < sunmos && sunmos < nx);
  within "NX/FLIPC ratio" 2.2 3.4 (nx /. flipc)

let test_stddev_band () =
  let r = Pingpong.measure ~payload_bytes:120 ~exchanges:200 () in
  (* Paper: 0.5-0.65us. *)
  within "stddev" 0.2 1.0 r.Pingpong.one_way.Summary.stddev

let () =
  Alcotest.run "calibration"
    [
      ( "guards",
        [
          Alcotest.test_case "headline latency" `Quick test_headline_latency;
          Alcotest.test_case "fig4 fit" `Quick test_fig4_fit;
          Alcotest.test_case "ablation shape" `Quick test_ablation_shape;
          Alcotest.test_case "validity cost" `Quick test_validity_cost;
          Alcotest.test_case "comparison shape" `Quick test_comparison_shape;
          Alcotest.test_case "stddev band" `Quick test_stddev_band;
        ] );
    ]
