(* Flight-data pipeline tests: the JSON parser, the log-bucketed
   quantile sketch under a million observations, the event wire
   round-trip, capture -> replay fidelity (spans and monitor verdicts
   recomputed offline must match the live run, including truncated-ring
   and mid-run-attach captures), the corrupt-discard stalled-stage
   verdict, the KKT/bulk invariant rules, and the time-series tap with
   its Prometheus exposition. *)

module Sim = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Topology = Flipc_net.Topology
module Mesh = Flipc_net.Mesh
module Nic = Flipc_net.Nic
module Faulty = Flipc_net.Faulty
module Config = Flipc.Config
module Machine = Flipc.Machine
module Api = Flipc.Api
module Endpoint_kind = Flipc.Endpoint_kind
module Kkt = Flipc_kkt.Kkt
module Bulk = Flipc_bulk.Bulk
module Json = Flipc_obs.Json
module Sketch = Flipc_obs.Sketch
module Event = Flipc_obs.Event
module Obs = Flipc_obs.Obs
module Tracer = Flipc_obs.Tracer
module Metrics = Flipc_obs.Metrics
module Causal = Flipc_obs.Causal
module Monitor = Flipc_obs.Monitor
module Sink = Flipc_obs.Sink
module Replay = Flipc_obs.Replay
module Series = Flipc_obs.Series
module Codec = Flipc_obs.Codec
module Alert = Flipc_obs.Alert
module Diff = Flipc_obs.Diff
module Summary = Flipc_stats.Summary
module Pingpong = Flipc_workload.Pingpong

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Api.error_to_string e)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i =
    i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1))
  in
  at 0

let finish machine =
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine

let with_temp_trace f =
  let path = Filename.temp_file "flipc_flight" ".trace" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- JSON parser --- *)

let test_json_roundtrip () =
  let docs =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 1.5;
      Json.Float (-0.25);
      Json.String "";
      Json.String "plain";
      Json.String "esc \" \\ \n \t quote";
      Json.List [];
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("l", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun doc ->
      let s = Json.to_string doc in
      match Json.of_string s with
      | Ok parsed ->
          check_bool (Printf.sprintf "roundtrip %s" s) true (parsed = doc)
      | Error e -> Alcotest.fail (Printf.sprintf "parse %s: %s" s e))
    docs

let test_json_parse_forms () =
  (* Written-by-hand inputs the serializer would not produce. *)
  (match Json.of_string "  { \"a\" : [ 1 , 2.5 , \"\\u0041\" ] }  " with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "A" ]) ])
    ->
      ()
  | Ok j -> Alcotest.fail ("unexpected parse: " ^ Json.to_string j)
  | Error e -> Alcotest.fail e);
  check_bool "number without point is Int" true
    (Json.of_string "123" = Ok (Json.Int 123));
  check_bool "exponent makes a Float" true
    (Json.of_string "1e3" = Ok (Json.Float 1000.));
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok j ->
          Alcotest.fail
            (Printf.sprintf "accepted %S as %s" bad (Json.to_string j))
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "123abc"; "\"unterminated"; "nul" ]

let test_json_member_accessors () =
  let doc = Json.Obj [ ("x", Json.Int 7); ("s", Json.String "hi") ] in
  check_bool "member hit" true (Json.member "x" doc = Some (Json.Int 7));
  check_bool "member miss" true (Json.member "zz" doc = None);
  check_bool "to_int" true (Option.bind (Json.member "x" doc) Json.to_int = Some 7);
  check_bool "to_str" true
    (Option.bind (Json.member "s" doc) Json.to_str = Some "hi")

(* --- sketch: exact counts, bounded memory, quantile accuracy --- *)

(* Deterministic PRNG so the soak replays identically everywhere. *)
let lcg seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 0x5DEECE66D) + 0xB) land max_int;
    float_of_int ((!state lsr 16) land 0xFFFFFF) /. float_of_int 0xFFFFFF

let test_sketch_soak_million () =
  let n = 1_000_000 in
  let next = lcg 42 in
  let s = Sketch.create () in
  let values = Array.init n (fun _ -> exp (next () *. 10.)) in
  Array.iter (Sketch.observe s) values;
  check "count exact" n (Sketch.count s);
  let exact_sum = Array.fold_left ( +. ) 0. values in
  check_bool "sum exact (same accumulation order)" true
    (Float.abs (Sketch.sum s -. exact_sum) /. exact_sum < 1e-12);
  let sorted = Array.copy values in
  Array.sort compare sorted;
  check_bool "min exact" true (Sketch.min_value s = sorted.(0));
  check_bool "max exact" true (Sketch.max_value s = sorted.(n - 1));
  List.iter
    (fun p ->
      let exact = sorted.(min (n - 1) (int_of_float (p *. float_of_int n))) in
      match Sketch.quantile s p with
      | None -> Alcotest.fail "quantile on populated sketch"
      | Some q ->
          let rel = Float.abs (q -. exact) /. exact in
          if rel > 0.05 then
            Alcotest.fail
              (Printf.sprintf "p%g: sketch %g vs exact %g (rel %.3f)" p q
                 exact rel))
    [ 0.5; 0.9; 0.95; 0.99 ];
  (* The whole point: memory stays a constant array of buckets no
     matter how many observations arrive. *)
  check_bool "bucket array is constant-size" true (Sketch.bucket_capacity < 1024)

let test_metrics_histogram_million () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "soak.us" in
  let next = lcg 7 in
  let n = 1_000_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = 1. +. (next () *. 999.) in
    sum := !sum +. v;
    Metrics.observe h v
  done;
  check "histo count exact under soak" n (Metrics.histo_count h);
  check_bool "histo sum exact" true
    (Float.abs (Metrics.histo_sum h -. !sum) /. !sum < 1e-12);
  match Metrics.histo_summary h with
  | None -> Alcotest.fail "summary on populated histogram"
  | Some s ->
      check "summary n" n s.Summary.n;
      check_bool "p50 in range" true (s.Summary.p50 > 400. && s.Summary.p50 < 600.)

(* --- event wire round-trip, all constructors --- *)

let all_events =
  [
    Event.Send_enqueued { node = 1; ep = 2; dst_node = 3; dst_ep = 4; mid = 5 };
    Event.Doorbell { node = 1; ep = 2 };
    Event.Engine_tx { node = 1; ep = 2; dst_node = 3; dst_ep = 4; mid = 5 };
    Event.Wire_rx { node = 3; ep = 4; mid = 5 };
    Event.Deposit { node = 3; ep = 4; mid = 5 };
    Event.Recv_dequeued { node = 3; ep = 4; mid = 5 };
    Event.Drop { node = 3; ep = -1; mid = 0; reason = Event.Corrupt_frame };
    Event.Drop { node = 3; ep = 4; mid = 5; reason = Event.No_posted_buffer };
    Event.Frame_tx { node = 1; ep = 2; seq = 9; mid = 5; retransmit = true };
    Event.Frame_deliver { node = 3; ep = 4; seq = 9; mid = 5 };
    Event.Ack_tx { node = 3; ep = 4; cum = 9; sacked = 2 };
    Event.Credit_grant { node = 3; ep = 4; count = 8 };
    Event.Window_send { node = 1; ep = 2; mid = 5; sent = 3; granted = 7; window = 4 };
    Event.Drops_read { node = 3; ep = 4; count = 2 };
    Event.Engine_park { node = 1; idle = 17 };
    Event.Engine_wake { node = 1 };
    Event.Fault { node = 0; kind = Event.Fault_corrupt; mid = 5 };
    Event.Fault { node = 0; kind = Event.Fault_drop; mid = 5 };
    Event.Note { node = 1; tag = "tag"; detail = "free text, \"quoted\"" };
    Event.Kkt_call { node = 0; dst_node = 1; id = 3; mid = 5 };
    Event.Kkt_dispatch { node = 1; id = 3; valid = false; mid = 5 };
    Event.Kkt_reply { node = 1; dst_node = 0; id = 3; mid = 5 };
    Event.Kkt_complete { node = 0; id = 3; mid = 5 };
    Event.Bulk_start
      { node = 0; dst_node = 1; transfer = 2; op = Event.Bulk_put; total = 4096; mid = 5 };
    Event.Bulk_start
      { node = 1; dst_node = 0; transfer = 3; op = Event.Bulk_get; total = 64; mid = 6 };
    Event.Bulk_chunk { node = 1; transfer = 2; offset = 0; len = 1024; mid = 5 };
    Event.Bulk_complete { node = 1; transfer = 2; mid = 5 };
    Event.Bulk_cancel { node = 0; transfer = 2; mid = 5 };
    Event.Alert_fired
      { node = 0; rule = "p99-slo"; detail = "lat p99 9.1 exceeds 5" };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun ev ->
      let j = Event.to_json ev in
      (* The wire form must survive an actual print/parse cycle too. *)
      match Json.of_string (Json.to_string j) with
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" (Event.kind ev) e)
      | Ok j' -> (
          match Event.of_json j' with
          | Ok ev' ->
              check_bool (Event.kind ev) true (ev = ev')
          | Error e ->
              Alcotest.fail (Printf.sprintf "%s: %s" (Event.kind ev) e)))
    all_events;
  (* Kinds are pairwise distinct except for payload variants of the
     same constructor. *)
  check_bool "kind is payload-independent" true
    (Event.kind (List.nth all_events 6) = Event.kind (List.nth all_events 7))

(* --- capture -> replay fidelity --- *)

let span_digest spans =
  List.map
    (fun s -> (s.Causal.mid, List.length s.Causal.steps, Causal.stalled_stage s))
    spans

let test_capture_replay_live_run () =
  with_temp_trace @@ fun path ->
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let obs = Machine.obs machine in
  let sink = Sink.create ~path () in
  Sink.attach sink obs;
  let mon = Machine.attach_monitor machine in
  ignore
    (Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:64 ~exchanges:40
       ()
      : Pingpong.result);
  Sink.close sink;
  let live_spans = Causal.spans [ obs ] in
  check_bool "live run produced spans" true (live_spans <> []);
  match Replay.load path with
  | Error e -> Alcotest.fail e
  | Ok capture ->
      check_bool "replayed spans = live spans" true
        (span_digest (Replay.spans capture) = span_digest live_spans);
      let rmon = Monitor.create () in
      List.iter
        (fun r -> Monitor.feed rmon ~now:r.Replay.r_ts r.Replay.r_ev)
        (Replay.records capture);
      check "replayed events_seen" (Monitor.events_seen mon)
        (Monitor.events_seen rmon);
      check "replayed violations"
        (List.length (Monitor.violations mon))
        (List.length (Monitor.violations rmon))

(* Synthetic flow emitter shared by the truncation/attach tests: each
   mid either completes its lifecycle or is dropped on the wire. *)
let emit_flow obs ~mid ~dropped =
  Obs.event obs
    (Event.Send_enqueued { node = 0; ep = 0; dst_node = 1; dst_ep = 0; mid });
  Obs.event obs
    (Event.Engine_tx { node = 0; ep = 0; dst_node = 1; dst_ep = 0; mid });
  if dropped then Obs.event obs (Event.Fault { node = 0; kind = Event.Fault_drop; mid })
  else begin
    Obs.event obs (Event.Wire_rx { node = 1; ep = 0; mid });
    Obs.event obs (Event.Deposit { node = 1; ep = 0; mid });
    Obs.event obs (Event.Recv_dequeued { node = 1; ep = 0; mid })
  end

let test_capture_survives_ring_truncation () =
  with_temp_trace @@ fun path ->
  let sim = Sim.create () in
  (* Ring holds 8 events; the run emits 5x that. *)
  let obs = Obs.create ~tracing:true ~trace_capacity:8 ~sim () in
  let sink = Sink.create ~path () in
  Sink.attach sink obs;
  for mid = 1 to 8 do
    emit_flow obs ~mid ~dropped:(mid mod 3 = 0)
  done;
  Sink.close sink;
  check_bool "ring actually truncated" true (Tracer.dropped (Obs.tracer obs) > 0);
  match Replay.load path with
  | Error e -> Alcotest.fail e
  | Ok capture ->
      (* The capture streamed past the ring: every event survives. *)
      check "all events captured"
        (Tracer.length (Obs.tracer obs) + Tracer.dropped (Obs.tracer obs))
        (List.length (Replay.records capture));
      check "all 8 spans recovered offline" 8
        (List.length (Replay.spans capture));
      (* The live ring kept only a suffix; whatever it can still see
         must agree with the replay's view of those same messages. *)
      List.iter
        (fun live ->
          match Causal.find (Replay.spans capture) live.Causal.mid with
          | None -> Alcotest.fail "live span missing from replay"
          | Some r ->
              check_bool "replay at least as complete" true
                (List.length r.Causal.steps >= List.length live.Causal.steps))
        (Causal.spans [ obs ])

let test_capture_mid_run_attach () =
  with_temp_trace @@ fun path ->
  let sim = Sim.create () in
  let obs = Obs.create ~tracing:true ~trace_capacity:4096 ~sim () in
  emit_flow obs ~mid:1 ~dropped:false;
  emit_flow obs ~mid:2 ~dropped:true;
  (* Attach after the fact: the retained ring is spilled, then the
     future streams. *)
  let sink = Sink.create ~path () in
  Sink.attach sink obs;
  Sink.attach sink obs (* idempotent: no duplicate spill *);
  emit_flow obs ~mid:3 ~dropped:false;
  Sink.close sink;
  match Replay.load path with
  | Error e -> Alcotest.fail e
  | Ok capture ->
      check "ring spill + live tail" 13 (List.length (Replay.records capture));
      check_bool "pre-attach and post-attach spans agree with live" true
        (span_digest (Replay.spans capture) = span_digest (Causal.spans [ obs ]))

let capture_replay_prop =
  QCheck.Test.make ~name:"spans (replay (capture run)) = spans run" ~count:30
    QCheck.(
      pair (int_range 1 40) (list_of_size (Gen.int_range 1 40) bool))
    (fun (capacity_scale, flows) ->
      with_temp_trace @@ fun path ->
      let sim = Sim.create () in
      let obs =
        Obs.create ~tracing:true ~trace_capacity:(capacity_scale * 256) ~sim ()
      in
      let sink = Sink.create ~path () in
      Sink.attach sink obs;
      let mon = Monitor.attach obs in
      List.iteri (fun i dropped -> emit_flow obs ~mid:(i + 1) ~dropped) flows;
      Sink.close sink;
      match Replay.load path with
      | Error e -> QCheck.Test.fail_report e
      | Ok capture ->
          let rmon = Monitor.create () in
          List.iter
            (fun r -> Monitor.feed rmon ~now:r.Replay.r_ts r.Replay.r_ev)
            (Replay.records capture);
          span_digest (Replay.spans capture) = span_digest (Causal.spans [ obs ])
          && Monitor.events_seen rmon = Monitor.events_seen mon
          && List.length (Monitor.violations rmon)
             = List.length (Monitor.violations mon))

let test_replay_rejects_garbage () =
  with_temp_trace @@ fun path ->
  let oc = open_out path in
  output_string oc "{\"t\":1,\"pid\":0,\"k\":\"doorbell\",\"node\":0,\"ep\":0}\n";
  close_out oc;
  (match Replay.load path with
  | Error e -> check_bool "missing header reported" true (contains ~needle:"header" e)
  | Ok _ -> Alcotest.fail "accepted a capture with no header");
  let oc = open_out path in
  output_string oc "{\"flipc_trace\":999,\"meta\":{}}\n";
  close_out oc;
  match Replay.load path with
  | Error e -> check_bool "version mismatch reported" true (contains ~needle:"version" e)
  | Ok _ -> Alcotest.fail "accepted a future format version"

(* --- corrupt-discard stalled-stage verdict (seeded, live) --- *)

let test_corrupt_stalled_stage () =
  let fault = Faulty.config ~corrupt:0.4 ~seed:3 () in
  let config = { Config.default with Config.frame_checksum = true } in
  let machine =
    Machine.create ~config ~fault (Machine.Mesh { cols = 2; rows = 1 }) ()
  in
  let obs = Machine.obs machine in
  Tracer.enable (Obs.tracer obs);
  let sim = Machine.sim machine in
  let addr = Mailbox.create () in
  let msgs = 10 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 2 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Mailbox.put addr (Api.address api ep);
      (* Corrupted frames never arrive, so poll for a fixed virtual
         window instead of a delivery count. *)
      let deadline = Vtime.ms 10 in
      let rec poll () =
        (match Api.receive api ep with
        | Some b -> ignore (Api.post_receive api ep b : (unit, _) result)
        | None -> Mem_port.instr (Api.port api) 100);
        if Sim.now sim < deadline then poll ()
      in
      poll ());
  Machine.spawn_app machine ~node:0 (fun api ->
      let tx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api tx (Mailbox.take addr);
      for _ = 1 to msgs do
        ok (Api.send api tx (ok (Api.allocate_buffer api)));
        let rec reclaim () =
          match Api.reclaim api tx with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 50;
              reclaim ()
        in
        reclaim ();
        Sim.delay (Vtime.us 30)
      done);
  finish machine;
  (match Machine.fault_stats machine with
  | Some f -> check_bool "seed injected corruption" true (f.Faulty.corrupted > 0)
  | None -> Alcotest.fail "fault stats missing");
  let spans = Causal.spans [ obs ] in
  let corrupted =
    List.filter
      (fun s ->
        List.exists
          (fun st ->
            match st.Causal.ev with
            | Event.Fault { kind = Event.Fault_corrupt; _ } -> true
            | _ -> false)
          s.Causal.steps)
      spans
  in
  check_bool "some span carries the corrupt marker" true (corrupted <> []);
  List.iter
    (fun s ->
      let v = Causal.stalled_stage s in
      if not (contains ~needle:"corrupted on the wire" v) then
        Alcotest.fail
          (Format.asprintf "span %d verdict %S:@.%a" s.Causal.mid v
             Causal.pp_span s))
    corrupted

(* --- KKT and bulk invariant rules, synthetic streams --- *)

let synth () =
  let sim = Sim.create () in
  let obs = Obs.create ~sim () in
  let mon = Monitor.attach obs in
  (obs, mon)

let rule_fired mon rule =
  List.exists (fun v -> v.Monitor.rule = rule) (Monitor.violations mon)

let test_rule_kkt_slot_reuse () =
  let obs, mon = synth () in
  Obs.event obs (Event.Kkt_call { node = 0; dst_node = 1; id = 1; mid = 0 });
  Obs.event obs (Event.Kkt_call { node = 0; dst_node = 1; id = 2; mid = 0 });
  (* A different client node has its own id space. *)
  Obs.event obs (Event.Kkt_call { node = 3; dst_node = 1; id = 1; mid = 0 });
  check_bool "monotone ids are clean" true (Monitor.clean mon);
  Obs.event obs (Event.Kkt_call { node = 0; dst_node = 1; id = 2; mid = 0 });
  check_bool "reused id fires" true (rule_fired mon "kkt.slot_reuse")

let test_rule_kkt_key_validity () =
  let _, mon =
    let obs, mon = synth () in
    Obs.event obs (Event.Kkt_dispatch { node = 1; id = 1; valid = true; mid = 0 });
    check_bool "valid dispatch clean" true (Monitor.clean mon);
    Obs.event obs (Event.Kkt_dispatch { node = 2; id = 2; valid = false; mid = 0 });
    (obs, mon)
  in
  check_bool "invalid key fires" true (rule_fired mon "kkt.key_validity")

let test_rule_kkt_no_reply_without_request () =
  let obs, mon = synth () in
  Obs.event obs (Event.Kkt_call { node = 0; dst_node = 1; id = 1; mid = 0 });
  Obs.event obs (Event.Kkt_complete { node = 0; id = 1; mid = 0 });
  check_bool "matched call/complete clean" true (Monitor.clean mon);
  Obs.event obs (Event.Kkt_complete { node = 0; id = 7; mid = 0 });
  check_bool "orphan completion fires" true
    (rule_fired mon "kkt.no_reply_without_request")

let bulk_start obs ~transfer ~total =
  Obs.event obs
    (Event.Bulk_start
       { node = 0; dst_node = 1; transfer; op = Event.Bulk_put; total; mid = 0 })

let test_rule_bulk_contiguity () =
  let obs, mon = synth () in
  bulk_start obs ~transfer:1 ~total:30;
  Obs.event obs (Event.Bulk_chunk { node = 1; transfer = 1; offset = 0; len = 10; mid = 0 });
  Obs.event obs (Event.Bulk_chunk { node = 1; transfer = 1; offset = 10; len = 10; mid = 0 });
  check_bool "contiguous chunks clean" true (Monitor.clean mon);
  Obs.event obs (Event.Bulk_chunk { node = 1; transfer = 1; offset = 25; len = 5; mid = 0 });
  check_bool "hole fires" true (rule_fired mon "bulk.chunk_contiguity")

let test_rule_bulk_completion_requires_all_chunks () =
  let obs, mon = synth () in
  bulk_start obs ~transfer:1 ~total:20;
  Obs.event obs (Event.Bulk_chunk { node = 1; transfer = 1; offset = 0; len = 20; mid = 0 });
  Obs.event obs (Event.Bulk_complete { node = 1; transfer = 1; mid = 0 });
  check_bool "full transfer clean" true (Monitor.clean mon);
  bulk_start obs ~transfer:2 ~total:20;
  Obs.event obs (Event.Bulk_chunk { node = 1; transfer = 2; offset = 0; len = 10; mid = 0 });
  Obs.event obs (Event.Bulk_complete { node = 1; transfer = 2; mid = 0 });
  check_bool "short completion fires" true
    (rule_fired mon "bulk.completion_implies_all_chunks")

let test_rule_bulk_no_progress_after_cancel () =
  let obs, mon = synth () in
  bulk_start obs ~transfer:1 ~total:30;
  Obs.event obs (Event.Bulk_chunk { node = 1; transfer = 1; offset = 0; len = 10; mid = 0 });
  Obs.event obs (Event.Bulk_cancel { node = 0; transfer = 1; mid = 0 });
  check_bool "cancel itself is clean" true (Monitor.clean mon);
  Obs.event obs (Event.Bulk_chunk { node = 1; transfer = 1; offset = 10; len = 10; mid = 0 });
  check_bool "post-cancel chunk fires" true
    (rule_fired mon "bulk.no_progress_after_cancel")

(* --- KKT and bulk live instrumentation --- *)

let traced_kinds obs =
  List.map (fun e -> Event.kind e.Tracer.ev) (Tracer.to_list (Obs.tracer obs))

let test_kkt_events_live () =
  let sim = Sim.create () in
  let topology = Topology.create ~cols:2 ~rows:2 in
  let fabric = Mesh.create ~engine:sim ~topology ~config:Mesh.paragon_config in
  let nics = Array.init 4 (fun node -> Nic.create ~engine:sim ~fabric ~node) in
  let kkt = Kkt.create ~sim () in
  Array.iter (fun nic -> Kkt.attach kkt ~nic) nics;
  let obs = Obs.create ~tracing:true ~sim () in
  Kkt.set_obs kkt obs;
  let mon = Monitor.attach obs in
  Kkt.serve kkt ~node:1 (fun req -> req);
  Sim.spawn sim (fun () ->
      ignore (Kkt.call kkt ~src:0 ~dst:1 (Bytes.create 32) : Bytes.t);
      (* Second call to a node with NO registered handler: the kernel
         replies empty, and the key-validity rule must flag it. *)
      ignore (Kkt.call kkt ~src:0 ~dst:2 (Bytes.create 8) : Bytes.t));
  Sim.run sim;
  let kinds = traced_kinds obs in
  List.iter
    (fun k -> check_bool k true (List.mem k kinds))
    [ "kkt_call"; "kkt_dispatch"; "kkt_reply"; "kkt_complete" ];
  check_bool "invalid key caught live" true (rule_fired mon "kkt.key_validity");
  check_bool "only that rule fired" true
    (List.for_all
       (fun v -> v.Monitor.rule = "kkt.key_validity")
       (Monitor.violations mon))

let test_bulk_events_live () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let obs = Machine.obs machine in
  let mon = Machine.attach_monitor machine in
  let bulk = Bulk.create machine in
  let region = Bulk.export bulk ~node:1 ~len:16384 in
  Machine.spawn_app machine ~node:0 (fun _api ->
      Bulk.put bulk ~from:0 region (Bytes.create 10_000);
      ignore (Bulk.get bulk ~into:0 region ~len:8192 : Bytes.t));
  finish machine;
  let kinds = traced_kinds obs in
  List.iter
    (fun k -> check_bool k true (List.mem k kinds))
    [ "bulk_start"; "bulk_chunk"; "bulk_complete" ];
  check_bool "bulk protocol satisfies its own invariants" true
    (Monitor.clean mon);
  (* Both transfers carry distinct causal mids into their spans. *)
  let bulk_mids =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           match e.Tracer.ev with
           | Event.Bulk_start { mid; _ } -> Some mid
           | _ -> None)
         (Tracer.to_list (Obs.tracer obs)))
  in
  check "one mid per transfer" 2 (List.length bulk_mids);
  check_bool "mids stamped" true (List.for_all (fun m -> m > 0) bulk_mids)

let test_bulk_cancel_live () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let obs = Machine.obs machine in
  let mon = Machine.attach_monitor machine in
  let bulk = Bulk.create machine in
  let region = Bulk.export bulk ~node:1 ~len:(256 * 1024) in
  let outcome = ref "no exception" in
  Machine.spawn_app machine ~node:0 (fun _api ->
      try Bulk.put bulk ~from:0 region (Bytes.create (200 * 1024))
      with Invalid_argument m -> outcome := m);
  Machine.spawn_app machine ~node:0 (fun _api ->
      Flipc_sim.Engine.delay (Vtime.us 200);
      Bulk.cancel bulk ~node:0 ~transfer:(Bulk.last_transfer bulk));
  finish machine;
  check_str "put raised the cancel" "Bulk.put: cancelled" !outcome;
  let kinds = traced_kinds obs in
  check_bool "cancel traced" true (List.mem "bulk_cancel" kinds);
  check_bool "streaming started before cancel" true (List.mem "bulk_chunk" kinds);
  check_bool "no chunk after cancel reached the monitor" true (Monitor.clean mon)

(* --- binary trace codec --- *)

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rewrite path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let test_codec_event_roundtrip_all () =
  List.iteri
    (fun i ev ->
      let prev_ts = i * 1_000 in
      (* Deltas in both directions: a mid-run attach spills an older
         ring behind already-streamed events, so ts can go backwards. *)
      let ts = if i mod 2 = 0 then prev_ts + 123_456 else prev_ts - 7 in
      let buf = Buffer.create 64 in
      Codec.encode_event buf ~prev_ts ~ts ~pid:i ev;
      let s = Buffer.contents buf in
      match Codec.decode_event s ~pos:0 ~prev_ts with
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" (Event.kind ev) e)
      | Ok (r, next) ->
          check_bool (Event.kind ev) true
            (r.Codec.c_ev = ev && r.Codec.c_ts = ts && r.Codec.c_pid = i);
          check "frame consumed exactly" (String.length s) next)
    all_events

(* Arbitrary events across every constructor, with ints spanning the
   full word (max_int/min_int survive the zigzag) and string payloads up
   to 64 KiB. *)
let codec_event_gen =
  let open QCheck.Gen in
  let gi =
    frequency
      [ (6, int_range 0 4096); (1, oneofl [ 0; 1; -1; max_int; min_int ]) ]
  in
  let gs =
    frequency
      [
        (6, small_string ~gen:printable);
        (1, string_size ~gen:printable (return 65_536));
      ]
  in
  let reason =
    oneofl
      [
        Event.No_posted_buffer; Event.Bad_destination; Event.Corrupt_slot;
        Event.Corrupt_frame; Event.Forbidden_destination;
      ]
  in
  let fk =
    oneofl
      [
        Event.Fault_drop; Event.Fault_duplicate; Event.Fault_reorder;
        Event.Fault_jitter; Event.Fault_corrupt;
      ]
  in
  let bop = oneofl [ Event.Bulk_put; Event.Bulk_get ] in
  int_range 0 25 >>= fun k ->
  array_size (return 6) gi >>= fun a ->
  pair gs gs >>= fun (s1, s2) ->
  bool >>= fun b ->
  reason >>= fun reason ->
  fk >>= fun fk ->
  bop >>= fun op ->
  return
    (match k with
    | 0 ->
        Event.Send_enqueued
          { node = a.(0); ep = a.(1); dst_node = a.(2); dst_ep = a.(3); mid = a.(4) }
    | 1 -> Event.Doorbell { node = a.(0); ep = a.(1) }
    | 2 ->
        Event.Engine_tx
          { node = a.(0); ep = a.(1); dst_node = a.(2); dst_ep = a.(3); mid = a.(4) }
    | 3 -> Event.Wire_rx { node = a.(0); ep = a.(1); mid = a.(2) }
    | 4 -> Event.Deposit { node = a.(0); ep = a.(1); mid = a.(2) }
    | 5 -> Event.Recv_dequeued { node = a.(0); ep = a.(1); mid = a.(2) }
    | 6 -> Event.Drop { node = a.(0); ep = a.(1); mid = a.(2); reason }
    | 7 ->
        Event.Frame_tx
          { node = a.(0); ep = a.(1); seq = a.(2); mid = a.(3); retransmit = b }
    | 8 -> Event.Frame_deliver { node = a.(0); ep = a.(1); seq = a.(2); mid = a.(3) }
    | 9 -> Event.Ack_tx { node = a.(0); ep = a.(1); cum = a.(2); sacked = a.(3) }
    | 10 -> Event.Credit_grant { node = a.(0); ep = a.(1); count = a.(2) }
    | 11 ->
        Event.Window_send
          {
            node = a.(0); ep = a.(1); mid = a.(2); sent = a.(3);
            granted = a.(4); window = a.(5);
          }
    | 12 -> Event.Drops_read { node = a.(0); ep = a.(1); count = a.(2) }
    | 13 -> Event.Engine_park { node = a.(0); idle = a.(1) }
    | 14 -> Event.Engine_wake { node = a.(0) }
    | 15 -> Event.Fault { node = a.(0); kind = fk; mid = a.(1) }
    | 16 -> Event.Note { node = a.(0); tag = s1; detail = s2 }
    | 17 ->
        Event.Kkt_call { node = a.(0); dst_node = a.(1); id = a.(2); mid = a.(3) }
    | 18 -> Event.Kkt_dispatch { node = a.(0); id = a.(1); valid = b; mid = a.(2) }
    | 19 ->
        Event.Kkt_reply { node = a.(0); dst_node = a.(1); id = a.(2); mid = a.(3) }
    | 20 -> Event.Kkt_complete { node = a.(0); id = a.(1); mid = a.(2) }
    | 21 ->
        Event.Bulk_start
          {
            node = a.(0); dst_node = a.(1); transfer = a.(2); op;
            total = a.(3); mid = a.(4);
          }
    | 22 ->
        Event.Bulk_chunk
          { node = a.(0); transfer = a.(1); offset = a.(2); len = a.(3); mid = a.(4) }
    | 23 -> Event.Bulk_complete { node = a.(0); transfer = a.(1); mid = a.(2) }
    | 24 -> Event.Bulk_cancel { node = a.(0); transfer = a.(1); mid = a.(2) }
    | _ -> Event.Alert_fired { node = a.(0); rule = s1; detail = s2 })

let codec_roundtrip_prop =
  QCheck.Test.make ~name:"codec: decode-of-encode identity" ~count:300
    (QCheck.make
       ~print:(fun (ev, prev_ts, delta, pid) ->
         Printf.sprintf "%s prev_ts=%d delta=%d pid=%d" (Event.kind ev)
           prev_ts delta pid)
       QCheck.Gen.(
         codec_event_gen >>= fun ev ->
         int_range 0 (1 lsl 40) >>= fun prev_ts ->
         int_range (-1_000_000) 1_000_000 >>= fun delta ->
         int_range 0 255 >>= fun pid -> return (ev, prev_ts, delta, pid)))
    (fun (ev, prev_ts, delta, pid) ->
      let ts = prev_ts + delta in
      let buf = Buffer.create 64 in
      Codec.encode_event buf ~prev_ts ~ts ~pid ev;
      match Codec.decode_event (Buffer.contents buf) ~pos:0 ~prev_ts with
      | Error _ -> false
      | Ok (r, next) ->
          r.Codec.c_ev = ev && r.Codec.c_ts = ts && r.Codec.c_pid = pid
          && next = Buffer.length buf)

let test_codec_rejects_corrupt () =
  (* Every strict prefix of a valid frame must fail, never mis-decode:
     the length prefix and the strict varint/string readers catch any
     cut point. *)
  let ev = Event.Note { node = 3; tag = "tag"; detail = "detail" } in
  let buf = Buffer.create 64 in
  Codec.encode_event buf ~prev_ts:0 ~ts:42 ~pid:1 ev;
  let s = Buffer.contents buf in
  for len = 0 to String.length s - 1 do
    match Codec.decode_event (String.sub s 0 len) ~pos:0 ~prev_ts:0 with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "decoded a %d-byte prefix" len)
  done;
  (* An unknown constructor tag. The frame layout is frozen (format
     version 1): len byte, opcode, pid, ts delta, tag at offset 4. *)
  let tagless = Bytes.of_string s in
  Bytes.set tagless 4 '\xff';
  (match Codec.decode_event (Bytes.to_string tagless) ~pos:0 ~prev_ts:0 with
  | Error e -> check_bool "unknown tag reported" true (contains ~needle:"tag" e)
  | Ok _ -> Alcotest.fail "accepted an unknown event tag")

let test_codec_file_roundtrip_and_errors () =
  let path = Filename.temp_file "flipc_flight" ".ftrace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let oc = open_out_bin path in
  let e = Codec.to_channel oc in
  Codec.write_meta e [ ("source", Json.String "test") ];
  List.iteri
    (fun i ev -> Codec.write_event e ~now:(Vtime.us i) ~pid:(i mod 3) ev)
    all_events;
  Codec.write_trailer e
    ~machines:[ (0, "m0"); (2, "m2") ]
    ~summary:(Some (Json.Obj [ ("ok", Json.Bool true) ]));
  close_out oc;
  check_bool "is_binary sniffs the magic" true (Codec.is_binary path);
  (match Codec.read_file path with
  | Error e -> Alcotest.fail e
  | Ok d ->
      check_bool "meta" true (d.Codec.d_meta = [ ("source", Json.String "test") ]);
      check "records" (List.length all_events) (List.length d.Codec.d_records);
      check_bool "events identical, in order" true
        (List.map (fun r -> r.Codec.c_ev) d.Codec.d_records = all_events);
      check_bool "delta-coded timestamps recovered" true
        (List.mapi (fun i _ -> Vtime.us i) all_events
        = List.map (fun r -> r.Codec.c_ts) d.Codec.d_records);
      check_bool "pids recovered" true
        (List.mapi (fun i _ -> i mod 3) all_events
        = List.map (fun r -> r.Codec.c_pid) d.Codec.d_records);
      check_bool "machines" true (d.Codec.d_machines = [ (0, "m0"); (2, "m2") ]);
      check_bool "summary" true
        (d.Codec.d_summary = Some (Json.Obj [ ("ok", Json.Bool true) ])));
  let s = read_whole path in
  rewrite path (String.sub s 0 (String.length s - 1));
  (match Codec.read_file path with
  | Error e -> check_bool "truncation reported" true (contains ~needle:"truncated" e)
  | Ok _ -> Alcotest.fail "accepted a truncated capture");
  rewrite path (s ^ "\x07garbage");
  (match Codec.read_file path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage");
  rewrite path ("FTRC\x63" ^ String.sub s 5 (String.length s - 5));
  (match Codec.read_file path with
  | Error e -> check_bool "version mismatch reported" true (contains ~needle:"version" e)
  | Ok _ -> Alcotest.fail "accepted a future binary version");
  rewrite path ("NOPE" ^ String.sub s 4 (String.length s - 4));
  check_bool "is_binary rejects bad magic" false (Codec.is_binary path);
  match Codec.read_file path with
  | Error e -> check_bool "magic reported" true (contains ~needle:"magic" e)
  | Ok _ -> Alcotest.fail "accepted a capture without magic"

(* The same live run through both sink formats: the binary capture must
   replay to the identical record stream and span digest, several times
   smaller on disk. *)
let test_binary_capture_matches_jsonl () =
  with_temp_trace @@ fun jsonl_path ->
  let bin_path = Filename.temp_file "flipc_flight" ".ftrace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove bin_path with Sys_error _ -> ())
  @@ fun () ->
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let obs = Machine.obs machine in
  let js = Sink.create ~path:jsonl_path () in
  let bs = Sink.create ~path:bin_path () in
  Sink.attach js obs;
  Sink.attach bs obs;
  ignore
    (Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:64 ~exchanges:40
       ()
      : Pingpong.result);
  Sink.close js;
  Sink.close bs;
  check "both sinks saw every event" (Sink.events_written js)
    (Sink.events_written bs);
  check_bool "binary at least 4x smaller" true
    (4 * file_size bin_path <= file_size jsonl_path);
  match (Replay.load jsonl_path, Replay.load bin_path) with
  | Error e, _ | _, Error e -> Alcotest.fail e
  | Ok a, Ok b ->
      let flat c =
        List.map
          (fun r -> (r.Replay.r_ts, r.Replay.r_pid, r.Replay.r_ev))
          (Replay.records c)
      in
      check_bool "identical record streams" true (flat a = flat b);
      check_bool "identical span digests" true
        (span_digest (Replay.spans a) = span_digest (Replay.spans b));
      check_bool "identical machine labels" true
        (Replay.machines a = Replay.machines b)

(* --- alert rules over series windows --- *)

let rules_doc =
  Json.Obj
    [
      ( "rules",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "tx-band");
                ("kind", Json.String "rate_band");
                ("counter", Json.String "tx.frames");
                ("min", Json.Float 100.);
                ("max", Json.Float 1000.);
              ];
            Json.Obj
              [
                ("name", Json.String "no-drops");
                ("kind", Json.String "counter_zero");
                ("counter", Json.String "rx.drops");
              ];
            Json.Obj
              [
                ("name", Json.String "p99-slo");
                ("kind", Json.String "quantile_ceiling");
                ("histo", Json.String "lat.us");
                ("q", Json.String "p99");
                ("ceiling", Json.Float 50.);
              ];
          ] );
    ]

let test_alert_rules_parse () =
  (match Alert.rules_of_json rules_doc with
  | Error e -> Alcotest.fail e
  | Ok rules ->
      check "three rules" 3 (List.length rules);
      check_bool "names kept in order" true
        (List.map (fun r -> r.Alert.r_name) rules
        = [ "tx-band"; "no-drops"; "p99-slo" ]));
  List.iter
    (fun (what, doc) ->
      match Alert.rules_of_json doc with
      | Ok _ -> Alcotest.fail ("accepted " ^ what)
      | Error e ->
          check_bool (what ^ " names the rule") true
            (contains ~needle:"rule" e || contains ~needle:"rules" e))
    [
      ("no rules list", Json.Obj [ ("rules", Json.Int 3) ]);
      ( "unknown kind",
        Json.Obj
          [
            ( "rules",
              Json.List
                [
                  Json.Obj
                    [ ("name", Json.String "x"); ("kind", Json.String "nope") ];
                ] );
          ] );
      ( "rate_band without bounds",
        Json.Obj
          [
            ( "rules",
              Json.List
                [
                  Json.Obj
                    [
                      ("name", Json.String "x");
                      ("kind", Json.String "rate_band");
                      ("counter", Json.String "c");
                    ];
                ] );
          ] );
    ]

let window ~counters ~gauges ~histos =
  Json.Obj
    [
      ("start_ns", Json.Int 0);
      ("end_ns", Json.Int 1_000_000);
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histos", Json.Obj histos);
    ]

let counter_entry ~delta ~rate =
  Json.Obj [ ("delta", Json.Int delta); ("rate_per_s", Json.Float rate) ]

let histo_entry ~count_delta ~p99 =
  Json.Obj [ ("count_delta", Json.Int count_delta); ("p99", Json.Float p99) ]

let test_alert_eval_window () =
  let rules =
    match Alert.rules_of_json rules_doc with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let names w = List.map (fun f -> f.Alert.a_rule) (Alert.eval_window ~rules w) in
  (* All quiet: rate inside the band, drops zero, p99 under the SLO. *)
  check_bool "clean window" true
    (names
       (window
          ~counters:
            [
              ("tx.frames", counter_entry ~delta:500 ~rate:500.);
              ("rx.drops", counter_entry ~delta:0 ~rate:0.);
            ]
          ~gauges:[]
          ~histos:[ ("lat.us", histo_entry ~count_delta:10 ~p99:20.) ])
    = []);
  (* Rate below the band and a nonzero drop delta. *)
  check_bool "low rate + drops fire" true
    (names
       (window
          ~counters:
            [
              ("tx.frames", counter_entry ~delta:3 ~rate:3.);
              ("rx.drops", counter_entry ~delta:2 ~rate:2.);
            ]
          ~gauges:[] ~histos:[])
    = [ "tx-band"; "no-drops" ]);
  (* Quantile over the ceiling fires; with count_delta = 0 the stale
     quantile is skipped. *)
  check_bool "p99 breach fires" true
    (names
       (window ~counters:[] ~gauges:[]
          ~histos:[ ("lat.us", histo_entry ~count_delta:5 ~p99:99.) ])
    = [ "p99-slo" ]);
  check_bool "stale quantile skipped" true
    (names
       (window ~counters:[] ~gauges:[]
          ~histos:[ ("lat.us", histo_entry ~count_delta:0 ~p99:99.) ])
    = []);
  (* Absent counter: rate_band skips, but a counter_zero rule falls back
     to the gauges (engine probes export that way). *)
  check_bool "gauge fallback fires counter_zero" true
    (names
       (window ~counters:[]
          ~gauges:[ ("rx.drops", Json.Float 4.) ]
          ~histos:[])
    = [ "no-drops" ]);
  check_bool "zero gauge stays quiet" true
    (names
       (window ~counters:[] ~gauges:[ ("rx.drops", Json.Int 0) ] ~histos:[])
    = [])

(* Live: an attached alert engine fires into the event stream, so the
   firing lands in the trace ring and in any capture. *)
let test_alert_attach_fires_into_trace () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let obs = Machine.obs machine in
  Tracer.enable (Obs.tracer obs);
  let rules =
    match
      Alert.rules_of_json
        (Json.Obj
           [
             ( "rules",
               Json.List
                 [
                   Json.Obj
                     [
                       ("name", Json.String "sends-happened");
                       ("kind", Json.String "counter_zero");
                       ("counter", Json.String "node0.engine.sends");
                     ];
                   Json.Obj
                     [
                       ("name", Json.String "no-corruption");
                       ("kind", Json.String "counter_zero");
                       ("counter", Json.String "node0.engine.corrupt_frames");
                     ];
                 ] );
           ])
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let a = Alert.attach ~rules ~interval:(Vtime.us 100) obs in
  ignore
    (Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:64 ~exchanges:40
       ()
      : Pingpong.result);
  Alert.sample a;
  let fired = Alert.fired a in
  check_bool "the tripwire trips" true (fired <> []);
  check_bool "only the expected rule" true
    (List.for_all (fun f -> f.Alert.a_rule = "sends-happened") fired);
  check_bool "clean rule is clean" false (Alert.clean a);
  let alert_kinds =
    List.filter (fun k -> k = "alert_fired") (traced_kinds obs)
  in
  check "every firing entered the event stream" (List.length fired)
    (List.length alert_kinds)

(* --- cross-run capture diffing --- *)

(* Two synthetic captures: the candidate drops one extra flow and emits
   an orphan KKT completion (a monitor violation the baseline lacks). *)
let write_synthetic_capture path ~flows ~dropped ~orphan =
  let sim = Sim.create () in
  let obs = Obs.create ~tracing:true ~sim () in
  let sink = Sink.create ~path () in
  Sink.attach sink obs;
  for mid = 1 to flows do
    emit_flow obs ~mid ~dropped:(List.mem mid dropped)
  done;
  if orphan then
    Obs.event obs (Event.Kkt_complete { node = 0; id = 99; mid = 0 });
  Sink.close sink

let test_diff_finds_added_violation () =
  with_temp_trace @@ fun base_path ->
  with_temp_trace @@ fun cand_path ->
  write_synthetic_capture base_path ~flows:6 ~dropped:[ 2 ] ~orphan:false;
  write_synthetic_capture cand_path ~flows:6 ~dropped:[ 2; 5 ] ~orphan:true;
  match (Replay.load base_path, Replay.load cand_path) with
  | Error e, _ | _, Error e -> Alcotest.fail e
  | Ok base, Ok cand ->
      let d = Diff.compare_runs ~base ~cand in
      check "orphan completion is the one regression" 1 (Diff.regressions d);
      let text = Format.asprintf "%a" Diff.pp d in
      check_bool "report names the added violation" true
        (contains ~needle:"ADDED" text
        && contains ~needle:"kkt.no_reply_without_request" text);
      (* The reverse comparison sees it as removed, not added. *)
      let r = Diff.compare_runs ~base:cand ~cand:base in
      check "reverse direction is clean" 0 (Diff.regressions r);
      (match Diff.json d with
      | Json.Obj fields ->
          check_bool "json carries the gate counter" true
            (List.assoc_opt "violations_added" fields = Some (Json.Int 1))
      | j -> Alcotest.fail ("diff json not an object: " ^ Json.to_string j));
      (* Same capture against itself: fully clean, zero deltas. *)
      let s = Diff.compare_runs ~base ~cand:base in
      check "self-diff has no regressions" 0 (Diff.regressions s);
      let self_text = Format.asprintf "%a" Diff.pp s in
      check_bool "self-diff reports no violation change" true
        (contains ~needle:"no change" self_text)

(* --- time-series tap and Prometheus exposition --- *)

let test_series_windows () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let obs = Machine.obs machine in
  let series = Series.attach ~interval:(Vtime.us 50) obs in
  ignore
    (Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:64 ~exchanges:40
       ()
      : Pingpong.result);
  Series.sample series;
  check_bool "windows sampled" true (Series.window_count series > 1);
  match Series.json series with
  | Json.List windows ->
      check "json matches count" (Series.window_count series)
        (List.length windows);
      let bound name w =
        match Option.bind (Json.member name w) Json.to_int with
        | Some v -> v
        | None -> Alcotest.fail (name ^ " missing from window")
      in
      let last = List.length windows - 1 in
      List.iteri
        (fun i w ->
          check_bool "window has positive width" true
            (bound "end_ns" w > bound "start_ns" w);
          (* Interior windows close on interval boundaries; only the
             final one is cut short where the run ended. *)
          if i < last then
            check_bool "window is interval-aligned" true
              ((bound "end_ns" w - bound "start_ns" w) mod 50_000 = 0);
          check_bool "window has sections" true
            (Json.member "counters" w <> None
            && Json.member "gauges" w <> None
            && Json.member "histos" w <> None))
        windows
  | j -> Alcotest.fail ("series json not a list: " ^ Json.to_string j)

let test_prom_exposition () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter m "node0.engine.tx-frames");
  Metrics.set (Metrics.gauge m "queue.depth") 4.5;
  let h = Metrics.histogram m "lat.us" in
  List.iter (Metrics.observe h) [ 1.; 2.; 3. ];
  let text = Series.prom_of_snapshot (Metrics.snapshot m) in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle text))
    [
      "# TYPE flipc_node0_engine_tx_frames counter";
      "flipc_node0_engine_tx_frames 3";
      "# TYPE flipc_queue_depth gauge";
      "flipc_queue_depth 4.5";
      "# TYPE flipc_lat_us summary";
      "flipc_lat_us{quantile=\"0.99\"}";
      "flipc_lat_us_count 3";
      "flipc_lat_us_sum 6";
    ]

let () =
  Alcotest.run "flight"
    [
      ( "json-parser",
        [
          Alcotest.test_case "print/parse roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "hand-written forms and errors" `Quick
            test_json_parse_forms;
          Alcotest.test_case "member accessors" `Quick test_json_member_accessors;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "10^6-observation soak" `Slow
            test_sketch_soak_million;
          Alcotest.test_case "metrics histogram soak" `Slow
            test_metrics_histogram_million;
        ] );
      ( "events",
        [
          Alcotest.test_case "wire roundtrip, all constructors" `Quick
            test_event_json_roundtrip;
        ] );
      ( "capture-replay",
        [
          Alcotest.test_case "live run replays identically" `Quick
            test_capture_replay_live_run;
          Alcotest.test_case "capture outlives ring truncation" `Quick
            test_capture_survives_ring_truncation;
          Alcotest.test_case "mid-run attach" `Quick test_capture_mid_run_attach;
          QCheck_alcotest.to_alcotest capture_replay_prop;
          Alcotest.test_case "rejects garbage" `Quick test_replay_rejects_garbage;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "corrupt discard names the wire stage" `Quick
            test_corrupt_stalled_stage;
        ] );
      ( "kkt-bulk-rules",
        [
          Alcotest.test_case "kkt slot reuse" `Quick test_rule_kkt_slot_reuse;
          Alcotest.test_case "kkt key validity" `Quick test_rule_kkt_key_validity;
          Alcotest.test_case "kkt orphan completion" `Quick
            test_rule_kkt_no_reply_without_request;
          Alcotest.test_case "bulk chunk contiguity" `Quick
            test_rule_bulk_contiguity;
          Alcotest.test_case "bulk completion needs all chunks" `Quick
            test_rule_bulk_completion_requires_all_chunks;
          Alcotest.test_case "bulk progress after cancel" `Quick
            test_rule_bulk_no_progress_after_cancel;
        ] );
      ( "live-instrumentation",
        [
          Alcotest.test_case "kkt rpc lifecycle traced" `Quick
            test_kkt_events_live;
          Alcotest.test_case "bulk transfers traced" `Quick test_bulk_events_live;
          Alcotest.test_case "bulk cancel" `Quick test_bulk_cancel_live;
        ] );
      ( "binary-codec",
        [
          Alcotest.test_case "event frame roundtrip, all constructors" `Quick
            test_codec_event_roundtrip_all;
          QCheck_alcotest.to_alcotest codec_roundtrip_prop;
          Alcotest.test_case "rejects truncation and unknown tags" `Quick
            test_codec_rejects_corrupt;
          Alcotest.test_case "file roundtrip, trailer, and errors" `Quick
            test_codec_file_roundtrip_and_errors;
          Alcotest.test_case "binary capture = jsonl capture" `Quick
            test_binary_capture_matches_jsonl;
        ] );
      ( "alerts",
        [
          Alcotest.test_case "rule grammar parses and rejects" `Quick
            test_alert_rules_parse;
          Alcotest.test_case "window evaluation" `Quick test_alert_eval_window;
          Alcotest.test_case "attached engine fires into the trace" `Quick
            test_alert_attach_fires_into_trace;
        ] );
      ( "diff",
        [
          Alcotest.test_case "added violation is a regression" `Quick
            test_diff_finds_added_violation;
        ] );
      ( "series",
        [
          Alcotest.test_case "windowed sampling" `Quick test_series_windows;
          Alcotest.test_case "prometheus exposition" `Quick test_prom_exposition;
        ] );
    ]
