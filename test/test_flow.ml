(* Tests for flow control: static provisioning math and the credit-window
   library. *)

module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Config = Flipc.Config
module Api = Flipc.Api
module Machine = Flipc.Machine
module Endpoint_kind = Flipc.Endpoint_kind
module Provision = Flipc_flow.Provision
module Window = Flipc_flow.Window

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Api.error_to_string e)

(* --- Provision --- *)

let test_rpc_rule () =
  check "clients x outstanding" 12
    (Provision.rpc_buffers ~clients:4 ~outstanding_per_client:3);
  check "zero clients" 0 (Provision.rpc_buffers ~clients:0 ~outstanding_per_client:5)

let test_periodic_rule () =
  check "double buffering" 20
    (Provision.periodic_buffers ~senders:2 ~messages_per_period:5)

let test_queue_capacity_rule () =
  check "one-slot-empty ring" 9 (Provision.queue_capacity_for ~buffers:8);
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Provision.queue_capacity_for: < 1") (fun () ->
      ignore (Provision.queue_capacity_for ~buffers:0))

let test_config_for () =
  let c = Provision.config_for ~base:Config.default ~buffers:20 in
  check_bool "queue grows" true (c.Config.queue_capacity >= 21);
  check_bool "pool grows" true (c.Config.total_buffers >= 40);
  (* A small requirement leaves the base config untouched. *)
  let c2 = Provision.config_for ~base:Config.default ~buffers:2 in
  check "unchanged queue" Config.default.Config.queue_capacity
    c2.Config.queue_capacity

(* --- Window --- *)

(* Full producer/consumer scenario. Without flow control the producer's
   burst would overrun the consumer's posted buffers and drop; with the
   window it must deliver everything. *)
let run_windowed ~window ~messages ~consumer_delay_ns =
  let config = Provision.config_for ~base:Config.default ~buffers:(window + 4) in
  let machine = Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) () in
  let data_addr = Mailbox.create () and credit_addr = Mailbox.create () in
  let delivered = ref 0 and drops = ref 0 in
  let sender_credits_exhausted = ref false in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let credit_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api credit_ep (Mailbox.take credit_addr);
      let receiver =
        Window.create_receiver api ~data_ep ~credit_ep ~window ()
      in
      while !delivered < messages do
        (match Window.recv receiver with
        | Some buf ->
            incr delivered;
            (* Slow consumer. *)
            Mem_port.instr (Api.port api) (consumer_delay_ns / 20);
            Window.consumed receiver buf
        | None -> Mem_port.instr (Api.port api) 5)
      done;
      drops := Api.drops_read_and_reset api data_ep);
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let credit_recv_ep =
        ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
      in
      Mailbox.put credit_addr (Api.address api credit_recv_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let sender = Window.create_sender api ~data_ep ~credit_recv_ep ~window () in
      let pool = List.init (window + 2) (fun _ -> ok (Api.allocate_buffer api)) in
      let free = Queue.create () in
      List.iter (fun b -> Queue.push b free) pool;
      for _ = 1 to messages do
        let rec get () =
          (match Api.reclaim api data_ep with
          | Some b -> Queue.push b free
          | None -> ());
          match Queue.take_opt free with
          | Some b -> b
          | None ->
              Mem_port.instr (Api.port api) 5;
              get ()
        in
        let buf = get () in
        if Window.credits_available sender = 0 then
          sender_credits_exhausted := true;
        Window.send sender buf
      done);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  (!delivered, !drops, !sender_credits_exhausted)

let test_window_no_drops_under_overload () =
  let delivered, drops, exhausted =
    run_windowed ~window:4 ~messages:60 ~consumer_delay_ns:60_000
  in
  check "all delivered" 60 delivered;
  check "zero drops" 0 drops;
  check_bool "window actually throttled" true exhausted

let test_window_fast_consumer () =
  let delivered, drops, _ = run_windowed ~window:4 ~messages:40 ~consumer_delay_ns:0 in
  check "all delivered" 40 delivered;
  check "zero drops" 0 drops

(* Contrast: the same overload without flow control does drop. *)
let test_unwindowed_overload_drops () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let data_addr = Mailbox.create () in
  let drops = ref 0 and delivered = ref 0 in
  let total = 60 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 2 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Mailbox.put data_addr (Api.address api ep);
      let deadline = Sim.now (Machine.sim machine) + Flipc_sim.Vtime.ms 20 in
      while Sim.now (Machine.sim machine) < deadline do
        (match Api.receive api ep with
        | Some buf ->
            incr delivered;
            Mem_port.instr (Api.port api) 3_000;
            ok (Api.post_receive api ep buf)
        | None -> Mem_port.instr (Api.port api) 10);
        drops := !drops + Api.drops_read_and_reset api ep
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take data_addr);
      let buf = ok (Api.allocate_buffer api) in
      for _ = 1 to total do
        ok (Api.send api ep buf);
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ()
      done);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  check_bool "burst overruns without flow control" true (!drops > 0);
  check "accounting adds up" total (!delivered + !drops)

let test_try_send_respects_window () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let data_addr = Mailbox.create () and credit_addr = Mailbox.create () in
  let refused = ref false in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let credit_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api credit_ep (Mailbox.take credit_addr);
      (* A receiver that never consumes: credits never return. *)
      ignore (Window.create_receiver api ~data_ep ~credit_ep ~window:2 ()));
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let credit_recv_ep =
        ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
      in
      Mailbox.put credit_addr (Api.address api credit_recv_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let sender =
        Window.create_sender api ~data_ep ~credit_recv_ep ~window:2 ()
      in
      check "initial credits" 2 (Window.credits_available sender);
      let b1 = ok (Api.allocate_buffer api) in
      let b2 = ok (Api.allocate_buffer api) in
      let b3 = ok (Api.allocate_buffer api) in
      check_bool "1st" true (Window.try_send sender b1);
      check_bool "2nd" true (Window.try_send sender b2);
      refused := not (Window.try_send sender b3);
      check "sent" 2 (Window.messages_sent sender));
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  check_bool "3rd refused" true !refused

(* Regression: the sender must post enough credit receive buffers for
   every grant that can simultaneously be in flight. An earlier version
   posted a fixed 4 regardless of window and grant_every; with
   window = 12 and grant_every = 1, a fast consumer puts 12 credit
   messages on the wire while the sender stalls, and 8 of them were
   discarded at the sender's credit endpoint (visible below as nonzero
   [credit_drops]). *)
let test_credit_buffers_cover_window () =
  let window = 12 in
  let messages = window + 1 in
  let config = Provision.config_for ~base:Config.default ~buffers:(window + 4) in
  let machine = Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) () in
  let data_addr = Mailbox.create () and credit_addr = Mailbox.create () in
  let delivered = ref 0 in
  let credit_drops = ref (-1) and credits_after = ref (-1) in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let credit_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api credit_ep (Mailbox.take credit_addr);
      let receiver =
        Window.create_receiver api ~data_ep ~credit_ep ~window ~grant_every:1 ()
      in
      (* Consume as fast as messages land: every credit goes straight out. *)
      while !delivered < messages do
        match Window.recv receiver with
        | Some buf ->
            incr delivered;
            Window.consumed receiver buf
        | None -> Mem_port.instr (Api.port api) 5
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let credit_recv_ep =
        ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
      in
      Mailbox.put credit_addr (Api.address api credit_recv_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let sender =
        Window.create_sender api ~data_ep ~credit_recv_ep ~window
          ~grant_every:1 ()
      in
      (* Burn the whole window without once absorbing credits... *)
      for _ = 1 to window do
        Window.send sender (ok (Api.allocate_buffer api))
      done;
      (* ...stall while all [window] credit messages arrive... *)
      Sim.delay (Flipc_sim.Vtime.ms 2);
      (* ...then send once more, which first absorbs every credit. *)
      Window.send sender (ok (Api.allocate_buffer api));
      credit_drops := Window.credit_drops sender;
      credits_after := Window.credits_available sender);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  check "all delivered" messages !delivered;
  check "no credit message discarded" 0 !credit_drops;
  (* Every credit recovered: the window is fully reopened (minus the one
     message just sent and not yet consumed when the sender sampled). *)
  check "window fully recovered" (window - 1) !credits_after

(* send_timeout gives up when the peer never grants credit, where [send]
   would spin forever. *)
let test_window_send_timeout () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let data_addr = Mailbox.create () and credit_addr = Mailbox.create () in
  Machine.spawn_app machine ~node:1 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let credit_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put data_addr (Api.address api data_ep);
      Api.connect api credit_ep (Mailbox.take credit_addr);
      (* A receiver that never consumes: credits never return. *)
      ignore (Window.create_receiver api ~data_ep ~credit_ep ~window:2 ()));
  Machine.spawn_app machine ~node:0 (fun api ->
      let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let credit_recv_ep =
        ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
      in
      Mailbox.put credit_addr (Api.address api credit_recv_ep);
      Api.connect api data_ep (Mailbox.take data_addr);
      let sender =
        Window.create_sender api ~data_ep ~credit_recv_ep ~window:2 ()
      in
      let b1 = ok (Api.allocate_buffer api) in
      let b2 = ok (Api.allocate_buffer api) in
      let b3 = ok (Api.allocate_buffer api) in
      (match Window.send_timeout sender b1 with
      | Ok () -> ()
      | Error `Timeout -> Alcotest.fail "credit available: no timeout");
      (match Window.send_timeout sender b2 with
      | Ok () -> ()
      | Error `Timeout -> Alcotest.fail "credit available: no timeout");
      (match Window.send_timeout sender ~max_spins:50 b3 with
      | Error `Timeout -> ()
      | Ok () -> Alcotest.fail "window exhausted: expected timeout");
      check "only the window went out" 2 (Window.messages_sent sender));
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine

(* Property: whatever the consumer's pacing, the window never lets the
   transport discard. *)
let window_never_drops_prop =
  QCheck.Test.make ~name:"window never drops under random pacing" ~count:12
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 5 25) (int_bound 80)))
    (fun (window, delays) ->
      let messages = List.length delays in
      let config =
        Provision.config_for ~base:Config.default ~buffers:(window + 4)
      in
      let machine =
        Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) ()
      in
      let data_addr = Mailbox.create () and credit_addr = Mailbox.create () in
      let delivered = ref 0 and drops = ref 0 in
      Machine.spawn_app machine ~node:1 (fun api ->
          let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
          let credit_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          Mailbox.put data_addr (Api.address api data_ep);
          Api.connect api credit_ep (Mailbox.take credit_addr);
          let receiver = Window.create_receiver api ~data_ep ~credit_ep ~window () in
          let remaining = ref delays in
          while !delivered < messages do
            match Window.recv receiver with
            | Some buf ->
                incr delivered;
                (match !remaining with
                | d :: rest ->
                    remaining := rest;
                    Mem_port.instr (Api.port api) (1 + (d * 50))
                | [] -> ());
                Window.consumed receiver buf
            | None -> Mem_port.instr (Api.port api) 5
          done;
          drops := Api.drops_read_and_reset api data_ep);
      Machine.spawn_app machine ~node:0 (fun api ->
          let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          let credit_recv_ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
          in
          Mailbox.put credit_addr (Api.address api credit_recv_ep);
          Api.connect api data_ep (Mailbox.take data_addr);
          let sender = Window.create_sender api ~data_ep ~credit_recv_ep ~window () in
          let pool = List.init (window + 2) (fun _ -> ok (Api.allocate_buffer api)) in
          let free = Queue.create () in
          List.iter (fun b -> Queue.push b free) pool;
          for _ = 1 to messages do
            let rec get () =
              (match Api.reclaim api data_ep with
              | Some b -> Queue.push b free
              | None -> ());
              match Queue.take_opt free with
              | Some b -> b
              | None ->
                  Mem_port.instr (Api.port api) 5;
                  get ()
            in
            Window.send sender (get ())
          done);
      Machine.run machine;
      Machine.stop_engines machine;
      Machine.run machine;
      !delivered = messages && !drops = 0)

let () =
  Alcotest.run "flow"
    [
      ( "provision",
        [
          Alcotest.test_case "rpc rule" `Quick test_rpc_rule;
          Alcotest.test_case "periodic rule" `Quick test_periodic_rule;
          Alcotest.test_case "queue capacity" `Quick test_queue_capacity_rule;
          Alcotest.test_case "config_for" `Quick test_config_for;
        ] );
      ( "window",
        [
          Alcotest.test_case "no drops under overload" `Quick
            test_window_no_drops_under_overload;
          Alcotest.test_case "fast consumer" `Quick test_window_fast_consumer;
          Alcotest.test_case "unwindowed drops" `Quick
            test_unwindowed_overload_drops;
          Alcotest.test_case "try_send window" `Quick
            test_try_send_respects_window;
          Alcotest.test_case "credit buffers cover window" `Quick
            test_credit_buffers_cover_window;
          Alcotest.test_case "send_timeout" `Quick test_window_send_timeout;
          QCheck_alcotest.to_alcotest window_never_drops_prop;
        ] );
    ]
