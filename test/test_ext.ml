(* Tests for the extension features implemented from the paper's
   future-work list: the name service, the buffer-managing channel layer,
   transport priority and capacity control, destination restrictions, and
   the bulk-transfer protocol. *)

module Sim = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Shared_mem = Flipc_memsim.Shared_mem
module Config = Flipc.Config
module Api = Flipc.Api
module Machine = Flipc.Machine
module Msg_engine = Flipc.Msg_engine
module Endpoint_kind = Flipc.Endpoint_kind
module Nameservice = Flipc.Nameservice
module Channel = Flipc.Channel
module Address = Flipc.Address
module Bulk = Flipc_bulk.Bulk

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("api error: " ^ Api.error_to_string e)

let ok_ch = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("channel error: " ^ Channel.error_to_string e)

let mesh2 ?config () =
  Machine.create ?config (Machine.Mesh { cols = 2; rows = 1 }) ()

let finish machine =
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine

(* --- Nameservice --- *)

let test_nameservice_lookup_blocks () =
  let sim = Sim.create () in
  let ns = Nameservice.create () in
  let found_at = ref (-1) in
  Sim.spawn sim (fun () ->
      let addr = Nameservice.lookup ns "server" in
      found_at := Sim.now sim;
      check "addr node" 3 (Address.node addr));
  Sim.spawn sim (fun () ->
      Sim.delay 50;
      Nameservice.register ns "server" (Address.make ~node:3 ~endpoint:1));
  Sim.run sim;
  check "lookup completed at registration" 50 !found_at;
  check "size" 1 (Nameservice.size ns)

let test_nameservice_try_and_duplicates () =
  let ns = Nameservice.create () in
  check_bool "absent" true (Nameservice.try_lookup ns "x" = None);
  Nameservice.register ns "x" (Address.make ~node:0 ~endpoint:0);
  check_bool "present" true (Nameservice.try_lookup ns "x" <> None);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Nameservice.register: duplicate name x") (fun () ->
      Nameservice.register ns "x" (Address.make ~node:1 ~endpoint:0))

let test_machine_has_nameservice () =
  let machine = mesh2 () in
  check "fresh" 0 (Nameservice.size (Machine.names machine))

(* --- Channel --- *)

let test_channel_roundtrip () =
  let machine = mesh2 () in
  let ns = Machine.names machine in
  let got = ref [] in
  Machine.spawn_app machine ~node:1 (fun api ->
      let rx = ok_ch (Channel.create_rx api ()) in
      Nameservice.register ns "rx" (Channel.address rx);
      let rec loop n =
        if n < 3 then
          match Channel.recv rx with
          | Some payload ->
              got := Bytes.to_string payload :: !got;
              loop (n + 1)
          | None ->
              Mem_port.instr (Api.port api) 5;
              loop n
      in
      loop 0;
      check "received count" 3 (Channel.received rx));
  Machine.spawn_app machine ~node:0 (fun api ->
      let dest = Nameservice.lookup ns "rx" in
      let tx = ok_ch (Channel.create_tx api ~dest ()) in
      (* Variable-length payloads, no buffer management in sight. *)
      List.iter
        (fun s -> ok_ch (Channel.send tx (Bytes.of_string s)))
        [ "one"; "two2"; "three33" ];
      check "sent count" 3 (Channel.sent tx));
  finish machine;
  Alcotest.(check (list string))
    "payloads exact" [ "one"; "two2"; "three33" ] (List.rev !got)

let test_channel_pool_recycles () =
  (* Send far more messages than the pool size: reclaim must recycle. *)
  let machine = mesh2 () in
  let ns = Machine.names machine in
  let received = ref 0 in
  let total = 40 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let rx = ok_ch (Channel.create_rx api ~depth:6 ()) in
      Nameservice.register ns "rx" (Channel.address rx);
      while !received < total do
        match Channel.recv rx with
        | Some _ -> incr received
        | None -> Mem_port.instr (Api.port api) 5
      done;
      check "no drops" 0 (Channel.drops rx));
  Machine.spawn_app machine ~node:0 (fun api ->
      let dest = Nameservice.lookup ns "rx" in
      let tx = ok_ch (Channel.create_tx api ~dest ~pool:3 ()) in
      for i = 1 to total do
        ok_ch (Channel.send tx (Bytes.make 32 (Char.chr (64 + (i mod 26)))))
      done);
  finish machine;
  check "all delivered with pool of 3" total !received

let test_channel_try_send_exhaustion () =
  let machine = mesh2 () in
  Machine.spawn_app machine ~node:0 (fun api ->
      (* Destination is irrelevant: we only exercise the pool. *)
      let dest = Address.make ~node:1 ~endpoint:0 in
      let tx = ok_ch (Channel.create_tx api ~dest ~pool:2 ()) in
      (match Channel.try_send tx (Bytes.of_string "a") with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Channel.error_to_string e));
      (match Channel.try_send tx (Bytes.of_string "b") with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Channel.error_to_string e));
      (* Pool exhausted and the engine may not have transmitted yet; a
         spin-free try_send reports `No_buffer rather than blocking. *)
      match Channel.try_send tx (Bytes.of_string "c") with
      | Error `No_buffer -> ()
      | Ok () -> () (* engine was quick: also fine *)
      | Error e -> Alcotest.fail (Channel.error_to_string e));
  finish machine

let test_channel_send_timeout () =
  let machine = mesh2 () in
  Machine.spawn_app machine ~node:0 (fun api ->
      let dest = Address.make ~node:1 ~endpoint:0 in
      let tx = ok_ch (Channel.create_tx api ~dest ~pool:1 ()) in
      (match Channel.send_timeout tx (Bytes.of_string "a") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "pool available: first send must succeed");
      (* The single buffer is in flight; three 10 ns polls cannot cover
         the engine's transmit latency, so the bounded wait gives up
         (where [send] would keep spinning). *)
      (match Channel.send_timeout tx ~max_spins:3 (Bytes.of_string "b") with
      | Error `Timeout -> ()
      | Ok () -> Alcotest.fail "expected timeout on a 30 ns bound"
      | Error _ -> Alcotest.fail "expected timeout");
      (* A generous bound outlives the transmit and reclaims. *)
      match Channel.send_timeout tx (Bytes.of_string "c") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "engine running: reclaim must succeed");
  finish machine

let test_channel_capacity_checked () =
  let machine = mesh2 () in
  Machine.spawn_app machine ~node:0 (fun api ->
      let dest = Address.make ~node:1 ~endpoint:0 in
      let tx = ok_ch (Channel.create_tx api ~dest ()) in
      let too_big = Bytes.create (Channel.capacity api + 1) in
      Alcotest.check_raises "capacity"
        (Invalid_argument "Channel.send: payload exceeds channel capacity")
        (fun () -> ignore (Channel.send tx too_big)));
  finish machine

let test_channel_recv_wait () =
  let machine = mesh2 () in
  let ns = Machine.names machine in
  let got = ref "" in
  let n1 = Machine.node machine 1 in
  let sem = Flipc_rt.Rt_semaphore.create (Machine.sched n1) in
  Machine.spawn_app machine ~node:1 (fun api ->
      let rx = ok_ch (Channel.create_rx api ~semaphore:sem ()) in
      Nameservice.register ns "rx" (Channel.address rx);
      ignore
        (Machine.spawn_thread machine ~node:1 ~priority:5 (fun thr _api ->
             got := Bytes.to_string (Channel.recv_wait rx thr))
          : Flipc_rt.Sched.thread));
  Machine.spawn_app machine ~node:0 (fun api ->
      let dest = Nameservice.lookup ns "rx" in
      let tx = ok_ch (Channel.create_tx api ~dest ()) in
      Sim.delay (Vtime.us 50);
      ok_ch (Channel.send tx (Bytes.of_string "blocking works")));
  finish machine;
  Alcotest.(check string) "woken with payload" "blocking works" !got

(* A peer ignoring the channel framing cannot crash the receiver: the
   garbage frame is counted and skipped, later well-formed traffic still
   arrives. *)
let test_channel_corrupt_frame_skipped () =
  let machine = mesh2 () in
  let ns = Machine.names machine in
  let got = ref "" and corrupt = ref 0 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let rx = ok_ch (Channel.create_rx api ()) in
      Nameservice.register ns "rx" (Channel.address rx);
      let rec poll () =
        match Channel.recv rx with
        | Some p -> p
        | None ->
            Mem_port.instr (Api.port api) 5;
            poll ()
      in
      got := Bytes.to_string (poll ());
      corrupt := Channel.corrupt_frames rx);
  Machine.spawn_app machine ~node:0 (fun api ->
      let dest = Nameservice.lookup ns "rx" in
      (* First a raw FLIPC message with a garbage length word... *)
      let raw_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api raw_ep dest;
      let raw = ok (Api.allocate_buffer api) in
      let garbage = Bytes.create 4 in
      Bytes.set_int32_le garbage 0 0x0FFFFFFFl;
      Api.write_payload api raw garbage;
      ok (Api.send api raw_ep raw);
      (* ... then a proper channel message. *)
      let tx = ok_ch (Channel.create_tx api ~dest ()) in
      Sim.delay (Flipc_sim.Vtime.us 100);
      ok_ch (Channel.send tx (Bytes.of_string "still alive")));
  finish machine;
  Alcotest.(check string) "well-formed frame arrives" "still alive" !got;
  check "garbage counted" 1 !corrupt

(* --- Transport priority & capacity control --- *)

(* Two send endpoints on node 0, same destination node: a low-priority
   flood and a sporadic high-priority endpoint. The engine must transmit
   the high-priority message before the queued flood backlog. *)
let test_transport_priority () =
  let machine = mesh2 () in
  let ns = Machine.names machine in
  let arrival_order = ref [] in
  Machine.spawn_app machine ~node:1 (fun api ->
      let rx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 8 do
        ok (Api.post_receive api rx (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "rx" (Api.address api rx);
      let rec loop n =
        if n < 6 then
          match Api.receive api rx with
          | Some buf ->
              let tagb = Api.read_payload api buf 1 in
              arrival_order := Bytes.get tagb 0 :: !arrival_order;
              ok (Api.post_receive api rx buf);
              loop (n + 1)
          | None ->
              Mem_port.instr (Api.port api) 5;
              loop n
      in
      loop 0);
  Machine.spawn_app machine ~node:0 (fun api ->
      let dest = Nameservice.lookup ns "rx" in
      (* The low-priority endpoint is also burst-limited so a backlog is
         guaranteed to exist when the high-priority message is queued. *)
      let low =
        ok
          (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ~priority:1
             ~burst:1 ())
      in
      let high =
        ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ~priority:9 ())
      in
      Api.connect api low dest;
      Api.connect api high dest;
      let bufs = List.init 5 (fun _ -> ok (Api.allocate_buffer api)) in
      List.iter
        (fun b ->
          Api.write_payload api b (Bytes.of_string "L");
          ok (Api.send api low b))
        bufs;
      let hb = ok (Api.allocate_buffer api) in
      Api.write_payload api hb (Bytes.of_string "H");
      ok (Api.send api high hb));
  finish machine;
  (* The high-priority message must overtake the queued low backlog: at
     least one L arrives after H. *)
  let order = List.rev !arrival_order in
  let order_s = String.init (List.length order) (List.nth order) in
  let h_pos = String.index order_s 'H' in
  check_bool
    (Fmt.str "H overtakes backlog in %S" order_s)
    true
    (h_pos < String.length order_s - 1)

(* Burst capacity: a flood endpoint with burst=1 cannot emit more than one
   message per engine iteration, so its messages interleave with iteration
   boundaries instead of leaving back-to-back. *)
let test_burst_capacity () =
  let machine = mesh2 () in
  let ns = Machine.names machine in
  let arrivals = ref [] in
  let sim = Machine.sim machine in
  Machine.spawn_app machine ~node:1 (fun api ->
      let rx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 8 do
        ok (Api.post_receive api rx (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "rx" (Api.address api rx);
      let rec loop n =
        if n < 4 then
          match Api.receive api rx with
          | Some buf ->
              arrivals := Sim.now sim :: !arrivals;
              ok (Api.post_receive api rx buf);
              loop (n + 1)
          | None ->
              Mem_port.instr (Api.port api) 5;
              loop n
      in
      loop 0);
  Machine.spawn_app machine ~node:0 (fun api ->
      let dest = Nameservice.lookup ns "rx" in
      let ep =
        ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ~burst:1 ())
      in
      Api.connect api ep dest;
      let bufs = List.init 4 (fun _ -> ok (Api.allocate_buffer api)) in
      List.iter (fun b -> ok (Api.send api ep b)) bufs);
  finish machine;
  (* With burst=1 each departure waits for the next engine iteration
     (>= ~0.5us apart even though the wire would allow ~0.36us). *)
  let sorted = List.rev !arrivals in
  let rec min_gap = function
    | a :: (b :: _ as rest) -> min (b - a) (min_gap rest)
    | _ -> max_int
  in
  check_bool "iteration-paced departures" true (min_gap sorted >= 450)

(* Destination restriction: a confined endpoint cannot reach other nodes. *)
let test_destination_restriction () =
  let machine = Machine.create (Machine.Mesh { cols = 3; rows = 1 }) () in
  let ns = Machine.names machine in
  let reached = ref 0 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let rx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 4 do
        ok (Api.post_receive api rx (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "allowed" (Api.address api rx));
  Machine.spawn_app machine ~node:2 (fun api ->
      let rx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 4 do
        ok (Api.post_receive api rx (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "forbidden" (Api.address api rx);
      let rec watch () =
        match Api.receive api rx with
        | Some _ -> reached := !reached + 1
        | None ->
            if Sim.now (Machine.sim machine) < Vtime.ms 2 then begin
              Mem_port.instr (Api.port api) 50;
              watch ()
            end
      in
      watch ());
  Machine.spawn_app machine ~node:0 (fun api ->
      let allowed_dest = Nameservice.lookup ns "allowed" in
      let forbidden_dest = Nameservice.lookup ns "forbidden" in
      (* Endpoint confined to node 1. *)
      let ep =
        ok
          (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ~allowed_node:1 ())
      in
      let b1 = ok (Api.allocate_buffer api) in
      let b2 = ok (Api.allocate_buffer api) in
      ok (Api.send_to api ep b1 allowed_dest);
      ok (Api.send_to api ep b2 forbidden_dest));
  finish machine;
  check "forbidden destination never reached" 0 !reached;
  let s0 = Msg_engine.stats (Machine.msg_engine (Machine.node machine 0)) in
  check "engine counted the violation" 1 s0.Msg_engine.forbidden;
  check "allowed send went through" 1 s0.Msg_engine.sends

(* --- Multiple communication buffers per node (trust domains) --- *)

(* Two mutually untrusting applications on the same node, each in its own
   communication buffer, both communicating with remote peers through the
   one engine. *)
let test_multi_comm_independent_traffic () =
  let machine =
    Machine.create ~comm_buffers:2 (Machine.Mesh { cols = 2; rows = 1 }) ()
  in
  let ns = Machine.names machine in
  let got_a = ref "" and got_b = ref "" in
  let receiver comm name cell =
    Machine.spawn_app machine ~node:1 ~comm (fun api ->
        let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
        Nameservice.register ns name (Api.address api ep);
        let rec poll () =
          match Api.receive api ep with
          | Some b -> b
          | None ->
              Mem_port.instr (Api.port api) 5;
              poll ()
        in
        cell := Bytes.to_string (Api.read_payload api (poll ()) 5))
  in
  receiver 0 "app-a" got_a;
  receiver 1 "app-b" got_b;
  let sender comm name payload =
    Machine.spawn_app machine ~node:0 ~comm (fun api ->
        let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        Api.connect api ep (Nameservice.lookup ns name);
        let buf = ok (Api.allocate_buffer api) in
        Api.write_payload api buf (Bytes.of_string payload);
        ok (Api.send api ep buf))
  in
  sender 0 "app-a" "alpha";
  sender 1 "app-b" "bravo";
  finish machine;
  Alcotest.(check string) "domain A delivered" "alpha" !got_a;
  Alcotest.(check string) "domain B delivered" "bravo" !got_b

(* Distinct buffer pools: exhausting one application's pool does not
   touch the other's. *)
let test_multi_comm_separate_pools () =
  let machine =
    Machine.create ~comm_buffers:2 (Machine.Mesh { cols = 2; rows = 1 }) ()
  in
  Machine.spawn_app machine ~node:0 ~comm:0 (fun api ->
      let total = (Api.config api).Config.total_buffers in
      for _ = 1 to total do
        ignore (ok (Api.allocate_buffer api) : Api.buffer)
      done;
      match Api.allocate_buffer api with
      | Error `No_resources -> ()
      | _ -> Alcotest.fail "domain 0 pool should be exhausted");
  Machine.spawn_app machine ~node:0 ~comm:1 (fun api ->
      (* Domain 1's pool is untouched. *)
      ignore (ok (Api.allocate_buffer api) : Api.buffer));
  finish machine

(* The engine refuses buffer pointers that reach outside the owning
   application's region: a malicious app cannot make the engine read
   another domain's memory. *)
let test_multi_comm_cross_region_pointer_rejected () =
  let machine =
    Machine.create ~comm_buffers:2 (Machine.Mesh { cols = 2; rows = 1 }) ()
  in
  let ns = Machine.names machine in
  let received = ref 0 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      Nameservice.register ns "victim" (Api.address api ep);
      let deadline = Flipc_sim.Vtime.ms 2 in
      let rec watch () =
        match Api.receive api ep with
        | Some _ -> incr received
        | None ->
            if Sim.now (Machine.sim machine) < deadline then begin
              Mem_port.instr (Api.port api) 50;
              watch ()
            end
      in
      watch ());
  Machine.spawn_app machine ~node:0 ~comm:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Nameservice.lookup ns "victim");
      (* Forge a queue entry pointing into domain 1's region. *)
      let port = Api.port api in
      let layout = Api.layout api in
      let foreign =
        Flipc.Layout.buffer_addr
          (Flipc.Comm_buffer.layout
             (Machine.comm_at (Machine.node machine 0) 1))
          0
      in
      let epi = Api.endpoint_index ep in
      Mem_port.poke port (Flipc.Layout.slot_addr layout ~ep:epi ~slot:0) foreign;
      Mem_port.poke port
        (Flipc.Layout.ep_field layout ~ep:epi Flipc.Layout.Release)
        1;
      Flipc.Msg_engine.poke (Machine.msg_engine (Machine.node machine 0)));
  finish machine;
  check "forged pointer never transmitted" 0 !received;
  let s = Msg_engine.stats (Machine.msg_engine (Machine.node machine 0)) in
  check_bool "engine rejected the forgery" true (s.Msg_engine.rejects >= 1)

(* --- Bulk transfer --- *)

let test_bulk_put_roundtrip () =
  let machine = mesh2 () in
  let bulk = Bulk.create machine in
  let region = Bulk.export bulk ~node:1 ~len:65536 in
  check "region node" 1 (Bulk.region_node region);
  let data = Bytes.init 20_000 (fun i -> Char.chr (i land 0xFF)) in
  Machine.spawn_app machine ~node:0 (fun _api ->
      Bulk.put bulk ~from:0 region data);
  finish machine;
  (* Verify the bytes really landed in node 1's memory. *)
  let mem = Machine.mem (Machine.node machine 1) in
  let landed =
    Shared_mem.read_bytes mem ~pos:(Bulk.region_base region) ~len:20_000
  in
  check_bool "data intact" true (Bytes.equal landed data);
  check "one put" 1 (Bulk.stats bulk).Bulk.puts

let test_bulk_get_roundtrip () =
  let machine = mesh2 () in
  let bulk = Bulk.create machine in
  let region = Bulk.export bulk ~node:1 ~len:8192 in
  let mem = Machine.mem (Machine.node machine 1) in
  let data = Bytes.init 8192 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  Shared_mem.write_bytes mem ~pos:(Bulk.region_base region) data;
  let fetched = ref Bytes.empty in
  Machine.spawn_app machine ~node:0 (fun _api ->
      fetched := Bulk.get bulk ~into:0 region ~len:8192);
  finish machine;
  check_bool "get returns region contents" true (Bytes.equal !fetched data)

let test_bulk_offsets () =
  let machine = mesh2 () in
  let bulk = Bulk.create machine in
  let region = Bulk.export bulk ~node:1 ~len:1024 in
  Machine.spawn_app machine ~node:0 (fun _api ->
      Bulk.put bulk ~from:0 ~at:100 region (Bytes.make 16 'x');
      let back = Bulk.get bulk ~into:0 ~at:100 region ~len:16 in
      check_bool "offset roundtrip" true (Bytes.equal back (Bytes.make 16 'x')));
  finish machine

let test_bulk_bounds_rejected () =
  let machine = mesh2 () in
  let bulk = Bulk.create machine in
  let region = Bulk.export bulk ~node:1 ~len:1024 in
  Machine.spawn_app machine ~node:0 (fun _api ->
      Alcotest.check_raises "local bounds"
        (Invalid_argument "Bulk.put: range outside region") (fun () ->
          Bulk.put bulk ~from:0 ~at:1000 region (Bytes.create 100)));
  finish machine

let test_bulk_bandwidth_plausible () =
  let machine = mesh2 () in
  let bulk = Bulk.create machine in
  let region = Bulk.export bulk ~node:1 ~len:(200 * 1024) in
  let sim = Machine.sim machine in
  let mbps = ref 0. in
  Machine.spawn_app machine ~node:0 (fun _api ->
      let bytes = 200 * 1024 in
      let t0 = Sim.now sim in
      Bulk.put bulk ~from:0 region (Bytes.create bytes);
      let dt = Sim.now sim - t0 in
      mbps := float_of_int bytes /. float_of_int dt *. 1000.);
  finish machine;
  (* Software bulk rates on this hardware were 140-175 MB/s. *)
  check_bool (Fmt.str "bandwidth %.0f MB/s in range" !mbps) true
    (!mbps > 140. && !mbps < 200.)

(* Several transfers in flight at once, different directions and regions:
   all complete with the right data. *)
let test_bulk_concurrent_transfers () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let bulk = Bulk.create machine in
  let r0 = Bulk.export bulk ~node:0 ~len:16384 in
  let r1a = Bulk.export bulk ~node:1 ~len:16384 in
  let r1b = Bulk.export bulk ~node:1 ~len:16384 in
  let mem0 = Machine.mem (Machine.node machine 0) in
  let fill = Bytes.init 16384 (fun i -> Char.chr ((i * 13) land 0xFF)) in
  Shared_mem.write_bytes mem0 ~pos:(Bulk.region_base r0) fill;
  let got = ref Bytes.empty in
  Machine.spawn_app machine ~node:0 (fun _api ->
      Bulk.put bulk ~from:0 r1a (Bytes.make 16384 'A'));
  Machine.spawn_app machine ~node:0 (fun _api ->
      Bulk.put bulk ~from:0 r1b (Bytes.make 16384 'B'));
  Machine.spawn_app machine ~node:1 (fun _api ->
      got := Bulk.get bulk ~into:1 r0 ~len:16384);
  finish machine;
  let mem1 = Machine.mem (Machine.node machine 1) in
  check_bool "region A" true
    (Bytes.equal
       (Shared_mem.read_bytes mem1 ~pos:(Bulk.region_base r1a) ~len:16384)
       (Bytes.make 16384 'A'));
  check_bool "region B" true
    (Bytes.equal
       (Shared_mem.read_bytes mem1 ~pos:(Bulk.region_base r1b) ~len:16384)
       (Bytes.make 16384 'B'));
  check_bool "get result" true (Bytes.equal !got fill)

let test_bulk_coexists_with_flipc () =
  (* A FLIPC message carries a region handle; the peer then bulk-reads the
     region — the integration pattern of PAM (active message + bulk). *)
  let machine = mesh2 () in
  let bulk = Bulk.create machine in
  let ns = Machine.names machine in
  let fetched = ref 0 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let rx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      ok (Api.post_receive api rx (ok (Api.allocate_buffer api)));
      Nameservice.register ns "ctl" (Api.address api rx);
      let rec poll () =
        match Api.receive api rx with
        | Some b -> b
        | None ->
            Mem_port.instr (Api.port api) 5;
            poll ()
      in
      let buf = poll () in
      let payload = Api.read_payload api buf 8 in
      let handle = Int32.to_int (Bytes.get_int32_le payload 0) in
      let len = Int32.to_int (Bytes.get_int32_le payload 4) in
      let region = Option.get (Bulk.region_of_handle bulk handle) in
      let data = Bulk.get bulk ~into:1 region ~len in
      fetched := Bytes.length data);
  Machine.spawn_app machine ~node:0 (fun api ->
      let region = Bulk.export bulk ~node:0 ~len:32768 in
      let dest = Nameservice.lookup ns "ctl" in
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep dest;
      let buf = ok (Api.allocate_buffer api) in
      let payload = Bytes.create 8 in
      Bytes.set_int32_le payload 0 (Int32.of_int (Bulk.handle region));
      Bytes.set_int32_le payload 4 (Int32.of_int 32768);
      Api.write_payload api buf payload;
      ok (Api.send api ep buf));
  finish machine;
  check "peer pulled the whole region" 32768 !fetched

let () =
  Alcotest.run "ext"
    [
      ( "nameservice",
        [
          Alcotest.test_case "lookup blocks" `Quick test_nameservice_lookup_blocks;
          Alcotest.test_case "try/duplicates" `Quick
            test_nameservice_try_and_duplicates;
          Alcotest.test_case "machine-wide" `Quick test_machine_has_nameservice;
        ] );
      ( "channel",
        [
          Alcotest.test_case "roundtrip" `Quick test_channel_roundtrip;
          Alcotest.test_case "pool recycles" `Quick test_channel_pool_recycles;
          Alcotest.test_case "try_send exhaustion" `Quick
            test_channel_try_send_exhaustion;
          Alcotest.test_case "send_timeout" `Quick test_channel_send_timeout;
          Alcotest.test_case "capacity" `Quick test_channel_capacity_checked;
          Alcotest.test_case "recv_wait" `Quick test_channel_recv_wait;
          Alcotest.test_case "corrupt frame skipped" `Quick
            test_channel_corrupt_frame_skipped;
        ] );
      ( "transport-extensions",
        [
          Alcotest.test_case "priority" `Quick test_transport_priority;
          Alcotest.test_case "burst capacity" `Quick test_burst_capacity;
          Alcotest.test_case "destination restriction" `Quick
            test_destination_restriction;
        ] );
      ( "multi-comm",
        [
          Alcotest.test_case "independent traffic" `Quick
            test_multi_comm_independent_traffic;
          Alcotest.test_case "separate pools" `Quick
            test_multi_comm_separate_pools;
          Alcotest.test_case "cross-region pointer rejected" `Quick
            test_multi_comm_cross_region_pointer_rejected;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "put roundtrip" `Quick test_bulk_put_roundtrip;
          Alcotest.test_case "get roundtrip" `Quick test_bulk_get_roundtrip;
          Alcotest.test_case "offsets" `Quick test_bulk_offsets;
          Alcotest.test_case "bounds rejected" `Quick test_bulk_bounds_rejected;
          Alcotest.test_case "bandwidth plausible" `Quick
            test_bulk_bandwidth_plausible;
          Alcotest.test_case "coexists with flipc" `Quick
            test_bulk_coexists_with_flipc;
          Alcotest.test_case "concurrent transfers" `Quick
            test_bulk_concurrent_transfers;
        ] );
    ]
