#!/bin/sh
# CI gate: full build, test suite, formatting.
#
#   scripts/check.sh
#
# Fails on the first broken step. Formatting: when ocamlformat is
# installed the whole tree is checked via `dune build @fmt`; otherwise
# (the default container has no ocamlformat) the gate degrades to the
# dune files alone, which `dune format-dune-file` handles by itself.
set -eu
cd "$(dirname "$0")/.."

echo "== build (@all) =="
dune build @all

echo "== tests =="
dune runtest

echo "== format =="
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "(ocamlformat not installed: checking dune files only)"
  status=0
  for f in $(git ls-files | grep -E '(^|/)dune(-project)?$'); do
    if ! dune format-dune-file "$f" | cmp -s - "$f"; then
      echo "not formatted: $f (run: dune format-dune-file $f > tmp && mv tmp $f)"
      status=1
    fi
  done
  [ "$status" -eq 0 ]
fi

echo "== ok =="
