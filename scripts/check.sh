#!/bin/sh
# CI gate: full build, test suite, formatting.
#
#   scripts/check.sh
#
# Fails on the first broken step. Formatting: when ocamlformat is
# installed the whole tree is checked via `dune build @fmt`; otherwise
# (the default container has no ocamlformat) the gate degrades to the
# dune files alone, which `dune format-dune-file` handles by itself.
set -eu
cd "$(dirname "$0")/.."

echo "== build (@all) =="
dune build @all

echo "== tests =="
dune runtest

echo "== observability smoke =="
# The obs suite runs under `dune runtest` too; run it by name so a
# failure is attributed clearly, then validate the CLI's machine-readable
# surfaces: `flipc metrics --json` must emit parseable JSON and --trace
# must emit a parseable Chrome trace_event document.
dune exec test/test_obs.exe -- -c >/dev/null
dune exec test/test_flight.exe -- -c >/dev/null
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
dune exec bin/flipc_cli.exe -- metrics --json --exchanges 40 \
  --trace "$obs_tmp/trace.json" >"$obs_tmp/metrics.json"
# Prometheus exposition: the time-series surface must emit well-formed
# families (TYPE lines + flipc_-prefixed samples).
dune exec bin/flipc_cli.exe -- metrics --prom --exchanges 40 \
  >"$obs_tmp/metrics.prom"
grep -q '^# TYPE flipc_' "$obs_tmp/metrics.prom"
grep -q '^flipc_' "$obs_tmp/metrics.prom"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$obs_tmp/metrics.json" >/dev/null
  python3 -c "
import json, sys
doc = json.load(open('$obs_tmp/metrics.json'))
assert doc['metrics'], 'empty metrics snapshot'
assert doc['latency']['total']['count'] > 0, 'empty latency breakdown'
trace = json.load(open('$obs_tmp/trace.json'))
assert trace['traceEvents'], 'empty chrome trace'
"
else
  # No python3: at least require non-empty output of the right shape.
  grep -q '"metrics":{' "$obs_tmp/metrics.json"
  grep -q '"traceEvents":\[' "$obs_tmp/trace.json"
fi

echo "== perf smoke =="
# Scheduler work-proportionality gate: a short ping-pong must keep the
# engine's cached schedule stable (--max-rebuilds exits 1 when any
# node's rebuild counter exceeds the budget — rebuilds on the
# steady-state path mean the hot loop is allocating and sorting again),
# and the doorbell counters must show the wait-free wakeup path in use.
dune exec bin/flipc_cli.exe -- engine --json --exchanges 40 --max-rebuilds 4 \
  >"$obs_tmp/engine.json"
# One small engine_scan size (ENGINE_SCAN_SIZES skips the expensive
# 256-endpoint full-scan ablation): the doorbell engine's idle
# iteration budget is one epoch load plus one doorbell load per
# allocated send endpoint — with one sender that is 2 loads/iteration;
# fail if it ever exceeds 4. BENCH_engine_scan.json is a gitignored
# artifact, so regenerating it here is harmless.
ENGINE_SCAN_SIZES=8 dune exec bench/main.exe -- engine_scan >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -c "
import json
doc = json.load(open('$obs_tmp/engine.json'))
eng = doc['engine']
assert doc['sched_mode'] == 'doorbell', 'doorbell scheduling not the default'
assert eng['node0.engine.doorbell_hits'] > 0, 'no doorbell hits recorded'
assert eng['node0.engine.idle_scans_avoided'] > 0, 'no idle scans avoided'
scan = json.load(open('BENCH_engine_scan.json'))
for row in scan['sizes']:
    loads = row['doorbell']['idle_loads_per_iter']
    assert loads <= 4.0, f'idle loads/iter over budget: {loads}'
"
else
  grep -q '"sched_mode":"doorbell"' "$obs_tmp/engine.json"
  grep -q '"experiment":"engine_scan"' BENCH_engine_scan.json
fi

echo "== firehose smoke =="
# Open-loop throughput path: a bounded, seeded firehose run with the
# batching knobs on must deliver at least 90% of the offered load with
# zero invariant-monitor violations (--assert-clean attaches the
# monitor; --min-delivered-ratio makes the ratio a hard exit code).
# A second cell turns on engine sharding with multiple streams per
# node and checks the per-shard metrics snapshot: every (node, shard)
# pair must appear, in deterministic node-major shard order.
dune exec bin/flipc_cli.exe -- firehose --senders 2 --receivers 2 \
  --duration-us 300 --mean-gap-ns 2000 --seed 11 \
  --tx-batch 8 --send-burst 4 --recv-burst 4 \
  --assert-clean --min-delivered-ratio 0.9 --json >"$obs_tmp/firehose.json"
dune exec bin/flipc_cli.exe -- firehose --senders 2 --receivers 2 \
  --duration-us 300 --mean-gap-ns 8000 --seed 11 --streams 4 --shards 2 \
  --assert-clean --min-delivered-ratio 0.9 --json >"$obs_tmp/firehose_sharded.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "
import json
doc = json.load(open('$obs_tmp/firehose.json'))
assert doc['violations'] == 0, 'firehose: invariant monitor fired'
assert doc['delivered_ratio'] >= 0.9, 'firehose: delivered ratio regressed'
sharded = json.load(open('$obs_tmp/firehose_sharded.json'))
pairs = [(e['node'], e['shard']) for e in sharded['engines']]
assert pairs == [(n, s) for n in range(4) for s in range(2)], \
    f'firehose: bad per-shard snapshot order: {pairs}'
assert all(e['sends'] + e['recvs'] > 0 for e in sharded['engines']), \
    'firehose: an engine shard saw no traffic'
"
else
  grep -q '"violations":0' "$obs_tmp/firehose.json"
  grep -q '"shard":1' "$obs_tmp/firehose_sharded.json"
fi

echo "== retrans smoke =="
# Selective-repeat gate: on a reorder-only wire (no loss) the SACK
# receiver buffers the overtaken frames, so the sender should barely
# retransmit — the ratio bound exits 1 if selective repeat regresses
# toward go-back-N behaviour. The retrans_modes bench then records the
# SR-vs-GBN ablation (BENCH_retrans_modes.json is a gitignored
# artifact) and the JSON is checked for the headline invariant:
# selective repeat strictly fewer retransmits than go-back-N.
dune exec bin/flipc_cli.exe -- retrans --reorder 0.3 --messages 300 \
  --max-retransmit-ratio 0.15 >/dev/null
RETRANS_MODES_MESSAGES=300 dune exec bench/main.exe -- retrans_modes >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -c "
import json
doc = json.load(open('BENCH_retrans_modes.json'))
points = {(p['fabric'], p['mode']): p for p in doc['points']}
for fabric in ('mesh', 'ethernet'):
    sr, gbn = points[(fabric, 'sr')], points[(fabric, 'gbn')]
    assert sr['delivered'] == doc['messages'], f'{fabric}: sr lost messages'
    assert gbn['delivered'] == doc['messages'], f'{fabric}: gbn lost messages'
    assert sr['retransmits'] < gbn['retransmits'], \
        f'{fabric}: selective repeat not cheaper than go-back-N'
    assert sr['srtt_ns'] > 0, f'{fabric}: RTT estimator never sampled'
"
else
  grep -q '"experiment":"retrans_modes"' BENCH_retrans_modes.json
fi

echo "== doctor gate =="
# Correlation-and-diagnosis layer: the doctor scenario (reliable flows
# over a lossy 4x4 mesh with causal tracing, online invariant monitors
# and progress watchdogs attached) must come back clean — no invariant
# violations, no watchdog expiry, every message delivered. Then the
# formerly hanging soak seed is pinned: QCHECK_SEED=12 used to spin
# forever in a raw-channel receive loop after an optimistic discard
# (see DESIGN.md §13); under window flow control and watchdogs it must
# pass, not hang. The live run streams its flight data to a capture
# file, and an offline replay of that file must re-derive the exact
# same report — byte-for-byte — or the black-box debugging story is
# broken.
dune exec bin/flipc_cli.exe -- doctor --assert-clean --json \
  --capture "$obs_tmp/doctor.trace" >"$obs_tmp/doctor.json"
dune exec bin/flipc_cli.exe -- doctor --assert-clean --json \
  --replay "$obs_tmp/doctor.trace" >"$obs_tmp/doctor_replay.json"
cmp "$obs_tmp/doctor.json" "$obs_tmp/doctor_replay.json" || {
  echo "doctor replay diverged from the live report" >&2
  exit 1
}
# Same scenario through the binary flight recorder (.ftrace selects the
# compact codec): the replayed report must again be byte-for-byte the
# live one, and the binary capture must honour the >= 4x size contract.
dune exec bin/flipc_cli.exe -- doctor --assert-clean --json \
  --capture "$obs_tmp/doctor.ftrace" >"$obs_tmp/doctor_bin.json"
dune exec bin/flipc_cli.exe -- doctor --assert-clean --json \
  --replay "$obs_tmp/doctor.ftrace" >"$obs_tmp/doctor_bin_replay.json"
cmp "$obs_tmp/doctor_bin.json" "$obs_tmp/doctor_bin_replay.json" || {
  echo "binary-capture replay diverged from the live report" >&2
  exit 1
}
jsonl_bytes=$(wc -c <"$obs_tmp/doctor.trace")
binary_bytes=$(wc -c <"$obs_tmp/doctor.ftrace")
[ $((4 * binary_bytes)) -le "$jsonl_bytes" ] || {
  echo "binary capture not 4x smaller: $binary_bytes vs $jsonl_bytes bytes" >&2
  exit 1
}
# Cross-run diffing: a capture diffed against itself must report zero
# regressions under --assert-clean (mixed formats on purpose — the two
# sides replay through different codecs into the same report).
dune exec bin/flipc_cli.exe -- doctor --assert-clean --json \
  --replay "$obs_tmp/doctor.ftrace" --against "$obs_tmp/doctor.trace" \
  >"$obs_tmp/doctor_diff.json"
QCHECK_SEED=12 dune exec test/test_soak.exe >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -c "
import json
doc = json.load(open('$obs_tmp/doctor.json'))
assert doc['clean'], 'doctor reported an unclean run'
assert doc['delivered'] == doc['expected'], 'doctor lost messages'
assert doc['monitor_violations'] == 0, 'invariant monitor fired'
assert not doc['stalled'], 'a progress watchdog expired'
assert doc['spans_traced'] > 0, 'causal tracing captured nothing'
assert doc['monitor_events_seen'] > 0, 'monitors saw no events'
diff = json.load(open('$obs_tmp/doctor_diff.json'))
assert diff['violations_added'] == 0, 'self-diff invented a regression'
assert diff['sites'], 'cross-run diff aligned no message sites'
"
else
  grep -q '"clean":true' "$obs_tmp/doctor.json"
  grep -q '"violations_added":0' "$obs_tmp/doctor_diff.json"
fi

echo "== alert gate =="
# Declarative alerting as a CI primitive: a rules file holding the
# engine's must-stay-zero invariants (corrupt frames, transport drops)
# must come back clean on a healthy run — `flipc alert` exits 1 on any
# firing. The second cell inverts the polarity as a self-test of the
# tripwire: a rule that sends-must-be-zero obviously fires under
# traffic, and --expect-fire turns that firing into the passing case
# (exit 1 if the alert pipeline ever stops detecting it).
cat >"$obs_tmp/rules.json" <<'RULES'
{"rules": [
  {"name": "no-corrupt-frames", "kind": "counter_zero",
   "counter": "node0.engine.corrupt_frames"},
  {"name": "no-drops", "kind": "counter_zero",
   "counter": "node0.engine.drops"}
]}
RULES
dune exec bin/flipc_cli.exe -- alert --rules "$obs_tmp/rules.json" \
  --exchanges 40 --json >"$obs_tmp/alert.json"
cat >"$obs_tmp/tripwire.json" <<'RULES'
{"rules": [
  {"name": "sends-happened", "kind": "counter_zero",
   "counter": "node0.engine.sends"}
]}
RULES
dune exec bin/flipc_cli.exe -- alert --rules "$obs_tmp/tripwire.json" \
  --exchanges 40 --expect-fire sends-happened >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -c "
import json
doc = json.load(open('$obs_tmp/alert.json'))
assert doc['clean'], 'alert gate fired on a healthy run'
assert doc['rules'] == 2 and doc['windows'] > 0, 'alert gate evaluated nothing'
"
else
  grep -q '"clean":true' "$obs_tmp/alert.json"
fi

echo "== soak matrix gate =="
# Adversarial fault matrix: all-to-all reliable flows on every fabric
# (mesh / Ethernet / SCSI) swept across uniform loss, Gilbert-Elliott
# burst loss, payload corruption (frame checksums on), a single faulted
# link, and everything combined — with invariant monitors and per-flow
# progress watchdogs attached. --assert-clean exits 1 unless every cell
# delivers everything with zero violations, zero watchdog expiries and
# zero corrupt frames leaking to the application. The seed is pinned so
# the run replays bit-identically.
dune exec bin/flipc_cli.exe -- soakmatrix --assert-clean --fault-seed 21 \
  --out "$obs_tmp/soak_matrix.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -c "
import json
doc = json.load(open('$obs_tmp/soak_matrix.json'))
assert doc['clean'], 'soak matrix reported an unclean cell'
assert len(doc['cells']) == 15, 'soak matrix did not cover the full matrix'
for cell in doc['cells']:
    where = (cell['fabric'], cell['scenario'])
    assert cell['delivered'] == cell['expected'], f'{where}: lost messages'
    assert cell['corrupt_leaks'] == 0, f'{where}: corrupt frame reached the app'
    assert cell['monitor_violations'] == 0, f'{where}: invariant monitor fired'
    assert cell['watchdogs_expired'] == 0, f'{where}: progress watchdog expired'
corrupting = [c for c in doc['cells'] if c['scenario'] in ('corrupt', 'combined')]
assert all(c['corrupt_frames_dropped'] > 0 for c in corrupting), \
    'corruption scenarios injected no detected corruption'
"
else
  grep -q '"clean":true}$' "$obs_tmp/soak_matrix.json"
fi

echo "== layered transport gate =="
# The TRANSPORT abstraction: one functorized conformance suite runs
# unchanged against the in-memory loopback transport and the channel
# stacks over a faulted mesh fabric (test_transport covers both
# harnesses, including exactly-once for the reliable compositions).
# Then the stack matrix drives every Stackflow composition all-to-all
# through the fault scenarios it promises to survive; --assert-clean
# exits 1 on any lost/duplicated/corrupt delivery, invariant violation
# or watchdog expiry.
dune exec test/test_transport.exe -- -c >/dev/null
dune exec bin/flipc_cli.exe -- stack --assert-clean --fault-seed 31 \
  --out "$obs_tmp/stack.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -c "
import json
doc = json.load(open('$obs_tmp/stack.json'))
assert doc['clean'], 'stack matrix reported an unclean cell'
stacks = {c['stack'] for c in doc['cells']}
assert stacks == {'channel', 'window/channel', 'retrans/channel',
                  'retrans/window/channel'}, f'missing compositions: {stacks}'
retrans_cells = [c for c in doc['cells'] if c['stack'] == 'retrans/channel']
assert len(retrans_cells) == 6, 'retrans stack did not sweep all scenarios'
faulted = [c for c in retrans_cells if c['scenario'] != 'clean']
assert all(c['retransmits'] > 0 for c in faulted), \
    'a faulted cell exercised no retransmission'
"
else
  grep -q '"clean":true}$' "$obs_tmp/stack.json"
fi

echo "== format =="
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "(ocamlformat not installed: checking dune files only)"
  status=0
  for f in $(git ls-files | grep -E '(^|/)dune(-project)?$'); do
    if ! dune format-dune-file "$f" | cmp -s - "$f"; then
      echo "not formatted: $f (run: dune format-dune-file $f > tmp && mv tmp $f)"
      status=1
    fi
  done
  [ "$status" -eq 0 ]
fi

echo "== ok =="
