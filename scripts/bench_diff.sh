#!/bin/sh
# Compare two benchmark JSON documents (the BENCH_*.json files written
# by bench/main.exe) leaf by leaf:
#
#   scripts/bench_diff.sh BASELINE.json CANDIDATE.json [MAX_REGRESS_PCT]
#
# Prints every numeric leaf present in both documents with its absolute
# and relative change. When MAX_REGRESS_PCT is given, exits 1 if any
# latency-like leaf (name containing p50/p99/latency/one_way/_us/_ns)
# grew by more than that percentage — the intended CI use is diffing a
# fresh run against a committed baseline to catch perf regressions
# without hand-reading the tables.
#
# Invariant-monitor counters (leaves containing "violations") are held
# to a stricter rule regardless of the threshold: any increase fails,
# because a run that starts double-delivering frames or leaking credits
# is a correctness regression no percentage slack excuses. Two more
# absolute rules serve the soak matrix (BENCH_soak_matrix.json): any
# "corrupt_leaks" leaf must be zero in the candidate (a corrupt frame
# reaching the application is a checksum hole, full stop), and any
# "delivered" leaf that decreases fails (reliability went backwards).
# Finally, any candidate leaf containing "identical" must be >= 1:
# those record that runs with telemetry disabled stay bit-identical in
# virtual time (BENCH_doctor_overhead.json), and 0 means the
# observability layer leaked cost into the simulated timeline.
#
# Two absolute rules hold on the candidate alone, so they bind even
# when the baseline predates the experiment: any leaf containing
# "speedup" must be >= 2.0 (the batching ablation's contract in
# BENCH_firehose.json), any doorbell-mode "idle_loads_per_iter"
# leaf must be <= 8.0 — the work-proportional engine's idle iteration
# touches a constant number of words no matter how many endpoints are
# configured (BENCH_engine_scan.json sweeps to 16384 to prove it) —
# and any leaf containing "shrink" must be >= 4.0: the binary flight
# recorder's compression contract (BENCH_doctor_overhead.json records
# jsonl_bytes / binary_bytes for the same capture).
#
# A BASELINE file that does not exist yet is not an error: the
# candidate is new, so the diff passes with a notice and the
# candidate-only absolute rules still run (baseline "/dev/null" or any
# missing path both work). This is what lets a freshly added
# experiment ride the same CI lane before its first baseline commit.
#
# Needs python3 for the JSON walk; degrades to a plain textual diff
# (informational, never failing) when it is missing.
set -eu

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
  echo "usage: $0 BASELINE.json CANDIDATE.json [MAX_REGRESS_PCT]" >&2
  exit 2
fi
base=$1
cand=$2
max=${3:-}

[ -f "$cand" ] || { echo "bench_diff: no such file: $cand" >&2; exit 2; }
if [ ! -s "$base" ]; then
  echo "bench_diff: no baseline at $base — candidate is new, checking absolute rules only"
  base=""
fi

if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_diff: python3 not available; falling back to textual diff" >&2
  diff -u "$base" "$cand" || true
  exit 0
fi

python3 - "$base" "$cand" "$max" <<'EOF'
import json, sys

base_path, cand_path, max_pct = sys.argv[1], sys.argv[2], sys.argv[3]
limit = float(max_pct) if max_pct else None

def leaves(doc, prefix=""):
    if isinstance(doc, dict):
        for k, v in doc.items():
            yield from leaves(v, f"{prefix}.{k}" if prefix else k)
    elif isinstance(doc, list):
        for i, v in enumerate(doc):
            yield from leaves(v, f"{prefix}[{i}]")
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        yield prefix, float(doc)

base = dict(leaves(json.load(open(base_path)))) if base_path else {}
cand = dict(leaves(json.load(open(cand_path))))

LATENCY_MARKERS = ("p50", "p99", "latency", "one_way", "_us", "_ns")
regressions = []
violation_regressions = []
corrupt_leaks = []
delivery_regressions = []
shared = sorted(set(base) & set(cand))
if base_path and not shared:
    print("bench_diff: no numeric leaves in common", file=sys.stderr)
    sys.exit(2)

width = max((len(k) for k in shared), default=0)
for key in shared:
    old, new = base[key], cand[key]
    delta = new - old
    rel = (delta / old * 100.0) if old else float("inf") if delta else 0.0
    marker = ""
    latencyish = any(m in key.lower() for m in LATENCY_MARKERS)
    if limit is not None and latencyish and old and rel > limit:
        marker = "  <-- REGRESSION"
        regressions.append((key, old, new, rel))
    if "violations" in key.lower() and new > old:
        marker = "  <-- INVARIANT VIOLATIONS"
        violation_regressions.append((key, old, new))
    if "corrupt_leaks" in key.lower() and new > 0:
        marker = "  <-- CORRUPT FRAME LEAK"
        corrupt_leaks.append((key, old, new))
    if key.lower().endswith("delivered") and new < old:
        marker = "  <-- DELIVERY REGRESSION"
        delivery_regressions.append((key, old, new))
    if "identical" in key.lower() and new < 1:
        marker = "  <-- TELEMETRY TIMELINE DIVERGED"
    if abs(delta) > 1e-12 or marker:
        print(f"{key:<{width}}  {old:>14.4f} -> {new:>14.4f}  ({rel:+7.2f}%){marker}")

only = sorted(set(base) ^ set(cand))
if only:
    print(f"({len(only)} leaves present in only one document)")

if violation_regressions:
    print(
        f"bench_diff: {len(violation_regressions)} monitor violation "
        f"counters increased",
        file=sys.stderr,
    )
    sys.exit(1)

if corrupt_leaks:
    print(
        f"bench_diff: {len(corrupt_leaks)} corrupt_leaks counters are "
        f"non-zero in the candidate",
        file=sys.stderr,
    )
    sys.exit(1)

if delivery_regressions:
    print(
        f"bench_diff: {len(delivery_regressions)} delivered counters "
        f"decreased",
        file=sys.stderr,
    )
    sys.exit(1)

# Checked over every candidate leaf (not just shared ones) so a fresh
# baseline cannot hide a diverged timeline.
identical_failures = [
    (k, v) for k, v in cand.items() if "identical" in k.lower() and v < 1
]
if identical_failures:
    print(
        f"bench_diff: {len(identical_failures)} 'identical' leaves are 0 "
        f"in the candidate (telemetry leaked into the virtual timeline)",
        file=sys.stderr,
    )
    sys.exit(1)

# Candidate-only absolute rules (bind with or without a baseline).
speedup_failures = [
    (k, v) for k, v in cand.items() if "speedup" in k.lower() and v < 2.0
]
if speedup_failures:
    for k, v in speedup_failures:
        print(f"{k}: {v:.3f} < 2.0  <-- BATCHING SPEEDUP BELOW CONTRACT")
    print(
        f"bench_diff: {len(speedup_failures)} 'speedup' leaves below the "
        f"2.0x contract",
        file=sys.stderr,
    )
    sys.exit(1)

idle_failures = [
    (k, v)
    for k, v in cand.items()
    if "doorbell" in k.lower() and k.endswith("idle_loads_per_iter") and v > 8.0
]
if idle_failures:
    for k, v in idle_failures:
        print(f"{k}: {v:.1f} > 8.0  <-- IDLE SCAN NOT WORK-PROPORTIONAL")
    print(
        f"bench_diff: {len(idle_failures)} doorbell idle_loads_per_iter "
        f"leaves above the flat-idle bound",
        file=sys.stderr,
    )
    sys.exit(1)

shrink_failures = [
    (k, v) for k, v in cand.items() if "shrink" in k.lower() and v < 4.0
]
if shrink_failures:
    for k, v in shrink_failures:
        print(f"{k}: {v:.2f} < 4.0  <-- BINARY CAPTURE SHRINK BELOW CONTRACT")
    print(
        f"bench_diff: {len(shrink_failures)} 'shrink' leaves below the "
        f"4.0x binary-capture contract",
        file=sys.stderr,
    )
    sys.exit(1)

if regressions:
    print(
        f"bench_diff: {len(regressions)} latency leaves regressed "
        f"by more than {limit}%",
        file=sys.stderr,
    )
    sys.exit(1)
print("bench_diff: ok" + (f" (threshold {limit}%)" if limit is not None else ""))
EOF
