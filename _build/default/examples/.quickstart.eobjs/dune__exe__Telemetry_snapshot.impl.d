examples/telemetry_snapshot.ml: Bytes Char Flipc Flipc_bulk Flipc_memsim Flipc_sim Fmt Int32 Option
