examples/factory_floor.mli:
