examples/factory_floor.ml: Bytes Flipc Flipc_flow Flipc_memsim Flipc_sim Fmt Int32
