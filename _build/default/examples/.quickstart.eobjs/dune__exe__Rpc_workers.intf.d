examples/rpc_workers.mli:
