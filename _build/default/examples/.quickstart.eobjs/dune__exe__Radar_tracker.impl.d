examples/radar_tracker.ml: Flipc Flipc_sim Flipc_stats Flipc_workload Fmt List
