examples/telemetry_snapshot.mli:
