examples/quickstart.mli:
