examples/radar_tracker.mli:
