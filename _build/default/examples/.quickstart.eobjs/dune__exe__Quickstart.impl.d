examples/quickstart.ml: Bytes Flipc Flipc_memsim Flipc_sim Fmt
