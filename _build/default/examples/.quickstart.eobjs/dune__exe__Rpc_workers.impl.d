examples/rpc_workers.ml: Bytes Flipc Flipc_flow Flipc_memsim Flipc_rt Flipc_sim Flipc_stats Fmt Int32 List Queue
