examples/hiperd_demo.ml: Bytes Flipc Flipc_bulk Flipc_memsim Flipc_rt Flipc_sim Flipc_stats Fmt Int32 Int64 List Queue
