examples/hiperd_demo.mli:
