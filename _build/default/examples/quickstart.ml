(* Quickstart: the five-step FLIPC message transfer on a two-node machine.

   Run with: dune exec examples/quickstart.exe

   Demonstrates the full public API surface for one message:
     1. the receiver provides a buffer       (post_receive)
     2. the sender queues a message          (send)
     3. the messaging engine moves it        (automatic)
     4. the receiver removes it              (receive)
     5. the sender recovers its buffer       (reclaim)
   plus the out-of-band address hand-off FLIPC expects an external name
   service to perform (a simulation mailbox stands in for it). *)

module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Endpoint_kind = Flipc.Endpoint_kind

let ok = function
  | Ok v -> v
  | Error e -> failwith (Api.error_to_string e)

let () =
  (* A 2x1 mesh of Paragon-like nodes, engines already running. *)
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let sim = Machine.sim machine in
  let name_service = Mailbox.create () in

  (* Receiver on node 1. *)
  Machine.spawn_app ~name:"receiver" machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      (* Step 1: provide a buffer for the incoming message. *)
      let buf = ok (Api.allocate_buffer api) in
      ok (Api.post_receive api ep buf);
      (* Publish our opaque endpoint address. *)
      Mailbox.put name_service (Api.address api ep);
      (* Step 4: poll until the engine has deposited a message. *)
      let rec poll () =
        match Api.receive api ep with
        | Some b -> b
        | None ->
            Mem_port.instr (Api.port api) 5;
            poll ()
      in
      let got = poll () in
      let text = Bytes.to_string (Api.read_payload api got 13) in
      Fmt.pr "[%.1fus] node 1 received: %S@."
        (Flipc_sim.Vtime.to_us (Sim.now sim))
        text;
      (* Returning the buffer to the endpoint would be step 1 of the next
         transfer; here we just free it. *)
      Api.free_buffer api got);

  (* Sender on node 0. *)
  Machine.spawn_app ~name:"sender" machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take name_service);
      let buf = ok (Api.allocate_buffer api) in
      Api.write_payload api buf (Bytes.of_string "hello, world!");
      (* Step 2: queue the message for the engine. *)
      ok (Api.send api ep buf);
      Fmt.pr "[%.1fus] node 0 sent 13-byte payload in a %d-byte message@."
        (Flipc_sim.Vtime.to_us (Sim.now sim))
        (Api.config api).Flipc.Config.message_bytes;
      (* Step 5: recover the buffer once the engine has transmitted it. *)
      let rec reclaim () =
        match Api.reclaim api ep with
        | Some b -> b
        | None ->
            Mem_port.instr (Api.port api) 5;
            reclaim ()
      in
      let back = reclaim () in
      Fmt.pr "[%.1fus] node 0 reclaimed its send buffer (complete=%b)@."
        (Flipc_sim.Vtime.to_us (Sim.now sim))
        (Api.buffer_complete api back);
      Api.free_buffer api back);

  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  Fmt.pr "done at %.1fus of virtual time@."
    (Flipc_sim.Vtime.to_us (Sim.now sim))
