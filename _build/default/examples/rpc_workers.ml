(* RPC workers: request/response over one-way FLIPC messages, with an
   endpoint group on the server and client-count-based static buffer
   sizing (the paper's first static flow-control example).

   Run with: dune exec examples/rpc_workers.exe

   Structure:
   - The server (node 0) exposes TWO request endpoints — a "priority" and
     a "bulk" class — combined into an endpoint group. A single server
     thread blocks on the group's real-time semaphore and serves whichever
     class has traffic, priority class first in each scan.
   - Four clients run closed request loops from their own nodes. FLIPC
     addressing is one-way, so each request carries the client's reply
     address in its payload.
   - Request buffers are provisioned per Provision.rpc_buffers, so the
     server can never discard a request. *)

module Sim = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Address = Flipc.Address
module Config = Flipc.Config
module Endpoint_kind = Flipc.Endpoint_kind
module Endpoint_group = Flipc.Endpoint_group
module Rt_semaphore = Flipc_rt.Rt_semaphore
module Provision = Flipc_flow.Provision
module Summary = Flipc_stats.Summary

let ok = function
  | Ok v -> v
  | Error e -> failwith (Api.error_to_string e)

let clients = [ (1, `Priority); (2, `Priority); (3, `Bulk); (4, `Bulk) ]
let requests_per_client = 30

let encode ~reply_to ~value =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int (Address.to_word reply_to));
  Bytes.set_int32_le b 4 (Int32.of_int value);
  b

let decode payload =
  ( Address.of_word (Int32.to_int (Bytes.get_int32_le payload 0)),
    Int32.to_int (Bytes.get_int32_le payload 4) )

let () =
  let n_clients = List.length clients in
  let per_class =
    Provision.rpc_buffers ~clients:n_clients ~outstanding_per_client:1
  in
  let config = Provision.config_for ~base:Config.default ~buffers:per_class in
  let machine =
    Machine.create ~config (Machine.Mesh { cols = n_clients + 1; rows = 1 }) ()
  in
  let sim = Machine.sim machine in
  Fmt.pr "rpc workers: server=node 0, %d clients, %d requests each@." n_clients
    requests_per_client;
  Fmt.pr "static sizing: %d request buffers per class endpoint@." per_class;

  let priority_addr = Mailbox.create () and bulk_addr = Mailbox.create () in
  let served = ref 0 in
  let latencies = ref [] in
  let total = n_clients * requests_per_client in
  let server_node = Machine.node machine 0 in
  let sem = Rt_semaphore.create (Machine.sched server_node) in

  Machine.spawn_app ~name:"server-setup" machine ~node:0 (fun api ->
      let mk_class addr_box =
        let ep =
          ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ~semaphore:sem ())
        in
        for _ = 1 to per_class do
          ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
        done;
        for _ = 1 to n_clients do
          Mailbox.put addr_box (Api.address api ep)
        done;
        ep
      in
      let group = Endpoint_group.create ~semaphore:sem api in
      (* Priority endpoint first: receive_any scans in insertion order
         from its rotating cursor; with two members the priority class is
         checked at least every other scan. *)
      Endpoint_group.add group (mk_class priority_addr);
      Endpoint_group.add group (mk_class bulk_addr);
      let resp_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      let reply_pool = Queue.create () in
      for _ = 1 to 4 do
        Queue.push (ok (Api.allocate_buffer api)) reply_pool
      done;
      ignore
        (Machine.spawn_thread ~name:"server" machine ~node:0 ~priority:5
           (fun thr api ->
             while !served < total do
               let ep, req = Endpoint_group.receive_any_wait group thr in
               let reply_to, value = decode (Api.read_payload api req 8) in
               Mem_port.instr (Api.port api) 100;
               let rec reply_buf () =
                 (match Api.reclaim api resp_ep with
                 | Some b -> Queue.push b reply_pool
                 | None -> ());
                 match Queue.take_opt reply_pool with
                 | Some b -> b
                 | None ->
                     Mem_port.instr (Api.port api) 10;
                     reply_buf ()
               in
               let resp = reply_buf () in
               Api.write_payload api resp (encode ~reply_to ~value:(value * 2));
               ok (Api.send_to api resp_ep resp reply_to);
               ok (Api.post_receive api ep req);
               incr served
             done)
          : Flipc_rt.Sched.thread));

  List.iter
    (fun (node, klass) ->
      Machine.spawn_app ~name:(Fmt.str "client-%d" node) machine ~node
        (fun api ->
          let resp_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
          let req_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          let server =
            Mailbox.take
              (match klass with `Priority -> priority_addr | `Bulk -> bulk_addr)
          in
          Api.connect api req_ep server;
          for _ = 1 to 2 do
            ok (Api.post_receive api resp_ep (ok (Api.allocate_buffer api)))
          done;
          let buf = ok (Api.allocate_buffer api) in
          let me = Api.address api resp_ep in
          for i = 1 to requests_per_client do
            let t0 = Sim.now sim in
            Api.write_payload api buf (encode ~reply_to:me ~value:i);
            ok (Api.send api req_ep buf);
            let rec poll () =
              match Api.receive api resp_ep with
              | Some b -> b
              | None ->
                  Mem_port.instr (Api.port api) 5;
                  poll ()
            in
            let resp = poll () in
            let _, doubled = decode (Api.read_payload api resp 8) in
            assert (doubled = 2 * i);
            ok (Api.post_receive api resp_ep resp);
            let rec reclaim () =
              match Api.reclaim api req_ep with
              | Some _ -> ()
              | None ->
                  Mem_port.instr (Api.port api) 5;
                  reclaim ()
            in
            reclaim ();
            latencies := Vtime.to_us (Sim.now sim - t0) :: !latencies
          done))
    clients;

  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let s = Summary.of_samples !latencies in
  Fmt.pr "served %d/%d requests; round trip %a@." !served total Summary.pp s;
  Fmt.pr "=> no request discarded (static sizing), one server thread@.\
         \   multiplexing two traffic classes through an endpoint group.@."
