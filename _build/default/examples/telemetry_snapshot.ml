(* Telemetry + snapshot: integrating FLIPC's medium messages with the
   bulk-transfer extension — "a system that provides excellent performance
   for messages of all sizes" (the paper's future work, implemented here).

   Run with: dune exec examples/telemetry_snapshot.exe

   A telemetry station (node 0) continuously publishes compact state
   updates to a monitor (node 1) over a Channel (FLIPC messages with
   automatic buffer management). Every twentieth update announces a fresh
   full state snapshot: a 48 KB table exported as a bulk region, whose
   handle rides inside the FLIPC message. The monitor pulls announced
   snapshots with a one-sided bulk get — medium control traffic on the
   low-latency path, large data on the high-bandwidth path, coexisting on
   one network interface. *)

module Sim = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mem_port = Flipc_memsim.Mem_port
module Shared_mem = Flipc_memsim.Shared_mem
module Machine = Flipc.Machine
module Api = Flipc.Api
module Channel = Flipc.Channel
module Nameservice = Flipc.Nameservice
module Bulk = Flipc_bulk.Bulk

let ok_ch = function
  | Ok v -> v
  | Error e -> failwith (Channel.error_to_string e)

let updates = 100
let snapshot_every = 20
let snapshot_bytes = 48 * 1024

let () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let sim = Machine.sim machine in
  let ns = Machine.names machine in
  let bulk = Bulk.create machine in
  let pulled = ref 0 in
  let update_count = ref 0 in

  (* Station: node 0. *)
  Machine.spawn_app ~name:"station" machine ~node:0 (fun api ->
      let dest = Nameservice.lookup ns "monitor" in
      let tx = ok_ch (Channel.create_tx api ~dest ()) in
      (* The snapshot lives in the station's exported heap region and is
         refreshed in place; the monitor reads it one-sidedly. *)
      let region = Bulk.export bulk ~node:0 ~len:snapshot_bytes in
      let mem = Machine.mem (Machine.node machine 0) in
      for i = 1 to updates do
        if i mod snapshot_every = 0 then begin
          (* Refresh the snapshot table, then announce it. *)
          Shared_mem.fill mem ~pos:(Bulk.region_base region) ~len:snapshot_bytes
            (Char.chr (i land 0xFF));
          let announce = Bytes.create 12 in
          Bytes.set_int32_le announce 0 1l (* kind: snapshot *);
          Bytes.set_int32_le announce 4 (Int32.of_int (Bulk.handle region));
          Bytes.set_int32_le announce 8 (Int32.of_int snapshot_bytes);
          ok_ch (Channel.send tx announce)
        end
        else begin
          let update = Bytes.create 12 in
          Bytes.set_int32_le update 0 0l (* kind: update *);
          Bytes.set_int32_le update 4 (Int32.of_int i);
          Bytes.set_int32_le update 8 (Int32.of_int (i * i));
          ok_ch (Channel.send tx update)
        end;
        Sim.delay (Vtime.us 50)
      done);

  (* Monitor: node 1. *)
  Machine.spawn_app ~name:"monitor" machine ~node:1 (fun api ->
      let rx = ok_ch (Channel.create_rx api ~depth:8 ()) in
      Nameservice.register ns "monitor" (Channel.address rx);
      let expected = updates in
      let seen = ref 0 in
      while !seen < expected do
        match Channel.recv rx with
        | None -> Mem_port.instr (Api.port api) 10
        | Some msg ->
            incr seen;
            let kind = Bytes.get_int32_le msg 0 in
            if kind = 1l then begin
              let handle = Int32.to_int (Bytes.get_int32_le msg 4) in
              let len = Int32.to_int (Bytes.get_int32_le msg 8) in
              let region = Option.get (Bulk.region_of_handle bulk handle) in
              let t0 = Sim.now sim in
              let snapshot = Bulk.get bulk ~into:1 region ~len in
              incr pulled;
              Fmt.pr "[%.0fus] snapshot %d: %dKB pulled in %.0fus (%.0f MB/s)@."
                (Vtime.to_us (Sim.now sim))
                !pulled (len / 1024)
                (Vtime.to_us (Sim.now sim - t0))
                (float_of_int len /. float_of_int (Sim.now sim - t0) *. 1000.);
              ignore (Bytes.get snapshot 0)
            end
            else incr update_count
      done);

  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  Fmt.pr "@.%d compact updates over FLIPC channels, %d bulk snapshots pulled.@."
    !update_count !pulled;
  Fmt.pr "Control traffic kept the %dB low-latency path; snapshots streamed@."
    (Machine.config machine).Flipc.Config.message_bytes;
  Fmt.pr "on the bulk path — both over the same NIC, as the paper's future@.";
  Fmt.pr "work prescribes.@."
