(* Factory floor: strictly periodic control traffic with static buffer
   provisioning — the paper's second worked example of removing runtime
   flow control ("an application made up of strictly periodic components
   can often determine its worst case buffering needs in advance").

   Run with: dune exec examples/factory_floor.exe

   Four production cells each report status to a line controller once per
   millisecond. The controller drains its endpoint every period. The
   worst-case queue depth is therefore bounded and computed by
   Flipc_flow.Provision.periodic_buffers; with that many buffers posted,
   the optimistic transport can never discard — no window protocol, no
   credits, no runtime overhead. *)

module Sim = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Config = Flipc.Config
module Endpoint_kind = Flipc.Endpoint_kind
module Provision = Flipc_flow.Provision

let ok = function
  | Ok v -> v
  | Error e -> failwith (Api.error_to_string e)

let cells = 4
let period = Vtime.us 1000
let reports_per_cell_per_period = 1
let periods = 40

let () =
  (* Static analysis: worst-case buffering for the controller endpoint. *)
  let buffers =
    Provision.periodic_buffers ~senders:cells
      ~messages_per_period:reports_per_cell_per_period
  in
  let config = Provision.config_for ~base:Config.default ~buffers in
  Fmt.pr "factory floor: %d cells, %d report(s)/cell/period, period=%a@." cells
    reports_per_cell_per_period Vtime.pp period;
  Fmt.pr "static provisioning: %d receive buffers (queue capacity %d)@." buffers
    config.Config.queue_capacity;

  (* Node 0 is the line controller; nodes 1..cells are production cells. *)
  let machine =
    Machine.create ~config (Machine.Mesh { cols = cells + 1; rows = 1 }) ()
  in
  let name_service = Mailbox.create () in
  let received = ref 0 in
  let drops = ref 0 in
  let expected = cells * reports_per_cell_per_period * periods in

  Machine.spawn_app ~name:"controller" machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to buffers do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      for _ = 1 to cells do
        Mailbox.put name_service (Api.address api ep)
      done;
      (* Periodic drain: once per period, consume everything queued. *)
      while !received < expected do
        Sim.delay (Vtime.to_ns period);
        let rec drain () =
          match Api.receive api ep with
          | Some buf ->
              incr received;
              (* Parse the report (cell id in the first payload word). *)
              ignore (Api.read_payload api buf 4 : Bytes.t);
              Mem_port.instr (Api.port api) 50;
              ok (Api.post_receive api ep buf);
              drain ()
          | None -> ()
        in
        drain ();
        drops := !drops + Api.drops_read_and_reset api ep
      done);

  for cell = 1 to cells do
    Machine.spawn_app ~name:(Fmt.str "cell-%d" cell) machine ~node:cell
      (fun api ->
        let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        Api.connect api ep (Mailbox.take name_service);
        (* Cells are phase-shifted within the period, as on a real line. *)
        Sim.delay (cell * 137_000 mod Vtime.to_ns period);
        let buf = ok (Api.allocate_buffer api) in
        let report = Bytes.create 4 in
        Bytes.set_int32_le report 0 (Int32.of_int cell);
        for _ = 1 to periods do
          Api.write_payload api buf report;
          ok (Api.send api ep buf);
          let rec reclaim () =
            match Api.reclaim api ep with
            | Some _ -> ()
            | None ->
                Mem_port.instr (Api.port api) 5;
                reclaim ()
          in
          reclaim ();
          Sim.delay (Vtime.to_ns period)
        done)
  done;

  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  Fmt.pr "after %d periods: received=%d/%d, discarded=%d@." periods !received
    expected !drops;
  if !drops = 0 && !received = expected then
    Fmt.pr "=> zero discards: the static worst-case bound held, with no@.\
           \   runtime flow control on the message path.@."
  else Fmt.pr "=> UNEXPECTED: provisioning bound violated!@."
