(* HiPer-D style integrated demonstration.

   Run with: dune exec examples/hiperd_demo.exe

   The paper motivates FLIPC with "distributed systems for process
   control, factory floor automation, and military command and control
   (e.g., AEGIS, AWACS)" and cites the Navy's HiPer-D integrated
   demonstration. This example is a miniature of that class of system,
   exercising every facility of the reproduction together on one machine:

     node 0  radar sensor      track detections, 500/s, high importance
     node 1  IFF sensor        identifications, 200/s, high importance
     node 2  tracker           correlates sensor input (endpoint group +
                               shared RT semaphore, priority-8 thread);
                               exports the track table as a bulk region;
                               issues engage orders
     node 3  weapons control   receives engage orders on a priority-10
                               thread with a 150us deadline
     node 4  display console   channel updates + periodic one-sided bulk
                               snapshot of the track table
     all     maintenance       every node chatters to a logger on node 5
                               whose endpoint has only 2 buffers — excess
                               is discarded there and only there

   Things to watch in the output: the engage path meets its deadline under
   load; maintenance discards stay confined to the logger endpoint; the
   display's bulk snapshots stream beside the message traffic. *)

module Sim = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mem_port = Flipc_memsim.Mem_port
module Shared_mem = Flipc_memsim.Shared_mem
module Machine = Flipc.Machine
module Api = Flipc.Api
module Channel = Flipc.Channel
module Nameservice = Flipc.Nameservice
module Endpoint_kind = Flipc.Endpoint_kind
module Endpoint_group = Flipc.Endpoint_group
module Rt_semaphore = Flipc_rt.Rt_semaphore
module Summary = Flipc_stats.Summary
module Bulk = Flipc_bulk.Bulk

let ok = function
  | Ok v -> v
  | Error e -> failwith (Api.error_to_string e)

let ok_ch = function
  | Ok v -> v
  | Error e -> failwith (Channel.error_to_string e)

let radar_node = 0
let iff_node = 1
let tracker_node = 2
let weapons_node = 3
let display_node = 4
let logger_node = 5
let horizon = Vtime.ms 30
let engage_deadline_ns = 150_000

let stamp sim extra =
  let b = Bytes.create 12 in
  Bytes.set_int64_le b 0 (Int64.of_int (Sim.now sim));
  Bytes.set_int32_le b 8 (Int32.of_int extra);
  b

let stamp_time b = Int64.to_int (Bytes.get_int64_le b 0)

(* A paced sensor: sends `stamp` messages to [dest_name] every period. *)
let sensor machine ~node ~name ~period_ns ~dest_name =
  let sim = Machine.sim machine in
  let ns = Machine.names machine in
  let sent = ref 0 in
  Machine.spawn_app ~name machine ~node (fun api ->
      let dest = Nameservice.lookup ns dest_name in
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep dest;
      let free = Queue.create () in
      for _ = 1 to 4 do
        Queue.push (ok (Api.allocate_buffer api)) free
      done;
      while Sim.now sim < horizon do
        (match Api.reclaim api ep with
        | Some b -> Queue.push b free
        | None -> ());
        (match Queue.take_opt free with
        | Some buf ->
            Api.write_payload api buf (stamp sim !sent);
            (match Api.send api ep buf with
            | Ok () -> incr sent
            | Error _ -> Queue.push buf free)
        | None -> ());
        Sim.delay period_ns
      done);
  sent

(* Maintenance chatter from one node to the logger. *)
let maintenance machine ~node ~dest_name =
  let sim = Machine.sim machine in
  let ns = Machine.names machine in
  Machine.spawn_app ~name:(Fmt.str "maint-%d" node) machine ~node (fun api ->
      let dest = Nameservice.lookup ns dest_name in
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep dest;
      let buf = ok (Api.allocate_buffer api) in
      while Sim.now sim < horizon do
        (match Api.send api ep buf with Ok () -> () | Error _ -> ());
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 10;
              reclaim ()
        in
        reclaim ();
        Sim.delay 40_000
      done)

let () =
  let machine = Machine.create (Machine.Mesh { cols = 4; rows = 2 }) () in
  let sim = Machine.sim machine in
  let ns = Machine.names machine in
  let bulk = Bulk.create machine in
  Fmt.pr "HiPer-D style integrated demo: 8 nodes, 30ms of virtual time@.@.";

  (* --- Tracker (node 2): endpoint group over both sensors. --- *)
  let tracks = ref 0 in
  let engage_sent = ref 0 in
  let track_table = Bulk.export bulk ~node:tracker_node ~len:(32 * 1024) in
  let tracker_sched = Machine.sched (Machine.node machine tracker_node) in
  let sensor_sem = Rt_semaphore.create tracker_sched in
  Machine.spawn_app ~name:"tracker-setup" machine ~node:tracker_node (fun api ->
      let group = Endpoint_group.create ~semaphore:sensor_sem api in
      let mk name =
        let ep =
          ok
            (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv
               ~semaphore:sensor_sem ())
        in
        for _ = 1 to 6 do
          ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
        done;
        Endpoint_group.add group ep;
        Nameservice.register ns name (Api.address api ep)
      in
      mk "tracker-radar";
      mk "tracker-iff";
      (* Engage orders go out on a transport-priority endpoint. *)
      let engage_ep =
        ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ~priority:9 ())
      in
      let display_tx =
        ok_ch
          (Channel.create_tx api ~dest:(Nameservice.lookup ns "display") ())
      in
      Api.connect api engage_ep (Nameservice.lookup ns "weapons");
      let engage_buf = ok (Api.allocate_buffer api) in
      let mem = Machine.mem (Machine.node machine tracker_node) in
      ignore
        (Machine.spawn_thread ~name:"tracker" machine ~node:tracker_node
           ~priority:8 (fun thr api ->
             while Sim.now sim < horizon do
               let _ep, buf = Endpoint_group.receive_any_wait group thr in
               incr tracks;
               (* Correlate (work), refresh the track table region. *)
               Mem_port.instr (Api.port api) 150;
               Shared_mem.store_int mem
                 (Bulk.region_base track_table + (!tracks mod 8000 * 4))
                 (!tracks land 0x3FFFFFFF);
               ignore (Api.post_receive api _ep buf : (unit, Api.error) result);
               (* Every 25th track: engage order to weapons + display note. *)
               if !tracks mod 25 = 0 then begin
                 (match Api.reclaim api engage_ep with
                 | Some _ | None -> ());
                 Api.write_payload api engage_buf (stamp sim !tracks);
                 (match Api.send api engage_ep engage_buf with
                 | Ok () -> incr engage_sent
                 | Error _ -> ());
                 ignore
                   (Channel.try_send display_tx
                      (Bytes.of_string (Fmt.str "track-%d" !tracks))
                     : (unit, Channel.error) result)
               end
             done)
          : Flipc_rt.Sched.thread));

  (* --- Weapons (node 3): highest-priority thread, engage deadline. --- *)
  let engage_latencies = ref [] in
  let engage_misses = ref 0 in
  let weapons_sched = Machine.sched (Machine.node machine weapons_node) in
  let weapons_sem = Rt_semaphore.create weapons_sched in
  Machine.spawn_app ~name:"weapons-setup" machine ~node:weapons_node (fun api ->
      let ep =
        ok
          (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv
             ~semaphore:weapons_sem ())
      in
      for _ = 1 to 4 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "weapons" (Api.address api ep);
      ignore
        (Machine.spawn_thread ~name:"weapons" machine ~node:weapons_node
           ~priority:10 (fun thr api ->
             while Sim.now sim < horizon do
               let buf = Api.receive_wait api ep thr in
               let sent_at = stamp_time (Api.read_payload api buf 12) in
               let elapsed = Sim.now sim - sent_at in
               engage_latencies :=
                 (float_of_int elapsed /. 1000.) :: !engage_latencies;
               if elapsed > engage_deadline_ns then incr engage_misses;
               Mem_port.instr (Api.port api) 100;
               ok (Api.post_receive api ep buf)
             done)
          : Flipc_rt.Sched.thread));

  (* --- Display (node 4): channel updates + periodic bulk snapshot. --- *)
  let display_updates = ref 0 in
  let snapshots = ref 0 in
  Machine.spawn_app ~name:"display" machine ~node:display_node (fun api ->
      let rx = ok_ch (Channel.create_rx api ~depth:8 ()) in
      Nameservice.register ns "display" (Channel.address rx);
      while Sim.now sim < horizon do
        (match Channel.recv rx with
        | Some _ -> incr display_updates
        | None -> Mem_port.instr (Api.port api) 20);
        (* Refresh the whole track table every ~5ms. *)
        if Sim.now sim / Vtime.ms 5 > !snapshots then begin
          incr snapshots;
          ignore
            (Bulk.get bulk ~into:display_node track_table
               ~len:(Bulk.region_len track_table)
              : Bytes.t)
        end
      done);

  (* --- Logger (node 5): constrained maintenance endpoint. --- *)
  let maint_delivered = ref 0 and maint_drops = ref 0 in
  Machine.spawn_app ~name:"logger" machine ~node:logger_node (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      for _ = 1 to 2 do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns "logger" (Api.address api ep);
      while Sim.now sim < horizon do
        (match Api.receive api ep with
        | Some buf ->
            incr maint_delivered;
            (* Slow log write. *)
            Mem_port.instr (Api.port api) 2_000;
            ok (Api.post_receive api ep buf)
        | None -> Mem_port.instr (Api.port api) 50);
        maint_drops := !maint_drops + Api.drops_read_and_reset api ep
      done);

  (* --- Sensors and maintenance chatter. --- *)
  let radar_sent =
    sensor machine ~node:radar_node ~name:"radar" ~period_ns:2_000_000
      ~dest_name:"tracker-radar"
  in
  let radar_sent_fast =
    sensor machine ~node:radar_node ~name:"radar-fast" ~period_ns:200_000
      ~dest_name:"tracker-radar"
  in
  let iff_sent =
    sensor machine ~node:iff_node ~name:"iff" ~period_ns:500_000
      ~dest_name:"tracker-iff"
  in
  List.iter
    (fun node -> maintenance machine ~node ~dest_name:"logger")
    [ 0; 1; 2; 3; 4; 6; 7 ];

  Machine.run ~until:horizon machine;
  Machine.stop_engines machine;
  Machine.run machine;

  let sensor_sent = !radar_sent + !radar_sent_fast + !iff_sent in
  Fmt.pr "sensors:     %d detections sent (radar %d+%d, IFF %d)@." sensor_sent
    !radar_sent !radar_sent_fast !iff_sent;
  Fmt.pr "tracker:     %d correlated through the endpoint group@." !tracks;
  Fmt.pr "engage path: %d orders; latency %a us; %d deadline misses (%dus budget)@."
    !engage_sent
    (Fmt.option Summary.pp)
    (match !engage_latencies with [] -> None | l -> Some (Summary.of_samples l))
    !engage_misses (engage_deadline_ns / 1000);
  Fmt.pr "display:     %d channel updates, %d full table snapshots via bulk@."
    !display_updates !snapshots;
  Fmt.pr "maintenance: %d logged, %d discarded at the logger's own endpoint@."
    !maint_delivered !maint_drops;
  if !engage_misses = 0 && !maint_drops > 0 then
    Fmt.pr
      "@.=> the critical path held its deadline while maintenance overload@.\
      \   was shed locally — FLIPC's resource-control story, end to end.@."
