(* Radar tracker: the event-driven command-and-control scenario that
   motivates FLIPC (AEGIS/AWACS-style systems in the paper's introduction).

   Run with: dune exec examples/radar_tracker.exe

   A sensor node sends two classes of traffic to a control node:

   - "track" events — detections of incoming objects. Medium-sized
     (a 96-byte track record), high importance, must be processed with
     low, predictable latency.
   - "maintenance" telemetry — preventive-maintenance chatter. High
     volume, low importance.

   The paper's requirement: the system "must not only process a message
   announcing detection of an incoming missile in preference to a message
   indicating that it is time for preventative maintenance, but must also
   ensure that the latter message does not consume resources required to
   handle the former."

   FLIPC's answer, demonstrated here:
   - each class gets its own endpoint, so buffer resources are separate;
   - the maintenance endpoint is given few buffers: when its consumer
     falls behind, the optimistic transport discards (and counts) excess
     maintenance messages instead of letting them queue without bound;
   - receivers are real-time threads woken through endpoint semaphores,
     with the track thread at higher priority — the scheduler, not an
     interrupting upcall, decides who runs. *)

module Vtime = Flipc_sim.Vtime
module Machine = Flipc.Machine
module Streams = Flipc_workload.Streams
module Summary = Flipc_stats.Summary

let () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  Fmt.pr "radar tracker: sensor=node 0, control=node 1@.";
  Fmt.pr "  track:       one 96B event every 100us, 8 buffers, priority 10@.";
  Fmt.pr "  maintenance: one record every 10us (overload), 2 buffers, priority 1@.";
  Fmt.pr "running 50ms of virtual time...@.";
  let results =
    Streams.run ~machine ~node_src:0 ~node_dst:1 ~until:(Vtime.ms 50)
      [
        (* Track events arrive as a Poisson process (detections are
           random), mean 100us; maintenance chatters periodically. *)
        Streams.make ~name:"track" ~priority:10
          ~arrival:(Flipc_workload.Arrivals.poisson ~mean_ns:100_000 ~seed:11)
          ~count:400 ~recv_buffers:8 ~consume_ns:8_000 ~deadline_ns:100_000 ();
        Streams.make ~name:"maintenance" ~priority:1 ~period_ns:10_000
          ~count:4_000 ~recv_buffers:2 ~consume_ns:80_000 ();
      ]
  in
  List.iter
    (fun (r : Streams.stream_result) ->
      Fmt.pr "@.stream %-12s sent=%5d delivered=%5d discarded=%5d misses=%d@."
        r.name r.sent r.delivered r.dropped r.deadline_misses;
      match r.latency with
      | Some l ->
          Fmt.pr "  latency: mean=%.1fus p95=%.1fus max=%.1fus@." l.Summary.mean
            l.Summary.p95 l.Summary.max
      | None -> Fmt.pr "  (nothing delivered)@.")
    results;
  (match results with
  | [ track; maintenance ] ->
      Fmt.pr "@.=> track stream: %d/%d delivered, %d drops — unaffected by the@."
        track.Streams.delivered track.Streams.sent track.Streams.dropped;
      Fmt.pr "   maintenance overload (%d discards confined to its own endpoint).@."
        maintenance.Streams.dropped
  | _ -> ());
  Fmt.pr "@.resource isolation: discarding is per-endpoint, priorities are@.";
  Fmt.pr "enforced by the scheduler via FLIPC's real-time semaphore wakeup.@."
