(* Tests for the discrete-event simulation core. *)

module Vtime = Flipc_sim.Vtime
module Heap = Flipc_sim.Heap
module Engine = Flipc_sim.Engine
module Sync = Flipc_sim.Sync
module Prng = Flipc_sim.Prng
module Trace = Flipc_sim.Trace

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Vtime --- *)

let test_vtime_units () =
  check "us" 1_000 (Vtime.us 1);
  check "ms" 1_000_000 (Vtime.ms 1);
  check "s" 1_000_000_000 (Vtime.s 1);
  check "of_us_float rounds" 1_500 (Vtime.of_us_float 1.5);
  Alcotest.(check (float 1e-9)) "to_us" 1.5 (Vtime.to_us 1_500)

let test_vtime_arith () =
  check "add" 30 (Vtime.add 10 20);
  check "sub" 10 (Vtime.sub 30 20);
  check "scale" 60 (Vtime.scale 3 20);
  check_bool "compare" true (Vtime.compare (Vtime.us 1) (Vtime.ms 1) < 0)

let test_vtime_pp () =
  let s t = Fmt.str "%a" Vtime.pp t in
  Alcotest.(check string) "ns" "42ns" (s 42);
  Alcotest.(check string) "us" "1.50us" (s 1_500);
  Alcotest.(check string) "ms" "2.000ms" (s 2_000_000)

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (fun k -> Heap.push h k k) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (k, _) ->
        out := k :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !out)

let test_heap_peek () =
  let h = Heap.create ~cmp:Int.compare () in
  Alcotest.(check bool) "empty peek" true (Heap.peek_min h = None);
  Heap.push h 4 "four";
  Heap.push h 2 "two";
  (match Heap.peek_min h with
  | Some (2, "two") -> ()
  | _ -> Alcotest.fail "peek should be min");
  check "size unchanged" 2 (Heap.size h)

let test_heap_grow () =
  let h = Heap.create ~cmp:Int.compare () in
  for i = 1000 downto 1 do
    Heap.push h i i
  done;
  check "size" 1000 (Heap.size h);
  (match Heap.pop_min h with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "min of 1000");
  Heap.clear h;
  check "cleared" 0 (Heap.size h)

let heap_sorted_prop =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list int)
    (fun keys ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain acc =
        match Heap.pop_min h with
        | Some (k, ()) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort Int.compare keys)

(* --- Engine --- *)

let test_engine_delay_order () =
  let t = Engine.create () in
  let log = ref [] in
  Engine.spawn t (fun () ->
      Engine.delay 30;
      log := "c" :: !log);
  Engine.spawn t (fun () ->
      Engine.delay 10;
      log := "a" :: !log);
  Engine.spawn t (fun () ->
      Engine.delay 20;
      log := "b" :: !log);
  Engine.run t;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check "final time" 30 (Engine.now t)

let test_engine_fifo_same_time () =
  let t = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.spawn t (fun () -> log := i :: !log)
  done;
  Engine.run t;
  Alcotest.(check (list int)) "spawn order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_delay () =
  let t = Engine.create () in
  let times = ref [] in
  Engine.spawn t (fun () ->
      Engine.delay 5;
      times := Engine.now t :: !times;
      Engine.delay 7;
      times := Engine.now t :: !times);
  Engine.run t;
  Alcotest.(check (list int)) "cumulative" [ 5; 12 ] (List.rev !times)

let test_engine_until () =
  let t = Engine.create () in
  let fired = ref false in
  Engine.spawn t (fun () ->
      Engine.delay 100;
      fired := true);
  Engine.run ~until:50 t;
  check_bool "not yet" false !fired;
  check "clock at limit" 50 (Engine.now t);
  Engine.run t;
  check_bool "fires later" true !fired

let test_engine_suspend_resume () =
  let t = Engine.create () in
  let resume_cell = ref None in
  let state = ref "init" in
  Engine.spawn t (fun () ->
      Engine.suspend (fun resume -> resume_cell := Some resume);
      state := "resumed");
  Engine.spawn t (fun () ->
      Engine.delay 40;
      match !resume_cell with Some r -> r () | None -> Alcotest.fail "no cell");
  Engine.run t;
  Alcotest.(check string) "resumed" "resumed" !state;
  check "resumed at waker's time" 40 (Engine.now t)

let test_engine_double_resume_harmless () =
  let t = Engine.create () in
  let hits = ref 0 in
  Engine.spawn t (fun () ->
      Engine.suspend (fun resume ->
          resume ();
          resume ());
      incr hits);
  Engine.run t;
  check "continued once" 1 !hits

let test_engine_spawn_at () =
  let t = Engine.create () in
  let at = ref (-1) in
  Engine.spawn_at t 25 (fun () -> at := Engine.now t);
  Engine.run t;
  check "starts at 25" 25 !at;
  Alcotest.check_raises "past spawn rejected"
    (Invalid_argument "Engine.spawn_at: time is in the past") (fun () ->
      Engine.spawn_at t 1 (fun () -> ()))

let test_engine_failure_propagates () =
  let t = Engine.create () in
  Engine.spawn ~name:"boom" t (fun () -> failwith "bang");
  match Engine.run t with
  | () -> Alcotest.fail "expected Process_failure"
  | exception Engine.Process_failure (name, Failure msg) ->
      Alcotest.(check string) "name" "boom" name;
      Alcotest.(check string) "msg" "bang" msg
  | exception e -> raise e

let test_engine_live_processes () =
  let t = Engine.create () in
  Engine.spawn t (fun () -> Engine.delay 10);
  Engine.spawn t (fun () -> Engine.suspend (fun _resume -> ()));
  check "two live before run" 2 (Engine.live_processes t);
  Engine.run t;
  (* The suspended process never resumes and stays live. *)
  check "one parked forever" 1 (Engine.live_processes t);
  check_bool "steps counted" true (Engine.steps t > 0)

let test_engine_yield_interleave () =
  let t = Engine.create () in
  let log = ref [] in
  Engine.spawn t (fun () ->
      log := "a1" :: !log;
      Engine.yield ();
      log := "a2" :: !log);
  Engine.spawn t (fun () ->
      log := "b1" :: !log;
      Engine.yield ();
      log := "b2" :: !log);
  Engine.run t;
  Alcotest.(check (list string))
    "interleaved" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_engine_until_then_resume () =
  let t = Engine.create () in
  let log = ref [] in
  Engine.spawn t (fun () ->
      Engine.delay 10;
      log := "a" :: !log;
      Engine.delay 100;
      log := "b" :: !log);
  Engine.run ~until:50 t;
  Alcotest.(check (list string)) "first half" [ "a" ] (List.rev !log);
  Engine.run ~until:200 t;
  Alcotest.(check (list string)) "second half" [ "a"; "b" ] (List.rev !log)

(* --- Sync --- *)

let test_condvar_fifo () =
  let t = Engine.create () in
  let cv = Sync.Condvar.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Engine.spawn t (fun () ->
        Sync.Condvar.wait cv;
        log := i :: !log)
  done;
  Engine.spawn t (fun () ->
      Engine.delay 5;
      Sync.Condvar.signal cv;
      Engine.delay 5;
      Sync.Condvar.broadcast cv);
  Engine.run t;
  Alcotest.(check (list int)) "fifo wakeup" [ 1; 2; 3 ] (List.rev !log)

let test_semaphore_counting () =
  let t = Engine.create () in
  let sem = Sync.Semaphore.create 2 in
  let active = ref 0 and peak = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn t (fun () ->
        Sync.Semaphore.acquire sem;
        incr active;
        if !active > !peak then peak := !active;
        Engine.delay 10;
        decr active;
        Sync.Semaphore.release sem)
  done;
  Engine.run t;
  check "peak limited by semaphore" 2 !peak;
  check "value restored" 2 (Sync.Semaphore.value sem)

let test_semaphore_try () =
  let sem = Sync.Semaphore.create 1 in
  check_bool "first try" true (Sync.Semaphore.try_acquire sem);
  check_bool "second try" false (Sync.Semaphore.try_acquire sem)

let test_mailbox () =
  let t = Engine.create () in
  let mb = Sync.Mailbox.create () in
  let got = ref [] in
  Engine.spawn t (fun () ->
      for _ = 1 to 3 do
        got := Sync.Mailbox.take mb :: !got
      done);
  Engine.spawn t (fun () ->
      Engine.delay 5;
      Sync.Mailbox.put mb 1;
      Sync.Mailbox.put mb 2;
      Engine.delay 5;
      Sync.Mailbox.put mb 3);
  Engine.run t;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got);
  check_bool "empty try_take" true (Sync.Mailbox.try_take mb = None)

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  check_bool "different streams" true (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_int_range () =
  let p = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int p 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int p 0))

let test_prng_exponential_mean () =
  let p = Prng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let x = Prng.exponential p ~mean:5.0 in
    check_bool "nonneg" true (x >= 0.);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 5" true (Float.abs (mean -. 5.0) < 0.25)

let test_prng_split_independent () =
  let a = Prng.create ~seed:3 in
  let b = Prng.split a in
  check_bool "split differs from parent" true
    (Prng.next_int64 a <> Prng.next_int64 b)

(* --- Trace --- *)

let test_trace_disabled_by_default () =
  let tr = Trace.create () in
  Trace.record tr ~now:5 ~tag:"x" "hello";
  check "nothing recorded" 0 (Trace.length tr)

let test_trace_records () =
  let tr = Trace.create ~enabled:true () in
  Trace.record tr ~now:5 ~tag:"x" "hello";
  Trace.recordf tr ~now:6 ~tag:"y" "n=%d" 3;
  check "two entries" 2 (Trace.length tr);
  (match Trace.to_list tr with
  | [ a; b ] ->
      Alcotest.(check string) "msg" "hello" a.Trace.message;
      Alcotest.(check string) "fmt msg" "n=3" b.Trace.message
  | _ -> Alcotest.fail "expected two");
  Trace.clear tr;
  check "cleared" 0 (Trace.length tr)

let () =
  Alcotest.run "sim"
    [
      ( "vtime",
        [
          Alcotest.test_case "units" `Quick test_vtime_units;
          Alcotest.test_case "arith" `Quick test_vtime_arith;
          Alcotest.test_case "pp" `Quick test_vtime_pp;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "grow" `Quick test_heap_grow;
          QCheck_alcotest.to_alcotest heap_sorted_prop;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delay order" `Quick test_engine_delay_order;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "nested delay" `Quick test_engine_nested_delay;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "suspend/resume" `Quick test_engine_suspend_resume;
          Alcotest.test_case "double resume" `Quick
            test_engine_double_resume_harmless;
          Alcotest.test_case "spawn_at" `Quick test_engine_spawn_at;
          Alcotest.test_case "failure propagates" `Quick
            test_engine_failure_propagates;
          Alcotest.test_case "live processes" `Quick test_engine_live_processes;
          Alcotest.test_case "yield interleave" `Quick
            test_engine_yield_interleave;
          Alcotest.test_case "until then resume" `Quick
            test_engine_until_then_resume;
        ] );
      ( "sync",
        [
          Alcotest.test_case "condvar fifo" `Quick test_condvar_fifo;
          Alcotest.test_case "semaphore counting" `Quick test_semaphore_counting;
          Alcotest.test_case "semaphore try" `Quick test_semaphore_try;
          Alcotest.test_case "mailbox" `Quick test_mailbox;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "exponential mean" `Quick
            test_prng_exponential_mean;
          Alcotest.test_case "split independent" `Quick
            test_prng_split_independent;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled" `Quick test_trace_disabled_by_default;
          Alcotest.test_case "records" `Quick test_trace_records;
        ] );
    ]
