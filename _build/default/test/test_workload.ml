(* Tests for the measurement workloads: ping-pong, streams, RPC. *)

module Config = Flipc.Config
module Machine = Flipc.Machine
module Pingpong = Flipc_workload.Pingpong
module Streams = Flipc_workload.Streams
module Rpc = Flipc_workload.Rpc
module Summary = Flipc_stats.Summary

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_pingpong_sane () =
  let r = Pingpong.measure ~payload_bytes:120 ~exchanges:50 () in
  check "exchanges" 50 r.Pingpong.exchanges;
  check "samples" 50 (List.length r.Pingpong.round_trips_us);
  check "zero drops" 0 r.Pingpong.drops;
  check "message size" 128 r.Pingpong.message_bytes;
  let m = r.Pingpong.one_way.Summary.mean in
  check_bool "latency plausible" true (m > 5.0 && m < 40.0);
  (* The aggregate (paper's method) and per-sample mean agree closely. *)
  check_bool "aggregate agrees" true
    (Float.abs (m -. r.Pingpong.aggregate_one_way_us) < 0.5)

let test_pingpong_payload_too_big () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  Alcotest.check_raises "payload check"
    (Invalid_argument "Pingpong.run: payload exceeds configured message size")
    (fun () ->
      ignore
        (Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:4096
           ~exchanges:1 ()))

let test_pingpong_touch_payload_slower () =
  let plain = Pingpong.measure ~payload_bytes:248 ~exchanges:50 () in
  let touched =
    Pingpong.measure ~touch_payload:true ~payload_bytes:248 ~exchanges:50 ()
  in
  check_bool "payload access costs cache traffic" true
    (touched.Pingpong.one_way.Summary.mean
    > plain.Pingpong.one_way.Summary.mean)

let test_pingpong_larger_messages_slower () =
  let small = Pingpong.measure ~payload_bytes:56 ~exchanges:60 () in
  let large = Pingpong.measure ~payload_bytes:248 ~exchanges:60 () in
  check_bool "monotone in size" true
    (large.Pingpong.aggregate_one_way_us > small.Pingpong.aggregate_one_way_us)

let test_pingpong_distant_nodes_slower () =
  (* More hops => higher latency (hop cost is small but present). *)
  let near = Pingpong.measure ~cols:4 ~rows:4 ~node_a:0 ~node_b:1 ~payload_bytes:120 ~exchanges:60 () in
  let far = Pingpong.measure ~cols:4 ~rows:4 ~node_a:0 ~node_b:15 ~payload_bytes:120 ~exchanges:60 () in
  check_bool "hops add latency" true
    (far.Pingpong.aggregate_one_way_us > near.Pingpong.aggregate_one_way_us)

let test_streams_isolation () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let results =
    Streams.run ~machine ~node_src:0 ~node_dst:1
      ~until:(Flipc_sim.Vtime.ms 40)
      [
        Streams.make ~name:"high" ~priority:10 ~period_ns:100_000 ~count:150
          ~recv_buffers:8 ~consume_ns:5_000 ();
        Streams.make ~name:"low" ~priority:1 ~period_ns:10_000 ~count:1500
          ~recv_buffers:2 ~consume_ns:60_000 ();
      ]
  in
  match results with
  | [ high; low ] ->
      check "high fully delivered" high.Streams.sent high.Streams.delivered;
      check "high no drops" 0 high.Streams.dropped;
      check_bool "low overloaded drops" true (low.Streams.dropped > 0);
      (match high.Streams.latency with
      | Some l -> check_bool "high latency bounded" true (l.Summary.max < 100.)
      | None -> Alcotest.fail "no high latency");
      check_bool "low accounting" true
        (low.Streams.delivered + low.Streams.dropped <= low.Streams.sent)
  | _ -> Alcotest.fail "two streams expected"

let test_streams_adequate_buffers_no_drops () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let results =
    Streams.run ~machine ~node_src:0 ~node_dst:1
      ~until:(Flipc_sim.Vtime.ms 20)
      [
        Streams.make ~name:"paced" ~priority:5 ~period_ns:200_000 ~count:80
          ~recv_buffers:4 ~consume_ns:10_000 ();
      ]
  in
  match results with
  | [ r ] ->
      check "all sent" 80 r.Streams.sent;
      check "all delivered" 80 r.Streams.delivered;
      check "no drops" 0 r.Streams.dropped
  | _ -> Alcotest.fail "one stream expected"

let test_streams_deadline_misses () =
  (* A 1ns deadline is unmeetable: every delivered message must miss. *)
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let results =
    Streams.run ~machine ~node_src:0 ~node_dst:1
      ~until:(Flipc_sim.Vtime.ms 10)
      [
        Streams.make ~name:"doomed" ~priority:5 ~period_ns:200_000 ~count:30
          ~recv_buffers:4 ~consume_ns:1_000 ~deadline_ns:1 ();
      ]
  in
  match results with
  | [ r ] ->
      check_bool "delivered some" true (r.Streams.delivered > 0);
      check "every delivery misses" r.Streams.delivered r.Streams.deadline_misses
  | _ -> Alcotest.fail "one stream expected"

let test_streams_loose_deadline_no_misses () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let results =
    Streams.run ~machine ~node_src:0 ~node_dst:1
      ~until:(Flipc_sim.Vtime.ms 10)
      [
        Streams.make ~name:"easy" ~priority:5 ~period_ns:200_000 ~count:30
          ~recv_buffers:4 ~consume_ns:1_000 ~deadline_ns:1_000_000 ();
      ]
  in
  match results with
  | [ r ] -> check "no misses with 1ms budget" 0 r.Streams.deadline_misses
  | _ -> Alcotest.fail "one stream expected"

let test_throughput_sane () =
  let r = Flipc_workload.Throughput.measure ~payload_bytes:120 ~messages:200 () in
  check "all messages" 200 r.Flipc_workload.Throughput.messages;
  check "no drops" 0 r.Flipc_workload.Throughput.drops;
  check_bool "rate plausible" true
    (r.Flipc_workload.Throughput.msgs_per_sec > 50_000.
    && r.Flipc_workload.Throughput.msgs_per_sec < 2_000_000.);
  check_bool "mb/s consistent" true
    (Float.abs
       (r.Flipc_workload.Throughput.mb_per_sec
       -. (r.Flipc_workload.Throughput.msgs_per_sec *. 120. /. 1e6))
    < 0.5)

let test_throughput_window_clamped () =
  (* A tiny ring must not break the throughput harness. *)
  let config = { Config.default with Config.queue_capacity = 2 } in
  let r =
    Flipc_workload.Throughput.measure ~config ~payload_bytes:56 ~messages:50 ()
  in
  check "all delivered" 50 r.Flipc_workload.Throughput.messages;
  check "no drops" 0 r.Flipc_workload.Throughput.drops

module Arrivals = Flipc_workload.Arrivals

let test_arrivals_periodic () =
  let a = Arrivals.periodic ~period_ns:500 in
  for _ = 1 to 5 do
    check "constant gap" 500 (Arrivals.next_gap_ns a)
  done;
  Alcotest.(check (float 1e-9)) "mean" 500. (Arrivals.mean_gap_ns a)

let test_arrivals_jittered () =
  let a = Arrivals.jittered ~period_ns:1000 ~jitter:0.2 ~seed:3 in
  let saw_variation = ref false in
  for _ = 1 to 50 do
    let g = Arrivals.next_gap_ns a in
    check_bool "within band" true (g >= 800 && g <= 1200);
    if g <> 1000 then saw_variation := true
  done;
  check_bool "actually varies" true !saw_variation

let test_arrivals_poisson_mean () =
  let a = Arrivals.poisson ~mean_ns:2000 ~seed:9 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let g = Arrivals.next_gap_ns a in
    check_bool "nonneg" true (g >= 0);
    sum := !sum + g
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check_bool "mean near 2000" true (Float.abs (mean -. 2000.) < 100.)

let test_arrivals_bursty () =
  let a = Arrivals.bursty ~burst:3 ~gap_ns:10 ~idle_ns:1000 in
  (* Pattern: gap gap idle, repeating. *)
  Alcotest.(check (list int)) "burst pattern" [ 10; 10; 1000; 10; 10; 1000 ]
    (List.init 6 (fun _ -> Arrivals.next_gap_ns a));
  Alcotest.(check (float 1e-6)) "mean" (1020. /. 3.) (Arrivals.mean_gap_ns a)

let test_arrivals_deterministic () =
  let a = Arrivals.poisson ~mean_ns:777 ~seed:4 in
  let b = Arrivals.poisson ~mean_ns:777 ~seed:4 in
  for _ = 1 to 100 do
    check "same stream" (Arrivals.next_gap_ns a) (Arrivals.next_gap_ns b)
  done

let test_streams_poisson_arrivals () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let results =
    Streams.run ~machine ~node_src:0 ~node_dst:1
      ~until:(Flipc_sim.Vtime.ms 20)
      [
        Streams.make ~name:"poisson"
          ~arrival:(Arrivals.poisson ~mean_ns:150_000 ~seed:5)
          ~count:80 ~recv_buffers:6 ~consume_ns:2_000 ();
      ]
  in
  match results with
  | [ r ] ->
      check "all sent" 80 r.Streams.sent;
      check "all delivered" 80 r.Streams.delivered;
      check "no drops" 0 r.Streams.dropped
  | _ -> Alcotest.fail "one stream expected"

let test_rpc_provisioned () =
  let machine = Machine.create (Machine.Mesh { cols = 4; rows = 4 }) () in
  let r =
    Rpc.run ~machine ~server_node:5 ~client_nodes:[ 0; 3; 10; 15 ]
      ~requests_per_client:25 ~server_work_ns:2_000 ()
  in
  check "requests" 100 r.Rpc.requests;
  check "replies" 100 r.Rpc.replies;
  check "no drops with static provisioning" 0 r.Rpc.server_drops;
  check "latency samples" 100 r.Rpc.latency.Summary.n;
  check_bool "rtt plausible" true
    (r.Rpc.latency.Summary.mean > 20. && r.Rpc.latency.Summary.mean < 100.)

let test_rpc_multiple_clients_per_node () =
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let r =
    Rpc.run ~machine ~server_node:1 ~client_nodes:[ 0; 0 ]
      ~requests_per_client:10 ~server_work_ns:1_000 ()
  in
  check "both clients served" 20 r.Rpc.replies;
  check "no drops" 0 r.Rpc.server_drops

let () =
  Alcotest.run "workload"
    [
      ( "pingpong",
        [
          Alcotest.test_case "sane" `Quick test_pingpong_sane;
          Alcotest.test_case "payload bound" `Quick test_pingpong_payload_too_big;
          Alcotest.test_case "touch payload slower" `Quick
            test_pingpong_touch_payload_slower;
          Alcotest.test_case "size monotone" `Quick
            test_pingpong_larger_messages_slower;
          Alcotest.test_case "distance monotone" `Quick
            test_pingpong_distant_nodes_slower;
        ] );
      ( "streams",
        [
          Alcotest.test_case "priority isolation" `Quick test_streams_isolation;
          Alcotest.test_case "no drops when provisioned" `Quick
            test_streams_adequate_buffers_no_drops;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "periodic" `Quick test_arrivals_periodic;
          Alcotest.test_case "jittered" `Quick test_arrivals_jittered;
          Alcotest.test_case "poisson mean" `Quick test_arrivals_poisson_mean;
          Alcotest.test_case "bursty" `Quick test_arrivals_bursty;
          Alcotest.test_case "deterministic" `Quick
            test_arrivals_deterministic;
          Alcotest.test_case "poisson stream end-to-end" `Quick
            test_streams_poisson_arrivals;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "unmeetable deadline" `Quick
            test_streams_deadline_misses;
          Alcotest.test_case "loose deadline" `Quick
            test_streams_loose_deadline_no_misses;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "sane" `Quick test_throughput_sane;
          Alcotest.test_case "tiny ring" `Quick test_throughput_window_clamped;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "provisioned" `Quick test_rpc_provisioned;
          Alcotest.test_case "clients per node" `Quick
            test_rpc_multiple_clients_per_node;
        ] );
    ]
