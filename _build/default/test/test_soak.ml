(* Soak tests: many concurrent traffic sources on one machine, with
   machine-wide accounting invariants checked at the end.

   The key invariant: with only valid destinations, every message an
   engine transmits is either deposited or discarded at its destination —
   sum(sends) = sum(recvs) + sum(drops) across the whole machine. *)

module Sim = Flipc_sim.Engine
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Channel = Flipc.Channel
module Nameservice = Flipc.Nameservice
module Msg_engine = Flipc.Msg_engine
module Endpoint_kind = Flipc.Endpoint_kind
module Prng = Flipc_sim.Prng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine_totals machine =
  let sends = ref 0 and recvs = ref 0 and drops = ref 0 in
  for i = 0 to Machine.node_count machine - 1 do
    let s = Msg_engine.stats (Machine.msg_engine (Machine.node machine i)) in
    sends := !sends + s.Msg_engine.sends;
    recvs := !recvs + s.Msg_engine.recvs;
    drops := !drops + s.Msg_engine.drops
  done;
  (!sends, !recvs, !drops)

(* One soak scenario: [pairs] channel flows between pseudo-random node
   pairs of a 3x3 mesh, each with its own message count and payload sizes;
   plus one deliberately under-buffered endpoint taking a flood (to force
   discards into the accounting). *)
let run_soak ~seed ~pairs =
  let machine = Machine.create (Machine.Mesh { cols = 3; rows = 3 }) () in
  let ns = Machine.names machine in
  let prng = Prng.create ~seed in
  let nodes = Machine.node_count machine in
  let expected = ref 0 in
  let delivered = ref 0 in
  for flow = 0 to pairs - 1 do
    let src = Prng.int prng nodes in
    let dst = (src + 1 + Prng.int prng (nodes - 1)) mod nodes in
    let count = 10 + Prng.int prng 30 in
    let payload = 1 + Prng.int prng 100 in
    let name = Printf.sprintf "flow-%d" flow in
    expected := !expected + count;
    Machine.spawn_app ~name:(name ^ "-rx") machine ~node:dst (fun api ->
        let rx = Result.get_ok (Channel.create_rx api ~depth:6 ()) in
        Nameservice.register ns name (Channel.address rx);
        let got = ref 0 in
        while !got < count do
          match Channel.recv rx with
          | Some p ->
              check ("payload size " ^ name) payload (Bytes.length p);
              incr got;
              incr delivered
          | None -> Mem_port.instr (Api.port api) 7
        done);
    Machine.spawn_app ~name:(name ^ "-tx") machine ~node:src (fun api ->
        let dest = Nameservice.lookup ns name in
        let tx = Result.get_ok (Channel.create_tx api ~dest ~pool:3 ()) in
        for _ = 1 to count do
          match Channel.send tx (Bytes.make payload 'x') with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Channel.error_to_string e)
        done)
  done;
  (* The flood victim: two buffers, slow consumer, bounded run. *)
  let flood_count = 150 in
  let flood_drops = ref 0 and flood_got = ref 0 in
  Machine.spawn_app ~name:"victim" machine ~node:4 (fun api ->
      let ep =
        Result.get_ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ())
      in
      for _ = 1 to 2 do
        ignore
          (Api.post_receive api ep (Result.get_ok (Api.allocate_buffer api))
            : (unit, Api.error) result)
      done;
      Nameservice.register ns "victim" (Api.address api ep);
      while !flood_got + !flood_drops < flood_count do
        (match Api.receive api ep with
        | Some buf ->
            incr flood_got;
            Mem_port.instr (Api.port api) 3_000;
            ignore (Api.post_receive api ep buf : (unit, Api.error) result)
        | None -> Mem_port.instr (Api.port api) 10);
        flood_drops := !flood_drops + Api.drops_read_and_reset api ep
      done);
  Machine.spawn_app ~name:"flooder" machine ~node:8 (fun api ->
      let ep =
        Result.get_ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ())
      in
      Api.connect api ep (Nameservice.lookup ns "victim");
      let buf = Result.get_ok (Api.allocate_buffer api) in
      for _ = 1 to flood_count do
        (match Api.send api ep buf with Ok () -> () | Error _ -> ());
        let rec reclaim () =
          match Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Mem_port.instr (Api.port api) 5;
              reclaim ()
        in
        reclaim ()
      done);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let sends, recvs, drops = machine_totals machine in
  check "all channel flows complete" !expected !delivered;
  check "flood accounted" flood_count (!flood_got + !flood_drops);
  check_bool "flood actually dropped" true (!flood_drops > 0);
  check "machine-wide conservation" sends (recvs + drops)

let test_soak_small () = run_soak ~seed:101 ~pairs:4
let test_soak_large () = run_soak ~seed:202 ~pairs:10

let soak_prop =
  QCheck.Test.make ~name:"soak conservation over random seeds" ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
      run_soak ~seed:(seed + 1) ~pairs:5;
      true)

let () =
  Alcotest.run "soak"
    [
      ( "scenarios",
        [
          Alcotest.test_case "small" `Quick test_soak_small;
          Alcotest.test_case "large" `Slow test_soak_large;
          QCheck_alcotest.to_alcotest soak_prop;
        ] );
    ]
