(* Tests for the statistics utilities. *)

module Summary = Flipc_stats.Summary
module Regression = Flipc_stats.Regression
module Table = Flipc_stats.Table

let checkf = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let test_mean_stddev () =
  checkf "mean" 3.0 (Summary.mean [ 1.; 2.; 3.; 4.; 5. ]);
  checkf "stddev" (sqrt 2.5) (Summary.stddev [ 1.; 2.; 3.; 4.; 5. ]);
  checkf "single stddev" 0.0 (Summary.stddev [ 7. ])

let test_percentile () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  checkf "p0" 10. (Summary.percentile xs 0.);
  checkf "p100" 40. (Summary.percentile xs 100.);
  checkf "p50 interpolates" 25. (Summary.percentile xs 50.);
  Alcotest.check_raises "empty" (Invalid_argument "Summary.percentile: empty")
    (fun () -> ignore (Summary.percentile [] 50.))

let test_summary () =
  let s = Summary.of_samples [ 5.; 1.; 3. ] in
  Alcotest.(check int) "n" 3 s.Summary.n;
  checkf "mean" 3. s.Summary.mean;
  checkf "min" 1. s.Summary.min;
  checkf "max" 5. s.Summary.max;
  checkf "p50" 3. s.Summary.p50

let test_regression_exact () =
  (* y = 2 + 3x fits exactly. *)
  let points = List.init 10 (fun i -> (float_of_int i, 2. +. (3. *. float_of_int i))) in
  let fit = Regression.linear points in
  checkf "intercept" 2. fit.Regression.intercept;
  checkf "slope" 3. fit.Regression.slope;
  checkf "r2" 1. fit.Regression.r2

let test_regression_noisy () =
  let points = [ (0., 1.); (1., 2.9); (2., 5.1); (3., 7.) ] in
  let fit = Regression.linear points in
  check_bool "slope near 2" true (Float.abs (fit.Regression.slope -. 2.) < 0.1);
  check_bool "r2 high" true (fit.Regression.r2 > 0.99)

let test_regression_errors () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Regression.linear: need at least two points") (fun () ->
      ignore (Regression.linear [ (1., 1.) ]));
  Alcotest.check_raises "vertical"
    (Invalid_argument "Regression.linear: all x equal") (fun () ->
      ignore (Regression.linear [ (1., 1.); (1., 2.) ]))

(* Substring search helper. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"T" [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "b"; "22" ];
  let s = Fmt.str "%a" Table.pp t in
  check_bool "has title" true (contains s "== T ==");
  check_bool "has row" true (contains s "alpha | 1");
  check_bool "pads columns" true (contains s "b     | 22")

let test_table_mismatch () =
  let t = Table.create ~title:"T" [ "a"; "b" ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "only one" ])

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "decimals" "3.1416" (Table.cell_f ~decimals:4 3.14159);
  Alcotest.(check string) "us" "16.20" (Table.cell_us 16.2);
  Alcotest.(check string) "int" "42" (Table.cell_i 42)

module Histogram = Flipc_stats.Histogram

let test_histogram_binning () =
  let h = Histogram.create ~bins:4 ~lo:0. ~hi:4. () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.9; 3.99; -1.; 4.; 100. ];
  Alcotest.(check int) "total" 7 (Histogram.total h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check (array int)) "counts" [| 1; 2; 0; 1 |] (Histogram.counts h);
  let lo, hi = Histogram.bin_range h 1 in
  checkf "bin lo" 1. lo;
  checkf "bin hi" 2. hi

let test_histogram_of_samples () =
  let h = Histogram.of_samples ~bins:5 [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "all in range" 5 (Histogram.total h);
  Alcotest.(check int) "no underflow" 0 (Histogram.underflow h);
  Alcotest.(check int) "no overflow" 0 (Histogram.overflow h);
  Alcotest.(check int) "counts sum" 5
    (Array.fold_left ( + ) 0 (Histogram.counts h))

let test_histogram_render () =
  let h = Histogram.of_samples ~bins:2 [ 1.; 1.; 9. ] in
  let s = Fmt.str "%a" Histogram.pp h in
  check_bool "has bars" true (contains s "#")

let test_table_csv () =
  let t = Table.create ~title:"T" [ "a"; "b" ] in
  Table.add_row t [ "x,y"; "2" ];
  Table.add_rule t;
  Table.add_row t [ "he said \"hi\""; "3" ];
  let csv = Table.to_csv t in
  check_bool "header" true (contains csv "a,b\n");
  check_bool "quoted comma" true (contains csv "\"x,y\",2");
  check_bool "escaped quote" true (contains csv "\"he said \"\"hi\"\"\",3");
  check_bool "rule skipped" true (not (contains csv "---"))

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "of_samples" `Quick test_summary;
        ] );
      ( "regression",
        [
          Alcotest.test_case "exact" `Quick test_regression_exact;
          Alcotest.test_case "noisy" `Quick test_regression_noisy;
          Alcotest.test_case "errors" `Quick test_regression_errors;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "mismatch" `Quick test_table_mismatch;
          Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "of_samples" `Quick test_histogram_of_samples;
          Alcotest.test_case "render" `Quick test_histogram_render;
        ] );
    ]
