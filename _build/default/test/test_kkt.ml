(* Tests for the Kernel-to-Kernel Transport and FLIPC-over-KKT. *)

module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Topology = Flipc_net.Topology
module Mesh = Flipc_net.Mesh
module Nic = Flipc_net.Nic
module Kkt = Flipc_kkt.Kkt
module Kkt_flipc = Flipc_kkt.Kkt_flipc
module Machine = Flipc.Machine
module Api = Flipc.Api
module Endpoint_kind = Flipc.Endpoint_kind
module Pingpong = Flipc_workload.Pingpong

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let kkt_env () =
  let sim = Sim.create () in
  let topology = Topology.create ~cols:2 ~rows:2 in
  let fabric = Mesh.create ~engine:sim ~topology ~config:Mesh.paragon_config in
  let nics = Array.init 4 (fun node -> Nic.create ~engine:sim ~fabric ~node) in
  let kkt = Kkt.create ~sim () in
  Array.iter (fun nic -> Kkt.attach kkt ~nic) nics;
  (sim, kkt)

let test_rpc_roundtrip () =
  let sim, kkt = kkt_env () in
  Kkt.serve kkt ~node:1 (fun req ->
      Bytes.of_string ("re:" ^ Bytes.to_string req));
  let reply = ref "" in
  Sim.spawn sim (fun () ->
      reply := Bytes.to_string (Kkt.call kkt ~src:0 ~dst:1 (Bytes.of_string "ping")));
  Sim.run sim;
  Alcotest.(check string) "reply" "re:ping" !reply;
  check "one call" 1 (Kkt.calls_completed kkt)

let test_rpc_blocks_caller () =
  let sim, kkt = kkt_env () in
  Kkt.serve kkt ~node:1 (fun req -> req);
  let elapsed = ref 0 in
  Sim.spawn sim (fun () ->
      let t0 = Sim.now sim in
      ignore (Kkt.call kkt ~src:0 ~dst:1 (Bytes.create 128) : Bytes.t);
      elapsed := Sim.now sim - t0);
  Sim.run sim;
  (* Round trip: two traps, two marshals, two wire crossings, dispatch. *)
  check_bool "at least 10us" true (!elapsed > 10_000)

let test_rpc_concurrent_calls () =
  let sim, kkt = kkt_env () in
  Kkt.serve kkt ~node:2 (fun req -> req);
  let done_count = ref 0 in
  for i = 0 to 1 do
    Sim.spawn sim (fun () ->
        let payload = Bytes.make 4 (Char.chr (65 + i)) in
        let reply = Kkt.call kkt ~src:i ~dst:2 payload in
        check_bool "echo matches caller" true (Bytes.equal reply payload);
        incr done_count)
  done;
  Sim.run sim;
  check "both completed" 2 !done_count

let test_rpc_no_server_empty_reply () =
  let sim, kkt = kkt_env () in
  let len = ref (-1) in
  Sim.spawn sim (fun () ->
      len := Bytes.length (Kkt.call kkt ~src:0 ~dst:3 (Bytes.create 8)));
  Sim.run sim;
  check "empty reply" 0 !len

let test_rpc_unattached_rejected () =
  let sim, kkt = kkt_env () in
  Sim.spawn sim (fun () ->
      Alcotest.check_raises "bad node" (Invalid_argument "Kkt: node 9 not attached")
        (fun () -> ignore (Kkt.call kkt ~src:0 ~dst:9 (Bytes.create 4))));
  Sim.run sim

(* FLIPC over KKT delivers messages correctly. *)
let test_kkt_flipc_delivery () =
  let machine = Kkt_flipc.machine (Machine.Mesh { cols = 2; rows = 1 }) () in
  let addr_box = Mailbox.create () in
  let received = ref "" in
  let ok = function
    | Ok v -> v
    | Error e -> Alcotest.fail (Api.error_to_string e)
  in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      ok (Api.post_receive api ep (ok (Api.allocate_buffer api)));
      Mailbox.put addr_box (Api.address api ep);
      let rec poll () =
        match Api.receive api ep with
        | Some b -> b
        | None ->
            Mem_port.instr (Api.port api) 5;
            poll ()
      in
      received := Bytes.to_string (Api.read_payload api (poll ()) 7));
  Machine.spawn_app machine ~node:0 (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Mailbox.take addr_box);
      let buf = ok (Api.allocate_buffer api) in
      Api.write_payload api buf (Bytes.of_string "via kkt");
      ok (Api.send api ep buf));
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  Alcotest.(check string) "delivered over kkt" "via kkt" !received

(* The structural result: RPC-per-message is slower than the native
   one-way transport on the same fabric. *)
let test_kkt_slower_than_native () =
  let native =
    Pingpong.measure ~cols:2 ~rows:1 ~payload_bytes:120 ~exchanges:50 ()
  in
  let kkt_machine = Kkt_flipc.machine (Machine.Mesh { cols = 2; rows = 1 }) () in
  let kkt =
    Pingpong.run ~machine:kkt_machine ~node_a:0 ~node_b:1 ~payload_bytes:120
      ~exchanges:50 ()
  in
  check_bool "kkt slower" true
    (kkt.Pingpong.aggregate_one_way_us
    > native.Pingpong.aggregate_one_way_us +. 5.0)

let () =
  Alcotest.run "kkt"
    [
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "blocks caller" `Quick test_rpc_blocks_caller;
          Alcotest.test_case "concurrent" `Quick test_rpc_concurrent_calls;
          Alcotest.test_case "no server" `Quick test_rpc_no_server_empty_reply;
          Alcotest.test_case "unattached" `Quick test_rpc_unattached_rejected;
        ] );
      ( "flipc-over-kkt",
        [
          Alcotest.test_case "delivery" `Quick test_kkt_flipc_delivery;
          Alcotest.test_case "slower than native" `Quick
            test_kkt_slower_than_native;
        ] );
    ]
