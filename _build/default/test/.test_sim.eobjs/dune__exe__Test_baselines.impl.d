test/test_baselines.ml: Alcotest Flipc_baselines Flipc_workload Fmt
