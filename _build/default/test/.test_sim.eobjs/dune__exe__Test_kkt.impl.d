test/test_kkt.ml: Alcotest Array Bytes Char Flipc Flipc_kkt Flipc_memsim Flipc_net Flipc_sim Flipc_workload
