test/test_rt.ml: Alcotest Flipc_rt Flipc_sim List
