test/test_props.ml: Alcotest Bytes Char Flipc Flipc_bulk Flipc_memsim Flipc_sim Flipc_workload Fmt Fun Gen Int Int32 List QCheck QCheck_alcotest Queue Result
