test/test_stats.ml: Alcotest Array Flipc_stats Float Fmt List String
