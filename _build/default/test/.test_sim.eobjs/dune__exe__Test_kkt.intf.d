test/test_kkt.mli:
