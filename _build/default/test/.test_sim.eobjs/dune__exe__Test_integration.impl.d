test/test_integration.ml: Alcotest Bytes Flipc Flipc_memsim Flipc_rt Flipc_sim Int Int32 List Queue String
