test/test_soak.ml: Alcotest Bytes Flipc Flipc_memsim Flipc_sim Printf QCheck QCheck_alcotest Result
