test/test_memsim.mli:
