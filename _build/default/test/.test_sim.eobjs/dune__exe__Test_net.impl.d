test/test_net.ml: Alcotest Bytes Flipc_memsim Flipc_net Flipc_sim List QCheck QCheck_alcotest
