test/test_ext.ml: Alcotest Bytes Char Flipc Flipc_bulk Flipc_memsim Flipc_rt Flipc_sim Fmt Int32 List Option String
