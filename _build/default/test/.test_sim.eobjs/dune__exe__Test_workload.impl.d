test/test_workload.ml: Alcotest Flipc Flipc_sim Flipc_stats Flipc_workload Float List
