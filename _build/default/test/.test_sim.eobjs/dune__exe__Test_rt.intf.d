test/test_rt.mli:
