test/test_memsim.ml: Alcotest Array Bytes Flipc_memsim Flipc_sim Fmt List Option QCheck QCheck_alcotest
