test/test_sim.ml: Alcotest Flipc_sim Float Fmt Int List QCheck QCheck_alcotest
