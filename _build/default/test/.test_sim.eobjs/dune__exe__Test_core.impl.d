test/test_core.ml: Alcotest Bytes Flipc Flipc_memsim Flipc_sim Fmt Int List Option QCheck QCheck_alcotest Queue
