test/test_flow.ml: Alcotest Flipc Flipc_flow Flipc_memsim Flipc_sim Gen List QCheck QCheck_alcotest Queue
