test/test_calibration.ml: Alcotest Flipc Flipc_baselines Flipc_stats Flipc_workload Fmt List
