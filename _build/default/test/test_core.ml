(* Unit and property tests for the core FLIPC data structures: config,
   addresses, layout, the wait-free drop counter and buffer queue, message
   buffers and the communication-buffer allocator. *)

module Engine = Flipc_sim.Engine
module Cost_model = Flipc_memsim.Cost_model
module Shared_mem = Flipc_memsim.Shared_mem
module Cache = Flipc_memsim.Cache
module Bus = Flipc_memsim.Bus
module Mem_port = Flipc_memsim.Mem_port
module Config = Flipc.Config
module Address = Flipc.Address
module Layout = Flipc.Layout
module Drop_counter = Flipc.Drop_counter
module Buffer_queue = Flipc.Buffer_queue
module Msg_buffer = Flipc.Msg_buffer
module Comm_buffer = Flipc.Comm_buffer

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Config --- *)

let test_config_defaults_valid () =
  match Config.validate Config.default with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

let test_config_rules () =
  let bad f m =
    match Config.validate (f Config.default) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted: " ^ m)
  in
  bad (fun c -> { c with Config.message_bytes = 32 }) "too small";
  bad (fun c -> { c with Config.message_bytes = 100 }) "not mult of 32";
  bad (fun c -> { c with Config.endpoints = 0 }) "no endpoints";
  bad (fun c -> { c with Config.queue_capacity = 1 }) "queue too small";
  bad (fun c -> { c with Config.total_buffers = 0 }) "no buffers";
  bad (fun c -> { c with Config.engine_poll_jitter = 1.5 }) "bad jitter"

let test_config_payload_rules () =
  (* 8 bytes of each message are FLIPC's; 56 is the minimum payload. *)
  check "min payload" 56 (Config.payload_bytes (Config.for_payload Config.default 1));
  check "64B min message" 64
    (Config.for_payload Config.default 1).Config.message_bytes;
  check "rounds to 32" 160 (Config.for_payload Config.default 130).Config.message_bytes;
  check "120B payload fits 128B msg" 128
    (Config.for_payload Config.default 120).Config.message_bytes

(* --- Address --- *)

let test_address_roundtrip () =
  let a = Address.make ~node:12 ~endpoint:7 in
  check "node" 12 (Address.node a);
  check "endpoint" 7 (Address.endpoint a);
  check_bool "not null" false (Address.is_null a);
  let a' = Address.of_word (Address.to_word a) in
  check_bool "word roundtrip" true (Address.equal a a')

let test_address_null () =
  check_bool "null is null" true (Address.is_null Address.null);
  check "null word" 0 (Address.to_word Address.null);
  Alcotest.check_raises "node of null"
    (Invalid_argument "Address.node: null address") (fun () ->
      ignore (Address.node Address.null))

let address_roundtrip_prop =
  QCheck.Test.make ~name:"address encode/decode roundtrip" ~count:500
    QCheck.(pair (int_bound 16000) (int_bound 65535))
    (fun (node, endpoint) ->
      let a = Address.make ~node ~endpoint in
      let a' = Address.of_word (Address.to_word a) in
      Address.node a' = node && Address.endpoint a' = endpoint
      && not (Address.is_null a))

(* --- Layout --- *)

let line l addr = addr / l * l

let lines_of_fields layout ~ep ~writer =
  Layout.all_fields
  |> List.filter (fun f -> Layout.writer_of_field f = writer)
  |> List.map (fun f -> line 32 (Layout.ep_field layout ~ep f))
  |> List.sort_uniq Int.compare

let test_layout_padded_disjoint_lines () =
  (* The central property of the tuned layout: for every endpoint, no
     application-written field shares a cache line with an engine-written
     field, and slot arrays (application-written) are line-aligned. *)
  let config = { Config.default with Config.layout_mode = Config.Padded } in
  let layout = Layout.compute config in
  for ep = 0 to config.Config.endpoints - 1 do
    let app = lines_of_fields layout ~ep ~writer:Layout.App in
    let eng = lines_of_fields layout ~ep ~writer:Layout.Engine in
    List.iter
      (fun l ->
        check_bool "app/engine lines disjoint" false (List.mem l eng))
      app;
    (* Engine lines of this endpoint must not collide with app lines of
       any other endpoint either. *)
    for ep' = 0 to config.Config.endpoints - 1 do
      if ep' <> ep then
        let app' = lines_of_fields layout ~ep:ep' ~writer:Layout.App in
        List.iter
          (fun l -> check_bool "cross-ep disjoint" false (List.mem l app'))
          eng
    done;
    check "slots line aligned" 0 (Layout.slot_addr layout ~ep ~slot:0 mod 32)
  done;
  (* Global engine statistics also live on engine-only lines. *)
  let stat_lines =
    [ Layout.Engine_iterations; Layout.Engine_sends; Layout.Engine_recvs;
      Layout.Engine_drops; Layout.Engine_rejects ]
    |> List.map (fun g -> line 32 (Layout.global_addr layout g))
    |> List.sort_uniq Int.compare
  in
  for ep = 0 to config.Config.endpoints - 1 do
    let app = lines_of_fields layout ~ep ~writer:Layout.App in
    List.iter
      (fun l -> check_bool "stats vs app disjoint" false (List.mem l app))
      stat_lines
  done

let test_layout_packed_shares_lines () =
  (* The pre-tuning layout must exhibit the false sharing: some endpoint
     has app- and engine-written fields in one line. *)
  let config = { Config.default with Config.layout_mode = Config.Packed } in
  let layout = Layout.compute config in
  let found = ref false in
  for ep = 0 to config.Config.endpoints - 1 do
    let app = lines_of_fields layout ~ep ~writer:Layout.App in
    let eng = lines_of_fields layout ~ep ~writer:Layout.Engine in
    if List.exists (fun l -> List.mem l eng) app then found := true
  done;
  check_bool "packed layout false-shares" true !found

let test_layout_buffers_aligned () =
  List.iter
    (fun mode ->
      let config = { Config.default with Config.layout_mode = mode } in
      let layout = Layout.compute config in
      for i = 0 to config.Config.total_buffers - 1 do
        check "32B aligned" 0 (Layout.buffer_addr layout i mod 32)
      done)
    [ Config.Padded; Config.Packed ]

let test_layout_buffer_of_addr () =
  let layout = Layout.compute Config.default in
  for i = 0 to 5 do
    match Layout.buffer_of_addr layout (Layout.buffer_addr layout i) with
    | Some j -> check "roundtrip" i j
    | None -> Alcotest.fail "lost buffer"
  done;
  check_bool "misaligned rejected" true
    (Layout.buffer_of_addr layout (Layout.buffer_addr layout 0 + 4) = None);
  check_bool "below region rejected" true (Layout.buffer_of_addr layout 0 = None);
  let beyond =
    Layout.buffer_addr layout (Config.default.Config.total_buffers - 1)
    + Config.default.Config.message_bytes
  in
  check_bool "beyond region rejected" true
    (Layout.buffer_of_addr layout beyond = None)

let test_layout_no_field_overlap () =
  (* All field addresses within an endpoint are distinct, in both modes,
     and distinct across endpoints. *)
  List.iter
    (fun mode ->
      let config = { Config.default with Config.layout_mode = mode } in
      let layout = Layout.compute config in
      let all = ref [] in
      for ep = 0 to config.Config.endpoints - 1 do
        List.iter
          (fun f -> all := Layout.ep_field layout ~ep f :: !all)
          Layout.all_fields
      done;
      let sorted = List.sort_uniq Int.compare !all in
      check "no overlap" (List.length !all) (List.length sorted))
    [ Config.Padded; Config.Packed ]

let test_layout_regions_ordered () =
  let layout = Layout.compute Config.default in
  let clo, chi = Layout.control_region layout in
  let blo, bhi = Layout.buffer_region layout in
  check_bool "control before buffers" true (clo < chi && chi <= blo && blo < bhi);
  check "total" bhi (Layout.total_bytes layout)

(* --- Test fixture: one node's memory + two ports --- *)

type fixture = {
  sim : Engine.t;
  comm : Comm_buffer.t;
  app : Mem_port.t;
  eng : Mem_port.t;
}

let fixture ?(config = Config.default) () =
  let sim = Engine.create () in
  let layout = Layout.compute config in
  let mem = Shared_mem.create ~size:(Layout.total_bytes layout + 4096) in
  let bus = Bus.create ~cost:Cost_model.paragon () in
  let mk name =
    Mem_port.create ~engine:sim ~mem ~bus
      ~cache:(Cache.create ~name ())
      ~name
  in
  let app = mk "app" and eng = mk "eng" in
  let comm = Comm_buffer.create config mem in
  { sim; comm; app; eng }

let run_fx fx f =
  let result = ref None in
  Engine.spawn fx.sim (fun () -> result := Some (f ()));
  Engine.run fx.sim;
  Option.get !result

(* --- Drop counter --- *)

let test_drop_counter_basic () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  run_fx fx (fun () ->
      check "zero initially" 0 (Drop_counter.read fx.app layout ~ep:0);
      Drop_counter.engine_increment fx.eng layout ~ep:0;
      Drop_counter.engine_increment fx.eng layout ~ep:0;
      check "two drops" 2 (Drop_counter.read fx.app layout ~ep:0);
      check "read_and_reset returns" 2
        (Drop_counter.read_and_reset fx.app layout ~ep:0);
      check "reset to zero" 0 (Drop_counter.read fx.app layout ~ep:0);
      Drop_counter.engine_increment fx.eng layout ~ep:0;
      check "counts resume" 1 (Drop_counter.read fx.app layout ~ep:0))

let test_drop_counter_per_endpoint () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  run_fx fx (fun () ->
      Drop_counter.engine_increment fx.eng layout ~ep:3;
      check "other ep unaffected" 0 (Drop_counter.read fx.app layout ~ep:0);
      check "ep 3 counted" 1 (Drop_counter.read fx.app layout ~ep:3))

(* The wait-free guarantee: whatever interleaving of engine increments and
   application read-and-resets occurs, every drop is reported exactly
   once. *)
let drop_counter_no_lost_events_prop =
  QCheck.Test.make ~name:"drop counter loses no events" ~count:100
    QCheck.(list bool)
    (fun ops ->
      let fx = fixture () in
      let layout = Comm_buffer.layout fx.comm in
      run_fx fx (fun () ->
          let incremented = ref 0 and reported = ref 0 in
          List.iter
            (fun is_drop ->
              if is_drop then begin
                Drop_counter.engine_increment fx.eng layout ~ep:0;
                incr incremented
              end
              else
                reported :=
                  !reported + Drop_counter.read_and_reset fx.app layout ~ep:0)
            ops;
          reported := !reported + Drop_counter.read_and_reset fx.app layout ~ep:0;
          !reported = !incremented))

(* --- Buffer queue --- *)

let test_queue_empty_initially () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  run_fx fx (fun () ->
      Buffer_queue.init fx.app layout ~ep:0;
      check_bool "app acquire empty" true
        (Buffer_queue.app_acquire fx.app layout ~ep:0 = None);
      check_bool "engine peek empty" true
        (Buffer_queue.engine_peek fx.eng layout ~ep:0 = None);
      let s = Buffer_queue.snapshot fx.app layout ~ep:0 in
      check "occupancy" 0 (Buffer_queue.occupancy s);
      check_bool "well formed" true (Buffer_queue.well_formed s))

let test_queue_release_process_acquire_cycle () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  run_fx fx (fun () ->
      Buffer_queue.init fx.app layout ~ep:0;
      let addr = Layout.buffer_addr layout 5 in
      (match Buffer_queue.app_release fx.app layout ~ep:0 ~buf_addr:addr with
      | Ok () -> ()
      | Error `Full -> Alcotest.fail "full on first release");
      (* Not yet processed: the application cannot reclaim it. *)
      check_bool "not acquirable yet" true
        (Buffer_queue.app_acquire fx.app layout ~ep:0 = None);
      (match Buffer_queue.engine_peek fx.eng layout ~ep:0 with
      | Some (a, cursor) ->
          check "engine sees buffer" addr a;
          Buffer_queue.engine_advance fx.eng layout ~ep:0 ~cursor
      | None -> Alcotest.fail "engine should see work");
      (match Buffer_queue.app_acquire fx.app layout ~ep:0 with
      | Some a -> check "app reclaims same buffer" addr a
      | None -> Alcotest.fail "should be acquirable");
      check_bool "empty again" true
        (Buffer_queue.app_acquire fx.app layout ~ep:0 = None))

let test_queue_full_condition () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  let cap = Config.default.Config.queue_capacity in
  run_fx fx (fun () ->
      Buffer_queue.init fx.app layout ~ep:0;
      (* capacity - 1 releases succeed; the next reports Full. *)
      for i = 0 to cap - 2 do
        match
          Buffer_queue.app_release fx.app layout ~ep:0
            ~buf_addr:(Layout.buffer_addr layout i)
        with
        | Ok () -> ()
        | Error `Full -> Alcotest.fail (Fmt.str "premature full at %d" i)
      done;
      match
        Buffer_queue.app_release fx.app layout ~ep:0
          ~buf_addr:(Layout.buffer_addr layout 0)
      with
      | Error `Full -> ()
      | Ok () -> Alcotest.fail "should be full")

let test_queue_fifo () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  run_fx fx (fun () ->
      Buffer_queue.init fx.app layout ~ep:0;
      let addrs = List.map (Layout.buffer_addr layout) [ 2; 7; 4 ] in
      List.iter
        (fun a ->
          match Buffer_queue.app_release fx.app layout ~ep:0 ~buf_addr:a with
          | Ok () -> ()
          | Error `Full -> Alcotest.fail "full")
        addrs;
      let rec drain acc =
        match Buffer_queue.engine_peek fx.eng layout ~ep:0 with
        | Some (a, cursor) ->
            Buffer_queue.engine_advance fx.eng layout ~ep:0 ~cursor;
            drain (a :: acc)
        | None -> List.rev acc
      in
      Alcotest.(check (list int)) "engine sees FIFO" addrs (drain []);
      let rec reclaim acc =
        match Buffer_queue.app_acquire fx.app layout ~ep:0 with
        | Some a -> reclaim (a :: acc)
        | None -> List.rev acc
      in
      Alcotest.(check (list int)) "app reclaims FIFO" addrs (reclaim []))

(* Model-based property: a random interleaving of releases, engine
   processing steps and acquires behaves exactly like a two-stage FIFO. *)
let queue_model_prop =
  QCheck.Test.make ~name:"buffer queue = two-stage FIFO" ~count:150
    QCheck.(list (int_bound 2))
    (fun ops ->
      let fx = fixture () in
      let layout = Comm_buffer.layout fx.comm in
      run_fx fx (fun () ->
          Buffer_queue.init fx.app layout ~ep:0;
          let to_process = Queue.create () and to_acquire = Queue.create () in
          let next = ref 0 in
          let total = Config.default.Config.total_buffers in
          let ok = ref true in
          List.iter
            (fun op ->
              match op with
              | 0 ->
                  let buf = !next mod total in
                  next := !next + 1;
                  let addr = Layout.buffer_addr layout buf in
                  let modelled_size =
                    Queue.length to_process + Queue.length to_acquire
                  in
                  let result =
                    Buffer_queue.app_release fx.app layout ~ep:0 ~buf_addr:addr
                  in
                  let expect_full =
                    modelled_size >= Config.default.Config.queue_capacity - 1
                  in
                  (match (result, expect_full) with
                  | Ok (), false -> Queue.push addr to_process
                  | Error `Full, true -> ()
                  | Ok (), true | Error `Full, false -> ok := false)
              | 1 -> (
                  match Buffer_queue.engine_peek fx.eng layout ~ep:0 with
                  | Some (a, cursor) ->
                      if Queue.is_empty to_process then ok := false
                      else if Queue.pop to_process <> a then ok := false
                      else begin
                        Buffer_queue.engine_advance fx.eng layout ~ep:0 ~cursor;
                        Queue.push a to_acquire
                      end
                  | None -> if not (Queue.is_empty to_process) then ok := false)
              | _ -> (
                  match Buffer_queue.app_acquire fx.app layout ~ep:0 with
                  | Some a ->
                      if Queue.is_empty to_acquire then ok := false
                      else if Queue.pop to_acquire <> a then ok := false
                  | None -> if not (Queue.is_empty to_acquire) then ok := false))
            ops;
          let s = Buffer_queue.snapshot fx.app layout ~ep:0 in
          !ok
          && Buffer_queue.well_formed s
          && Buffer_queue.to_process s = Queue.length to_process
          && Buffer_queue.to_acquire s = Queue.length to_acquire))

(* --- Msg_buffer --- *)

let test_msg_buffer_header () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  run_fx fx (fun () ->
      let dest = Address.make ~node:3 ~endpoint:4 in
      Msg_buffer.set_dest fx.app layout ~buf:2 dest;
      check_bool "dest roundtrip" true
        (Address.equal dest (Msg_buffer.dest fx.eng layout ~buf:2));
      Msg_buffer.set_state fx.eng layout ~buf:2 Msg_buffer.Complete;
      check_bool "state" true
        (Msg_buffer.state fx.app layout ~buf:2 = Some Msg_buffer.Complete))

let test_msg_buffer_payload_bounds () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  run_fx fx (fun () ->
      let payload = Config.payload_bytes Config.default in
      Msg_buffer.write_payload fx.app layout ~buf:0 (Bytes.create payload);
      Alcotest.check_raises "overrun rejected"
        (Invalid_argument "Msg_buffer: payload range overruns fixed message size")
        (fun () ->
          Msg_buffer.write_payload fx.app layout ~buf:0
            (Bytes.create (payload + 1))))

let test_msg_buffer_payload_roundtrip () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  run_fx fx (fun () ->
      Msg_buffer.write_payload fx.app layout ~buf:1 ~at:8
        (Bytes.of_string "abcdef");
      Alcotest.(check string)
        "at offset" "abcdef"
        (Bytes.to_string (Msg_buffer.read_payload fx.eng layout ~buf:1 ~at:8 6)))

let test_msg_buffer_image_dest () =
  let fx = fixture () in
  let layout = Comm_buffer.layout fx.comm in
  run_fx fx (fun () ->
      let dest = Address.make ~node:1 ~endpoint:2 in
      Msg_buffer.set_dest fx.app layout ~buf:0 dest;
      let pos, len = Msg_buffer.region layout ~buf:0 in
      check "region len" Config.default.Config.message_bytes len;
      let image = Shared_mem.read_bytes (Comm_buffer.mem fx.comm) ~pos ~len in
      check_bool "dest travels in image" true
        (Address.equal dest (Msg_buffer.dest_of_image image)))

(* --- Comm_buffer --- *)

let test_comm_alloc_exhaustion () =
  let fx = fixture () in
  let eps = Config.default.Config.endpoints in
  for _ = 1 to eps do
    match Comm_buffer.alloc_endpoint fx.comm with
    | Some _ -> ()
    | None -> Alcotest.fail "premature exhaustion"
  done;
  check_bool "exhausted" true (Comm_buffer.alloc_endpoint fx.comm = None);
  Comm_buffer.free_endpoint fx.comm 0;
  check_bool "freed is reusable" true (Comm_buffer.alloc_endpoint fx.comm = Some 0)

let test_comm_buffer_pool () =
  let fx = fixture () in
  let total = Config.default.Config.total_buffers in
  check "all free" total (Comm_buffer.free_buffer_count fx.comm);
  let b = Option.get (Comm_buffer.alloc_buffer fx.comm) in
  check "one taken" (total - 1) (Comm_buffer.free_buffer_count fx.comm);
  Comm_buffer.free_buffer fx.comm b;
  check "back" total (Comm_buffer.free_buffer_count fx.comm);
  Alcotest.check_raises "double free"
    (Invalid_argument "Comm_buffer.free_buffer: double free") (fun () ->
      Comm_buffer.free_buffer fx.comm b)

let test_comm_too_small_memory () =
  let mem = Shared_mem.create ~size:64 in
  Alcotest.check_raises "region must fit"
    (Invalid_argument "Comm_buffer.create: region does not fit in node memory")
    (fun () -> ignore (Comm_buffer.create Config.default mem))

let () =
  Alcotest.run "core"
    [
      ( "config",
        [
          Alcotest.test_case "defaults valid" `Quick test_config_defaults_valid;
          Alcotest.test_case "rules" `Quick test_config_rules;
          Alcotest.test_case "payload sizes" `Quick test_config_payload_rules;
        ] );
      ( "address",
        [
          Alcotest.test_case "roundtrip" `Quick test_address_roundtrip;
          Alcotest.test_case "null" `Quick test_address_null;
          QCheck_alcotest.to_alcotest address_roundtrip_prop;
        ] );
      ( "layout",
        [
          Alcotest.test_case "padded disjoint lines" `Quick
            test_layout_padded_disjoint_lines;
          Alcotest.test_case "packed shares lines" `Quick
            test_layout_packed_shares_lines;
          Alcotest.test_case "buffers aligned" `Quick test_layout_buffers_aligned;
          Alcotest.test_case "buffer_of_addr" `Quick test_layout_buffer_of_addr;
          Alcotest.test_case "no field overlap" `Quick
            test_layout_no_field_overlap;
          Alcotest.test_case "regions ordered" `Quick test_layout_regions_ordered;
        ] );
      ( "drop_counter",
        [
          Alcotest.test_case "basic" `Quick test_drop_counter_basic;
          Alcotest.test_case "per endpoint" `Quick test_drop_counter_per_endpoint;
          QCheck_alcotest.to_alcotest drop_counter_no_lost_events_prop;
        ] );
      ( "buffer_queue",
        [
          Alcotest.test_case "empty" `Quick test_queue_empty_initially;
          Alcotest.test_case "cycle" `Quick
            test_queue_release_process_acquire_cycle;
          Alcotest.test_case "full" `Quick test_queue_full_condition;
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          QCheck_alcotest.to_alcotest queue_model_prop;
        ] );
      ( "msg_buffer",
        [
          Alcotest.test_case "header" `Quick test_msg_buffer_header;
          Alcotest.test_case "payload bounds" `Quick
            test_msg_buffer_payload_bounds;
          Alcotest.test_case "payload roundtrip" `Quick
            test_msg_buffer_payload_roundtrip;
          Alcotest.test_case "image dest" `Quick test_msg_buffer_image_dest;
        ] );
      ( "comm_buffer",
        [
          Alcotest.test_case "endpoint exhaustion" `Quick
            test_comm_alloc_exhaustion;
          Alcotest.test_case "buffer pool" `Quick test_comm_buffer_pool;
          Alcotest.test_case "memory fit" `Quick test_comm_too_small_memory;
        ] );
    ]
