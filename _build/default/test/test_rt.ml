(* Tests for the real-time scheduler and semaphores. *)

module Engine = Flipc_sim.Engine
module Sched = Flipc_rt.Sched
module Rt_semaphore = Flipc_rt.Rt_semaphore

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(cpus = 1) () =
  let engine = Engine.create () in
  (engine, Sched.create ~engine ~cpus)

let test_priority_order () =
  let engine, sched = mk () in
  let log = ref [] in
  (* Pin the CPU first so the others queue up and are dispatched by
     priority, not spawn order. *)
  ignore
    (Sched.spawn ~name:"pin" sched ~priority:100 (fun _thr ->
         (* Busy-hold the CPU (no scheduling point) so the others queue. *)
         Engine.delay 10));
  Engine.spawn engine (fun () ->
      List.iter
        (fun p ->
          ignore
            (Sched.spawn sched ~priority:p (fun _thr -> log := p :: !log)))
        [ 1; 5; 3 ]);
  Engine.run engine;
  Alcotest.(check (list int)) "highest first" [ 5; 3; 1 ] (List.rev !log)

let test_fifo_within_priority () =
  let engine, sched = mk () in
  let log = ref [] in
  ignore (Sched.spawn sched ~priority:10 (fun _thr -> Engine.delay 10));
  Engine.spawn engine (fun () ->
      for i = 1 to 4 do
        ignore (Sched.spawn sched ~priority:5 (fun _ -> log := i :: !log))
      done);
  Engine.run engine;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4 ] (List.rev !log)

let test_cpu_limit () =
  let engine, sched = mk ~cpus:2 () in
  let active = ref 0 and peak = ref 0 in
  for _ = 1 to 6 do
    ignore
      (Sched.spawn sched ~priority:1 (fun _thr ->
           incr active;
           if !active > !peak then peak := !active;
           (* Busy work: the CPU stays held for the duration. *)
           Engine.delay 10;
           decr active))
  done;
  Engine.run engine;
  check "peak = cpus" 2 !peak;
  check "none running after" 0 (Sched.running sched)

let test_yield_rotates () =
  let engine, sched = mk () in
  let log = ref [] in
  ignore
    (Sched.spawn ~name:"a" sched ~priority:1 (fun thr ->
         log := "a1" :: !log;
         Sched.yield thr;
         log := "a2" :: !log));
  ignore
    (Sched.spawn ~name:"b" sched ~priority:1 (fun thr ->
         log := "b1" :: !log;
         Sched.yield thr;
         log := "b2" :: !log));
  Engine.run engine;
  Alcotest.(check (list string))
    "yield alternates" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_sleep_releases_cpu () =
  let engine, sched = mk () in
  let log = ref [] in
  ignore
    (Sched.spawn sched ~priority:5 (fun thr ->
         Sched.sleep thr 100;
         log := "sleeper" :: !log));
  ignore (Sched.spawn sched ~priority:1 (fun _ -> log := "worker" :: !log));
  Engine.run engine;
  Alcotest.(check (list string))
    "worker ran during sleep" [ "worker"; "sleeper" ] (List.rev !log)

let test_block_make_ready () =
  let engine, sched = mk () in
  let state = ref "blocked" in
  let thr =
    Sched.spawn sched ~priority:1 (fun thr ->
        Sched.block thr;
        state := "woken")
  in
  Engine.spawn engine (fun () ->
      Engine.delay 50;
      Sched.make_ready thr);
  Engine.run engine;
  Alcotest.(check string) "woken" "woken" !state;
  check "ends at wake time" 50 (Engine.now engine)

let test_wakeup_before_block_not_lost () =
  let engine, sched = mk () in
  let done_ = ref false in
  let thr_cell = ref None in
  ignore
    (Sched.spawn sched ~priority:1 (fun thr ->
         thr_cell := Some thr;
         (* Give the waker a chance to make_ready before we block. *)
         Sched.sleep thr 20;
         Sched.block thr;
         done_ := true));
  Engine.spawn engine (fun () ->
      Engine.delay 5;
      (* Thread is sleeping (not blocked): wakeup must be remembered. *)
      match !thr_cell with
      | Some thr -> Sched.make_ready thr
      | None -> Alcotest.fail "no thread");
  Engine.run engine;
  check_bool "no lost wakeup" true !done_

let test_is_done () =
  let engine, sched = mk () in
  let thr = Sched.spawn sched ~priority:1 (fun _ -> ()) in
  check_bool "not done before run" false (Sched.is_done thr);
  Engine.run engine;
  check_bool "done after" true (Sched.is_done thr)

let test_priority_accessors () =
  let _, sched = mk () in
  let thr = Sched.spawn ~name:"t" sched ~priority:7 (fun _ -> ()) in
  check "priority" 7 (Sched.priority thr);
  Alcotest.(check string) "name" "t" (Sched.name thr);
  Sched.set_priority thr 9;
  check "updated" 9 (Sched.priority thr)

(* --- Rt_semaphore --- *)

let test_sem_initial_value () =
  let engine, sched = mk () in
  let sem = Rt_semaphore.create ~initial:2 sched in
  let acquired = ref 0 in
  ignore
    (Sched.spawn sched ~priority:1 (fun thr ->
         Rt_semaphore.wait sem thr;
         Rt_semaphore.wait sem thr;
         acquired := 2));
  Engine.run engine;
  check "both immediate" 2 !acquired;
  check "value zero" 0 (Rt_semaphore.value sem)

let test_sem_blocks_until_post () =
  let engine, sched = mk () in
  let sem = Rt_semaphore.create sched in
  let woke_at = ref (-1) in
  ignore
    (Sched.spawn sched ~priority:1 (fun thr ->
         Rt_semaphore.wait sem thr;
         woke_at := Engine.now engine));
  Engine.spawn engine (fun () ->
      Engine.delay 30;
      Rt_semaphore.post sem);
  Engine.run engine;
  check "woke at post" 30 !woke_at

let test_sem_priority_wakeup () =
  let engine, sched = mk ~cpus:3 () in
  let sem = Rt_semaphore.create sched in
  let log = ref [] in
  List.iter
    (fun p ->
      ignore
        (Sched.spawn sched ~priority:p (fun thr ->
             Rt_semaphore.wait sem thr;
             log := p :: !log)))
    [ 2; 9; 4 ];
  Engine.spawn engine (fun () ->
      Engine.delay 10;
      for _ = 1 to 3 do
        Rt_semaphore.post sem;
        Engine.delay 10
      done);
  Engine.run engine;
  Alcotest.(check (list int)) "priority order" [ 9; 4; 2 ] (List.rev !log)

let test_sem_try_wait () =
  let _, sched = mk () in
  let sem = Rt_semaphore.create ~initial:1 sched in
  check_bool "first" true (Rt_semaphore.try_wait sem);
  check_bool "second" false (Rt_semaphore.try_wait sem)

let test_sem_counts_posts_while_no_waiters () =
  let engine, sched = mk () in
  let sem = Rt_semaphore.create sched in
  Engine.spawn engine (fun () ->
      Rt_semaphore.post sem;
      Rt_semaphore.post sem);
  Engine.run engine;
  check "accumulated" 2 (Rt_semaphore.value sem);
  let got = ref 0 in
  ignore
    (Sched.spawn sched ~priority:1 (fun thr ->
         Rt_semaphore.wait sem thr;
         Rt_semaphore.wait sem thr;
         got := 2));
  Engine.run engine;
  check "no waiting needed" 2 !got

let () =
  Alcotest.run "rt"
    [
      ( "sched",
        [
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "fifo within priority" `Quick
            test_fifo_within_priority;
          Alcotest.test_case "cpu limit" `Quick test_cpu_limit;
          Alcotest.test_case "yield rotates" `Quick test_yield_rotates;
          Alcotest.test_case "sleep releases cpu" `Quick
            test_sleep_releases_cpu;
          Alcotest.test_case "block/make_ready" `Quick test_block_make_ready;
          Alcotest.test_case "wakeup before block" `Quick
            test_wakeup_before_block_not_lost;
          Alcotest.test_case "is_done" `Quick test_is_done;
          Alcotest.test_case "accessors" `Quick test_priority_accessors;
        ] );
      ( "rt_semaphore",
        [
          Alcotest.test_case "initial value" `Quick test_sem_initial_value;
          Alcotest.test_case "blocks until post" `Quick
            test_sem_blocks_until_post;
          Alcotest.test_case "priority wakeup" `Quick test_sem_priority_wakeup;
          Alcotest.test_case "try_wait" `Quick test_sem_try_wait;
          Alcotest.test_case "posts accumulate" `Quick
            test_sem_counts_posts_while_no_waiters;
        ] );
    ]
