(* Tests for the memory-system simulator: backing store, caches, MESI bus,
   timed ports. *)

module Engine = Flipc_sim.Engine
module Cost_model = Flipc_memsim.Cost_model
module Shared_mem = Flipc_memsim.Shared_mem
module Cache = Flipc_memsim.Cache
module Bus = Flipc_memsim.Bus
module Mem_port = Flipc_memsim.Mem_port

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Shared_mem --- *)

let test_mem_roundtrip () =
  let m = Shared_mem.create ~size:256 in
  Shared_mem.store_int m 0 42;
  Shared_mem.store_int m 252 7;
  check "word 0" 42 (Shared_mem.load_int m 0);
  check "last word" 7 (Shared_mem.load_int m 252);
  check "unwritten zero" 0 (Shared_mem.load_int m 100)

let test_mem_bounds () =
  let m = Shared_mem.create ~size:64 in
  Alcotest.check_raises "oob"
    (Invalid_argument "Shared_mem: address 64 out of bounds") (fun () ->
      ignore (Shared_mem.load_int m 64));
  Alcotest.check_raises "misaligned"
    (Invalid_argument "Shared_mem: address 2 misaligned") (fun () ->
      ignore (Shared_mem.load_int m 2))

let test_mem_blocks () =
  let m = Shared_mem.create ~size:128 in
  Shared_mem.write_bytes m ~pos:16 (Bytes.of_string "hello world!");
  Alcotest.(check string)
    "read back" "hello world!"
    (Bytes.to_string (Shared_mem.read_bytes m ~pos:16 ~len:12));
  Shared_mem.blit m ~src:16 ~dst:64 ~len:12;
  Alcotest.(check string)
    "blit copy" "hello world!"
    (Bytes.to_string (Shared_mem.read_bytes m ~pos:64 ~len:12));
  Shared_mem.fill m ~pos:16 ~len:4 'x';
  Alcotest.(check string)
    "fill" "xxxxo"
    (Bytes.to_string (Shared_mem.read_bytes m ~pos:16 ~len:5))

let test_mem_store_int_range () =
  let m = Shared_mem.create ~size:8 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Shared_mem.store_int: out of range") (fun () ->
      Shared_mem.store_int m 0 (-1))

(* --- Cache --- *)

let test_cache_geometry () =
  let c = Cache.create ~name:"t" () in
  check "line bytes" 32 (Cache.line_bytes c);
  check "line addr" 64 (Cache.line_addr c 95);
  check "line addr exact" 64 (Cache.line_addr c 64)

let test_cache_insert_find () =
  let c = Cache.create ~name:"t" () in
  check_bool "miss initially" true (Cache.find c ~line:0 = None);
  ignore (Cache.insert c ~line:0 Cache.Exclusive);
  check_bool "hit after insert" true (Cache.find c ~line:0 = Some Cache.Exclusive);
  Cache.set_state c ~line:0 Cache.Modified;
  check_bool "state updated" true (Cache.find c ~line:0 = Some Cache.Modified)

let test_cache_invalidate () =
  let c = Cache.create ~name:"t" () in
  ignore (Cache.insert c ~line:32 Cache.Shared);
  check_bool "present" true (Cache.invalidate c ~line:32 = Some Cache.Shared);
  check_bool "gone" true (Cache.find c ~line:32 = None);
  check_bool "absent invalidate" true (Cache.invalidate c ~line:32 = None)

let test_cache_eviction_lru () =
  (* 2 lines x 1 set: tiny cache to force eviction. *)
  let c = Cache.create ~size_bytes:64 ~line_bytes:32 ~assoc:2 ~name:"t" () in
  ignore (Cache.insert c ~line:0 Cache.Exclusive);
  ignore (Cache.insert c ~line:64 Cache.Exclusive);
  (* Touch line 0 so 64 is LRU. *)
  ignore (Cache.find c ~line:0);
  match Cache.insert c ~line:128 Cache.Modified with
  | Some (64, Cache.Exclusive) ->
      check "evictions" 1 (Cache.stats c).Cache.evictions
  | _ -> Alcotest.fail "expected LRU eviction of line 64"

let test_cache_dirty_eviction_counts_writeback () =
  let c = Cache.create ~size_bytes:32 ~line_bytes:32 ~assoc:1 ~name:"t" () in
  ignore (Cache.insert c ~line:0 Cache.Modified);
  ignore (Cache.insert c ~line:32 Cache.Exclusive);
  check "writeback" 1 (Cache.stats c).Cache.writebacks

let test_cache_flush () =
  let c = Cache.create ~name:"t" () in
  ignore (Cache.insert c ~line:0 Cache.Modified);
  ignore (Cache.insert c ~line:32 Cache.Shared);
  check "dirty flushed" 1 (Cache.flush c);
  check_bool "all gone" true (Cache.find c ~line:0 = None)

let test_cache_set_conflict () =
  (* Two lines mapping to the same set coexist up to the associativity. *)
  let c = Cache.create ~size_bytes:128 ~line_bytes:32 ~assoc:2 ~name:"t" () in
  (* 2 sets; lines 0 and 64 share set 0; line 128 also maps there. *)
  ignore (Cache.insert c ~line:0 Cache.Exclusive);
  ignore (Cache.insert c ~line:64 Cache.Exclusive);
  check_bool "both ways used" true
    (Cache.find c ~line:0 <> None && Cache.find c ~line:64 <> None);
  ignore (Cache.insert c ~line:128 Cache.Exclusive);
  let present =
    List.filter (fun l -> Cache.find c ~line:l <> None) [ 0; 64; 128 ]
  in
  check "associativity bounds residency" 2 (List.length present);
  (* The untouched other set is unaffected. *)
  ignore (Cache.insert c ~line:32 Cache.Shared);
  check_bool "other set intact" true (Cache.find c ~line:32 = Some Cache.Shared)

(* --- Bus / MESI --- *)

let mk_bus ?(n = 2) () =
  let bus = Bus.create ~cost:Cost_model.paragon () in
  let caches = Array.init n (fun i -> Cache.create ~name:(Fmt.str "c%d" i) ()) in
  Array.iter (fun c -> ignore (Bus.attach bus c)) caches;
  (bus, caches)

let state c line = Cache.find c ~line

let test_bus_read_exclusive_then_shared () =
  let bus, caches = mk_bus () in
  ignore (Bus.read bus ~port:0 ~addr:64);
  check_bool "E on sole read" true (state caches.(0) 64 = Some Cache.Exclusive);
  ignore (Bus.read bus ~port:1 ~addr:64);
  check_bool "both S" true
    (state caches.(0) 64 = Some Cache.Shared
    && state caches.(1) 64 = Some Cache.Shared)

let test_bus_write_invalidates () =
  let bus, caches = mk_bus () in
  ignore (Bus.read bus ~port:0 ~addr:0);
  ignore (Bus.read bus ~port:1 ~addr:0);
  ignore (Bus.write bus ~port:0 ~addr:0);
  check_bool "writer M" true (state caches.(0) 0 = Some Cache.Modified);
  check_bool "other I" true (state caches.(1) 0 = None);
  check "inval received" 1 (Cache.stats caches.(1)).Cache.invalidations_received;
  check "inval caused" 1 (Cache.stats caches.(0)).Cache.invalidations_caused

let test_bus_remote_dirty_read_costs_more () =
  let bus, caches = mk_bus () in
  ignore (Bus.write bus ~port:0 ~addr:0);
  let cost = Bus.read bus ~port:1 ~addr:0 in
  check "remote dirty cost" Cost_model.paragon.Cost_model.remote_dirty_ns cost;
  check_bool "owner downgraded" true (state caches.(0) 0 = Some Cache.Shared);
  check "owner writeback" 1 (Cache.stats caches.(0)).Cache.writebacks

let test_bus_write_hit_cheap () =
  let bus, _ = mk_bus () in
  ignore (Bus.write bus ~port:0 ~addr:0);
  let cost = Bus.write bus ~port:0 ~addr:0 in
  check "M write is a hit" Cost_model.paragon.Cost_model.cache_hit_ns cost

let test_bus_locked_rmw_no_residency () =
  let bus, caches = mk_bus () in
  ignore (Bus.read bus ~port:0 ~addr:0);
  ignore (Bus.read bus ~port:1 ~addr:0);
  let cost = Bus.locked_rmw bus ~port:0 ~addr:0 in
  check "bus-locked cost" Cost_model.paragon.Cost_model.bus_locked_rmw_ns cost;
  check_bool "no residency anywhere" true
    (state caches.(0) 0 = None && state caches.(1) 0 = None);
  check "rmw counted" 1 (Cache.stats caches.(0)).Cache.locked_rmws

let test_bus_dma_write_invalidates () =
  let bus, caches = mk_bus () in
  ignore (Bus.read bus ~port:0 ~addr:0);
  ignore (Bus.read bus ~port:0 ~addr:32);
  let stall = Bus.dma_access bus ~write:true ~addr:0 ~len:64 in
  check "clean lines no stall" 0 stall;
  check_bool "both lines invalidated" true
    (state caches.(0) 0 = None && state caches.(0) 32 = None)

let test_bus_dma_read_snoops_dirty () =
  let bus, caches = mk_bus () in
  ignore (Bus.write bus ~port:0 ~addr:0);
  let stall = Bus.dma_access bus ~write:false ~addr:0 ~len:32 in
  check "writeback stall" Cost_model.paragon.Cost_model.writeback_ns stall;
  check_bool "owner downgraded to S" true (state caches.(0) 0 = Some Cache.Shared)

let test_bus_invalidations_in_range () =
  let bus, _ = mk_bus () in
  ignore (Bus.read bus ~port:1 ~addr:0);
  ignore (Bus.write bus ~port:0 ~addr:0);
  ignore (Bus.read bus ~port:1 ~addr:64);
  ignore (Bus.write bus ~port:0 ~addr:64);
  check "both lines counted" 2 (Bus.invalidations_in bus ~lo:0 ~hi:96);
  check "range filter" 1 (Bus.invalidations_in bus ~lo:64 ~hi:96);
  (match Bus.hot_lines bus ~limit:1 with
  | [ (_, 1) ] -> ()
  | _ -> Alcotest.fail "hot line count");
  Bus.reset_stats bus;
  check "reset" 0 (Bus.invalidations_in bus ~lo:0 ~hi:96)

(* MESI invariant: at most one Modified holder per line, and a Modified
   holder excludes all other states. Checked over random operation
   sequences. *)
let mesi_invariant_prop =
  QCheck.Test.make ~name:"MESI single-writer invariant" ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 7)))
    (fun ops ->
      let bus, caches = mk_bus ~n:3 () in
      List.for_all
        (fun (port, line_idx) ->
          let addr = line_idx * 32 in
          (match line_idx mod 3 with
          | 0 -> ignore (Bus.read bus ~port ~addr)
          | 1 -> ignore (Bus.write bus ~port ~addr)
          | _ -> ignore (Bus.locked_rmw bus ~port ~addr));
          (* Check the invariant on every line after each step. *)
          List.for_all
            (fun line ->
              let states =
                Array.to_list caches
                |> List.filter_map (fun c -> Cache.find c ~line)
              in
              let modified =
                List.length (List.filter (fun s -> s = Cache.Modified) states)
              in
              let exclusive =
                List.length (List.filter (fun s -> s = Cache.Exclusive) states)
              in
              if modified > 0 || exclusive > 0 then List.length states = 1
              else true)
            [ 0; 32; 64; 96; 128; 160; 192; 224 ])
        ops)

(* --- Mem_port --- *)

let mk_port () =
  let engine = Engine.create () in
  let mem = Shared_mem.create ~size:4096 in
  let bus = Bus.create ~cost:Cost_model.paragon () in
  let cache = Cache.create ~name:"cpu" () in
  let port = Mem_port.create ~engine ~mem ~bus ~cache ~name:"cpu" in
  (engine, port)

let run_in engine f =
  let result = ref None in
  Engine.spawn engine (fun () -> result := Some (f ()));
  Engine.run engine;
  Option.get !result

let test_port_charges_time () =
  let engine, port = mk_port () in
  run_in engine (fun () ->
      let t0 = Engine.now engine in
      Mem_port.store port 0 5;
      let t1 = Engine.now engine in
      check_bool "store charged" true (t1 > t0);
      check "value stored" 5 (Mem_port.load port 0);
      let t2 = Engine.now engine in
      (* Second access to the same line should be a cheap hit. *)
      ignore (Mem_port.load port 0);
      let t3 = Engine.now engine in
      check "hit cost" Cost_model.paragon.Cost_model.cache_hit_ns (t3 - t2);
      check_bool "miss dearer than hit" true (t1 - t0 > t3 - t2))

let test_port_test_and_set () =
  let engine, port = mk_port () in
  run_in engine (fun () ->
      check_bool "acquires free lock" true (Mem_port.test_and_set port 64);
      check_bool "fails held lock" false (Mem_port.test_and_set port 64);
      Mem_port.clear port 64;
      check_bool "reacquires" true (Mem_port.test_and_set port 64))

let test_port_bytes () =
  let engine, port = mk_port () in
  run_in engine (fun () ->
      Mem_port.write_bytes port ~pos:128 (Bytes.of_string "payload");
      Alcotest.(check string)
        "roundtrip" "payload"
        (Bytes.to_string (Mem_port.read_bytes port ~pos:128 ~len:7)))

let test_port_instr () =
  let engine, port = mk_port () in
  run_in engine (fun () ->
      let t0 = Engine.now engine in
      Mem_port.instr port 10;
      check "10 instrs" (10 * Cost_model.paragon.Cost_model.instr_ns)
        (Engine.now engine - t0))

let test_port_peek_poke_untimed () =
  let engine, port = mk_port () in
  Mem_port.poke port 0 99;
  check "poke visible" 99 (Mem_port.peek port 0);
  ignore engine

let () =
  Alcotest.run "memsim"
    [
      ( "shared_mem",
        [
          Alcotest.test_case "roundtrip" `Quick test_mem_roundtrip;
          Alcotest.test_case "bounds" `Quick test_mem_bounds;
          Alcotest.test_case "blocks" `Quick test_mem_blocks;
          Alcotest.test_case "store range" `Quick test_mem_store_int_range;
        ] );
      ( "cache",
        [
          Alcotest.test_case "geometry" `Quick test_cache_geometry;
          Alcotest.test_case "insert/find" `Quick test_cache_insert_find;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "LRU eviction" `Quick test_cache_eviction_lru;
          Alcotest.test_case "dirty eviction" `Quick
            test_cache_dirty_eviction_counts_writeback;
          Alcotest.test_case "flush" `Quick test_cache_flush;
          Alcotest.test_case "set conflict" `Quick test_cache_set_conflict;
        ] );
      ( "bus",
        [
          Alcotest.test_case "read E then S" `Quick
            test_bus_read_exclusive_then_shared;
          Alcotest.test_case "write invalidates" `Quick
            test_bus_write_invalidates;
          Alcotest.test_case "remote dirty read" `Quick
            test_bus_remote_dirty_read_costs_more;
          Alcotest.test_case "write hit cheap" `Quick test_bus_write_hit_cheap;
          Alcotest.test_case "locked rmw" `Quick
            test_bus_locked_rmw_no_residency;
          Alcotest.test_case "dma write" `Quick test_bus_dma_write_invalidates;
          Alcotest.test_case "dma read snoop" `Quick
            test_bus_dma_read_snoops_dirty;
          Alcotest.test_case "invalidation ranges" `Quick
            test_bus_invalidations_in_range;
          QCheck_alcotest.to_alcotest mesi_invariant_prop;
        ] );
      ( "mem_port",
        [
          Alcotest.test_case "charges time" `Quick test_port_charges_time;
          Alcotest.test_case "test and set" `Quick test_port_test_and_set;
          Alcotest.test_case "bytes" `Quick test_port_bytes;
          Alcotest.test_case "instr" `Quick test_port_instr;
          Alcotest.test_case "peek/poke" `Quick test_port_peek_poke_untimed;
        ] );
    ]
