(* Tests for the baseline system models: the comparison-table shape must
   hold structurally (who wins, in what order, and why). *)

module Nx = Flipc_baselines.Nx
module Pam = Flipc_baselines.Pam
module Sunmos = Flipc_baselines.Sunmos
module Pingpong = Flipc_workload.Pingpong

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf msg lo hi v = check_bool (Fmt.str "%s: %.1f in [%.1f, %.1f]" msg v lo hi) true (v >= lo && v <= hi)

let test_nx_medium_latency () =
  checkf "NX ~46us" 40. 52. (Nx.one_way_latency_us ~payload_bytes:120 ~exchanges:40 ())

let test_nx_large_rejected () =
  Alcotest.check_raises "rendezvous path"
    (Invalid_argument "Nx.one_way_latency_us: use bandwidth_mb_s for large messages")
    (fun () -> ignore (Nx.one_way_latency_us ~payload_bytes:100_000 ~exchanges:1 ()))

let test_nx_bandwidth () =
  checkf "NX 1MB ~140MB/s" 130. 145. (Nx.bandwidth_mb_s ~bytes:1_000_000 ());
  check_bool "small transfers waste setup" true
    (Nx.bandwidth_mb_s ~bytes:4_096 () < 60.)

let test_pam_fragments () =
  check "20B one packet" 1 (Pam.fragments Pam.default_config 20);
  check "21B two" 2 (Pam.fragments Pam.default_config 21);
  check "120B six" 6 (Pam.fragments Pam.default_config 120);
  check "0B still one" 1 (Pam.fragments Pam.default_config 0)

let test_pam_small_fast () =
  checkf "PAM 20B < 10us" 6. 10. (Pam.one_way_latency_us ~payload_bytes:20 ~exchanges:40 ())

let test_pam_medium_slow () =
  checkf "PAM 120B ~26us" 22. 30. (Pam.one_way_latency_us ~payload_bytes:120 ~exchanges:40 ())

let test_pam_bulk_bandwidth () =
  checkf "PAM bulk" 160. 180. (Pam.bulk_bandwidth_mb_s ~bytes:1_000_000 ())

let test_sunmos_latencies () =
  checkf "SUNMOS 120B ~28us" 24. 32.
    (Sunmos.one_way_latency_us ~payload_bytes:120 ~exchanges:40 ());
  check_bool "zero-length optimized" true
    (Sunmos.one_way_latency_us ~payload_bytes:0 ~exchanges:40 ()
    < Sunmos.one_way_latency_us ~payload_bytes:56 ~exchanges:40 ())

let test_sunmos_bandwidth () =
  checkf "SUNMOS 4MB ~160MB/s" 150. 162. (Sunmos.bandwidth_mb_s ~bytes:4_000_000 ());
  check_bool "monotone in size" true
    (Sunmos.bandwidth_mb_s ~bytes:4_000_000 ()
    > Sunmos.bandwidth_mb_s ~bytes:100_000 ())

(* The paper's comparison table ordering at 120 bytes:
   FLIPC (16.2) < PAM (26) < SUNMOS (28) < NX (46). *)
let test_comparison_ordering () =
  let flipc =
    (Pingpong.measure ~payload_bytes:120 ~exchanges:100 ()).Pingpong
    .aggregate_one_way_us
  in
  let pam = Pam.one_way_latency_us ~payload_bytes:120 ~exchanges:40 () in
  let sunmos = Sunmos.one_way_latency_us ~payload_bytes:120 ~exchanges:40 () in
  let nx = Nx.one_way_latency_us ~payload_bytes:120 ~exchanges:40 () in
  check_bool
    (Fmt.str "flipc %.1f < pam %.1f < sunmos %.1f < nx %.1f" flipc pam sunmos nx)
    true
    (flipc < pam && pam < sunmos && sunmos < nx)

(* At very small payloads the order flips: PAM wins (it is optimized for
   20-byte messages; FLIPC still pays for a full 64-byte frame). *)
let test_small_message_crossover () =
  let flipc_small =
    (Pingpong.measure ~payload_bytes:20 ~exchanges:100 ()).Pingpong
    .aggregate_one_way_us
  in
  let pam_small = Pam.one_way_latency_us ~payload_bytes:20 ~exchanges:40 () in
  check_bool
    (Fmt.str "pam %.1f beats flipc %.1f at 20B" pam_small flipc_small)
    true
    (pam_small < flipc_small)

(* Bandwidth story: SUNMOS best software throughput, NX above 140, both
   below the 200 MB/s hardware peak. *)
let test_bandwidth_story () =
  let nx = Nx.bandwidth_mb_s ~bytes:8_000_000 () in
  let sunmos = Sunmos.bandwidth_mb_s ~bytes:8_000_000 () in
  check_bool "sunmos > nx" true (sunmos > nx);
  check_bool "below hw peak" true (sunmos < 200. && nx < 200.);
  check_bool "nx over 140" true (nx > 139.)

module Express = Flipc_baselines.Express

(* Express Messages: internal knob comparisons only (different machine
   than the Paragon; no cross-machine numbers exist in the paper). *)
let em ~buffer_mgmt ~delivery =
  Express.one_way_latency_us ~buffer_mgmt ~delivery ~payload_bytes:120
    ~exchanges:20 ()

let test_express_syscall_tax () =
  let syscall = em ~buffer_mgmt:`Syscall ~delivery:`Polling in
  let shared = em ~buffer_mgmt:`Shared ~delivery:`Polling in
  (* Two kernel crossings per one-way path; FLIPC's shared-structure
     management removes them. *)
  check_bool
    (Fmt.str "syscall mgmt dearer: %.0f vs %.0f us" syscall shared)
    true
    (syscall > shared +. 50.)

let test_express_interrupt_tax () =
  let interrupt = em ~buffer_mgmt:`Shared ~delivery:`Interrupt in
  let polling = em ~buffer_mgmt:`Shared ~delivery:`Polling in
  check_bool "interrupt delivery dearer than polling" true
    (interrupt > polling +. 50.)

let test_express_era_magnitude () =
  let v = em ~buffer_mgmt:`Syscall ~delivery:`Polling in
  (* Hundreds of microseconds on a 16 MHz 386 with 2.8 MB/s links. *)
  check_bool (Fmt.str "era magnitude: %.0f us" v) true (v > 100. && v < 1000.)

let () =
  Alcotest.run "baselines"
    [
      ( "nx",
        [
          Alcotest.test_case "medium latency" `Quick test_nx_medium_latency;
          Alcotest.test_case "large rejected" `Quick test_nx_large_rejected;
          Alcotest.test_case "bandwidth" `Quick test_nx_bandwidth;
        ] );
      ( "pam",
        [
          Alcotest.test_case "fragments" `Quick test_pam_fragments;
          Alcotest.test_case "small fast" `Quick test_pam_small_fast;
          Alcotest.test_case "medium slow" `Quick test_pam_medium_slow;
          Alcotest.test_case "bulk bandwidth" `Quick test_pam_bulk_bandwidth;
        ] );
      ( "sunmos",
        [
          Alcotest.test_case "latencies" `Quick test_sunmos_latencies;
          Alcotest.test_case "bandwidth" `Quick test_sunmos_bandwidth;
        ] );
      ( "express",
        [
          Alcotest.test_case "syscall tax" `Quick test_express_syscall_tax;
          Alcotest.test_case "interrupt tax" `Quick test_express_interrupt_tax;
          Alcotest.test_case "era magnitude" `Quick test_express_era_magnitude;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "ordering at 120B" `Quick test_comparison_ordering;
          Alcotest.test_case "small-message crossover" `Quick
            test_small_message_crossover;
          Alcotest.test_case "bandwidth story" `Quick test_bandwidth_story;
        ] );
    ]
