lib/bulk/bulk.ml: Bytes Flipc Flipc_memsim Flipc_net Flipc_sim Float Hashtbl Int32
