lib/bulk/bulk.mli: Bytes Flipc
