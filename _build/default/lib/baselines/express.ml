module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Hypercube = Flipc_net.Hypercube
module Nic = Flipc_net.Nic
module Packet = Flipc_net.Packet

type config = {
  user_op_ns : int;
  syscall_ns : int;
  protocol_ns : int;
  poll_detect_ns : int;
  interrupt_ns : int;
  copy_ns_per_byte : float;
}

let default_config =
  {
    user_op_ns = 3_000;
    syscall_ns = 35_000;
    protocol_ns = 20_000;
    poll_detect_ns = 15_000;
    interrupt_ns = 90_000;
    copy_ns_per_byte = 60.0;
  }

let copy_ns config len =
  int_of_float (Float.round (float_of_int len *. config.copy_ns_per_byte))

(* Buffer management around each transfer: Express Messages took a system
   call per buffer operation; the FLIPC-style alternative is a user-level
   wait-free structure. One buffer operation on each side per message
   (provide/queue on send, reclaim/repost on receive). *)
let buffer_mgmt_ns config = function
  | `Syscall -> config.syscall_ns
  | `Shared -> config.user_op_ns

let send config ~buffer_mgmt payload_bytes nic ~dst =
  Sim.delay (buffer_mgmt_ns config buffer_mgmt);
  Sim.delay config.protocol_ns;
  Sim.delay (copy_ns config payload_bytes);
  Nic.send nic
    (Packet.make ~src:(Nic.node nic) ~dst ~protocol:Packet.Raw
       (Bytes.create payload_bytes))

let receive config ~buffer_mgmt ~delivery nic =
  let p = Mailbox.take (Nic.rx_queue nic Packet.Raw) in
  (match delivery with
  | `Polling -> Sim.delay config.poll_detect_ns
  | `Interrupt -> Sim.delay config.interrupt_ns);
  Sim.delay config.protocol_ns;
  Sim.delay (copy_ns config (Bytes.length p.Packet.payload));
  Sim.delay (buffer_mgmt_ns config buffer_mgmt)

let one_way_latency_us ?(config = default_config) ~buffer_mgmt ~delivery
    ~payload_bytes ~exchanges () =
  let sim = Sim.create () in
  let topology = Hypercube.create ~dims:3 in
  let fabric =
    Hypercube.fabric ~engine:sim ~topology ~config:Hypercube.ipsc2_config
  in
  let nics =
    Array.init (Hypercube.node_count topology) (fun node ->
        Nic.create ~engine:sim ~fabric ~node)
  in
  let samples = ref [] in
  let warmup = 2 in
  let rounds = warmup + exchanges in
  Sim.spawn ~name:"em-echo" sim (fun () ->
      for _ = 1 to rounds do
        receive config ~buffer_mgmt ~delivery nics.(1);
        send config ~buffer_mgmt payload_bytes nics.(1) ~dst:0
      done);
  Sim.spawn ~name:"em-client" sim (fun () ->
      for round = 1 to rounds do
        let t0 = Sim.now sim in
        send config ~buffer_mgmt payload_bytes nics.(0) ~dst:1;
        receive config ~buffer_mgmt ~delivery nics.(0);
        if round > warmup then
          samples := float_of_int (Sim.now sim - t0) /. 1000. :: !samples
      done);
  Sim.run sim;
  Flipc_stats.Summary.mean !samples /. 2.
