(** Model of Paragon Active Messages (Brewer et al., "Remote Queues").

    Structure: a user-level active-messages facility carrying fixed 28-byte
    packets (8 bytes of header, 20 of application payload), delivered by
    polling and dispatched to a handler whose address rides in the message;
    plus a complementary bulk transport doing direct remote-memory reads
    and writes. Optimized for very small messages: a 20-byte message is
    copied to/from internal structures at almost zero cost and needs no
    application buffer management.

    Payloads larger than 20 bytes must be fragmented, one handler dispatch
    per fragment — which is why PAM's 120-byte latency (26 us in the
    paper's comparison) loses to FLIPC's 16.2 despite winning at 20 bytes.
    A credit window (as in PAM's window-based flow control) throttles
    fragment trains. *)

type config = {
  frag_payload : int;  (** application bytes per packet (20) *)
  frame_bytes : int;  (** fixed wire packet size (28) *)
  sender_per_frag_ns : int;  (** user-level injection cost per fragment *)
  handler_per_frag_ns : int;  (** handler dispatch + run per fragment *)
  poll_detect_ns : int;  (** mean polling delay detecting first fragment *)
  deliver_ns : int;  (** final hand-off to application code *)
  window : int;  (** credit window (fragments in flight) *)
  credit_rtt_ns : int;  (** stall per window turn-around *)
  bulk_setup_ns : int;  (** bulk remote-memory transfer setup *)
  bulk_ns_per_byte : float;  (** 5.7 ns/B = 175 MB/s *)
}

val default_config : config

(** Fragments needed for a payload. *)
val fragments : config -> int -> int

val one_way_latency_us :
  ?config:config -> payload_bytes:int -> exchanges:int -> unit -> float

(** Bulk (remote-memory) transfer data rate. *)
val bulk_bandwidth_mb_s : ?config:config -> bytes:int -> unit -> float
