module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Nic = Flipc_net.Nic
module Packet = Flipc_net.Packet

type config = {
  sender_fixed_ns : int;
  receiver_fixed_ns : int;
  per_byte_ns : float;
  zero_len_fixed_ns : int;
}

let default_config =
  {
    sender_fixed_ns = 12_500;
    receiver_fixed_ns = 14_000;
    per_byte_ns = 1.25;
    zero_len_fixed_ns = 18_000;
  }

let send config payload_bytes nic ~dst =
  (* The whole message goes as one packet, however large; the wire model
     serializes it on the injection link for its full duration. *)
  if payload_bytes = 0 then Sim.delay (config.zero_len_fixed_ns / 2)
  else Sim.delay config.sender_fixed_ns;
  Nic.send nic
    (Packet.make ~src:(Nic.node nic) ~dst ~protocol:Packet.Sunmos
       (Bytes.create payload_bytes))

let receive config nic =
  let p = Mailbox.take (Nic.rx_queue nic Packet.Sunmos) in
  let len = Bytes.length p.Packet.payload in
  if len = 0 then Sim.delay (config.zero_len_fixed_ns / 2)
  else begin
    Sim.delay config.receiver_fixed_ns;
    Sim.delay (int_of_float (Float.round (float_of_int len *. config.per_byte_ns)))
  end

let one_way_latency_us ?(config = default_config) ~payload_bytes ~exchanges () =
  let env = Harness.mesh_env () in
  let samples =
    Harness.pingpong ~env ~node_a:0 ~node_b:1 ~exchanges ~warmup:2
      ~send:(send config payload_bytes)
      ~receive:(receive config)
  in
  Harness.one_way_us samples

let bandwidth_mb_s ?(config = default_config) ~bytes () =
  (* Streaming rate: fixed ends amortize away; the per-byte software cost
     adds to the 5 ns/B wire for an asymptote near 160 MB/s. *)
  let ns =
    float_of_int (config.sender_fixed_ns + config.receiver_fixed_ns)
    +. (float_of_int bytes *. (config.per_byte_ns +. 5.0))
  in
  float_of_int bytes /. ns *. 1000.
