module Sim = Flipc_sim.Engine
module Topology = Flipc_net.Topology
module Mesh = Flipc_net.Mesh
module Fabric = Flipc_net.Fabric
module Nic = Flipc_net.Nic

type env = { sim : Sim.t; fabric : Fabric.t; nics : Nic.t array }

let mesh_env ?(cols = 4) ?(rows = 4) ?(mesh_config = Mesh.paragon_config) () =
  let sim = Sim.create () in
  let topology = Topology.create ~cols ~rows in
  let fabric = Mesh.create ~engine:sim ~topology ~config:mesh_config in
  let nics =
    Array.init (Topology.node_count topology) (fun node ->
        Nic.create ~engine:sim ~fabric ~node)
  in
  { sim; fabric; nics }

let pingpong ~env ~node_a ~node_b ~exchanges ~warmup ~send ~receive =
  let samples = ref [] in
  let rounds = warmup + exchanges in
  Sim.spawn ~name:"baseline-echo" env.sim (fun () ->
      let nic = env.nics.(node_b) in
      for _ = 1 to rounds do
        receive nic;
        send nic ~dst:node_a
      done);
  Sim.spawn ~name:"baseline-client" env.sim (fun () ->
      let nic = env.nics.(node_a) in
      for round = 1 to rounds do
        let t0 = Sim.now env.sim in
        send nic ~dst:node_b;
        receive nic;
        let t1 = Sim.now env.sim in
        if round > warmup then
          samples := float_of_int (t1 - t0) /. 1000. :: !samples
      done);
  Sim.run env.sim;
  List.rev !samples

let one_way_us samples =
  Flipc_stats.Summary.mean samples /. 2.
