module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Nic = Flipc_net.Nic
module Packet = Flipc_net.Packet

type config = {
  frag_payload : int;
  frame_bytes : int;
  sender_per_frag_ns : int;
  handler_per_frag_ns : int;
  poll_detect_ns : int;
  deliver_ns : int;
  window : int;
  credit_rtt_ns : int;
  bulk_setup_ns : int;
  bulk_ns_per_byte : float;
}

let default_config =
  {
    frag_payload = 20;
    frame_bytes = 28;
    sender_per_frag_ns = 1_000;
    handler_per_frag_ns = 3_300;
    poll_detect_ns = 4_000;
    deliver_ns = 600;
    window = 4;
    credit_rtt_ns = 2_000;
    bulk_setup_ns = 15_000;
    bulk_ns_per_byte = 5.7;
  }

let fragments config payload_bytes =
  max 1 ((payload_bytes + config.frag_payload - 1) / config.frag_payload)

let send config payload_bytes nic ~dst =
  let frags = fragments config payload_bytes in
  for i = 0 to frags - 1 do
    (* Window flow control: after each full window, stall for the credit
       return before injecting more. *)
    if i > 0 && i mod config.window = 0 then Sim.delay config.credit_rtt_ns;
    Sim.delay config.sender_per_frag_ns;
    Nic.send nic
      (Packet.make ~src:(Nic.node nic) ~dst ~protocol:Packet.Pam ~seq:i
         ~tag:frags
         (Bytes.create (config.frame_bytes - Packet.header_bytes)))
  done

let receive config nic =
  let queue = Nic.rx_queue nic Packet.Pam in
  let first = Mailbox.take queue in
  (* Polling discovers the first fragment after (on average) half a poll
     loop; the handler then runs once per fragment. *)
  Sim.delay config.poll_detect_ns;
  Sim.delay config.handler_per_frag_ns;
  let total = first.Packet.tag in
  for _ = 2 to total do
    let _ = Mailbox.take queue in
    Sim.delay config.handler_per_frag_ns
  done;
  Sim.delay config.deliver_ns

let one_way_latency_us ?(config = default_config) ~payload_bytes ~exchanges () =
  let env = Harness.mesh_env () in
  let samples =
    Harness.pingpong ~env ~node_a:0 ~node_b:1 ~exchanges ~warmup:2
      ~send:(send config payload_bytes)
      ~receive:(receive config)
  in
  Harness.one_way_us samples

let bulk_bandwidth_mb_s ?(config = default_config) ~bytes () =
  let ns =
    float_of_int config.bulk_setup_ns
    +. (float_of_int bytes *. config.bulk_ns_per_byte)
  in
  float_of_int bytes /. ns *. 1000.
