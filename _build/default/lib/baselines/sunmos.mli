(** Model of SUNMOS (Sandia/UNM OS; Wheat et al., PUMA).

    Structure: a single-application operating system that optimizes large
    messages (and zero-length messages) for numerical computing. Its basic
    protocol sends even multi-megabyte messages as a {e single packet},
    occupying the interconnect path for the whole transfer — great for
    bandwidth (approaching 160 MB/s, the best software throughput on the
    Paragon), poor for medium-message latency (28 us at 120 bytes) and a
    responsiveness hazard in a real-time setting, both of which the paper
    points out. *)

type config = {
  sender_fixed_ns : int;
  receiver_fixed_ns : int;
  per_byte_ns : float;  (** software per-byte cost on top of the wire *)
  zero_len_fixed_ns : int;  (** special-cased zero-length messages *)
}

val default_config : config

val one_way_latency_us :
  ?config:config -> payload_bytes:int -> exchanges:int -> unit -> float

val bandwidth_mb_s : ?config:config -> bytes:int -> unit -> float
