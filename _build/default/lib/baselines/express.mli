(** Model of Express Messages (Lee, UW TR 93-12-06), the medium-message
    system on the iPSC/2 hypercube that the paper credits as its closest
    ancestor: it "recognized the distinction among small, medium, and
    large messages, and also used an aggressive optimistic transfer
    protocol for medium messages".

    The paper names three structural differences from FLIPC, each modelled
    here as a knob so the enhancement FLIPC made can be quantified:

    - fixed-size buffers managed "via page mapping techniques instead of a
      shared memory buffer", with "system calls ... used for buffer
      management in contrast to the shared data structure implementation
      in FLIPC" — [buffer_mgmt] selects a kernel trap per buffer
      operation ([`Syscall]) or the FLIPC-style wait-free shared
      structure ([`Shared]);
    - "a shared control bit was used [to] switch between polling and
      interrupt-based message delivery" — [delivery];
    - user-level threading with an interrupt/critical-section handoff
      (FLIPC instead delivers to kernel threads) — folded into the
      interrupt delivery cost.

    The iPSC/2 is a 16 MHz 80386 machine with 2.8 MB/s links; no directly
    comparable numbers appear in the FLIPC paper, so this model is
    calibrated only to era magnitudes and used for {e internal}
    comparisons (which knob costs what), never against the Paragon
    numbers. *)

type config = {
  user_op_ns : int;  (** user-level queue manipulation *)
  syscall_ns : int;  (** one kernel crossing on a 16 MHz 386 *)
  protocol_ns : int;  (** per-message protocol work per side *)
  poll_detect_ns : int;  (** mean polling delay at the receiver *)
  interrupt_ns : int;
      (** interrupt delivery + user-level thread handoff at the receiver *)
  copy_ns_per_byte : float;
}

val default_config : config

(** [one_way_latency_us ~buffer_mgmt ~delivery ~payload_bytes ~exchanges ()]
    measures a ping-pong over the iPSC/2 hypercube fabric. *)
val one_way_latency_us :
  ?config:config ->
  buffer_mgmt:[ `Syscall | `Shared ] ->
  delivery:[ `Polling | `Interrupt ] ->
  payload_bytes:int ->
  exchanges:int ->
  unit ->
  float
