lib/baselines/harness.ml: Array Flipc_net Flipc_sim Flipc_stats List
