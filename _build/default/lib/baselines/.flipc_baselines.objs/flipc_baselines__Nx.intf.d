lib/baselines/nx.mli:
