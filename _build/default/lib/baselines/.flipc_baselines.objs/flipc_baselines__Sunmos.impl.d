lib/baselines/sunmos.ml: Bytes Flipc_net Flipc_sim Float Harness
