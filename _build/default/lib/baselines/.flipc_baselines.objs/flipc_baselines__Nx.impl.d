lib/baselines/nx.ml: Bytes Flipc_net Flipc_sim Float Harness
