lib/baselines/harness.mli: Flipc_net Flipc_sim
