lib/baselines/pam.ml: Bytes Flipc_net Flipc_sim Harness
