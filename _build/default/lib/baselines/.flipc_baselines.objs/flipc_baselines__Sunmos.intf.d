lib/baselines/sunmos.mli:
