lib/baselines/pam.mli:
