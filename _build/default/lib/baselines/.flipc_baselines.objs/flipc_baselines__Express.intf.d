lib/baselines/express.mli:
