lib/baselines/express.ml: Array Bytes Flipc_net Flipc_sim Flipc_stats Float
