(** Shared plumbing for the baseline messaging-system models.

    Each baseline (NX, PAM, SUNMOS) is a protocol-structure model: real
    packets over the same simulated mesh as FLIPC, with the protocol's CPU
    costs (traps, copies, kernel paths, handler dispatch) charged
    explicitly. The numbers therefore emerge from protocol structure plus
    one small calibration record per system, rather than being hard-coded
    paper values. *)

type env = {
  sim : Flipc_sim.Engine.t;
  fabric : Flipc_net.Fabric.t;
  nics : Flipc_net.Nic.t array;
}

(** [mesh_env ()] builds a Paragon-like mesh with one NIC per node. *)
val mesh_env :
  ?cols:int -> ?rows:int -> ?mesh_config:Flipc_net.Mesh.config -> unit -> env

(** [pingpong ~env ~node_a ~node_b ~exchanges ~warmup ~send ~receive] runs
    the standard two-way exchange measurement: [send nic ~dst] performs one
    message send from the calling process (charging its sender-side costs);
    [receive nic] blocks until one full message has arrived and been handed
    to the application (charging receiver-side costs). Returns per-exchange
    round-trip times in microseconds. *)
val pingpong :
  env:env ->
  node_a:int ->
  node_b:int ->
  exchanges:int ->
  warmup:int ->
  send:(Flipc_net.Nic.t -> dst:int -> unit) ->
  receive:(Flipc_net.Nic.t -> unit) ->
  float list

(** [one_way_us samples] is the mean one-way latency from round-trip
    samples. *)
val one_way_us : float list -> float
