(** Model of NX, the Paragon's native message-passing system (Pierce &
    Regnier), as shipped with Paragon OS R1.3.2.

    Structure: fully kernel-mediated csend/crecv. A send traps into the
    kernel, copies the user buffer into a kernel buffer, and runs the
    kernel/coprocessor protocol path; the receive side mirrors this. Large
    messages switch to a rendezvous protocol that streams via DMA at high
    bandwidth — NX is "optimized for bandwidth on large messages", which is
    exactly why its medium-message latency (46 us at 120 bytes, per the
    paper) is poor. *)

type config = {
  trap_ns : int;  (** one kernel boundary crossing *)
  copy_ns_per_byte : float;  (** user/kernel buffer copy *)
  kernel_send_ns : int;  (** kernel + coprocessor protocol, send side *)
  kernel_recv_ns : int;  (** interrupt + kernel + wakeup, receive side *)
  rendezvous_threshold : int;  (** bytes; larger messages use rendezvous *)
  rendezvous_setup_ns : int;
  stream_ns_per_byte : float;  (** 7.14 ns/B = 140 MB/s peak *)
}

val default_config : config

(** [one_way_latency_us ?config ~payload_bytes ~exchanges ()] runs the
    ping-pong measurement. *)
val one_way_latency_us :
  ?config:config -> payload_bytes:int -> exchanges:int -> unit -> float

(** [bandwidth_mb_s ?config ~bytes] is the large-transfer data rate. *)
val bandwidth_mb_s : ?config:config -> bytes:int -> unit -> float
