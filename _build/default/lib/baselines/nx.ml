module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Nic = Flipc_net.Nic
module Packet = Flipc_net.Packet

type config = {
  trap_ns : int;
  copy_ns_per_byte : float;
  kernel_send_ns : int;
  kernel_recv_ns : int;
  rendezvous_threshold : int;
  rendezvous_setup_ns : int;
  stream_ns_per_byte : float;
}

let default_config =
  {
    trap_ns = 2_000;
    copy_ns_per_byte = 15.0;
    kernel_send_ns = 18_500;
    kernel_recv_ns = 18_500;
    rendezvous_threshold = 4_096;
    rendezvous_setup_ns = 60_000;
    stream_ns_per_byte = 7.14;
  }

let copy_ns config len =
  int_of_float (Float.round (float_of_int len *. config.copy_ns_per_byte))

let send config payload_bytes nic ~dst =
  (* csend: trap, user->kernel copy, kernel/coprocessor protocol path. The
     trap out of the kernel overlaps the wire and is off the latency
     path. *)
  Sim.delay config.trap_ns;
  Sim.delay (copy_ns config payload_bytes);
  Sim.delay config.kernel_send_ns;
  Nic.send nic
    (Packet.make ~src:(Nic.node nic) ~dst ~protocol:Packet.Nx
       (Bytes.create payload_bytes))

let receive config nic =
  (* crecv: block for arrival, then interrupt/kernel path, kernel->user
     copy, and the trap back out to the application. *)
  let p = Mailbox.take (Nic.rx_queue nic Packet.Nx) in
  Sim.delay config.kernel_recv_ns;
  Sim.delay (copy_ns config (Bytes.length p.Packet.payload));
  Sim.delay config.trap_ns

let one_way_latency_us ?(config = default_config) ~payload_bytes ~exchanges () =
  if payload_bytes > config.rendezvous_threshold then
    invalid_arg "Nx.one_way_latency_us: use bandwidth_mb_s for large messages";
  let env = Harness.mesh_env () in
  let samples =
    Harness.pingpong ~env ~node_a:0 ~node_b:1 ~exchanges ~warmup:2
      ~send:(send config payload_bytes)
      ~receive:(receive config)
  in
  Harness.one_way_us samples

let bandwidth_mb_s ?(config = default_config) ~bytes () =
  let ns =
    float_of_int config.rendezvous_setup_ns
    +. (float_of_int bytes *. config.stream_ns_per_byte)
  in
  float_of_int bytes /. ns *. 1000.
