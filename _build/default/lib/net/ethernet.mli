(** Shared-medium Ethernet segment, modelling the mid-90s 10 Mb/s
    development cluster.

    One packet occupies the whole medium at a time; senders queue FIFO for
    the wire. Collisions are not modelled explicitly — the arbitration gap
    stands in for the average cost of deference/backoff on a lightly loaded
    segment. *)

type config = {
  wire_ns_per_byte : float;  (** 800.0 = 10 Mb/s *)
  min_frame_bytes : int;  (** Ethernet minimum frame, 64 B *)
  preamble_ns : int;  (** preamble + interframe gap + arbitration *)
  adapter_ns : int;  (** per-packet adapter processing at each end *)
}

val default_config : config

val create :
  engine:Flipc_sim.Engine.t -> node_count:int -> config:config -> Fabric.t
