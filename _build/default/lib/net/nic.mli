(** Per-node network interface: binds a node id to a fabric and queues
    received packets for the node's protocol handlers.

    Incoming packets are demultiplexed by {!Packet.protocol}: each protocol
    registers its own receive queue (or callback), so FLIPC's optimistic
    protocol coexists with KKT and the baseline protocols on the same
    interface — the "multiple protocols simultaneously" property the paper
    requires of the Paragon protocol framework. *)

type t

val create : engine:Flipc_sim.Engine.t -> fabric:Fabric.t -> node:int -> t
val node : t -> int
val engine : t -> Flipc_sim.Engine.t

(** [send t packet] injects a packet into the fabric (asynchronous). *)
val send : t -> Packet.t -> unit

(** [rx_queue t protocol] is the receive queue for [protocol]; packets with
    no registered consumer wait in their protocol's queue. *)
val rx_queue : t -> Packet.protocol -> Packet.t Flipc_sim.Sync.Mailbox.t

(** [set_callback t protocol f] bypasses the queue: [f] runs (in a fresh
    process) on each arrival. Used by interrupt-driven protocols (KKT, NX). *)
val set_callback : t -> Packet.protocol -> (Packet.t -> unit) -> unit

(** Packets received so far, per protocol and total. *)
val received : t -> int

val received_for : t -> Packet.protocol -> int
