module Engine = Flipc_sim.Engine

type config = {
  hop_ns : int;
  route_setup_ns : int;
  wire_ns_per_byte : float;
  min_frame_bytes : int;
}

let paragon_config =
  { hop_ns = 40; route_setup_ns = 200; wire_ns_per_byte = 5.0; min_frame_bytes = 64 }

let frame_bytes config p = max config.min_frame_bytes (Packet.wire_bytes p)

let serialization_ns config p =
  int_of_float (Float.round (float_of_int (frame_bytes config p) *. config.wire_ns_per_byte))

let latency_estimate ~config ~topology ~src ~dst ~bytes =
  let hops = Topology.hops topology ~src ~dst in
  let frame = max config.min_frame_bytes (bytes + Packet.header_bytes) in
  config.route_setup_ns
  + (hops * config.hop_ns)
  + int_of_float (Float.round (float_of_int frame *. config.wire_ns_per_byte))

(* Contention-stall accounting is keyed on the fabric's stats record,
   compared by physical identity (the record is mutable, so it cannot be a
   hash key). Meshes live as long as their machines; the list stays tiny. *)
let stall_table : (Fabric.stats * int ref) list ref = ref []

let contention_stall_ns (fabric : Fabric.t) =
  match
    List.find_opt (fun (stats, _) -> stats == fabric.Fabric.stats) !stall_table
  with
  | Some (_, r) -> !r
  | None -> 0

let create ~engine ~topology ~config =
  let node_count = Topology.node_count topology in
  let handlers : (Packet.t -> unit) option array = Array.make node_count None in
  let tx_free_at = Array.make node_count 0 in
  (* Directed router-to-router links, keyed (from, to). *)
  let link_free_at : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let stats = Fabric.fresh_stats () in
  let stalls = ref 0 in
  stall_table := (stats, stalls) :: !stall_table;
  let rec fabric =
    lazy
      {
        Fabric.name = "mesh";
        node_count;
        send;
        set_handler = (fun node h -> handlers.(node) <- Some h);
        stats;
      }
  and send p =
    Fabric.check_send (Lazy.force fabric) p;
    let now = Engine.now engine in
    let ser = serialization_ns config p in
    (* Injection link: one packet at a time per source node. *)
    let start = max now tx_free_at.(p.Packet.src) in
    tx_free_at.(p.Packet.src) <- start + ser;
    (* Cut-through along the dimension-order route: the head advances one
       hop per link, stalling while a link is occupied; each traversed
       link is then busy for the serialization time. *)
    let route = Topology.route topology ~src:p.Packet.src ~dst:p.Packet.dst in
    let head = ref (start + config.route_setup_ns) in
    let rec walk = function
      | a :: (b :: _ as rest) ->
          let advance = !head + config.hop_ns in
          let free = Option.value ~default:0 (Hashtbl.find_opt link_free_at (a, b)) in
          if free > advance then stalls := !stalls + (free - advance);
          head := max advance free;
          Hashtbl.replace link_free_at (a, b) (!head + ser);
          walk rest
      | _ -> ()
    in
    walk route;
    let arrival = !head + ser in
    stats.Fabric.packets_sent <- stats.Fabric.packets_sent + 1;
    stats.Fabric.bytes_sent <- stats.Fabric.bytes_sent + frame_bytes config p;
    stats.Fabric.total_wire_ns <- stats.Fabric.total_wire_ns + ser;
    Engine.spawn_at ~name:"mesh-delivery" engine arrival (fun () ->
        match handlers.(p.Packet.dst) with
        | Some h -> h p
        | None -> ())
  in
  Lazy.force fabric
