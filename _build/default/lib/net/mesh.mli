(** Paragon-style 2-D mesh fabric with per-link contention.

    Timing model (virtual cut-through): a packet first serializes on its
    source's injection link, then advances one [hop_ns] per router; each
    directed link on the dimension-order route is occupied for the packet's
    serialization time and a packet stalls at a busy link until it frees.
    Uncontended delivery time is therefore

    {v start + route_setup + hops * hop_ns + wire_bytes * wire_ns_per_byte v}

    (one serialization term — the pipeline property of cut-through
    switching), while crossing flows serialize on exactly the links they
    share. Per-link buffering is assumed sufficient (no back-pressure
    deadlock modelling), which matches the paper's reliable-interconnect
    assumption. *)

type config = {
  hop_ns : int;  (** per-router-hop latency *)
  route_setup_ns : int;  (** header creation/injection fixed cost *)
  wire_ns_per_byte : float;  (** 5.0 = 200 MB/s links *)
  min_frame_bytes : int;
      (** minimum wire occupancy per packet (Paragon DMA wants >= 64 B) *)
}

(** 200 MB/s links, 40 ns per hop. *)
val paragon_config : config

val create :
  engine:Flipc_sim.Engine.t -> topology:Topology.t -> config:config -> Fabric.t

(** [latency_estimate ~config ~topology ~src ~dst ~bytes] is the contention-
    free one-way wire latency; exposed for tests and analytical checks. *)
val latency_estimate :
  config:config -> topology:Topology.t -> src:int -> dst:int -> bytes:int -> int

(** Total packet-stall time accumulated at busy links (a congestion
    indicator for tests and benches). *)
val contention_stall_ns : Fabric.t -> int
