module Engine = Flipc_sim.Engine

type t = { dims : int }

let create ~dims =
  if dims < 1 || dims > 16 then invalid_arg "Hypercube.create: dims in [1,16]";
  { dims }

let dims t = t.dims
let node_count t = 1 lsl t.dims

let check_node t n =
  if n < 0 || n >= node_count t then invalid_arg "Hypercube: bad node"

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let hops t ~src ~dst =
  check_node t src;
  check_node t dst;
  popcount (src lxor dst)

(* E-cube: correct differing bits from dimension 0 upward. *)
let route t ~src ~dst =
  check_node t src;
  check_node t dst;
  let rec go cur dim acc =
    if cur = dst then List.rev acc
    else if dim >= t.dims then assert false
    else if (cur lxor dst) land (1 lsl dim) <> 0 then
      let next = cur lxor (1 lsl dim) in
      go next (dim + 1) (next :: acc)
    else go cur (dim + 1) acc
  in
  go src 0 [ src ]

type config = {
  hop_ns : int;
  route_setup_ns : int;
  wire_ns_per_byte : float;
  min_frame_bytes : int;
}

let ipsc2_config =
  {
    hop_ns = 500;
    route_setup_ns = 5_000;
    wire_ns_per_byte = 357.0;
    min_frame_bytes = 32;
  }

let frame_bytes config p = max config.min_frame_bytes (Packet.wire_bytes p)

let serialization_ns config p =
  int_of_float
    (Float.round (float_of_int (frame_bytes config p) *. config.wire_ns_per_byte))

let fabric ~engine ~topology ~config =
  let node_count = node_count topology in
  let handlers : (Packet.t -> unit) option array = Array.make node_count None in
  let tx_free_at = Array.make node_count 0 in
  let link_free_at : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let stats = Fabric.fresh_stats () in
  let rec fabric_v =
    lazy
      {
        Fabric.name = "hypercube";
        node_count;
        send;
        set_handler = (fun node h -> handlers.(node) <- Some h);
        stats;
      }
  and send p =
    Fabric.check_send (Lazy.force fabric_v) p;
    let now = Engine.now engine in
    let ser = serialization_ns config p in
    let start = max now tx_free_at.(p.Packet.src) in
    tx_free_at.(p.Packet.src) <- start + ser;
    let head = ref (start + config.route_setup_ns) in
    let rec walk = function
      | a :: (b :: _ as rest) ->
          let advance = !head + config.hop_ns in
          let free =
            Option.value ~default:0 (Hashtbl.find_opt link_free_at (a, b))
          in
          head := max advance free;
          Hashtbl.replace link_free_at (a, b) (!head + ser);
          walk rest
      | _ -> ()
    in
    walk (route topology ~src:p.Packet.src ~dst:p.Packet.dst);
    let arrival = !head + ser in
    stats.Fabric.packets_sent <- stats.Fabric.packets_sent + 1;
    stats.Fabric.bytes_sent <- stats.Fabric.bytes_sent + frame_bytes config p;
    stats.Fabric.total_wire_ns <- stats.Fabric.total_wire_ns + ser;
    Engine.spawn_at ~name:"cube-delivery" engine arrival (fun () ->
        match handlers.(p.Packet.dst) with
        | Some h -> h p
        | None -> ())
  in
  Lazy.force fabric_v
