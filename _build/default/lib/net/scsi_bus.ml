module Engine = Flipc_sim.Engine

type config = {
  wire_ns_per_byte : float;
  arbitration_ns : int;
  adapter_ns : int;
}

let default_config =
  { wire_ns_per_byte = 100.0; arbitration_ns = 12_000; adapter_ns = 15_000 }

let create ~engine ~node_count ~config =
  let handlers : (Packet.t -> unit) option array = Array.make node_count None in
  let bus_free_at = ref 0 in
  let stats = Fabric.fresh_stats () in
  let rec fabric =
    lazy
      {
        Fabric.name = "scsi";
        node_count;
        send;
        set_handler = (fun node h -> handlers.(node) <- Some h);
        stats;
      }
  and send p =
    Fabric.check_send (Lazy.force fabric) p;
    let now = Engine.now engine in
    let bytes = Packet.wire_bytes p in
    let ser =
      config.arbitration_ns
      + int_of_float (Float.round (float_of_int bytes *. config.wire_ns_per_byte))
    in
    let start = max (now + config.adapter_ns) !bus_free_at in
    bus_free_at := start + ser;
    let arrival = start + ser + config.adapter_ns in
    stats.Fabric.packets_sent <- stats.Fabric.packets_sent + 1;
    stats.Fabric.bytes_sent <- stats.Fabric.bytes_sent + bytes;
    stats.Fabric.total_wire_ns <- stats.Fabric.total_wire_ns + ser;
    Engine.spawn_at ~name:"scsi-delivery" engine arrival (fun () ->
        match handlers.(p.Packet.dst) with
        | Some h -> h p
        | None -> ())
  in
  Lazy.force fabric
