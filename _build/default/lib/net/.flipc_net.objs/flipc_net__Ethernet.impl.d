lib/net/ethernet.ml: Array Fabric Flipc_sim Float Lazy Packet
