lib/net/scsi_bus.mli: Fabric Flipc_sim
