lib/net/hypercube.mli: Fabric Flipc_sim
