lib/net/topology.ml: List
