lib/net/fabric.mli: Packet
