lib/net/scsi_bus.ml: Array Fabric Flipc_sim Float Lazy Packet
