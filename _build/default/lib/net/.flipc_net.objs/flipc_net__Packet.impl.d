lib/net/packet.ml: Bytes Fmt
