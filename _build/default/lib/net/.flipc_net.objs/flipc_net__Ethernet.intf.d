lib/net/ethernet.mli: Fabric Flipc_sim
