lib/net/packet.mli: Bytes Format
