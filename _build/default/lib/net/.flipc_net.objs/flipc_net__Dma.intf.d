lib/net/dma.mli: Bytes Flipc_memsim Flipc_sim
