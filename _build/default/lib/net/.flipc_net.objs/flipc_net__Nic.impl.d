lib/net/nic.ml: Array Fabric Flipc_sim Packet
