lib/net/nic.mli: Fabric Flipc_sim Packet
