lib/net/hypercube.ml: Array Fabric Flipc_sim Float Hashtbl Lazy List Option Packet
