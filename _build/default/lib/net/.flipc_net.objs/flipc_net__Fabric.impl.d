lib/net/fabric.ml: Packet
