lib/net/dma.ml: Bytes Flipc_memsim Flipc_sim Float
