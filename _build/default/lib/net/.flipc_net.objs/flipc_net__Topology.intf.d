lib/net/topology.mli:
