lib/net/mesh.mli: Fabric Flipc_sim Topology
