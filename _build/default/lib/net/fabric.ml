type stats = {
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable total_wire_ns : int;
}

type t = {
  name : string;
  node_count : int;
  send : Packet.t -> unit;
  set_handler : int -> (Packet.t -> unit) -> unit;
  stats : stats;
}

let fresh_stats () = { packets_sent = 0; bytes_sent = 0; total_wire_ns = 0 }

let check_send t (p : Packet.t) =
  if p.Packet.src < 0 || p.Packet.src >= t.node_count then
    invalid_arg "Fabric.send: bad source node";
  if p.Packet.dst < 0 || p.Packet.dst >= t.node_count then
    invalid_arg "Fabric.send: bad destination node"
