type protocol = Flipc | Kkt | Pam | Nx | Sunmos | Bulk | Raw

type t = {
  src : int;
  dst : int;
  protocol : protocol;
  tag : int;
  seq : int;
  payload : Bytes.t;
}

let make ~src ~dst ~protocol ?(tag = 0) ?(seq = 0) payload =
  { src; dst; protocol; tag; seq; payload }

let header_bytes = 8
let wire_bytes t = header_bytes + Bytes.length t.payload

let protocol_name = function
  | Flipc -> "flipc"
  | Kkt -> "kkt"
  | Pam -> "pam"
  | Nx -> "nx"
  | Sunmos -> "sunmos"
  | Bulk -> "bulk"
  | Raw -> "raw"

let pp fmt t =
  Fmt.pf fmt "%s[%d->%d tag=%d seq=%d %dB]" (protocol_name t.protocol) t.src
    t.dst t.tag t.seq (Bytes.length t.payload)
