(** Network packets exchanged between simulated nodes.

    A packet is the unit the interconnect moves; protocols above (FLIPC
    native, KKT, the baseline systems) are distinguished by [protocol] and
    demultiplexed by the receiving node. *)

type protocol =
  | Flipc  (** native FLIPC optimistic transport *)
  | Kkt  (** kernel-to-kernel RPC transport *)
  | Pam  (** Paragon Active Messages model *)
  | Nx  (** NX model *)
  | Sunmos  (** SUNMOS model *)
  | Bulk  (** rendezvous bulk-transfer protocol (large messages) *)
  | Raw  (** tests and ad-hoc traffic *)

type t = {
  src : int;  (** source node id *)
  dst : int;  (** destination node id *)
  protocol : protocol;
  tag : int;  (** protocol-specific demux key (e.g. destination endpoint) *)
  seq : int;  (** protocol-specific sequence / request id *)
  payload : Bytes.t;
}

val make :
  src:int -> dst:int -> protocol:protocol -> ?tag:int -> ?seq:int -> Bytes.t -> t

(** Link-level header bytes added to every packet on the wire. *)
val header_bytes : int

(** [wire_bytes t] is the packet's size on the wire including the header. *)
val wire_bytes : t -> int

val protocol_name : protocol -> string
val pp : Format.formatter -> t -> unit
