(** Abstract interconnect fabric.

    A fabric connects [node_count] nodes; each node registers one delivery
    handler. [send] is asynchronous and reliable: the packet is delivered to
    the destination handler after the fabric's modelled latency, in a fresh
    simulation process. Ordering between a given source and destination is
    preserved (all fabrics here model FIFO channels, matching the paper's
    reliable ordered transport assumption).

    Concrete fabrics: {!Mesh} (Paragon), {!Ethernet} and {!Scsi_bus}
    (development clusters). *)

type stats = {
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable total_wire_ns : int;
      (** accumulated serialization time, for utilization reports *)
}

type t = {
  name : string;
  node_count : int;
  send : Packet.t -> unit;
  set_handler : int -> (Packet.t -> unit) -> unit;
  stats : stats;
}

val fresh_stats : unit -> stats

(** [check_send t packet] validates source/destination node ids; concrete
    fabrics call it from [send]. *)
val check_send : t -> Packet.t -> unit
