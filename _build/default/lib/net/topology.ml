type t = { cols : int; rows : int }

let create ~cols ~rows =
  if cols <= 0 || rows <= 0 then
    invalid_arg "Topology.create: dimensions must be positive";
  { cols; rows }

let cols t = t.cols
let rows t = t.rows
let node_count t = t.cols * t.rows

let coords t node =
  if node < 0 || node >= node_count t then
    invalid_arg "Topology.coords: bad node";
  (node mod t.cols, node / t.cols)

let node_at t ~x ~y =
  if x < 0 || x >= t.cols || y < 0 || y >= t.rows then
    invalid_arg "Topology.node_at: out of range";
  (y * t.cols) + x

let hops t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  abs (dx - sx) + abs (dy - sy)

let route t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  let step a b = if a < b then a + 1 else a - 1 in
  let rec go x y acc =
    if x <> dx then go (step x dx) y (node_at t ~x:(step x dx) ~y :: acc)
    else if y <> dy then go x (step y dy) (node_at t ~x ~y:(step y dy) :: acc)
    else List.rev acc
  in
  go sx sy [ node_at t ~x:sx ~y:sy ]
