(** 2-D mesh topology with dimension-order (X then Y) routing, as used by
    the Paragon's backplane. Node ids are assigned row-major. *)

type t

(** [create ~cols ~rows] builds a [cols] x [rows] mesh. *)
val create : cols:int -> rows:int -> t

val cols : t -> int
val rows : t -> int
val node_count : t -> int

(** [coords t node] is the [(x, y)] position of [node]. *)
val coords : t -> int -> int * int

(** [node_at t ~x ~y] is the inverse of [coords]. *)
val node_at : t -> x:int -> y:int -> int

(** [hops t ~src ~dst] is the number of router-to-router links a packet
    crosses under dimension-order routing (the Manhattan distance). *)
val hops : t -> src:int -> dst:int -> int

(** [route t ~src ~dst] is the full node sequence visited, inclusive of both
    endpoints, X dimension first. *)
val route : t -> src:int -> dst:int -> int list
