(** SCSI bus used for host-to-host communication, the second development
    platform reported in the paper (see its reference to "SCSI for Host to
    Host Communication", OSF RI).

    A single parallel bus shared by all hosts: each transfer needs
    arbitration and selection phases before data moves at the bus rate.
    Considerably faster than the Ethernet segment but with a high fixed
    per-transfer cost. *)

type config = {
  wire_ns_per_byte : float;  (** 100.0 = 10 MB/s fast SCSI *)
  arbitration_ns : int;  (** arbitration + selection + command phase *)
  adapter_ns : int;  (** host adapter processing at each end *)
}

val default_config : config

val create :
  engine:Flipc_sim.Engine.t -> node_count:int -> config:config -> Fabric.t
