module Engine = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox

let protocol_index = function
  | Packet.Flipc -> 0
  | Packet.Kkt -> 1
  | Packet.Pam -> 2
  | Packet.Nx -> 3
  | Packet.Sunmos -> 4
  | Packet.Bulk -> 5
  | Packet.Raw -> 6

let protocol_count = 7

type t = {
  engine : Engine.t;
  fabric : Fabric.t;
  node : int;
  queues : Packet.t Mailbox.t array;
  callbacks : (Packet.t -> unit) option array;
  counts : int array;
}

let create ~engine ~fabric ~node =
  let t =
    {
      engine;
      fabric;
      node;
      queues = Array.init protocol_count (fun _ -> Mailbox.create ());
      callbacks = Array.make protocol_count None;
      counts = Array.make protocol_count 0;
    }
  in
  fabric.Fabric.set_handler node (fun p ->
      let i = protocol_index p.Packet.protocol in
      t.counts.(i) <- t.counts.(i) + 1;
      match t.callbacks.(i) with
      | Some f -> Engine.spawn ~name:"nic-callback" engine (fun () -> f p)
      | None -> Mailbox.put t.queues.(i) p);
  t

let node t = t.node
let engine t = t.engine

let send t p =
  if p.Packet.src <> t.node then invalid_arg "Nic.send: wrong source node";
  t.fabric.Fabric.send p

let rx_queue t protocol = t.queues.(protocol_index protocol)
let set_callback t protocol f = t.callbacks.(protocol_index protocol) <- Some f
let received t = Array.fold_left ( + ) 0 t.counts
let received_for t protocol = t.counts.(protocol_index protocol)
