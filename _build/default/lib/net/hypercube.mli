(** Hypercube topology and fabric, as in the iPSC/2 — the machine Express
    Messages (the paper's closest ancestor) ran on.

    Nodes are numbered 0..2^dims-1; two nodes are adjacent iff their ids
    differ in exactly one bit. Routing is e-cube (dimension order: correct
    the lowest differing bit first), deadlock-free like the mesh's
    dimension-order routing. The fabric reuses the cut-through contention
    model: per-directed-link occupancy, one serialization per packet. *)

type t

(** [create ~dims] builds a [2^dims]-node cube. [dims] in [1, 16]. *)
val create : dims:int -> t

val dims : t -> int
val node_count : t -> int

(** [hops t ~src ~dst] is the Hamming distance. *)
val hops : t -> src:int -> dst:int -> int

(** [route t ~src ~dst] is the e-cube node sequence, inclusive. *)
val route : t -> src:int -> dst:int -> int list

type config = {
  hop_ns : int;  (** per-router latency *)
  route_setup_ns : int;
  wire_ns_per_byte : float;  (** 357.0 = the iPSC/2's 2.8 MB/s links *)
  min_frame_bytes : int;
}

(** iPSC/2 Direct-Connect-ish numbers. *)
val ipsc2_config : config

val fabric :
  engine:Flipc_sim.Engine.t -> topology:t -> config:config -> Fabric.t
