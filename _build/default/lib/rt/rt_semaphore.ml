module Heap = Flipc_sim.Heap

type key = { neg_priority : int; kseq : int }

type t = {
  sched : Sched.t;
  mutable value : int;
  waiting : (key, Sched.thread) Heap.t;
  mutable seq : int;
}

let compare_key a b =
  match Int.compare a.neg_priority b.neg_priority with
  | 0 -> Int.compare a.kseq b.kseq
  | c -> c

let create ?(initial = 0) sched =
  if initial < 0 then invalid_arg "Rt_semaphore.create: negative";
  { sched; value = initial; waiting = Heap.create ~cmp:compare_key (); seq = 0 }

let value t = t.value
let waiters t = Heap.size t.waiting

let rec wait t thr =
  if t.value > 0 then t.value <- t.value - 1
  else begin
    t.seq <- t.seq + 1;
    Heap.push t.waiting { neg_priority = -Sched.priority thr; kseq = t.seq } thr;
    Sched.block thr;
    (* The post incremented the value; recheck, as another thread may have
       consumed it first (classic Mesa-style semantics). *)
    wait t thr
  end

let try_wait t =
  if t.value > 0 then begin
    t.value <- t.value - 1;
    true
  end
  else false

let post t =
  t.value <- t.value + 1;
  match Heap.pop_min t.waiting with
  | Some (_, thr) -> Sched.make_ready thr
  | None -> ()
