module Engine = Flipc_sim.Engine
module Heap = Flipc_sim.Heap

type state = Contending | Running | Blocked | Done

type t = {
  engine : Engine.t;
  cpus : int;
  ready : (key, thread) Heap.t;
  mutable running : int;
  mutable seq : int;
  mutable dispatches : int;
}

and key = { neg_priority : int; kseq : int }

and thread = {
  tname : string;
  sched : t;
  mutable tpriority : int;
  mutable state : state;
  mutable wakeup_pending : bool;
  mutable resume : (unit -> unit) option;
}

let compare_key a b =
  match Int.compare a.neg_priority b.neg_priority with
  | 0 -> Int.compare a.kseq b.kseq
  | c -> c

let create ~engine ~cpus =
  if cpus <= 0 then invalid_arg "Sched.create: cpus must be positive";
  {
    engine;
    cpus;
    ready = Heap.create ~cmp:compare_key ();
    running = 0;
    seq = 0;
    dispatches = 0;
  }

let engine t = t.engine
let cpus t = t.cpus
let running t = t.running
let dispatches t = t.dispatches
let name thr = thr.tname
let priority thr = thr.tpriority
let set_priority thr p = thr.tpriority <- p
let is_done thr = thr.state = Done

let enqueue_ready thr =
  let t = thr.sched in
  t.seq <- t.seq + 1;
  Heap.push t.ready { neg_priority = -thr.tpriority; kseq = t.seq } thr

(* Hand free CPUs to the highest-priority ready threads. The resume thunk
   only schedules the continuation on the simulation queue, so dispatch
   never transfers control directly. *)
let rec dispatch t =
  if t.running < t.cpus then
    match Heap.pop_min t.ready with
    | None -> ()
    | Some (_, thr) ->
        t.running <- t.running + 1;
        t.dispatches <- t.dispatches + 1;
        thr.state <- Running;
        (match thr.resume with
        | Some resume ->
            thr.resume <- None;
            resume ()
        | None -> assert false);
        dispatch t

(* Queue the calling thread for a CPU and suspend until dispatched. *)
let contend thr =
  let t = thr.sched in
  thr.state <- Contending;
  enqueue_ready thr;
  Engine.suspend (fun resume ->
      thr.resume <- Some resume;
      dispatch t)

let release_cpu thr =
  let t = thr.sched in
  t.running <- t.running - 1;
  dispatch t

let yield thr =
  release_cpu thr;
  contend thr

let sleep thr d =
  release_cpu thr;
  Engine.delay d;
  contend thr

let block thr =
  if thr.wakeup_pending then thr.wakeup_pending <- false
  else begin
    release_cpu thr;
    thr.state <- Blocked;
    Engine.suspend (fun resume -> thr.resume <- Some resume)
    (* Resumed via make_ready -> contend path below. *)
  end

let make_ready thr =
  match thr.state with
  | Blocked ->
      let t = thr.sched in
      thr.state <- Contending;
      enqueue_ready thr;
      dispatch t
  | Running | Contending -> thr.wakeup_pending <- true
  | Done -> ()

let spawn ?name t ~priority body =
  let thr =
    {
      tname = Option.value name ~default:(Printf.sprintf "thread-p%d" priority);
      sched = t;
      tpriority = priority;
      state = Contending;
      wakeup_pending = false;
      resume = None;
    }
  in
  Engine.spawn ~name:thr.tname t.engine (fun () ->
      contend thr;
      Fun.protect
        ~finally:(fun () ->
          thr.state <- Done;
          release_cpu thr)
        (fun () -> body thr));
  thr
