(** Priority scheduler for application threads on a simulated node.

    Models the kernel thread support FLIPC relies on: threads have fixed
    priorities, a node has a small number of application CPUs, and the
    highest-priority runnable threads hold the CPUs. Scheduling is
    cooperative at the simulation level — a thread gives up its CPU only at
    scheduling points ([yield], [sleep], [block] and anything built on them)
    — which matches the paper's design point that message arrival never
    interrupts a thread asynchronously: the awakened thread is presented to
    the scheduler, which decides when it runs.

    Ties within a priority are FIFO. Higher numbers are higher priority. *)

type t
type thread

val create : engine:Flipc_sim.Engine.t -> cpus:int -> t
val engine : t -> Flipc_sim.Engine.t
val cpus : t -> int

(** Threads currently holding a CPU. *)
val running : t -> int

(** Dispatches performed so far (a context-switch count). *)
val dispatches : t -> int

(** [spawn t ~priority body] creates a thread; [body] receives its own
    handle. The thread first contends for a CPU, then runs. *)
val spawn : ?name:string -> t -> priority:int -> (thread -> unit) -> thread

val name : thread -> string
val priority : thread -> int
val set_priority : thread -> int -> unit
val is_done : thread -> bool

(** {1 Scheduling points (call from the thread itself)} *)

(** [yield thr] releases the CPU and re-contends, letting
    equal-or-higher-priority ready threads run first. *)
val yield : thread -> unit

(** [sleep thr d] releases the CPU for at least [d] of virtual time, then
    re-contends. *)
val sleep : thread -> Flipc_sim.Vtime.t -> unit

(** {1 Blocking-primitive building blocks}

    [block] and [make_ready] implement the sleep/wakeup protocol used by
    {!Rt_semaphore}. A wakeup arriving before the thread blocks is
    remembered ([block] then returns immediately), so the pair is free of
    lost-wakeup races. *)

(** [block thr] releases the CPU and suspends until [make_ready]. *)
val block : thread -> unit

(** [make_ready thr] marks a blocked thread runnable; it then contends for
    a CPU at its priority. Callable from any simulation process (e.g. the
    messaging engine). *)
val make_ready : thread -> unit
