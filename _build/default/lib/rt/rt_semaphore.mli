(** Real-time counting semaphore with priority-ordered wakeup.

    This is FLIPC's "real time semaphore option": the messaging engine
    posts the semaphore when a message arrives, and the awakened thread is
    presented to the scheduler — which runs it according to priority —
    rather than being executed as an interrupting upcall. [post] is
    callable from any simulation process; [wait] only from a scheduler
    thread. *)

type t

val create : ?initial:int -> Sched.t -> t
val value : t -> int
val waiters : t -> int

(** [wait t thr] decrements, blocking [thr] while the value is zero.
    Waiters are released highest-priority first, FIFO within a priority. *)
val wait : t -> Sched.thread -> unit

(** [try_wait t] is a non-blocking [wait]. *)
val try_wait : t -> bool

(** [post t] increments and wakes the best waiter, if any. *)
val post : t -> unit
