lib/rt/rt_semaphore.mli: Sched
