lib/rt/sched.mli: Flipc_sim
