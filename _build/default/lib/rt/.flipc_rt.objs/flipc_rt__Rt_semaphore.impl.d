lib/rt/rt_semaphore.ml: Flipc_sim Int Sched
