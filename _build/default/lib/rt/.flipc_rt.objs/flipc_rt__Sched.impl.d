lib/rt/sched.ml: Flipc_sim Fun Int Option Printf
