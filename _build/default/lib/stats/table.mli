(** Fixed-width text tables for the benchmark harness's paper-style
    output. *)

type t

(** [create ~title headers] starts a table. *)
val create : title:string -> string list -> t

(** [add_row t cells] appends a row; cell count must match the headers. *)
val add_row : t -> string list -> unit

(** [add_rule t] appends a horizontal separator. *)
val add_rule : t -> unit

val pp : Format.formatter -> t -> unit

(** [print t] renders to stdout. If the environment variable
    [FLIPC_BENCH_CSV] names a directory, a CSV copy is also written there
    as [<slugified-title>.csv]. *)
val print : t -> unit

(** Comma-separated rendering (header + data rows; quotes cells containing
    commas or quotes; rules are skipped). *)
val to_csv : t -> string

(** Cell formatting helpers. *)

val cell_f : ?decimals:int -> float -> string

val cell_us : float -> string
val cell_i : int -> string
