type row = Cells of string list | Rule

type t = {
  title : string;
  headers : string list;
  mutable rows : row list;  (* reversed *)
}

let create ~title headers = { title; headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let widths t =
  let update acc cells =
    List.map2 (fun w c -> max w (String.length c)) acc cells
  in
  let init = List.map String.length t.headers in
  List.fold_left
    (fun acc row -> match row with Cells c -> update acc c | Rule -> acc)
    init (List.rev t.rows)

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let pp fmt t =
  let ws = widths t in
  let line c = String.concat "-+-" (List.map (fun w -> String.make w c) ws) in
  let render cells =
    String.concat " | " (List.map2 pad ws cells)
  in
  Fmt.pf fmt "== %s ==@." t.title;
  Fmt.pf fmt "%s@." (render t.headers);
  Fmt.pf fmt "%s@." (line '-');
  List.iter
    (fun row ->
      match row with
      | Cells c -> Fmt.pf fmt "%s@." (render c)
      | Rule -> Fmt.pf fmt "%s@." (line '-'))
    (List.rev t.rows)

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let line cells = String.concat "," (List.map csv_cell cells) in
  let rows =
    List.filter_map
      (fun row -> match row with Cells c -> Some (line c) | Rule -> None)
      (List.rev t.rows)
  in
  String.concat "\n" (line t.headers :: rows) ^ "\n"

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '_')
    title

let print t =
  pp Fmt.stdout t;
  match Sys.getenv_opt "FLIPC_BENCH_CSV" with
  | Some dir when dir <> "" ->
      let path = Filename.concat dir (slug t.title ^ ".csv") in
      let oc = open_out path in
      output_string oc (to_csv t);
      close_out oc
  | Some _ | None -> ()
let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_us x = Printf.sprintf "%.2f" x
let cell_i = string_of_int
