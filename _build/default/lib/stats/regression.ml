type fit = { intercept : float; slope : float; r2 : float }

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = List.fold_left (fun a (x, _) -> a +. ((x -. mx) ** 2.)) 0. points in
  if sxx = 0. then invalid_arg "Regression.linear: all x equal";
  let sxy =
    List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0. points
  in
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. my) ** 2.)) 0. points in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let fitted = intercept +. (slope *. x) in
        a +. ((y -. fitted) ** 2.))
      0. points
  in
  let r2 = if ss_tot = 0. then 1. else 1. -. (ss_res /. ss_tot) in
  { intercept; slope; r2 }

let pp fmt t =
  Fmt.pf fmt "y = %.3f + %.4f*x (r2=%.4f)" t.intercept t.slope t.r2
