(** Descriptive statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(** [of_samples xs] computes a summary. Raises [Invalid_argument] on an
    empty list. *)
val of_samples : float list -> t

(** [percentile xs p] is the [p]-th percentile ([0..100]) by linear
    interpolation on the sorted samples. *)
val percentile : float list -> float -> float

val mean : float list -> float
val stddev : float list -> float

(** Pretty form: [mean +/- stddev (min .. max, n=...)]. *)
val pp : Format.formatter -> t -> unit
