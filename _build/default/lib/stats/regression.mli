(** Least-squares linear regression; used to fit the paper's
    [latency = intercept + slope * bytes] line from FIG4 sweeps. *)

type fit = {
  intercept : float;
  slope : float;
  r2 : float;  (** coefficient of determination *)
}

(** [linear points] fits [y = intercept + slope * x]. Requires at least two
    points with distinct x. *)
val linear : (float * float) list -> fit

val pp : Format.formatter -> fit -> unit
