(** Fixed-width-bin histograms with ASCII rendering.

    Used by the latency-distribution experiment and anywhere a summary's
    mean/stddev hides structure (e.g. bimodal discovery delays). *)

type t

(** [create ~lo ~hi ()] covers [\[lo, hi)] with [bins] equal bins
    (default 20). Samples outside the range land in underflow/overflow
    counters. Requires [lo < hi]. *)
val create : ?bins:int -> lo:float -> hi:float -> unit -> t

val add : t -> float -> unit
val add_all : t -> float list -> unit

(** [of_samples xs] picks the range from the samples (padded slightly). *)
val of_samples : ?bins:int -> float list -> t

val total : t -> int
val underflow : t -> int
val overflow : t -> int

(** [counts t] is one count per bin. *)
val counts : t -> int array

(** [bin_range t i] is the [(lo, hi)] of bin [i]. *)
val bin_range : t -> int -> float * float

(** ASCII rendering, one line per bin: range, count, bar. *)
val pp : Format.formatter -> t -> unit
