type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ?(bins = 20) ~lo ~hi () =
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
  { lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let bins = Array.length t.counts in
    let i = int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins) in
    let i = min i (bins - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add_all t xs = List.iter (add t) xs

let of_samples ?bins xs =
  match xs with
  | [] -> invalid_arg "Histogram.of_samples: empty"
  | x :: _ ->
      let lo = List.fold_left Float.min x xs in
      let hi = List.fold_left Float.max x xs in
      let pad = Float.max ((hi -. lo) *. 0.05) 1e-9 in
      let t = create ?bins ~lo:(lo -. pad) ~hi:(hi +. pad) () in
      add_all t xs;
      t

let total t = t.total
let underflow t = t.underflow
let overflow t = t.overflow
let counts t = Array.copy t.counts

let bin_range t i =
  let bins = Array.length t.counts in
  if i < 0 || i >= bins then invalid_arg "Histogram.bin_range: bad bin";
  let w = (t.hi -. t.lo) /. float_of_int bins in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let pp fmt t =
  let peak = Array.fold_left max 1 t.counts in
  if t.underflow > 0 then Fmt.pf fmt "%16s %6d@." "< range" t.underflow;
  Array.iteri
    (fun i n ->
      let lo, hi = bin_range t i in
      let bar = String.make (n * 50 / peak) '#' in
      Fmt.pf fmt "[%6.2f, %6.2f) %6d %s@." lo hi n bar)
    t.counts;
  if t.overflow > 0 then Fmt.pf fmt "%16s %6d@." ">= range" t.overflow
