type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Summary.mean: empty"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Summary.percentile: empty"
  | _ ->
      if p < 0. || p > 100. then invalid_arg "Summary.percentile: bad p";
      let arr = Array.of_list xs in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then arr.(lo)
      else
        let frac = rank -. float_of_int lo in
        arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let of_samples xs =
  match xs with
  | [] -> invalid_arg "Summary.of_samples: empty"
  | _ ->
      {
        n = List.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = List.fold_left Float.min Float.infinity xs;
        max = List.fold_left Float.max Float.neg_infinity xs;
        p50 = percentile xs 50.;
        p95 = percentile xs 95.;
        p99 = percentile xs 99.;
      }

let pp fmt t =
  Fmt.pf fmt "%.2f +/- %.2f (%.2f .. %.2f, n=%d)" t.mean t.stddev t.min t.max
    t.n
