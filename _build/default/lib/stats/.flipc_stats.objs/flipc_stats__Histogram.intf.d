lib/stats/histogram.mli: Format
