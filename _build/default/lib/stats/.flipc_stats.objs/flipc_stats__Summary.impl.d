lib/stats/summary.ml: Array Float Fmt List
