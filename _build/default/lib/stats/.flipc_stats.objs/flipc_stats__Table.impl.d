lib/stats/table.ml: Char Filename Fmt List Printf String Sys
