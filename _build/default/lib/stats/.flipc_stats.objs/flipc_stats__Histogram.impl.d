lib/stats/histogram.ml: Array Float Fmt List String
