lib/stats/regression.ml: Fmt List
