lib/stats/regression.mli: Format
