type key = { time : int; seq : int }

type t = {
  mutable now : int;
  mutable seq : int;
  queue : (key, unit -> unit) Heap.t;
  mutable live : int;
  mutable steps : int;
  mutable failure : (string * exn) option;
}

exception Process_failure of string * exn

let () =
  Printexc.register_printer (function
    | Process_failure (name, e) ->
        Some
          (Printf.sprintf "Process_failure(%S, %s)" name (Printexc.to_string e))
    | _ -> None)

type _ Effect.t +=
  | Delay : int -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let compare_key a b =
  match Int.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let create () =
  {
    now = 0;
    seq = 0;
    queue = Heap.create ~cmp:compare_key ();
    live = 0;
    steps = 0;
    failure = None;
  }

let now t = t.now
let steps t = t.steps
let live_processes t = t.live

let schedule t time thunk =
  t.seq <- t.seq + 1;
  Heap.push t.queue { time; seq = t.seq } thunk

let handler t name =
  let open Effect.Deep in
  {
    retc = (fun () -> t.live <- t.live - 1);
    exnc =
      (fun e ->
        t.live <- t.live - 1;
        if t.failure = None then t.failure <- Some (name, e));
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Delay d ->
            Some
              (fun (k : (b, unit) continuation) ->
                if d < 0 then
                  discontinue k (Invalid_argument "Engine.delay: negative")
                else schedule t (t.now + d) (fun () -> continue k ()))
        | Suspend register ->
            Some
              (fun (k : (b, unit) continuation) ->
                let resumed = ref false in
                register (fun () ->
                    if not !resumed then begin
                      resumed := true;
                      schedule t t.now (fun () -> continue k ())
                    end))
        | _ -> None);
  }

let spawn ?(name = "process") t f =
  t.live <- t.live + 1;
  schedule t t.now (fun () -> Effect.Deep.match_with f () (handler t name))

let spawn_at ?(name = "process") t time f =
  if time < t.now then invalid_arg "Engine.spawn_at: time is in the past";
  t.live <- t.live + 1;
  schedule t time (fun () -> Effect.Deep.match_with f () (handler t name))

let run ?until t =
  let limit = match until with None -> max_int | Some u -> u in
  let rec loop () =
    match t.failure with
    | Some (name, e) ->
        t.failure <- None;
        raise (Process_failure (name, e))
    | None -> (
        match Heap.peek_min t.queue with
        | None -> ()
        | Some ({ time; _ }, _) when time > limit -> t.now <- limit
        | Some _ ->
            (match Heap.pop_min t.queue with
            | Some ({ time; _ }, thunk) ->
                t.now <- time;
                t.steps <- t.steps + 1;
                thunk ()
            | None -> assert false);
            loop ())
  in
  loop ()

let delay d = Effect.perform (Delay d)
let yield () = delay 0
let suspend register = Effect.perform (Suspend register)
