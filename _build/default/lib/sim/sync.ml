module Condvar = struct
  type t = { waiting : (unit -> unit) Queue.t }

  let create () = { waiting = Queue.create () }
  let wait t = Engine.suspend (fun resume -> Queue.push resume t.waiting)

  let signal t =
    match Queue.take_opt t.waiting with None -> () | Some resume -> resume ()

  let broadcast t =
    (* Drain into a list first: a woken process may wait again immediately,
       which must not make broadcast loop forever. *)
    let resumes = List.of_seq (Queue.to_seq t.waiting) in
    Queue.clear t.waiting;
    List.iter (fun resume -> resume ()) resumes

  let waiters t = Queue.length t.waiting
end

module Semaphore = struct
  type t = { mutable value : int; cv : Condvar.t }

  let create n =
    if n < 0 then invalid_arg "Semaphore.create: negative";
    { value = n; cv = Condvar.create () }

  let value t = t.value

  let rec acquire t =
    if t.value > 0 then t.value <- t.value - 1
    else begin
      Condvar.wait t.cv;
      acquire t
    end

  let try_acquire t =
    if t.value > 0 then begin
      t.value <- t.value - 1;
      true
    end
    else false

  let release t =
    t.value <- t.value + 1;
    Condvar.signal t.cv
end

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; cv : Condvar.t }

  let create () = { items = Queue.create (); cv = Condvar.create () }

  let put t v =
    Queue.push v t.items;
    Condvar.signal t.cv

  let rec take t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None ->
        Condvar.wait t.cv;
        take t

  let try_take t = Queue.take_opt t.items
  let length t = Queue.length t.items
end
