(** Lightweight event trace for debugging simulations.

    Disabled traces cost one branch per record call. *)

type entry = { time : Vtime.t; tag : string; message : string }

type t

val create : ?enabled:bool -> unit -> t
val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

(** [record t ~now ~tag message] appends an entry if tracing is enabled. *)
val record : t -> now:Vtime.t -> tag:string -> string -> unit

(** [recordf] is [record] with a format string; the message is only built
    when tracing is enabled. *)
val recordf :
  t -> now:Vtime.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val to_list : t -> entry list
val length : t -> int
val clear : t -> unit

(** [dump fmt t] prints one line per entry. *)
val dump : Format.formatter -> t -> unit
