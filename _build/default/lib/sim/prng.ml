type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to 62 bits so the value is a non-negative OCaml int. *)
  let v = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, same construction as the stdlib. *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u
