type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000
let of_us_float x = int_of_float (Float.round (x *. 1_000.))
let of_ns_float x = int_of_float (Float.round x)
let to_ns t = t
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let add = ( + )
let sub = ( - )
let scale n t = n * t
let max = Stdlib.max
let min = Stdlib.min
let compare = Int.compare
let equal = Int.equal

let pp fmt t =
  let abs = Stdlib.abs t in
  if abs < 1_000 then Fmt.pf fmt "%dns" t
  else if abs < 1_000_000 then Fmt.pf fmt "%.2fus" (to_us t)
  else if abs < 1_000_000_000 then Fmt.pf fmt "%.3fms" (to_ms t)
  else Fmt.pf fmt "%.3fs" (float_of_int t /. 1e9)

let pp_us fmt t = Fmt.pf fmt "%.2fus" (to_us t)
