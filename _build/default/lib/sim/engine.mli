(** Discrete-event simulation engine with effect-based cooperative processes.

    A process is an ordinary OCaml function that may perform the [delay] and
    [suspend] operations (implemented with OCaml 5 effect handlers). The
    engine runs processes one at a time; a process executes without
    interruption until it delays, suspends, or returns, so code between
    those points is atomic with respect to other processes. All blocking
    abstractions (condition variables, semaphores, mailboxes, the FLIPC
    engine's poll loop, ...) are built from [suspend].

    Time is virtual ({!Vtime}); nothing here reads the wall clock. *)

type t

val create : unit -> t

(** Current virtual time. Usable from inside or outside processes. *)
val now : t -> Vtime.t

(** Number of events executed so far; a cheap progress measure for tests. *)
val steps : t -> int

(** Number of spawned processes that have not yet returned. *)
val live_processes : t -> int

(** [spawn t ?name f] schedules process [f] to start at the current time.
    [name] labels errors. Callable from inside or outside processes. *)
val spawn : ?name:string -> t -> (unit -> unit) -> unit

(** [spawn_at t time f] schedules [f] to start at absolute [time], which must
    not be in the past. *)
val spawn_at : ?name:string -> t -> Vtime.t -> (unit -> unit) -> unit

(** [run t] executes events in time order until the queue is empty.
    [~until] stops the clock at the given time, leaving later events queued.
    An exception escaping a process aborts the run and is re-raised,
    wrapped in {!Process_failure}. *)
val run : ?until:Vtime.t -> t -> unit

(** Raised by [run] when a process raised; carries the process name and the
    original exception. *)
exception Process_failure of string * exn

(** {1 Operations available inside a process} *)

(** [delay d] suspends the calling process for [d] virtual nanoseconds.
    Raises [Effect.Unhandled] if called outside a process. *)
val delay : Vtime.t -> unit

(** [yield ()] is [delay Vtime.zero]: lets other events at the same time
    run before continuing. *)
val yield : unit -> unit

(** [suspend register] parks the calling process and hands a [resume]
    thunk to [register]. The process continues (at the virtual time of the
    call to [resume]) once the thunk is invoked; invoking it more than once
    is harmless. *)
val suspend : ((unit -> unit) -> unit) -> unit
