type entry = { time : Vtime.t; tag : string; message : string }
type t = { mutable enabled : bool; entries : entry Queue.t }

let create ?(enabled = false) () = { enabled; entries = Queue.create () }
let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled

let record t ~now ~tag message =
  if t.enabled then Queue.push { time = now; tag; message } t.entries

let recordf t ~now ~tag fmt =
  if t.enabled then
    Fmt.kstr (fun message -> Queue.push { time = now; tag; message } t.entries) fmt
  else Fmt.kstr (fun _ -> ()) fmt

let to_list t = List.of_seq (Queue.to_seq t.entries)
let length t = Queue.length t.entries
let clear t = Queue.clear t.entries

let dump fmt t =
  Queue.iter
    (fun e -> Fmt.pf fmt "[%a] %-12s %s@." Vtime.pp e.time e.tag e.message)
    t.entries
