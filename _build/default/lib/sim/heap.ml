type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  mutable data : ('k * 'v) option array;
  mutable size : int;
}

let create ~cmp () = { cmp; data = Array.make 64 None; size = 0 }
let size h = h.size
let is_empty h = h.size = 0

let get h i =
  match h.data.(i) with
  | Some kv -> kv
  | None -> assert false

let key h i = fst (get h i)

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let grow h =
  let data = Array.make (2 * Array.length h.data) None in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (key h i) (key h parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && h.cmp (key h left) (key h !smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp (key h right) (key h !smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h k v =
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- Some (k, v);
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let min = get h 0 in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some min
  end

let peek_min h = if h.size = 0 then None else Some (get h 0)

let clear h =
  Array.fill h.data 0 (Array.length h.data) None;
  h.size <- 0
