(** Deterministic pseudo-random number generator (splitmix64).

    The simulator must be exactly reproducible, so all randomness flows
    through explicitly seeded generators; wall-clock seeding is never used. *)

type t

val create : seed:int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator, advancing
    [t]. Useful to give each simulated component its own stream. *)
val split : t -> t

val next_int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

val bool : t -> bool

(** [exponential t ~mean] samples an exponential distribution; used for
    Poisson event-stream inter-arrival times. *)
val exponential : t -> mean:float -> float
