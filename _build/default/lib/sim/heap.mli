(** Array-based binary min-heap, keyed by a caller-supplied total order.

    Used as the simulator's event queue; keys are [(time, sequence)] pairs so
    that simultaneous events preserve insertion order. *)

type ('k, 'v) t

(** [create ~cmp ()] is an empty heap ordered by [cmp]. *)
val create : cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t

val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val push : ('k, 'v) t -> 'k -> 'v -> unit

(** [pop_min h] removes and returns the minimum binding, or [None] if the
    heap is empty. *)
val pop_min : ('k, 'v) t -> ('k * 'v) option

(** [peek_min h] returns the minimum binding without removing it. *)
val peek_min : ('k, 'v) t -> ('k * 'v) option

val clear : ('k, 'v) t -> unit
