(** Virtual time for the discrete-event simulator.

    Time is an integer count of nanoseconds since simulation start. A 63-bit
    integer holds about 292 years of nanoseconds, far more than any
    simulation here needs. Using plain [int] keeps arithmetic allocation-free
    on the simulator hot path. *)

type t = int

val zero : t

(** {1 Constructors} *)

val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

(** [of_us_float x] rounds [x] microseconds to the nearest nanosecond. *)
val of_us_float : float -> t

(** [of_ns_float x] rounds [x] nanoseconds to the nearest nanosecond. *)
val of_ns_float : float -> t

(** {1 Conversions} *)

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t

(** [scale n t] is [n * t]. *)
val scale : int -> t -> t

val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

(** {1 Printing} *)

(** [pp] picks a human-friendly unit (ns, us, ms or s). *)
val pp : Format.formatter -> t -> unit

(** [pp_us] always prints in microseconds with two decimals, the unit used
    throughout the FLIPC paper's evaluation. *)
val pp_us : Format.formatter -> t -> unit
