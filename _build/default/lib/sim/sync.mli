(** Blocking synchronization primitives for simulation processes.

    These are the {e simulator-level} primitives used to structure simulated
    components (a NIC waiting for a packet, a test driver waiting for a
    reply). They are distinct from — and must not be confused with — the
    wait-free structures inside the FLIPC communication buffer, which never
    block and are the subject of the paper. *)

(** FIFO condition variable. *)
module Condvar : sig
  type t

  val create : unit -> t

  (** [wait t] parks the calling process until a signal. There is no
      separate mutex: process execution is atomic between suspension
      points, so re-checking the guarded predicate after [wait] suffices. *)
  val wait : t -> unit

  (** Wake the longest-waiting process, if any. *)
  val signal : t -> unit

  (** Wake every waiting process. *)
  val broadcast : t -> unit

  val waiters : t -> int
end

(** Counting semaphore with FIFO wakeup. *)
module Semaphore : sig
  type t

  (** [create n] has initial value [n >= 0]. *)
  val create : int -> t

  val value : t -> int

  (** P operation: decrement, blocking while the value is zero. *)
  val acquire : t -> unit

  (** Non-blocking P: [true] on success. *)
  val try_acquire : t -> bool

  (** V operation: wakes one waiter or increments the value. *)
  val release : t -> unit
end

(** Unbounded FIFO channel between processes. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val put : 'a t -> 'a -> unit

  (** [take t] blocks until a value is available. *)
  val take : 'a t -> 'a

  val try_take : 'a t -> 'a option
  val length : 'a t -> int
end
