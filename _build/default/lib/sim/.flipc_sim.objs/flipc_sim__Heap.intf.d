lib/sim/heap.mli:
