lib/sim/sync.mli:
