lib/sim/vtime.mli: Format
