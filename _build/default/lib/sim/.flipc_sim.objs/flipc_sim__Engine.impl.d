lib/sim/engine.ml: Effect Heap Int Printexc Printf
