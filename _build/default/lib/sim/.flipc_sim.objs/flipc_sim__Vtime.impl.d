lib/sim/vtime.ml: Float Fmt Int Stdlib
