lib/sim/trace.mli: Format Vtime
