lib/sim/engine.mli: Vtime
