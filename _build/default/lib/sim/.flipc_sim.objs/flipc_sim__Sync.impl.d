lib/sim/sync.ml: Engine List Queue
