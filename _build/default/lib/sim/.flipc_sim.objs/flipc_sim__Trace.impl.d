lib/sim/trace.ml: Fmt List Queue Vtime
