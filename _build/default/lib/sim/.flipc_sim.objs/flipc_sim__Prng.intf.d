lib/sim/prng.mli:
