lib/sim/prng.ml: Int64
