module Sim = Flipc_sim.Engine
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Config = Flipc.Config
module Nameservice = Flipc.Nameservice
module Endpoint_kind = Flipc.Endpoint_kind

type result = {
  messages : int;
  payload_bytes : int;
  elapsed_us : float;
  msgs_per_sec : float;
  mb_per_sec : float;
  drops : int;
}

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Throughput: " ^ Api.error_to_string e)

let run ~machine ~node_a ~node_b ~payload_bytes ~messages ?(send_window = 8)
    ?(recv_depth = 8) () =
  let sim = Machine.sim machine in
  let config = Machine.config machine in
  if payload_bytes > Config.payload_bytes config then
    invalid_arg "Throughput.run: payload exceeds configured message size";
  let ns = Machine.names machine in
  let name = Printf.sprintf "tp-%d-%d" node_a node_b in
  let start = ref 0 and stop = ref 0 and drops = ref 0 in

  Machine.spawn_app ~name:"tp-sink" machine ~node:node_b (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let depth = min recv_depth (config.Config.queue_capacity - 1) in
      for _ = 1 to depth do
        ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
      done;
      Nameservice.register ns name (Api.address api ep);
      let got = ref 0 in
      while !got + !drops < messages do
        (match Api.receive api ep with
        | Some buf ->
            incr got;
            ok (Api.post_receive api ep buf)
        | None -> Mem_port.instr (Api.port api) 5);
        drops := !drops + Api.drops_read_and_reset api ep
      done;
      stop := Sim.now sim);

  Machine.spawn_app ~name:"tp-source" machine ~node:node_a (fun api ->
      let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Api.connect api ep (Nameservice.lookup ns name);
      let window = min send_window (config.Config.queue_capacity - 1) in
      let free = Queue.create () in
      for _ = 1 to window do
        Queue.push (ok (Api.allocate_buffer api)) free
      done;
      start := Sim.now sim;
      for _ = 1 to messages do
        let rec get () =
          (match Api.reclaim api ep with
          | Some b -> Queue.push b free
          | None -> ());
          match Queue.take_opt free with
          | Some b -> b
          | None ->
              Mem_port.instr (Api.port api) 5;
              get ()
        in
        let buf = get () in
        ok (Api.send api ep buf)
      done);

  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let elapsed_us = float_of_int (!stop - !start) /. 1000. in
  let secs = elapsed_us /. 1e6 in
  {
    messages;
    payload_bytes;
    elapsed_us;
    msgs_per_sec = (if secs > 0. then float_of_int messages /. secs else 0.);
    mb_per_sec =
      (if secs > 0. then float_of_int (messages * payload_bytes) /. secs /. 1e6
       else 0.);
    drops = !drops;
  }

let measure ?(config = Config.default) ?(cols = 2) ?(rows = 1) ~payload_bytes
    ~messages ?send_window ?recv_depth () =
  let config = Config.for_payload config payload_bytes in
  let machine = Machine.create ~config (Machine.Mesh { cols; rows }) () in
  run ~machine ~node_a:0 ~node_b:1 ~payload_bytes ~messages ?send_window
    ?recv_depth ()
