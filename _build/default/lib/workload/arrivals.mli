(** Arrival processes for event-driven workloads.

    The paper's environment is "event driven distributed real time": events
    arrive periodically (strictly periodic components, the static
    provisioning case), randomly (Poisson sensor detections), or in bursts
    (a radar sweep illuminating a sector). These generators produce
    inter-arrival gaps in nanoseconds; all randomness is seeded
    (deterministic replays). A generator is stateful — create one per
    stream. *)

type t

(** Fixed inter-arrival gap. *)
val periodic : period_ns:int -> t

(** Uniform jitter of ±[jitter] (fraction, in [0,1]) around the period. *)
val jittered : period_ns:int -> jitter:float -> seed:int -> t

(** Poisson process: exponential inter-arrival times with the given mean. *)
val poisson : mean_ns:int -> seed:int -> t

(** On/off bursts: [burst] arrivals [gap_ns] apart, then an [idle_ns]
    pause before the next burst. *)
val bursty : burst:int -> gap_ns:int -> idle_ns:int -> t

(** The gap before the next arrival; never negative. *)
val next_gap_ns : t -> int

(** Mean inter-arrival time implied by the process (for provisioning
    arithmetic). *)
val mean_gap_ns : t -> float

val describe : t -> string
