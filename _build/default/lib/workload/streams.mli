(** Multi-priority event streams: the paper's motivating real-time
    scenario.

    Several message streams of differing importance flow from a source
    node to a destination node, each over its {e own} endpoint pair — the
    FLIPC resource-control idiom: "the implementation of resource control
    at the endpoint level makes it easy to separate resources for
    different classes of traffic by using different endpoints".

    On the destination, one real-time thread per stream blocks on its
    endpoint's semaphore ({!Flipc.Api.receive_wait}); thread priority
    matches stream priority, so the scheduler — not an interrupting
    upcall — decides who runs when messages arrive. An overloaded
    low-importance stream exhausts only its own posted buffers: its
    messages are discarded and counted, while the high-importance stream's
    latency and delivery are unaffected (the RT-PRIO experiment). *)

type spec = {
  name : string;
  priority : int;  (** receiver thread priority; higher runs first *)
  period_ns : int;  (** sender inter-message gap; 0 = flat out *)
  arrival : Arrivals.t option;
      (** arrival process; overrides [period_ns] when given *)
  count : int;  (** messages the sender will send *)
  recv_buffers : int;  (** posted receive buffers (the stream's resources) *)
  consume_ns : int;  (** receiver processing cost per message *)
  deadline_ns : int;
      (** real-time deadline on send-to-consume latency; 0 = none. Missed
          deadlines are counted per delivered message *)
}

(** Forward-compatible constructor; prefer it over record literals. *)
val make :
  name:string ->
  ?priority:int ->
  ?period_ns:int ->
  ?arrival:Arrivals.t ->
  ?count:int ->
  ?recv_buffers:int ->
  ?consume_ns:int ->
  ?deadline_ns:int ->
  unit ->
  spec

type stream_result = {
  name : string;
  sent : int;
  delivered : int;
  dropped : int;
  deadline_misses : int;  (** delivered messages that blew the deadline *)
  latency : Flipc_stats.Summary.t option;
      (** send-to-consume latency of delivered messages, us *)
}

(** [run ~machine ~node_src ~node_dst ~until specs] drives all streams and
    returns per-stream results. [until] bounds the simulation. *)
val run :
  machine:Flipc.Machine.t ->
  node_src:int ->
  node_dst:int ->
  until:Flipc_sim.Vtime.t ->
  spec list ->
  stream_result list
