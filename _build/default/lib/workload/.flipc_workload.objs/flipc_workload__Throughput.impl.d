lib/workload/throughput.ml: Flipc Flipc_memsim Flipc_sim Printf Queue
