lib/workload/pingpong.ml: Bytes Flipc Flipc_memsim Flipc_sim Flipc_stats List
