lib/workload/pingpong.mli: Flipc Flipc_memsim Flipc_stats
