lib/workload/rpc.mli: Flipc Flipc_stats
