lib/workload/arrivals.mli:
