lib/workload/rpc.ml: Bytes Flipc Flipc_flow Flipc_memsim Flipc_sim Flipc_stats Int32 List Printf Queue
