lib/workload/arrivals.ml: Flipc_sim Printf
