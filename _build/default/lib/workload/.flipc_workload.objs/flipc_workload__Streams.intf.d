lib/workload/streams.mli: Arrivals Flipc Flipc_sim Flipc_stats
