lib/workload/throughput.mli: Flipc
