lib/workload/streams.ml: Arrivals Bytes Flipc Flipc_memsim Flipc_rt Flipc_sim Flipc_stats Int64 List Queue
