(** Streaming message-throughput measurement.

    One sender pushes [messages] fixed-size messages flat out; the receiver
    consumes and reposts eagerly. Reported rate covers first send to last
    delivery. Complements {!Pingpong} (latency) the way the paper's
    bandwidth discussion complements its latency figure, and drives the
    queue-depth design ablation: a deeper endpoint ring lets the engine
    pipeline more messages per scan. *)

type result = {
  messages : int;
  payload_bytes : int;
  elapsed_us : float;
  msgs_per_sec : float;
  mb_per_sec : float;  (** application payload bytes per second *)
  drops : int;
}

val run :
  machine:Flipc.Machine.t ->
  node_a:int ->
  node_b:int ->
  payload_bytes:int ->
  messages:int ->
  ?send_window:int ->
  ?recv_depth:int ->
  unit ->
  result

(** Fresh-machine convenience, like {!Pingpong.measure}. *)
val measure :
  ?config:Flipc.Config.t ->
  ?cols:int ->
  ?rows:int ->
  payload_bytes:int ->
  messages:int ->
  ?send_window:int ->
  ?recv_depth:int ->
  unit ->
  result
