module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Address = Flipc.Address
module Endpoint_kind = Flipc.Endpoint_kind
module Summary = Flipc_stats.Summary

type result = {
  requests : int;
  replies : int;
  server_drops : int;
  latency : Summary.t;
}

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Rpc: " ^ Api.error_to_string e)

let encode_request ~reply_to ~seq =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int (Address.to_word reply_to));
  Bytes.set_int32_le b 4 (Int32.of_int seq);
  b

let decode_reply_to payload =
  Address.of_word (Int32.to_int (Bytes.get_int32_le payload 0))

let poll api ep =
  let port = Api.port api in
  let rec loop () =
    match Api.receive api ep with
    | Some buf -> buf
    | None ->
        Mem_port.instr port 5;
        loop ()
  in
  loop ()

let run ~machine ~server_node ~client_nodes ~requests_per_client
    ~server_work_ns () =
  let sim = Machine.sim machine in
  let clients = List.length client_nodes in
  let total = clients * requests_per_client in
  let server_addr_box = Mailbox.create () in
  let requests = ref 0 in
  let replies = ref 0 in
  let server_drops = ref 0 in
  let latencies = ref [] in

  Machine.spawn_app ~name:"rpc-server" machine ~node:server_node (fun api ->
      let req_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let resp_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      (* Static provisioning: one request buffer per possible outstanding
         request (closed-loop clients => one each). *)
      let needed =
        Flipc_flow.Provision.rpc_buffers ~clients ~outstanding_per_client:1
      in
      for _ = 1 to needed do
        let buf = ok (Api.allocate_buffer api) in
        ok (Api.post_receive api req_ep buf)
      done;
      (* Announce the request endpoint to every client. *)
      for _ = 1 to clients do
        Mailbox.put server_addr_box (Api.address api req_ep)
      done;
      let reply_pool = Queue.create () in
      for _ = 1 to 4 do
        Queue.push (ok (Api.allocate_buffer api)) reply_pool
      done;
      for _ = 1 to total do
        let req = poll api req_ep in
        incr requests;
        let payload = Api.read_payload api req 8 in
        let reply_to = decode_reply_to payload in
        Mem_port.instr (Api.port api) (max 1 (server_work_ns / 20));
        let rec reply_buf () =
          (match Api.reclaim api resp_ep with
          | Some b -> Queue.push b reply_pool
          | None -> ());
          match Queue.take_opt reply_pool with
          | Some b -> b
          | None ->
              Mem_port.instr (Api.port api) 10;
              reply_buf ()
        in
        let resp = reply_buf () in
        Api.write_payload api resp payload;
        ok (Api.send_to api resp_ep resp reply_to);
        ok (Api.post_receive api req_ep req);
        incr replies
      done;
      server_drops := Api.drops_read_and_reset api req_ep);

  List.iteri
    (fun i node ->
      Machine.spawn_app ~name:(Printf.sprintf "rpc-client-%d" i) machine ~node
        (fun api ->
          let resp_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
          let req_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          let server = Mailbox.take server_addr_box in
          Api.connect api req_ep server;
          (* Closed loop: one outstanding request, two receive buffers for
             slack. *)
          for _ = 1 to 2 do
            let buf = ok (Api.allocate_buffer api) in
            ok (Api.post_receive api resp_ep buf)
          done;
          let req_buf = ok (Api.allocate_buffer api) in
          let me = Api.address api resp_ep in
          for seq = 1 to requests_per_client do
            let t0 = Sim.now sim in
            Api.write_payload api req_buf (encode_request ~reply_to:me ~seq);
            ok (Api.send api req_ep req_buf);
            let resp = poll api resp_ep in
            ignore (Api.read_payload api resp 8 : Bytes.t);
            ok (Api.post_receive api resp_ep resp);
            (let rec reclaim_own () =
               match Api.reclaim api req_ep with
               | Some _ -> ()
               | None ->
                   Mem_port.instr (Api.port api) 5;
                   reclaim_own ()
             in
             reclaim_own ());
            latencies := (float_of_int (Sim.now sim - t0) /. 1000.) :: !latencies
          done))
    client_nodes;

  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  {
    requests = !requests;
    replies = !replies;
    server_drops = !server_drops;
    latency = Summary.of_samples !latencies;
  }
