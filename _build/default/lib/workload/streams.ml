module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Address = Flipc.Address
module Endpoint_kind = Flipc.Endpoint_kind
module Rt_semaphore = Flipc_rt.Rt_semaphore
module Summary = Flipc_stats.Summary

type spec = {
  name : string;
  priority : int;
  period_ns : int;
  arrival : Arrivals.t option;
  count : int;
  recv_buffers : int;
  consume_ns : int;
  deadline_ns : int;
}

let make ~name ?(priority = 1) ?(period_ns = 0) ?arrival ?(count = 100)
    ?(recv_buffers = 4) ?(consume_ns = 1_000) ?(deadline_ns = 0) () =
  {
    name;
    priority;
    period_ns;
    arrival;
    count;
    recv_buffers;
    consume_ns;
    deadline_ns;
  }

type stream_result = {
  name : string;
  sent : int;
  delivered : int;
  dropped : int;
  deadline_misses : int;
  latency : Summary.t option;
}

type tally = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable misses : int;
  mutable latencies : float list;
}

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Streams: " ^ Api.error_to_string e)

let stamp_payload sim =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int (Sim.now sim));
  b

let stamp_of_payload b = Int64.to_int (Bytes.get_int64_le b 0)

let run ~machine ~node_src ~node_dst ~until specs =
  let sim = Machine.sim machine in
  let tallies =
    List.map
      (fun (spec : spec) ->
        (spec,
         { sent = 0; delivered = 0; dropped = 0; misses = 0; latencies = [] }))
      specs
  in
  let dst_node = Machine.node machine node_dst in
  let sched = Machine.sched dst_node in
  List.iter
    (fun ((spec : spec), tally) ->
      let addr_box = Mailbox.create () in
      (* Receiver: a real-time thread at the stream's priority, woken by
         the endpoint's semaphore. *)
      let sem = Rt_semaphore.create sched in
      Machine.spawn_app ~name:(spec.name ^ "-setup") machine ~node:node_dst
        (fun api ->
          let ep =
            ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ~semaphore:sem ())
          in
          for _ = 1 to spec.recv_buffers do
            let buf = ok (Api.allocate_buffer api) in
            ok (Api.post_receive api ep buf)
          done;
          Mailbox.put addr_box (Api.address api ep);
          ignore
            (Machine.spawn_thread ~name:(spec.name ^ "-rx") machine
               ~node:node_dst ~priority:spec.priority (fun thr api ->
                 let rec loop () =
                   let buf = Api.receive_wait api ep thr in
                   let sent_at = stamp_of_payload (Api.read_payload api buf 8) in
                   Mem_port.instr (Api.port api)
                     (spec.consume_ns
                     / (Flipc_memsim.Bus.cost_model (Machine.bus dst_node))
                         .Flipc_memsim.Cost_model.instr_ns);
                   tally.delivered <- tally.delivered + 1;
                   let elapsed = Sim.now sim - sent_at in
                   if spec.deadline_ns > 0 && elapsed > spec.deadline_ns then
                     tally.misses <- tally.misses + 1;
                   tally.latencies <-
                     (float_of_int elapsed /. 1000.) :: tally.latencies;
                   ok (Api.post_receive api ep buf);
                   tally.dropped <- tally.dropped + Api.drops_read_and_reset api ep;
                   loop ()
                 in
                 loop ())
              : Flipc_rt.Sched.thread));
      (* Sender: paced process on the source node, cycling over a few send
         buffers; a slow consumer shows up as transport drops, never as
         sender blocking. *)
      Machine.spawn_app ~name:(spec.name ^ "-tx") machine ~node:node_src
        (fun api ->
          let dest = Mailbox.take addr_box in
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          Api.connect api ep dest;
          let pool = List.init 4 (fun _ -> ok (Api.allocate_buffer api)) in
          let free = Queue.create () in
          List.iter (fun b -> Queue.push b free) pool;
          for _ = 1 to spec.count do
            (match Api.reclaim api ep with
            | Some b -> Queue.push b free
            | None -> ());
            (match Queue.take_opt free with
            | Some buf ->
                Api.write_payload api buf (stamp_payload sim);
                ok (Api.send api ep buf);
                tally.sent <- tally.sent + 1
            | None ->
                (* Sender itself out of buffers: spin briefly for reclaim. *)
                let rec wait_buf () =
                  match Api.reclaim api ep with
                  | Some b ->
                      Api.write_payload api b (stamp_payload sim);
                      ok (Api.send api ep b);
                      tally.sent <- tally.sent + 1
                  | None ->
                      Mem_port.instr (Api.port api) 10;
                      wait_buf ()
                in
                wait_buf ());
            (match spec.arrival with
            | Some arrival -> Sim.delay (Arrivals.next_gap_ns arrival)
            | None -> if spec.period_ns > 0 then Sim.delay spec.period_ns)
          done))
    tallies;
  Machine.run ~until machine;
  List.map
    (fun ((spec : spec), tally) ->
      {
        name = spec.name;
        sent = tally.sent;
        delivered = tally.delivered;
        dropped = tally.dropped;
        deadline_misses = tally.misses;
        latency =
          (match tally.latencies with
          | [] -> None
          | ls -> Some (Summary.of_samples ls));
      })
    tallies
