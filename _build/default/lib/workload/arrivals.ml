module Prng = Flipc_sim.Prng

type kind =
  | Periodic of int
  | Jittered of { period_ns : int; jitter : float; prng : Prng.t }
  | Poisson of { mean_ns : int; prng : Prng.t }
  | Bursty of { burst : int; gap_ns : int; idle_ns : int; mutable pos : int }

type t = kind ref

let periodic ~period_ns =
  if period_ns < 0 then invalid_arg "Arrivals.periodic: negative period";
  ref (Periodic period_ns)

let jittered ~period_ns ~jitter ~seed =
  if jitter < 0. || jitter > 1. then
    invalid_arg "Arrivals.jittered: jitter must be in [0, 1]";
  ref (Jittered { period_ns; jitter; prng = Prng.create ~seed })

let poisson ~mean_ns ~seed =
  if mean_ns <= 0 then invalid_arg "Arrivals.poisson: mean must be positive";
  ref (Poisson { mean_ns; prng = Prng.create ~seed })

let bursty ~burst ~gap_ns ~idle_ns =
  if burst < 1 then invalid_arg "Arrivals.bursty: burst must be >= 1";
  ref (Bursty { burst; gap_ns; idle_ns; pos = 0 })

let next_gap_ns t =
  match !t with
  | Periodic p -> p
  | Jittered { period_ns; jitter; prng } ->
      let span = float_of_int period_ns *. jitter in
      let offset = Prng.float prng (2. *. span) -. span in
      max 0 (period_ns + int_of_float offset)
  | Poisson { mean_ns; prng } ->
      int_of_float (Prng.exponential prng ~mean:(float_of_int mean_ns))
  | Bursty b ->
      b.pos <- (b.pos + 1) mod b.burst;
      if b.pos = 0 then b.idle_ns else b.gap_ns

let mean_gap_ns t =
  match !t with
  | Periodic p -> float_of_int p
  | Jittered { period_ns; _ } -> float_of_int period_ns
  | Poisson { mean_ns; _ } -> float_of_int mean_ns
  | Bursty { burst; gap_ns; idle_ns; _ } ->
      float_of_int (((burst - 1) * gap_ns) + idle_ns) /. float_of_int burst

let describe t =
  match !t with
  | Periodic p -> Printf.sprintf "periodic %dns" p
  | Jittered { period_ns; jitter; _ } ->
      Printf.sprintf "periodic %dns +/-%.0f%%" period_ns (jitter *. 100.)
  | Poisson { mean_ns; _ } -> Printf.sprintf "poisson mean %dns" mean_ns
  | Bursty { burst; gap_ns; idle_ns; _ } ->
      Printf.sprintf "bursts of %d @%dns, idle %dns" burst gap_ns idle_ns
