(** The paper's latency measurement: timed two-way message exchanges
    between a pair of nodes.

    "These measurements were obtained via a test program that measures the
    time consumed by multiple two-way message exchanges between a pair of
    nodes. The time for a single message is then obtained by dividing this
    overall time by twice the number of two-way exchanges."

    In addition to the aggregate, each exchange's round-trip time is
    recorded so the start-up transient (short runs vs. steady state) can
    be observed.

    [touch_payload] controls whether the applications write/read the
    payload each exchange. The paper's latency figure reflects transport
    cost, not application payload handling, so FIG4 runs with it off;
    turning it on shows the extra cache traffic of payload access. *)

type result = {
  payload_bytes : int;
  message_bytes : int;  (** wire-level fixed message size used *)
  exchanges : int;
  round_trips_us : float list;  (** per-exchange round-trip times *)
  one_way : Flipc_stats.Summary.t;  (** per-message latency (RTT/2) *)
  aggregate_one_way_us : float;  (** total / (2 * exchanges), paper's metric *)
  drops : int;  (** should be zero when buffers are provisioned *)
}

val run :
  ?touch_payload:bool ->
  ?warmup:int ->
  ?recv_depth:int ->
  machine:Flipc.Machine.t ->
  node_a:int ->
  node_b:int ->
  payload_bytes:int ->
  exchanges:int ->
  unit ->
  result

(** [measure ?config ... ()] builds a fresh two-node-relevant machine with
    [config] (payload size adjusted), runs [run] on the given node pair of
    a [cols x rows] mesh (default 4x4, corner to far corner neighbour
    pair (0,1)), and returns the result. Convenience for benches. *)
val measure :
  ?config:Flipc.Config.t ->
  ?cost:Flipc_memsim.Cost_model.t ->
  ?cols:int ->
  ?rows:int ->
  ?node_a:int ->
  ?node_b:int ->
  ?touch_payload:bool ->
  ?warmup:int ->
  payload_bytes:int ->
  exchanges:int ->
  unit ->
  result
