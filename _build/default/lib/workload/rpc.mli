(** RPC interaction pattern over FLIPC with static provisioning.

    A server with a fixed, known client population — the paper's first
    static-flow-control example: "an RPC interaction structure with a
    fixed set of clients can statically determine the number of buffers
    needed based on the maximum number of clients". Each client runs a
    closed loop (one outstanding request), so the server needs exactly
    [clients] posted request buffers and the transport never discards.

    Requests carry the client's reply address in their payload (FLIPC
    addressing is one-way; reply routing is an application concern). *)

type result = {
  requests : int;
  replies : int;
  server_drops : int;  (** 0 when provisioning is honoured *)
  latency : Flipc_stats.Summary.t;  (** request/response round trip, us *)
}

(** [run ~machine ~server_node ~client_nodes ~requests_per_client
    ~server_work_ns ()] — one client per entry of [client_nodes] (node ids
    may repeat: several clients per node). *)
val run :
  machine:Flipc.Machine.t ->
  server_node:int ->
  client_nodes:int list ->
  requests_per_client:int ->
  server_work_ns:int ->
  unit ->
  result
