module Sim = Flipc_sim.Engine
module Mailbox = Flipc_sim.Sync.Mailbox
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Config = Flipc.Config
module Address = Flipc.Address
module Endpoint_kind = Flipc.Endpoint_kind
module Summary = Flipc_stats.Summary

type result = {
  payload_bytes : int;
  message_bytes : int;
  exchanges : int;
  round_trips_us : float list;
  one_way : Summary.t;
  aggregate_one_way_us : float;
  drops : int;
}

(* Spin-poll a receive endpoint; each probe costs a few instructions, so the
   polling loop advances virtual time just as a real polling loop burns
   cycles. *)
let poll_receive api ep =
  let port = Api.port api in
  let rec loop () =
    match Api.receive api ep with
    | Some buf -> buf
    | None ->
        Mem_port.instr port 5;
        loop ()
  in
  loop ()

let poll_reclaim api ep =
  let port = Api.port api in
  let rec loop () =
    match Api.reclaim api ep with
    | Some buf -> buf
    | None ->
        Mem_port.instr port 5;
        loop ()
  in
  loop ()

let ok = function
  | Ok v -> v
  | Error e -> failwith ("pingpong: " ^ Api.error_to_string e)

let run ?(touch_payload = false) ?(warmup = 2) ?(recv_depth = 4)
    ~machine ~node_a ~node_b ~payload_bytes ~exchanges () =
  let sim = Machine.sim machine in
  let config = Machine.config machine in
  if payload_bytes > Config.payload_bytes config then
    invalid_arg "Pingpong.run: payload exceeds configured message size";
  (* A ring of capacity c holds c-1 buffers; clamp the posted depth. *)
  let recv_depth = min recv_depth (config.Config.queue_capacity - 1) in
  (* Out-of-band address exchange; FLIPC assumes an external name service. *)
  let addr_of_a = Mailbox.create () and addr_of_b = Mailbox.create () in
  let samples = ref [] in
  let total_ns = ref 0 in
  let drops = ref 0 in
  let rounds = warmup + exchanges in

  Machine.spawn_app ~name:"pingpong-echo" machine ~node:node_b (fun api ->
      let recv_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let send_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put addr_of_b (Api.address api recv_ep);
      let reply_to = Mailbox.take addr_of_a in
      Api.connect api send_ep reply_to;
      let recv_bufs =
        List.init recv_depth (fun _ -> ok (Api.allocate_buffer api))
      in
      List.iter (fun b -> ok (Api.post_receive api recv_ep b)) recv_bufs;
      let reply_buf = ok (Api.allocate_buffer api) in
      for _ = 1 to rounds do
        let got = poll_receive api recv_ep in
        if touch_payload then
          ignore (Api.read_payload api got payload_bytes : Bytes.t);
        ok (Api.post_receive api recv_ep got);
        if touch_payload then
          Api.write_payload api reply_buf (Bytes.make payload_bytes 'r');
        ok (Api.send api send_ep reply_buf);
        ignore (poll_reclaim api send_ep : Api.buffer)
      done;
      drops := !drops + Api.drops_read_and_reset api recv_ep);

  Machine.spawn_app ~name:"pingpong-client" machine ~node:node_a (fun api ->
      let recv_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
      let send_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
      Mailbox.put addr_of_a (Api.address api recv_ep);
      let dest = Mailbox.take addr_of_b in
      Api.connect api send_ep dest;
      let recv_bufs =
        List.init recv_depth (fun _ -> ok (Api.allocate_buffer api))
      in
      List.iter (fun b -> ok (Api.post_receive api recv_ep b)) recv_bufs;
      let msg_buf = ok (Api.allocate_buffer api) in
      Api.write_payload api msg_buf (Bytes.make payload_bytes 'm');
      let start_measured = ref 0 in
      for round = 1 to rounds do
        let t0 = Sim.now sim in
        if touch_payload then
          Api.write_payload api msg_buf (Bytes.make payload_bytes 'm');
        ok (Api.send api send_ep msg_buf);
        let got = poll_receive api recv_ep in
        if touch_payload then
          ignore (Api.read_payload api got payload_bytes : Bytes.t);
        ok (Api.post_receive api recv_ep got);
        ignore (poll_reclaim api send_ep : Api.buffer);
        let t1 = Sim.now sim in
        if round > warmup then begin
          if !start_measured = 0 then start_measured := t0;
          samples := float_of_int (t1 - t0) /. 1000. :: !samples;
          total_ns := !total_ns + (t1 - t0)
        end
      done;
      drops := !drops + Api.drops_read_and_reset api recv_ep);

  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let round_trips_us = List.rev !samples in
  let one_way = Summary.of_samples (List.map (fun r -> r /. 2.) round_trips_us) in
  {
    payload_bytes;
    message_bytes = config.Config.message_bytes;
    exchanges;
    round_trips_us;
    one_way;
    aggregate_one_way_us =
      float_of_int !total_ns /. 1000. /. (2. *. float_of_int exchanges);
    drops = !drops;
  }

let measure ?(config = Config.default) ?cost ?(cols = 4) ?(rows = 4)
    ?(node_a = 0) ?(node_b = 1) ?touch_payload ?warmup ~payload_bytes
    ~exchanges () =
  let config = Config.for_payload config payload_bytes in
  let machine = Machine.create ~config ?cost (Machine.Mesh { cols; rows }) () in
  run ?touch_payload ?warmup ~machine ~node_a ~node_b ~payload_bytes ~exchanges
    ()
