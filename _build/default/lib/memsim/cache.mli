(** Per-processor cache model: set-associative, write-back, MESI states.

    The cache holds no data, only tags and states; data always lives in
    {!Shared_mem}. Coherence actions between caches are coordinated by
    {!Bus}; this module is the per-cache tag store plus statistics. *)

type state = Invalid | Shared | Exclusive | Modified

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations_received : int;
      (** lines knocked out of this cache by another processor's write *)
  mutable invalidations_caused : int;
      (** remote copies this processor's writes knocked out *)
  mutable writebacks : int;
  mutable evictions : int;
  mutable locked_rmws : int;
}

type t

(** [create ~name ()] builds a cache. Defaults model the i860: 16 KB,
    32-byte lines, 2-way set associative. [size_bytes] must be a multiple
    of [line_bytes * assoc], and [line_bytes] a power of two. *)
val create :
  ?size_bytes:int -> ?line_bytes:int -> ?assoc:int -> name:string -> unit -> t

val name : t -> string
val line_bytes : t -> int

(** [line_addr t addr] is the address of the start of [addr]'s line. *)
val line_addr : t -> int -> int

val stats : t -> stats
val reset_stats : t -> unit

(** {1 Tag-store operations (used by {!Bus})} *)

(** [find t ~line] is the state of [line] if present (never [Invalid]). *)
val find : t -> line:int -> state option

(** [set_state t ~line s] updates a present line's state; raises if the line
    is absent or [s] is [Invalid] (use {!invalidate}). *)
val set_state : t -> line:int -> state -> unit

(** [insert t ~line s] brings a line in with state [s], evicting the LRU way
    of its set if needed. Returns the evicted line and state, if any. *)
val insert : t -> line:int -> state -> (int * state) option

(** [invalidate t ~line] drops the line; returns its prior state if it was
    present. *)
val invalidate : t -> line:int -> state option

(** [flush t] invalidates everything (cold cache); returns the number of
    Modified lines dropped. Statistics are preserved. *)
val flush : t -> int
