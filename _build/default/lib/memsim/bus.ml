type port = int

type t = {
  cost : Cost_model.t;
  mutable caches : Cache.t array;
  line_invalidations : (int, int) Hashtbl.t;
}

let create ~cost () =
  { cost; caches = [||]; line_invalidations = Hashtbl.create 64 }

let cost_model t = t.cost

let attach t cache =
  (match t.caches with
  | [||] -> ()
  | cs ->
      if Cache.line_bytes cs.(0) <> Cache.line_bytes cache then
        invalid_arg "Bus.attach: mismatched line sizes");
  t.caches <- Array.append t.caches [| cache |];
  Array.length t.caches - 1

let caches t = Array.to_list t.caches

let cache t port =
  if port < 0 || port >= Array.length t.caches then
    invalid_arg "Bus: bad port";
  t.caches.(port)

let count_invalidation t line =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.line_invalidations line) in
  Hashtbl.replace t.line_invalidations line (n + 1)

(* Invalidate [line] in every cache except [port]; returns the number of
   remote copies dropped and whether any was Modified. *)
let invalidate_others t ~port ~line =
  let dropped = ref 0 and dirty = ref false in
  Array.iteri
    (fun i c ->
      if i <> port then
        match Cache.invalidate c ~line with
        | None -> ()
        | Some prior ->
            incr dropped;
            count_invalidation t line;
            (Cache.stats c).invalidations_received <-
              (Cache.stats c).invalidations_received + 1;
            if prior = Modified then dirty := true)
    t.caches;
  (!dropped, !dirty)

(* Downgrade remote Exclusive/Modified copies to Shared; true if a remote
   Modified copy had to be written back. *)
let downgrade_others t ~port ~line =
  let was_dirty = ref false in
  Array.iteri
    (fun i c ->
      if i <> port then
        match Cache.find c ~line with
        | Some Modified ->
            was_dirty := true;
            (Cache.stats c).writebacks <- (Cache.stats c).writebacks + 1;
            Cache.set_state c ~line Shared
        | Some Exclusive -> Cache.set_state c ~line Shared
        | Some (Shared | Invalid) | None -> ())
    t.caches;
  !was_dirty

let any_other_holds t ~port ~line =
  let held = ref false in
  Array.iteri
    (fun i c -> if i <> port then if Cache.find c ~line <> None then held := true)
    t.caches;
  !held

let eviction_cost t = function
  | Some (_, Cache.Modified) -> t.cost.Cost_model.writeback_ns
  | Some _ | None -> 0

let read t ~port ~addr =
  let c = cache t port in
  let line = Cache.line_addr c addr in
  let stats = Cache.stats c in
  match Cache.find c ~line with
  | Some (Shared | Exclusive | Modified) ->
      stats.hits <- stats.hits + 1;
      t.cost.Cost_model.cache_hit_ns
  | Some Invalid | None ->
      stats.misses <- stats.misses + 1;
      let remote_dirty = downgrade_others t ~port ~line in
      let shared = any_other_holds t ~port ~line in
      let state = if shared then Cache.Shared else Cache.Exclusive in
      let evicted = Cache.insert c ~line state in
      let base =
        if remote_dirty then t.cost.Cost_model.remote_dirty_ns
        else t.cost.Cost_model.cache_miss_ns
      in
      base + eviction_cost t evicted

let write t ~port ~addr =
  let c = cache t port in
  let line = Cache.line_addr c addr in
  let stats = Cache.stats c in
  match Cache.find c ~line with
  | Some Modified ->
      stats.hits <- stats.hits + 1;
      t.cost.Cost_model.cache_hit_ns
  | Some Exclusive ->
      stats.hits <- stats.hits + 1;
      Cache.set_state c ~line Modified;
      t.cost.Cost_model.cache_hit_ns
  | Some Shared ->
      stats.hits <- stats.hits + 1;
      let dropped, _ = invalidate_others t ~port ~line in
      stats.invalidations_caused <- stats.invalidations_caused + dropped;
      Cache.set_state c ~line Modified;
      t.cost.Cost_model.cache_hit_ns
      + (dropped * t.cost.Cost_model.invalidate_ns)
  | Some Invalid | None ->
      stats.misses <- stats.misses + 1;
      let dropped, remote_dirty = invalidate_others t ~port ~line in
      stats.invalidations_caused <- stats.invalidations_caused + dropped;
      let evicted = Cache.insert c ~line Modified in
      let base =
        if remote_dirty then t.cost.Cost_model.remote_dirty_ns
        else t.cost.Cost_model.cache_miss_ns
      in
      base
      + (dropped * t.cost.Cost_model.invalidate_ns)
      + eviction_cost t evicted

let locked_rmw t ~port ~addr =
  let c = cache t port in
  let line = Cache.line_addr c addr in
  let stats = Cache.stats c in
  stats.locked_rmws <- stats.locked_rmws + 1;
  (* No cache residency for locks: drop every cached copy, including our
     own, and go straight to memory with the bus locked. *)
  let dropped, _remote_dirty = invalidate_others t ~port ~line in
  stats.invalidations_caused <- stats.invalidations_caused + dropped;
  (match Cache.invalidate c ~line with
  | Some _ -> count_invalidation t line
  | None -> ());
  t.cost.Cost_model.bus_locked_rmw_ns

let dma_access t ~write ~addr ~len =
  if len <= 0 then 0
  else begin
    match t.caches with
    | [||] -> 0
    | cs ->
        let line_bytes = Cache.line_bytes cs.(0) in
        let first = addr land lnot (line_bytes - 1) in
        let stall = ref 0 in
        let line = ref first in
        while !line < addr + len do
          if write then begin
            let dropped, dirty = invalidate_others t ~port:(-1) ~line:!line in
            ignore dropped;
            if dirty then stall := !stall + t.cost.Cost_model.writeback_ns
          end
          else if downgrade_others t ~port:(-1) ~line:!line then
            stall := !stall + t.cost.Cost_model.writeback_ns;
          line := !line + line_bytes
        done;
        !stall
  end

let invalidations_in t ~lo ~hi =
  Hashtbl.fold
    (fun line n acc -> if line >= lo && line < hi then acc + n else acc)
    t.line_invalidations 0

let hot_lines t ~limit =
  let all =
    Hashtbl.fold (fun line n acc -> (line, n) :: acc) t.line_invalidations []
  in
  let sorted = List.sort (fun (_, a) (_, b) -> Int.compare b a) all in
  List.filteri (fun i _ -> i < limit) sorted

let flush_all t = Array.iter (fun c -> ignore (Cache.flush c)) t.caches

let reset_stats t =
  Array.iter Cache.reset_stats t.caches;
  Hashtbl.reset t.line_invalidations
