type t = {
  instr_ns : int;
  cache_hit_ns : int;
  cache_miss_ns : int;
  remote_dirty_ns : int;
  invalidate_ns : int;
  bus_locked_rmw_ns : int;
  writeback_ns : int;
}

let paragon =
  {
    instr_ns = 20;
    cache_hit_ns = 20;
    cache_miss_ns = 400;
    remote_dirty_ns = 1200;
    invalidate_ns = 250;
    bus_locked_rmw_ns = 2800;
    writeback_ns = 300;
  }

let pc_cluster =
  {
    instr_ns = 30;
    cache_hit_ns = 30;
    cache_miss_ns = 500;
    remote_dirty_ns = 900;
    invalidate_ns = 150;
    bus_locked_rmw_ns = 900;
    writeback_ns = 300;
  }

let pp fmt t =
  Fmt.pf fmt
    "{instr=%dns hit=%dns miss=%dns dirty=%dns inval=%dns rmw=%dns wb=%dns}"
    t.instr_ns t.cache_hit_ns t.cache_miss_ns t.remote_dirty_ns t.invalidate_ns
    t.bus_locked_rmw_ns t.writeback_ns
