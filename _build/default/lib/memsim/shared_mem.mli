(** Byte-addressable backing store for a simulated node's physical memory.

    This is always the authoritative copy of the data: the cache model
    ({!Cache}, {!Bus}) affects only {e timing} and statistics, never values.
    That separation keeps functional correctness independent of the timing
    model, which mirrors a write-through view of the coherent memory system
    and is sound here because the simulator runs one process at a time.

    32-bit accesses must be 4-byte aligned, as on the i860. *)

type t

val create : size:int -> t
val size : t -> int

(** {1 Word access} *)

(** [load32 t addr] reads the 32-bit little-endian word at [addr].
    Raises [Invalid_argument] if out of bounds or misaligned. *)
val load32 : t -> int -> int32

val store32 : t -> int -> int32 -> unit

(** [load_int]/[store_int] view the word as a non-negative OCaml int in
    [0, 2^31); most FLIPC fields are small counters and offsets. *)
val load_int : t -> int -> int

val store_int : t -> int -> int -> unit

(** {1 Block access} *)

(** [read_bytes t ~pos ~len] copies out a fresh buffer. *)
val read_bytes : t -> pos:int -> len:int -> Bytes.t

(** [write_bytes t ~pos b] copies [b] into memory at [pos]. *)
val write_bytes : t -> pos:int -> Bytes.t -> unit

(** [blit t ~src ~dst ~len] copies within the same memory. *)
val blit : t -> src:int -> dst:int -> len:int -> unit

val fill : t -> pos:int -> len:int -> char -> unit
