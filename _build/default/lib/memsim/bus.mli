(** Bus-based MESI coherence domain tying together the caches of one node.

    Every timed memory access from a processor goes through [read], [write]
    or [locked_rmw], which update the MESI state of all attached caches and
    return the access's cost in nanoseconds. DMA engines use [dma_access],
    which keeps caches coherent (snooping) without charging any processor.

    Per-line invalidation counts are kept so tests and benches can observe
    false sharing directly. *)

type t
type port = int

val create : cost:Cost_model.t -> unit -> t
val cost_model : t -> Cost_model.t

(** [attach t cache] adds a processor cache to the domain. *)
val attach : t -> Cache.t -> port

val caches : t -> Cache.t list

(** {1 Timed accesses}

    Each returns the nanosecond cost of the access; the caller (normally
    {!Mem_port}) is responsible for advancing virtual time. *)

val read : t -> port:port -> addr:int -> int
val write : t -> port:port -> addr:int -> int

(** Bus-locked read-modify-write (test-and-set). On the modelled hardware
    this bypasses the caches entirely and locks the bus. *)
val locked_rmw : t -> port:port -> addr:int -> int

(** [dma_access t ~write ~addr ~len] makes a DMA transfer coherent: snoops
    Modified lines on reads, invalidates cached copies on writes. Returns the
    extra nanoseconds the DMA engine must stall for writebacks. *)
val dma_access : t -> write:bool -> addr:int -> len:int -> int

(** {1 Observation} *)

(** [invalidations_in t ~lo ~hi] sums, over lines intersecting the byte
    range [\[lo, hi)], the number of invalidations that hit them; the direct
    measure of (true or false) sharing traffic on a data structure. *)
val invalidations_in : t -> lo:int -> hi:int -> int

(** [hot_lines t ~limit] is the [limit] most-invalidated lines with their
    counts, sorted descending. *)
val hot_lines : t -> limit:int -> (int * int) list

(** [flush_all t] empties every cache (models a cold start). *)
val flush_all : t -> unit

val reset_stats : t -> unit
