type state = Invalid | Shared | Exclusive | Modified

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations_received : int;
  mutable invalidations_caused : int;
  mutable writebacks : int;
  mutable evictions : int;
  mutable locked_rmws : int;
}

type way = { mutable tag : int; mutable state : state; mutable last_use : int }

type t = {
  name : string;
  line_bytes : int;
  sets : way array array;
  mutable clock : int;
  stats : stats;
}

let fresh_stats () =
  {
    hits = 0;
    misses = 0;
    invalidations_received = 0;
    invalidations_caused = 0;
    writebacks = 0;
    evictions = 0;
    locked_rmws = 0;
  }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(size_bytes = 16 * 1024) ?(line_bytes = 32) ?(assoc = 2) ~name () =
  if not (is_power_of_two line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if assoc <= 0 then invalid_arg "Cache.create: assoc must be positive";
  if size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg "Cache.create: size not a multiple of line_bytes * assoc";
  let n_sets = size_bytes / (line_bytes * assoc) in
  let make_way _ = { tag = -1; state = Invalid; last_use = 0 } in
  {
    name;
    line_bytes;
    sets = Array.init n_sets (fun _ -> Array.init assoc make_way);
    clock = 0;
    stats = fresh_stats ();
  }

let name t = t.name
let line_bytes t = t.line_bytes
let line_addr t addr = addr land lnot (t.line_bytes - 1)
let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.hits <- 0;
  s.misses <- 0;
  s.invalidations_received <- 0;
  s.invalidations_caused <- 0;
  s.writebacks <- 0;
  s.evictions <- 0;
  s.locked_rmws <- 0

let set_of t line = t.sets.((line / t.line_bytes) mod Array.length t.sets)

let find_way t line =
  let set = set_of t line in
  let rec scan i =
    if i >= Array.length set then None
    else if set.(i).state <> Invalid && set.(i).tag = line then Some set.(i)
    else scan (i + 1)
  in
  scan 0

let touch t way =
  t.clock <- t.clock + 1;
  way.last_use <- t.clock

let find t ~line =
  match find_way t line with
  | None -> None
  | Some way ->
      touch t way;
      Some way.state

let set_state t ~line state =
  if state = Invalid then invalid_arg "Cache.set_state: use invalidate";
  match find_way t line with
  | None -> invalid_arg "Cache.set_state: line not present"
  | Some way ->
      touch t way;
      way.state <- state

let insert t ~line state =
  if state = Invalid then invalid_arg "Cache.insert: Invalid state";
  match find_way t line with
  | Some way ->
      touch t way;
      way.state <- state;
      None
  | None ->
      let set = set_of t line in
      (* Prefer an invalid way; otherwise evict the LRU way. *)
      let victim = ref set.(0) in
      Array.iter
        (fun w ->
          if !victim.state <> Invalid
             && (w.state = Invalid || w.last_use < !victim.last_use)
          then victim := w)
        set;
      let evicted =
        if !victim.state = Invalid then None
        else begin
          t.stats.evictions <- t.stats.evictions + 1;
          if !victim.state = Modified then
            t.stats.writebacks <- t.stats.writebacks + 1;
          Some (!victim.tag, !victim.state)
        end
      in
      !victim.tag <- line;
      !victim.state <- state;
      touch t !victim;
      evicted

let invalidate t ~line =
  match find_way t line with
  | None -> None
  | Some way ->
      let prior = way.state in
      way.state <- Invalid;
      way.tag <- -1;
      Some prior

let flush t =
  let dirty = ref 0 in
  Array.iter
    (fun set ->
      Array.iter
        (fun way ->
          if way.state = Modified then incr dirty;
          way.state <- Invalid;
          way.tag <- -1)
        set)
    t.sets;
  !dirty
