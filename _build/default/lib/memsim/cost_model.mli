(** Timing cost model for simulated memory and processors.

    All FLIPC-visible performance numbers derive from these constants plus
    the network model. They are set in one place so that calibration cannot
    silently diverge between experiments: the [paragon] preset is tuned so
    the FIG4 reproduction lands near the paper's 15.45 us + 6.25 ns/byte
    line, and every other experiment (ablations, baselines) uses the same
    values. *)

type t = {
  instr_ns : int;  (** one ordinary instruction on the application CPU *)
  cache_hit_ns : int;  (** load/store hitting in the local cache *)
  cache_miss_ns : int;  (** line fill from memory *)
  remote_dirty_ns : int;
      (** line fill when another cache holds the line Modified (implies a
          writeback on the owner's side) *)
  invalidate_ns : int;
      (** charged to a writer per remote copy invalidated *)
  bus_locked_rmw_ns : int;
      (** test-and-set with the bus locked; on the Paragon locks have no
          cache residency, so this is dramatically slower than a cached
          store (the first cache problem reported in the paper) *)
  writeback_ns : int;  (** eviction of a Modified line *)
}

(** 50 MHz i860 Paragon MP3 node: 16 KB caches, 32-byte lines, no L2,
    bus-based coherence among the two application processors and the
    message coprocessor. *)
val paragon : t

(** i486-class PC-cluster node used on the Ethernet/SCSI development
    platforms. Slower CPU, but cache behaviour matters less there because
    the wire dominates. *)
val pc_cluster : t

val pp : Format.formatter -> t -> unit
