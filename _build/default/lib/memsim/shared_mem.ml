type t = { data : Bytes.t }

let create ~size =
  if size <= 0 then invalid_arg "Shared_mem.create: size must be positive";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check_word t addr =
  if addr < 0 || addr + 4 > Bytes.length t.data then
    invalid_arg (Printf.sprintf "Shared_mem: address %d out of bounds" addr);
  if addr land 3 <> 0 then
    invalid_arg (Printf.sprintf "Shared_mem: address %d misaligned" addr)

let load32 t addr =
  check_word t addr;
  Bytes.get_int32_le t.data addr

let store32 t addr v =
  check_word t addr;
  Bytes.set_int32_le t.data addr v

let load_int t addr =
  let v = Int32.to_int (load32 t addr) in
  if v < 0 then invalid_arg "Shared_mem.load_int: negative word";
  v

let store_int t addr v =
  if v < 0 || v > 0x3FFFFFFF then
    invalid_arg "Shared_mem.store_int: out of range";
  store32 t addr (Int32.of_int v)

let check_range t pos len =
  if len < 0 || pos < 0 || pos + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Shared_mem: range [%d, %d) out of bounds" pos (pos + len))

let read_bytes t ~pos ~len =
  check_range t pos len;
  Bytes.sub t.data pos len

let write_bytes t ~pos b =
  check_range t pos (Bytes.length b);
  Bytes.blit b 0 t.data pos (Bytes.length b)

let blit t ~src ~dst ~len =
  check_range t src len;
  check_range t dst len;
  Bytes.blit t.data src t.data dst len

let fill t ~pos ~len c =
  check_range t pos len;
  Bytes.fill t.data pos len c
