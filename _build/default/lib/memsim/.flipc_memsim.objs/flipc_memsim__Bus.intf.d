lib/memsim/bus.mli: Cache Cost_model
