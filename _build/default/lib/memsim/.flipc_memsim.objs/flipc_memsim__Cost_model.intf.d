lib/memsim/cost_model.mli: Format
