lib/memsim/cache.mli:
