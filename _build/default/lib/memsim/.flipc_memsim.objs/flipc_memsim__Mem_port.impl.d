lib/memsim/mem_port.ml: Bus Bytes Cache Cost_model Flipc_sim Shared_mem
