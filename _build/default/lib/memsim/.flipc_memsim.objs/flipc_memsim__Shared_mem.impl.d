lib/memsim/shared_mem.ml: Bytes Int32 Printf
