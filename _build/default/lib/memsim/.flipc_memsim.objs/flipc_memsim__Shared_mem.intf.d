lib/memsim/shared_mem.mli: Bytes
