lib/memsim/mem_port.mli: Bus Bytes Cache Flipc_sim Shared_mem
