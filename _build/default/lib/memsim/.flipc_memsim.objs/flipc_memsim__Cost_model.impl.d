lib/memsim/cost_model.ml: Fmt
