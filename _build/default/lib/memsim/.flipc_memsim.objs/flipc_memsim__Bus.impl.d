lib/memsim/bus.ml: Array Cache Cost_model Hashtbl Int List Option
