(** FLIPC over KKT: the portable messaging-engine wiring.

    This reproduces the paper's development strategy — the same
    application-interface library and communication-buffer structures, with
    the messaging engine's transmit path replaced by a KKT RPC per message.
    Because the RPC blocks the engine for a full round trip per message,
    latency and occupancy are far worse than the native optimistic
    transport; the KKT-PORT experiment quantifies the mismatch on all three
    fabrics. *)

(** [transport kkt] is a {!Flipc.Machine.transport_maker} that attaches each
    node to [kkt], serves inbound messages by delivering them to the node's
    engine, and transmits via blocking [Kkt.call]. *)
val transport : Kkt.t -> Flipc.Machine.transport_maker

(** [machine ?config ?cost ?kkt_config kind ()] builds a machine whose
    engines use KKT, like {!Flipc.Machine.create}. *)
val machine :
  ?config:Flipc.Config.t ->
  ?cost:Flipc_memsim.Cost_model.t ->
  ?kkt_config:Kkt.config ->
  ?app_cpus:int ->
  Flipc.Machine.fabric_kind ->
  unit ->
  Flipc.Machine.t
