lib/kkt/kkt.mli: Bytes Flipc_net Flipc_sim
