lib/kkt/kkt_flipc.ml: Bytes Flipc Flipc_net Kkt
