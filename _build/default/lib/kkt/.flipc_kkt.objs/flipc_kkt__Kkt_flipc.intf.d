lib/kkt/kkt_flipc.mli: Flipc Flipc_memsim Kkt
