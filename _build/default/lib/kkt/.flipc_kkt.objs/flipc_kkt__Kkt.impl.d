lib/kkt/kkt.ml: Bytes Flipc_net Flipc_sim Float Hashtbl Printf
