let rpc_buffers ~clients ~outstanding_per_client =
  if clients < 0 || outstanding_per_client < 0 then
    invalid_arg "Provision.rpc_buffers: negative";
  clients * outstanding_per_client

let periodic_buffers ~senders ~messages_per_period =
  if senders < 0 || messages_per_period < 0 then
    invalid_arg "Provision.periodic_buffers: negative";
  2 * senders * messages_per_period

let queue_capacity_for ~buffers =
  if buffers < 1 then invalid_arg "Provision.queue_capacity_for: < 1";
  buffers + 1

let config_for ~base ~buffers =
  let open Flipc.Config in
  {
    base with
    queue_capacity = max base.queue_capacity (queue_capacity_for ~buffers);
    total_buffers = max base.total_buffers (2 * buffers);
  }
