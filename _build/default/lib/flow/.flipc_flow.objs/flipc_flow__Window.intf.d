lib/flow/window.mli: Flipc
