lib/flow/provision.mli: Flipc
