lib/flow/window.ml: Bytes Flipc Flipc_memsim Int32
