lib/flow/provision.ml: Flipc
