(** Static buffer provisioning.

    FLIPC vests flow control in the layers above the transport; in many
    real-time systems "static properties of the application structure may
    remove the need for runtime flow control". This module implements the
    paper's two worked examples as checkable sizing rules. *)

(** [rpc_buffers ~clients ~outstanding_per_client] — an RPC server with a
    fixed client population needs one receive buffer per possible
    outstanding request: no request can ever be discarded, with no runtime
    flow control. *)
val rpc_buffers : clients:int -> outstanding_per_client:int -> int

(** [periodic_buffers ~senders ~messages_per_period] — a strictly periodic
    consumer that drains its endpoint every period can see at most one
    period's arrivals queued while the current period's arrivals land:
    worst case is two periods' worth. *)
val periodic_buffers : senders:int -> messages_per_period:int -> int

(** [queue_capacity_for ~buffers] — ring slots needed to hold [buffers]
    (one slot is kept empty to distinguish full from empty). *)
val queue_capacity_for : buffers:int -> int

(** [config_for ~base ~buffers] adjusts a FLIPC configuration so one
    endpoint can hold [buffers] posted buffers (and the pool can supply
    them). *)
val config_for : base:Flipc.Config.t -> buffers:int -> Flipc.Config.t
