module Api = Flipc.Api
module Mem_port = Flipc_memsim.Mem_port

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Window: " ^ Api.error_to_string e)

(* Credit messages carry the grant count in their first payload word. *)
let encode_count count =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int count);
  b

let decode_count b = Int32.to_int (Bytes.get_int32_le b 0)

type receiver = {
  r_api : Api.t;
  data_ep : Api.endpoint;
  credit_ep : Api.endpoint;
  grant_every : int;
  mutable pending_grants : int;
  mutable received : int;
}

let create_receiver api ~data_ep ~credit_ep ~window ?grant_every () =
  if window < 1 then invalid_arg "Window.create_receiver: window < 1";
  let grant_every =
    match grant_every with Some g -> max 1 g | None -> max 1 (window / 2)
  in
  for _ = 1 to window do
    let buf = ok (Api.allocate_buffer api) in
    ok (Api.post_receive api data_ep buf)
  done;
  { r_api = api; data_ep; credit_ep; grant_every; pending_grants = 0; received = 0 }

let recv r =
  match Api.receive r.r_api r.data_ep with
  | None -> None
  | Some buf ->
      r.received <- r.received + 1;
      Some buf

let send_credit r count =
  (* Reuse a reclaimed credit buffer when available so the credit channel
     needs only a couple of buffers in steady state. *)
  let buf =
    match Api.reclaim r.r_api r.credit_ep with
    | Some buf -> buf
    | None -> ok (Api.allocate_buffer r.r_api)
  in
  Api.write_payload r.r_api buf (encode_count count);
  ok (Api.send r.r_api r.credit_ep buf)

let consumed r buf =
  ok (Api.post_receive r.r_api r.data_ep buf);
  r.pending_grants <- r.pending_grants + 1;
  if r.pending_grants >= r.grant_every then begin
    send_credit r r.pending_grants;
    r.pending_grants <- 0
  end

let messages_received r = r.received

type sender = {
  s_api : Api.t;
  s_data_ep : Api.endpoint;
  credit_recv_ep : Api.endpoint;
  mutable credits : int;
  mutable sent : int;
}

let create_sender api ~data_ep ~credit_recv_ep ~window () =
  if window < 1 then invalid_arg "Window.create_sender: window < 1";
  (* Post buffers to absorb incoming credit messages. *)
  for _ = 1 to 4 do
    let buf = ok (Api.allocate_buffer api) in
    ok (Api.post_receive api credit_recv_ep buf)
  done;
  { s_api = api; s_data_ep = data_ep; credit_recv_ep; credits = window; sent = 0 }

let absorb_credits s =
  let rec loop () =
    match Api.receive s.s_api s.credit_recv_ep with
    | None -> ()
    | Some buf ->
        s.credits <- s.credits + decode_count (Api.read_payload s.s_api buf 4);
        ok (Api.post_receive s.s_api s.credit_recv_ep buf);
        loop ()
  in
  loop ()

let do_send s buf =
  ok (Api.send s.s_api s.s_data_ep buf);
  s.credits <- s.credits - 1;
  s.sent <- s.sent + 1

let send s buf =
  absorb_credits s;
  while s.credits <= 0 do
    Mem_port.instr (Api.port s.s_api) 10;
    absorb_credits s
  done;
  do_send s buf

let try_send s buf =
  absorb_credits s;
  if s.credits > 0 then begin
    do_send s buf;
    true
  end
  else false

let credits_available s = s.credits
let messages_sent s = s.sent
