(** The communication buffer: allocation state and boot-time initialization
    for one node's shared messaging region.

    The region itself lives at offset 0 of the node's {!Flipc_memsim.Shared_mem};
    this module holds the {e library-side} bookkeeping — the endpoint and
    message-buffer free lists — which in the real system lives in the
    application library's address space, shared by all applications
    attached to the node's buffer. *)

type t

(** [create ?base ?ep_offset config mem] validates the configuration,
    checks the region fits in [mem] at byte [base] (default 0), writes the
    global header words (boot time, untimed) and returns a fresh allocator
    with all endpoints and buffers free.

    [ep_offset] is this buffer's first {e global} endpoint number on the
    node: with several communication buffers per node (mutually
    untrusting applications), addresses carry a node-global endpoint
    index, and the engine demultiplexes it to (buffer, local endpoint). *)
val create :
  ?base:int -> ?ep_offset:int -> Config.t -> Flipc_memsim.Shared_mem.t -> t

val config : t -> Config.t
val layout : t -> Layout.t
val mem : t -> Flipc_memsim.Shared_mem.t

(** First global endpoint index of this buffer on its node. *)
val ep_offset : t -> int

(** {1 Allocation}

    These manipulate library-side free lists only; marking the endpoint
    type word in shared memory is done by the caller ({!Api}) through its
    timed port. *)

val alloc_endpoint : t -> int option
val free_endpoint : t -> int -> unit
val alloc_buffer : t -> int option
val free_buffer : t -> int -> unit
val free_buffer_count : t -> int
val free_endpoint_count : t -> int

(** {1 Wakeup-semaphore registry}

    Library-side table mapping endpoints to their optional real-time
    semaphores. The messaging engine's wakeup hook consults it on message
    deposit (the "real time semaphore option": the awakened thread is
    presented to the scheduler rather than run as an upcall). *)

val set_semaphore : t -> ep:int -> Flipc_rt.Rt_semaphore.t option -> unit
val semaphore : t -> ep:int -> Flipc_rt.Rt_semaphore.t option
