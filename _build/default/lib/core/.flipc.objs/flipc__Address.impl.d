lib/core/address.ml: Fmt Int
