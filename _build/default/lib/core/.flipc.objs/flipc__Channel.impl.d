lib/core/channel.ml: Api Bytes Endpoint_kind Flipc_memsim Flipc_rt Int32 Queue
