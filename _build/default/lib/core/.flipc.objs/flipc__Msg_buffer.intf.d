lib/core/msg_buffer.mli: Address Bytes Flipc_memsim Layout
