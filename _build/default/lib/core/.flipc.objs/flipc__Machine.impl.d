lib/core/machine.ml: Address Api Array Bytes Comm_buffer Config Flipc_memsim Flipc_net Flipc_rt Flipc_sim Layout Msg_engine Nameservice Printf
