lib/core/msg_buffer.ml: Address Bytes Config Flipc_memsim Int32 Layout
