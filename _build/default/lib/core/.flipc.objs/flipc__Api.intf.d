lib/core/api.mli: Address Bytes Comm_buffer Config Endpoint_kind Flipc_memsim Flipc_rt Layout Msg_engine
