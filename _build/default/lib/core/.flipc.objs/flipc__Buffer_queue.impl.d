lib/core/buffer_queue.ml: Config Flipc_memsim Layout
