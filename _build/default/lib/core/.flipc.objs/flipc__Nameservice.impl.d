lib/core/nameservice.ml: Address Flipc_sim Hashtbl
