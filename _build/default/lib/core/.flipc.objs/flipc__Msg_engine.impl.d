lib/core/msg_engine.ml: Address Array Buffer_queue Bytes Comm_buffer Config Drop_counter Endpoint_kind Flipc_memsim Flipc_net Flipc_sim Fmt Int Layout List Msg_buffer Printf Queue
