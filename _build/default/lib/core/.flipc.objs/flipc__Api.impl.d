lib/core/api.ml: Address Buffer_queue Comm_buffer Config Drop_counter Endpoint_kind Flipc_memsim Flipc_rt Fun Layout Msg_buffer Msg_engine
