lib/core/endpoint_kind.mli: Format
