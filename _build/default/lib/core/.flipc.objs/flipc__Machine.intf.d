lib/core/machine.mli: Api Bytes Comm_buffer Config Flipc_memsim Flipc_net Flipc_rt Flipc_sim Msg_engine Nameservice
