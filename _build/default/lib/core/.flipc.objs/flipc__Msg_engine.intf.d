lib/core/msg_engine.mli: Address Bytes Comm_buffer Flipc_memsim Flipc_net Flipc_sim
