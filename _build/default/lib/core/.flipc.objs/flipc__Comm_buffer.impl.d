lib/core/comm_buffer.ml: Array Config Flipc_memsim Flipc_rt Fun Layout List
