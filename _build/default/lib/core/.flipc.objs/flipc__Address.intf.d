lib/core/address.mli: Format
