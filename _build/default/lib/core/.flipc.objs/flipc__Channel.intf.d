lib/core/channel.mli: Address Api Bytes Flipc_rt
