lib/core/comm_buffer.mli: Config Flipc_memsim Flipc_rt Layout
