lib/core/layout.ml: Config
