lib/core/endpoint_kind.ml: Fmt
