lib/core/endpoint_group.ml: Api Array Endpoint_kind Flipc_rt List
