lib/core/buffer_queue.mli: Flipc_memsim Layout
