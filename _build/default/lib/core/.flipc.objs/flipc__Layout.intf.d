lib/core/layout.mli: Config
