lib/core/drop_counter.mli: Flipc_memsim Layout
