lib/core/endpoint_group.mli: Api Flipc_rt
