lib/core/drop_counter.ml: Flipc_memsim Layout
