lib/core/nameservice.mli: Address
