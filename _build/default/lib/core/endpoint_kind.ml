type t = Send | Recv

let to_word = function Send -> 1 | Recv -> 2
let of_word = function 1 -> Some Send | 2 -> Some Recv | _ -> None
let free_word = 0
let pp fmt t = Fmt.string fmt (match t with Send -> "send" | Recv -> "recv")
