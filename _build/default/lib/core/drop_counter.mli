(** Wait-free "read-and-reset" discarded-message counter.

    A single memory location cannot implement a resettable counter with
    only atomic loads and stores: a drop occurring between the read and
    the resetting write would be lost. FLIPC instead uses two locations —
    [Drop_count], incremented only by the messaging engine, and
    [Drop_read], written only by the application to snapshot the count at
    its last reset. The current value is the (modular) difference, and
    reset is a copy, so no increment can ever be lost and no location has
    two writers. This is the paper's worked example of its wait-free
    design style. *)

module Mem_port = Flipc_memsim.Mem_port

(** Counters wrap modulo this (2^30, the storable word range). *)
val modulus : int

(** [engine_increment port layout ~ep] records one discarded message.
    Engine side. *)
val engine_increment : Mem_port.t -> Layout.t -> ep:int -> unit

(** [read port layout ~ep] is the number of drops since the last reset.
    Application side; does not reset. *)
val read : Mem_port.t -> Layout.t -> ep:int -> int

(** [read_and_reset port layout ~ep] atomically (with respect to lost
    drops) returns the count since the last reset and starts a new epoch. *)
val read_and_reset : Mem_port.t -> Layout.t -> ep:int -> int
