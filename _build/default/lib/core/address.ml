type t = int

let null = 0
let is_null t = t = 0

let make ~node ~endpoint =
  if node < 0 || node >= 0x3FFF then invalid_arg "Address.make: bad node";
  if endpoint < 0 || endpoint > 0xFFFF then
    invalid_arg "Address.make: bad endpoint";
  ((node + 1) lsl 16) lor endpoint

let node t =
  if is_null t then invalid_arg "Address.node: null address";
  (t lsr 16) - 1

let endpoint t =
  if is_null t then invalid_arg "Address.endpoint: null address";
  t land 0xFFFF

let to_word t = t

let of_word w =
  if w < 0 || w > 0x3FFFFFFF then invalid_arg "Address.of_word: out of range";
  w

let equal = Int.equal

let pp fmt t =
  if is_null t then Fmt.string fmt "<null>"
  else Fmt.pf fmt "%d:%d" (node t) (endpoint t)
