module Condvar = Flipc_sim.Sync.Condvar

type t = { names : (string, Address.t) Hashtbl.t; changed : Condvar.t }

let create () = { names = Hashtbl.create 16; changed = Condvar.create () }

let register t name addr =
  if Hashtbl.mem t.names name then
    invalid_arg ("Nameservice.register: duplicate name " ^ name);
  Hashtbl.replace t.names name addr;
  Condvar.broadcast t.changed

let try_lookup t name = Hashtbl.find_opt t.names name

let rec lookup t name =
  match Hashtbl.find_opt t.names name with
  | Some addr -> addr
  | None ->
      Condvar.wait t.changed;
      lookup t name

let size t = Hashtbl.length t.names
