module Mem_port = Flipc_memsim.Mem_port

let modulus = 0x40000000

let engine_increment port layout ~ep =
  let addr = Layout.ep_field layout ~ep Layout.Drop_count in
  let v = Mem_port.load port addr in
  Mem_port.store port addr ((v + 1) mod modulus)

let diff count snapshot = (count - snapshot + modulus) mod modulus

let read port layout ~ep =
  let count = Mem_port.load port (Layout.ep_field layout ~ep Layout.Drop_count) in
  let snapshot =
    Mem_port.load port (Layout.ep_field layout ~ep Layout.Drop_read)
  in
  diff count snapshot

let read_and_reset port layout ~ep =
  let count = Mem_port.load port (Layout.ep_field layout ~ep Layout.Drop_count) in
  let snap_addr = Layout.ep_field layout ~ep Layout.Drop_read in
  let snapshot = Mem_port.load port snap_addr in
  Mem_port.store port snap_addr count;
  diff count snapshot
