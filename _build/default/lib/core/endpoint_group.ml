module Rt_semaphore = Flipc_rt.Rt_semaphore

type t = {
  api : Api.t;
  sem : Rt_semaphore.t option;
  mutable members : Api.endpoint array;
  mutable next : int;
}

let create ?semaphore api = { api; sem = semaphore; members = [||]; next = 0 }
let semaphore t = t.sem

let add t ep =
  if Api.kind ep <> Endpoint_kind.Recv then
    invalid_arg "Endpoint_group.add: not a receive endpoint";
  if
    Array.exists
      (fun e -> Api.endpoint_index e = Api.endpoint_index ep)
      t.members
  then invalid_arg "Endpoint_group.add: duplicate member";
  (* Physical equality is deliberate: the engine must post exactly the
     group's semaphore for blocking receives to be woken. *)
  (match t.sem with
  | Some sem -> (
      match Api.semaphore ep with
      | Some s when s == sem -> ()
      | Some _ | None ->
          invalid_arg
            "Endpoint_group.add: member must share the group's semaphore")
  | None -> ());
  t.members <- Array.append t.members [| ep |]

let remove t ep =
  t.members <-
    Array.of_list
      (List.filter
         (fun e -> Api.endpoint_index e <> Api.endpoint_index ep)
         (Array.to_list t.members));
  if t.next >= Array.length t.members then t.next <- 0

let members t = Array.to_list t.members
let size t = Array.length t.members

let receive_any t =
  let n = Array.length t.members in
  let rec scan i =
    if i >= n then None
    else
      let idx = (t.next + i) mod n in
      let ep = t.members.(idx) in
      match Api.receive t.api ep with
      | Some buf ->
          t.next <- (idx + 1) mod n;
          Some (ep, buf)
      | None -> scan (i + 1)
  in
  scan 0

let receive_any_wait t thr =
  match t.sem with
  | None -> invalid_arg "Endpoint_group.receive_any_wait: no group semaphore"
  | Some sem ->
      let rec loop () =
        match receive_any t with
        | Some r -> r
        | None ->
            Rt_semaphore.wait sem thr;
            loop ()
      in
      loop ()

let drops t =
  Array.fold_left (fun acc ep -> acc + Api.drops t.api ep) 0 t.members
