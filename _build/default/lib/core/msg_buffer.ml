module Mem_port = Flipc_memsim.Mem_port

type state = Idle | Complete

let state_to_word = function Idle -> 0 | Complete -> 2
let state_of_word = function 0 -> Some Idle | 2 -> Some Complete | _ -> None

let set_dest port layout ~buf addr =
  Mem_port.store port
    (Layout.buffer_addr layout buf + Layout.buf_dest_off)
    (Address.to_word addr)

let dest port layout ~buf =
  Address.of_word
    (Mem_port.load port (Layout.buffer_addr layout buf + Layout.buf_dest_off))

let set_state port layout ~buf s =
  Mem_port.store port
    (Layout.buffer_addr layout buf + Layout.buf_state_off)
    (state_to_word s)

let state port layout ~buf =
  state_of_word
    (Mem_port.load port (Layout.buffer_addr layout buf + Layout.buf_state_off))

let payload_bytes layout = Config.payload_bytes (Layout.config layout)

let check_payload_range layout ~at ~len =
  if at < 0 || len < 0 || at + len > payload_bytes layout then
    invalid_arg "Msg_buffer: payload range overruns fixed message size"

let write_payload port layout ~buf ?(at = 0) data =
  check_payload_range layout ~at ~len:(Bytes.length data);
  let pos = Layout.buffer_addr layout buf + Layout.buf_payload_off + at in
  Mem_port.write_bytes port ~pos data

let read_payload port layout ~buf ?(at = 0) len =
  check_payload_range layout ~at ~len;
  let pos = Layout.buffer_addr layout buf + Layout.buf_payload_off + at in
  Mem_port.read_bytes port ~pos ~len

let region layout ~buf =
  ( Layout.buffer_addr layout buf,
    (Layout.config layout).Config.message_bytes )

let dest_of_image bytes =
  if Bytes.length bytes < 4 then invalid_arg "Msg_buffer.dest_of_image: short";
  Address.of_word (Int32.to_int (Bytes.get_int32_le bytes 0))

let peek_state port layout ~buf =
  Mem_port.peek port (Layout.buffer_addr layout buf + Layout.buf_state_off)
