(** Minimal endpoint name service.

    FLIPC addresses are opaque and system-assigned: "receivers obtain
    endpoint addresses of endpoints they have allocated from FLIPC and
    pass those addresses to senders. FLIPC does not contain a nameservice
    of its own, but assumes that one is available for this purpose."

    This is that assumed external service, for simulations: a map from
    string names to addresses with blocking lookup, so applications can
    rendezvous without hand-rolled mailboxes. One instance is attached to
    every {!Machine}. *)

type t

val create : unit -> t

(** [register t name addr] publishes a name. Re-registering a name is an
    error ([Invalid_argument]): names are single-assignment. *)
val register : t -> string -> Address.t -> unit

(** [lookup t name] blocks (simulation process) until the name appears. *)
val lookup : t -> string -> Address.t

(** [try_lookup t name] is non-blocking. *)
val try_lookup : t -> string -> Address.t option

(** Registered name count (tests). *)
val size : t -> int
