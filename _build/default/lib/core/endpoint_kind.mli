(** Endpoint kinds and their encoding in the [Ep_type] word. *)

type t = Send | Recv

val to_word : t -> int

(** [of_word w] is [None] for the free marker (0) or garbage. *)
val of_word : int -> t option

(** Word value marking an unallocated endpoint. *)
val free_word : int

val pp : Format.formatter -> t -> unit
