(** Opaque FLIPC endpoint addresses.

    Per the paper, destinations are "opaque and determined by the system":
    a receiver obtains the address of an endpoint it allocated and hands it
    to senders out of band (FLIPC itself has no name service). The encoding
    below fits one 32-bit word so an address can live in a message header
    or an endpoint field; the all-zero word is the null address, so freshly
    zeroed memory never aliases a real endpoint. *)

type t

val null : t
val is_null : t -> bool

(** [make ~node ~endpoint] requires [0 <= node < 16383] and
    [0 <= endpoint < 65536]. *)
val make : node:int -> endpoint:int -> t

val node : t -> int
val endpoint : t -> int

(** {1 Word encoding (for storage in the communication buffer)} *)

val to_word : t -> int
val of_word : int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
