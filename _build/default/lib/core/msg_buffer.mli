(** Message buffers inside the communication buffer.

    Every buffer is [Config.message_bytes] long and 32-byte aligned; FLIPC
    internalizes all buffers so applications never face alignment rules.
    The first 8 bytes are FLIPC's: word 0 holds the destination address
    (written by the application library on send; carried across the wire),
    word 1 holds the processing state. The remaining bytes are application
    payload.

    The state word is written by whichever side currently owns the buffer
    (the queue cursors serialize ownership), never concurrently:
    the application resets it to [idle] when queueing, the engine sets
    [complete] when it has sent from or received into the buffer. *)

module Mem_port = Flipc_memsim.Mem_port

type state = Idle | Complete

val state_to_word : state -> int
val state_of_word : int -> state option

(** {1 Timed accessors (application or engine side)} *)

val set_dest : Mem_port.t -> Layout.t -> buf:int -> Address.t -> unit
val dest : Mem_port.t -> Layout.t -> buf:int -> Address.t
val set_state : Mem_port.t -> Layout.t -> buf:int -> state -> unit
val state : Mem_port.t -> Layout.t -> buf:int -> state option

(** [write_payload port layout ~buf ?at data] writes [data] into the
    payload area at byte offset [at] (default 0). Raises
    [Invalid_argument] if it would overrun the payload. *)
val write_payload :
  Mem_port.t -> Layout.t -> buf:int -> ?at:int -> Bytes.t -> unit

(** [read_payload port layout ~buf ?at len] reads [len] payload bytes. *)
val read_payload : Mem_port.t -> Layout.t -> buf:int -> ?at:int -> int -> Bytes.t

(** {1 Wire image}

    The engine DMAs the whole buffer (header + payload) to and from the
    network, so the destination address travels in the message itself —
    the "8 bytes of each message for internal addressing and
    synchronization". *)

(** [(pos, len)] of the full buffer for DMA. *)
val region : Layout.t -> buf:int -> int * int

(** [dest_of_image bytes] decodes word 0 of a wire image. *)
val dest_of_image : Bytes.t -> Address.t

(** {1 Untimed introspection (tests only)} *)

val peek_state : Mem_port.t -> Layout.t -> buf:int -> int
