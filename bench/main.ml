(* Benchmark harness: regenerates every table and figure of the FLIPC
   paper's evaluation (see DESIGN.md's experiment index), plus a Bechamel
   micro-benchmark suite over the hot data-structure operations.

   Usage:
     dune exec bench/main.exe              run everything
     dune exec bench/main.exe -- fig4 ...  run selected experiments
     dune exec bench/main.exe -- list      list experiment ids

   Absolute numbers come from the calibrated simulator (DESIGN.md); the
   load-bearing claim is the SHAPE: who wins, by what factor, where the
   crossovers fall. Each table prints the paper's value next to ours. *)

module Config = Flipc.Config
module Machine = Flipc.Machine
module Pingpong = Flipc_workload.Pingpong
module Streams = Flipc_workload.Streams
module Rpc = Flipc_workload.Rpc
module Nx = Flipc_baselines.Nx
module Pam = Flipc_baselines.Pam
module Sunmos = Flipc_baselines.Sunmos
module Summary = Flipc_stats.Summary
module Regression = Flipc_stats.Regression
module Table = Flipc_stats.Table

let exchanges = 300

(* ------------------------------------------------------------------ *)
(* Machine-readable results: selected experiments write a               *)
(* BENCH_<name>.json next to the human tables so regressions can be     *)
(* diffed without screen-scraping.                                      *)

module Json = Flipc_obs.Json

let summary_fields (s : Summary.t) =
  [
    ("n", Json.Int s.Summary.n);
    ("mean_us", Json.Float s.Summary.mean);
    ("stddev_us", Json.Float s.Summary.stddev);
    ("min_us", Json.Float s.Summary.min);
    ("max_us", Json.Float s.Summary.max);
    ("p50_us", Json.Float s.Summary.p50);
    ("p95_us", Json.Float s.Summary.p95);
    ("p99_us", Json.Float s.Summary.p99);
  ]

let write_bench_json name fields =
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  Json.to_channel oc (Json.Obj (("experiment", Json.String name) :: fields));
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@.@." file

(* ------------------------------------------------------------------ *)
(* FIG4: message latency vs size for optimized FLIPC on the mesh.      *)

let paper_fig4_line bytes = 15.45 +. (0.00625 *. float_of_int bytes)

let fig4 () =
  let sizes = [ 64; 96; 128; 160; 192; 224; 256 ] in
  let t =
    Table.create ~title:"FIG4: FLIPC one-way latency vs message size"
      [ "msg bytes"; "latency us"; "stddev"; "paper line us" ]
  in
  let results =
    List.map
      (fun msg_bytes ->
        let r =
          Pingpong.measure ~payload_bytes:(msg_bytes - Config.header_bytes)
            ~exchanges ()
        in
        Table.add_row t
          [
            Table.cell_i msg_bytes;
            Table.cell_us r.Pingpong.aggregate_one_way_us;
            Table.cell_us r.Pingpong.one_way.Summary.stddev;
            Table.cell_us (paper_fig4_line msg_bytes);
          ];
        (msg_bytes, r))
      sizes
  in
  let points =
    List.map
      (fun (b, r) -> (float_of_int b, r.Pingpong.aggregate_one_way_us))
      results
  in
  Table.print t;
  let fit = Regression.linear points in
  let slope_ns = fit.Regression.slope *. 1000. in
  Fmt.pr "fit:   latency = %.2fus + %.3fns/byte   (r2=%.4f)@."
    fit.Regression.intercept slope_ns fit.Regression.r2;
  Fmt.pr "paper: latency = 15.45us + 6.250ns/byte  (sizes >= 96B)@.";
  Fmt.pr "implied interconnect use: %.0f MB/s (paper: >150 MB/s on 200 MB/s links)@.@."
    (1000. /. slope_ns);
  write_bench_json "fig4"
    [
      ("workload", Json.String "pingpong");
      ("fabric", Json.String "mesh 4x4");
      ("exchanges", Json.Int exchanges);
      ( "points",
        Json.List
          (List.map
             (fun (msg_bytes, r) ->
               Json.Obj
                 (("message_bytes", Json.Int msg_bytes)
                 :: ( "aggregate_one_way_us",
                      Json.Float r.Pingpong.aggregate_one_way_us )
                 :: ("drops", Json.Int r.Pingpong.drops)
                 :: ("paper_line_us", Json.Float (paper_fig4_line msg_bytes))
                 :: summary_fields r.Pingpong.one_way))
             results) );
      ("fit_intercept_us", Json.Float fit.Regression.intercept);
      ("fit_slope_ns_per_byte", Json.Float slope_ns);
      ("fit_r2", Json.Float fit.Regression.r2);
    ]

(* ------------------------------------------------------------------ *)
(* TAB-CMP: 120-byte latency, FLIPC vs NX, PAM, SUNMOS.                *)

let compare () =
  let flipc =
    (Pingpong.measure ~payload_bytes:120 ~exchanges ()).Pingpong
    .aggregate_one_way_us
  in
  let pam = Pam.one_way_latency_us ~payload_bytes:120 ~exchanges () in
  let sunmos = Sunmos.one_way_latency_us ~payload_bytes:120 ~exchanges () in
  let nx = Nx.one_way_latency_us ~payload_bytes:120 ~exchanges () in
  let t =
    Table.create ~title:"TAB-CMP: 120-byte message latency on the Paragon"
      [ "system"; "latency us"; "paper us"; "vs FLIPC" ]
  in
  let row name v paper =
    Table.add_row t
      [ name; Table.cell_us v; paper; Fmt.str "%.2fx" (v /. flipc) ]
  in
  row "FLIPC" flipc "16.2";
  row "PAM" pam "26";
  row "SUNMOS" sunmos "28";
  row "NX (R1.3.2)" nx "46";
  Table.print t;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* ABL-CACHE: the 2x2 lock x layout ablation.                          *)

let cache_ablation () =
  let t =
    Table.create
      ~title:"ABL-CACHE: cache-optimization ablation (120-byte messages)"
      [ "variant"; "latency us"; "stddev"; "delta us" ]
  in
  let measure lock_mode layout_mode =
    let config = { Config.default with Config.lock_mode; layout_mode } in
    (Pingpong.measure ~config ~payload_bytes:120 ~exchanges ()).Pingpong
      .one_way
  in
  let optimized = measure Config.Lock_free Config.Padded in
  let row name (s : Summary.t) =
    Table.add_row t
      [
        name;
        Table.cell_us s.Summary.mean;
        Table.cell_us s.Summary.stddev;
        Fmt.str "+%.2f" (s.Summary.mean -. optimized.Summary.mean);
      ]
  in
  row "lock-free + padded   (tuned)" optimized;
  row "lock-free + packed" (measure Config.Lock_free Config.Packed);
  row "locked    + padded" (measure Config.Test_and_set Config.Padded);
  let worst = measure Config.Test_and_set Config.Packed in
  row "locked    + packed (original)" worst;
  Table.print t;
  Fmt.pr
    "combined improvement: %.1fus, factor %.2fx   (paper: ~15us, \"almost a \
     factor of two\")@.@."
    (worst.Summary.mean -. optimized.Summary.mean)
    (worst.Summary.mean /. optimized.Summary.mean)

(* ------------------------------------------------------------------ *)
(* ABL-CHECKS: engine validity checks.                                 *)

let validity () =
  let measure validity_checks =
    let config = { Config.default with Config.validity_checks } in
    (Pingpong.measure ~config ~payload_bytes:120 ~exchanges ()).Pingpong
      .aggregate_one_way_us
  in
  let off = measure false and on = measure true in
  let t =
    Table.create ~title:"ABL-CHECKS: engine validity checks (120-byte messages)"
      [ "configuration"; "latency us" ]
  in
  Table.add_row t [ "checks off"; Table.cell_us off ];
  Table.add_row t [ "checks on"; Table.cell_us on ];
  Table.print t;
  Fmt.pr "cost of checks: +%.2fus   (paper: +2us)@.@." (on -. off)

(* ------------------------------------------------------------------ *)
(* TRANSIENT: short runs vs steady state.                              *)

let transient () =
  let t =
    Table.create
      ~title:"TRANSIENT: cache start-up transient (120-byte messages)"
      [ "exchanges"; "latency us"; "vs steady us" ]
  in
  let steady =
    (Pingpong.measure ~payload_bytes:120 ~exchanges:512 ~warmup:0 ()).Pingpong
    .aggregate_one_way_us
  in
  List.iter
    (fun n ->
      let r = Pingpong.measure ~payload_bytes:120 ~exchanges:n ~warmup:0 () in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_us r.Pingpong.aggregate_one_way_us;
          Fmt.str "%+.2f" (r.Pingpong.aggregate_one_way_us -. steady);
        ])
    [ 4; 16; 64; 256; 512 ];
  Table.print t;
  Fmt.pr
    "paper: small exchange counts are ~3us faster than steady state (cold@.\
     caches see plain misses where the steady state pays dirty-line@.\
     transfers); the reproduction shows the same sign with a smaller@.\
     magnitude — see EXPERIMENTS.md.@.@."

(* ------------------------------------------------------------------ *)
(* PAM-SMALL: very small messages, where PAM wins.                     *)

let pam_small () =
  let t =
    Table.create ~title:"PAM-SMALL: 20-byte application messages"
      [ "system"; "latency us"; "paper" ]
  in
  let flipc20 =
    (Pingpong.measure ~payload_bytes:20 ~exchanges ()).Pingpong
    .aggregate_one_way_us
  in
  let pam20 = Pam.one_way_latency_us ~payload_bytes:20 ~exchanges () in
  Table.add_row t [ "PAM (28B packets)"; Table.cell_us pam20; "<10" ];
  Table.add_row t
    [ "FLIPC (64B min message)"; Table.cell_us flipc20; "~a third slower" ];
  Table.print t;
  Fmt.pr "PAM advantage at 20B: %.0f%%   (paper: \"about a third faster\")@.@."
    ((flipc20 -. pam20) /. flipc20 *. 100.)

(* ------------------------------------------------------------------ *)
(* KKT-PORT: the portable KKT engine on all three platforms.           *)

let kkt_port () =
  let t =
    Table.create
      ~title:"KKT-PORT: native vs KKT (RPC-per-message) engines, 120 bytes"
      [ "engine / platform"; "latency us"; "vs native mesh" ]
  in
  let native =
    (Pingpong.measure ~payload_bytes:120 ~exchanges ()).Pingpong
    .aggregate_one_way_us
  in
  let kkt_on kind cost =
    let machine = Flipc_kkt.Kkt_flipc.machine ~cost kind () in
    (Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:120
       ~exchanges:100 ())
      .Pingpong
      .aggregate_one_way_us
  in
  let native_on kind =
    let machine =
      Machine.create ~cost:Flipc_memsim.Cost_model.pc_cluster kind ()
    in
    (Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:120
       ~exchanges:100 ())
      .Pingpong
      .aggregate_one_way_us
  in
  let row name v =
    Table.add_row t [ name; Table.cell_us v; Fmt.str "%.1fx" (v /. native) ]
  in
  row "native / Paragon mesh" native;
  row "KKT / Paragon mesh"
    (kkt_on (Machine.Mesh { cols = 2; rows = 1 }) Flipc_memsim.Cost_model.paragon);
  row "native / SCSI cluster" (native_on (Machine.Scsi { nodes = 2 }));
  row "KKT / SCSI cluster"
    (kkt_on (Machine.Scsi { nodes = 2 }) Flipc_memsim.Cost_model.pc_cluster);
  row "native / Ethernet cluster" (native_on (Machine.Ethernet { nodes = 2 }));
  row "KKT / Ethernet cluster"
    (kkt_on (Machine.Ethernet { nodes = 2 }) Flipc_memsim.Cost_model.pc_cluster);
  Table.print t;
  Fmt.pr
    "same library + communication buffer on all platforms (the paper's@.\
     development strategy); the RPC transport shows why it \"is not a good@.\
     match to the one way messages used by FLIPC\".@.@."

(* ------------------------------------------------------------------ *)
(* DROP-FLOW: discards, window flow control, static provisioning.      *)

let flow () =
  (* Overloaded producer vs slow consumer, without flow control. *)
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let unprotected =
    Streams.run ~machine ~node_src:0 ~node_dst:1
      ~until:(Flipc_sim.Vtime.ms 30)
      [
        Streams.make ~name:"burst" ~priority:1 ~period_ns:10_000 ~count:2_000
          ~recv_buffers:2 ~consume_ns:60_000 ();
      ]
  in
  let t =
    Table.create
      ~title:"DROP-FLOW: optimistic discards and the layers above FLIPC"
      [ "scenario"; "sent"; "delivered"; "discarded" ]
  in
  (match unprotected with
  | [ r ] ->
      Table.add_row t
        [
          "overload, no flow control";
          Table.cell_i r.Streams.sent;
          Table.cell_i r.Streams.delivered;
          Table.cell_i r.Streams.dropped;
        ]
  | _ -> ());
  (* The RPC workload uses the static client-count rule: zero discards. *)
  let machine2 = Machine.create (Machine.Mesh { cols = 4; rows = 4 }) () in
  let rpc =
    Rpc.run ~machine:machine2 ~server_node:5 ~client_nodes:[ 0; 3; 12; 15 ]
      ~requests_per_client:50 ~server_work_ns:2_000 ()
  in
  Table.add_row t
    [
      "RPC, static provisioning";
      Table.cell_i rpc.Rpc.requests;
      Table.cell_i rpc.Rpc.replies;
      Table.cell_i rpc.Rpc.server_drops;
    ];
  Table.print t;
  Fmt.pr
    "window flow control (Flipc_flow.Window) achieves zero discards under@.\
     the same overload; see test/test_flow.ml and examples/.@.@."

(* ------------------------------------------------------------------ *)
(* BW-SLOPE: bandwidth story.                                          *)

let bandwidth () =
  let sizes = [ 64; 128; 256 ] in
  let points =
    List.map
      (fun msg ->
        let r =
          Pingpong.measure ~payload_bytes:(msg - Config.header_bytes)
            ~exchanges:200 ()
        in
        (float_of_int msg, r.Pingpong.aggregate_one_way_us))
      sizes
  in
  let fit = Regression.linear points in
  let flipc_bw = 1000. /. (fit.Regression.slope *. 1000.) in
  let t =
    Table.create ~title:"BW-SLOPE: interconnect bandwidth use"
      [ "system"; "MB/s"; "paper MB/s"; "how" ]
  in
  Table.add_row t
    [
      "FLIPC (per-message slope)";
      Table.cell_f ~decimals:0 flipc_bw;
      ">150";
      "1 / latency slope";
    ];
  Table.add_row t
    [
      "SUNMOS (4MB stream)";
      Table.cell_f ~decimals:0 (Sunmos.bandwidth_mb_s ~bytes:4_000_000 ());
      "~160 (best software)";
      "single-packet stream";
    ];
  Table.add_row t
    [
      "NX (4MB stream)";
      Table.cell_f ~decimals:0 (Nx.bandwidth_mb_s ~bytes:4_000_000 ());
      ">140";
      "rendezvous + DMA";
    ];
  Table.add_row t
    [
      "PAM bulk (1MB put)";
      Table.cell_f ~decimals:0 (Pam.bulk_bandwidth_mb_s ~bytes:1_000_000 ());
      "n/a";
      "remote memory write";
    ];
  Table.add_row t [ "hardware peak"; "200"; "200"; "link rate" ];
  Table.print t;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* RT-PRIO: priority/resource isolation.                               *)

let rt_isolation () =
  let run_with_interference interference =
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let specs =
      Streams.make ~name:"high" ~priority:10 ~period_ns:100_000 ~count:300
        ~recv_buffers:8 ~consume_ns:8_000 ~deadline_ns:100_000 ()
      ::
      (if interference then
         [
           Streams.make ~name:"low" ~priority:1 ~period_ns:10_000 ~count:3_000
             ~recv_buffers:2 ~consume_ns:80_000 ();
         ]
       else [])
    in
    Streams.run ~machine ~node_src:0 ~node_dst:1
      ~until:(Flipc_sim.Vtime.ms 40) specs
  in
  let alone = List.hd (run_with_interference false) in
  let loaded = run_with_interference true in
  let high = List.hd loaded in
  let low = List.nth loaded 1 in
  let t =
    Table.create
      ~title:"RT-PRIO: high-priority stream isolation under low-priority overload"
      [ "stream"; "delivered"; "discarded"; "misses"; "mean us"; "p95 us"; "max us" ]
  in
  let row name (r : Streams.stream_result) =
    match r.Streams.latency with
    | Some l ->
        Table.add_row t
          [
            name;
            Fmt.str "%d/%d" r.Streams.delivered r.Streams.sent;
            Table.cell_i r.Streams.dropped;
            Table.cell_i r.Streams.deadline_misses;
            Table.cell_us l.Summary.mean;
            Table.cell_us l.Summary.p95;
            Table.cell_us l.Summary.max;
          ]
    | None -> Table.add_row t [ name; "0"; "-"; "-"; "-"; "-"; "-" ]
  in
  row "high (alone)" alone;
  row "high (under overload)" high;
  row "low  (overloaded)" low;
  Table.print t;
  (match (alone.Streams.latency, high.Streams.latency) with
  | Some a, Some b ->
      Fmt.pr
        "high-priority latency shift under overload: %+.1fus mean; drops: %d@."
        (b.Summary.mean -. a.Summary.mean)
        high.Streams.dropped
  | _ -> ());
  Fmt.pr
    "per-endpoint resources + scheduler-mediated wakeup keep the important@.\
     traffic unaffected while the unimportant stream's excess is discarded@.\
     from its own buffers only.@.@."

(* ------------------------------------------------------------------ *)
(* LOGP: LogP-style transport parameters of FLIPC (era-standard way to  *)
(* characterize a messaging layer: L latency, o overheads, g gap).      *)

let logp () =
  (* Send/receive overheads: virtual CPU time inside the library calls,
     measured directly on a quiet two-node machine. *)
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let sim = Machine.sim machine in
  let ns = Machine.names machine in
  let o_send = ref [] in
  let rounds = 100 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let ok = Result.get_ok in
      let ep = ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Recv ()) in
      for _ = 1 to 8 do
        ok (Flipc.Api.post_receive api ep (ok (Flipc.Api.allocate_buffer api)))
      done;
      Flipc.Nameservice.register ns "logp" (Flipc.Api.address api ep);
      for _ = 1 to rounds do
        let rec wait () =
          match Flipc.Api.receive api ep with
          | Some buf -> buf
          | None ->
              Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 5;
              wait ()
        in
        let buf = wait () in
        ok (Flipc.Api.post_receive api ep buf)
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let ok = Result.get_ok in
      let dest = Flipc.Nameservice.lookup ns "logp" in
      let ep = ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Send ()) in
      Flipc.Api.connect api ep dest;
      let buf = ok (Flipc.Api.allocate_buffer api) in
      for _ = 1 to rounds do
        let t0 = Flipc_sim.Engine.now sim in
        ok (Flipc.Api.send api ep buf);
        let t1 = Flipc_sim.Engine.now sim in
        o_send := (float_of_int (t1 - t0) /. 1000.) :: !o_send;
        let rec reclaim () =
          match Flipc.Api.reclaim api ep with
          | Some _ -> ()
          | None ->
              Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 5;
              reclaim ()
        in
        reclaim ();
        Flipc_sim.Engine.delay (Flipc_sim.Vtime.us 40)
      done);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let os = Summary.mean !o_send in
  (* Receive overhead: one acquire on a ready endpoint, measured under a
     dedicated micro machine for cleanliness. *)
  let l_oneway =
    (Pingpong.measure ~payload_bytes:120 ~exchanges:200 ()).Pingpong
    .aggregate_one_way_us
  in
  let tp =
    Flipc_workload.Throughput.measure ~payload_bytes:120 ~messages:500 ()
  in
  let g = 1.0e6 /. tp.Flipc_workload.Throughput.msgs_per_sec in
  let t =
    Table.create ~title:"LOGP: LogP-style parameters of FLIPC (120B messages)"
      [ "parameter"; "value"; "meaning" ]
  in
  Table.add_row t
    [ "o_s (send overhead)"; Fmt.str "%.2f us" os;
      "CPU time inside Api.send" ];
  Table.add_row t
    [ "L (one-way latency)"; Fmt.str "%.2f us" l_oneway;
      "send call to receive return" ];
  Table.add_row t
    [ "g (gap)"; Fmt.str "%.2f us" g; "1 / streaming message rate" ];
  Table.add_row t
    [ "rate"; Fmt.str "%.0f kmsg/s"
        (tp.Flipc_workload.Throughput.msgs_per_sec /. 1000.);
      "sustained streaming" ];
  Table.print t;
  Fmt.pr
    "the wait-free send is far cheaper than the end-to-end latency (the@.\
     engine + wire own most of L), and the gap is set by the engine's@.\
     per-message processing, not by the application.@.@."

(* ------------------------------------------------------------------ *)
(* CONGESTION: incast on the contended mesh.                           *)

let congestion () =
  let run senders =
    let machine = Machine.create (Machine.Mesh { cols = 4; rows = 4 }) () in
    let ns = Machine.names machine in
    let per_sender = 100 in
    let done_at = ref 0 in
    let start = ref max_int in
    Machine.spawn_app machine ~node:0 (fun api ->
        let ok = Result.get_ok in
        let ep = ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Recv ()) in
        for _ = 1 to 8 do
          ok (Flipc.Api.post_receive api ep (ok (Flipc.Api.allocate_buffer api)))
        done;
        for _ = 1 to senders do
          Flipc.Nameservice.register ns
            (Fmt.str "sink-%d" (Flipc.Nameservice.size ns))
            (Flipc.Api.address api ep)
        done;
        let got = ref 0 in
        let drops = ref 0 in
        while !got + !drops < senders * per_sender do
          (match Flipc.Api.receive api ep with
          | Some buf ->
              incr got;
              ok (Flipc.Api.post_receive api ep buf)
          | None -> Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 5);
          drops := !drops + Flipc.Api.drops_read_and_reset api ep
        done;
        done_at := Flipc_sim.Engine.now (Machine.sim machine));
    for i = 0 to senders - 1 do
      let node = 15 - i in
      Machine.spawn_app machine ~node (fun api ->
          let ok = Result.get_ok in
          let dest = Flipc.Nameservice.lookup ns (Fmt.str "sink-%d" i) in
          let ep = ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Send ()) in
          Flipc.Api.connect api ep dest;
          let free = Queue.create () in
          for _ = 1 to 4 do
            Queue.push (ok (Flipc.Api.allocate_buffer api)) free
          done;
          start := min !start (Flipc_sim.Engine.now (Machine.sim machine));
          for _ = 1 to per_sender do
            let rec get () =
              (match Flipc.Api.reclaim api ep with
              | Some b -> Queue.push b free
              | None -> ());
              match Queue.take_opt free with
              | Some b -> b
              | None ->
                  Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 5;
                  get ()
            in
            match Flipc.Api.send api ep (get ()) with
            | Ok () -> ()
            | Error _ -> ()
          done)
    done;
    Machine.run machine;
    Machine.stop_engines machine;
    Machine.run machine;
    let elapsed = float_of_int (!done_at - !start) /. 1000. in
    let total = senders * per_sender in
    let stall =
      Flipc_net.Mesh.contention_stall_ns (Machine.fabric machine)
    in
    (float_of_int total /. elapsed *. 1000., stall)
  in
  let t =
    Table.create ~title:"CONGESTION: incast onto one node (4x4 mesh, 128B)"
      [ "senders"; "kmsg/s into sink"; "mesh stall us" ]
  in
  List.iter
    (fun senders ->
      let rate, stall = run senders in
      Table.add_row t
        [
          Table.cell_i senders;
          Table.cell_f ~decimals:0 rate;
          Table.cell_f ~decimals:1 (float_of_int stall /. 1000.);
        ])
    [ 1; 2; 4; 8 ];
  Table.print t;
  Fmt.pr
    "the sink engine's per-message processing, not the mesh, is the incast@.\
     bottleneck -- consistent with the paper's focus on engine and cache@.\
     costs over raw wire bandwidth.@.@."

(* ------------------------------------------------------------------ *)
(* BREAKDOWN: where a one-way message's time goes (Figure 2's steps).  *)

let breakdown () =
  (* Every machine stamps its messages at send-enqueue, engine transmit,
     wire arrival and application dequeue (Flipc_obs.Latency), so the
     decomposition falls out of a plain pingpong run — no bespoke
     transport wrapper, and the three stages sum to the total per
     message by construction. *)
  let module Latency = Flipc_obs.Latency in
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let r =
    Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:120
      ~exchanges:200 ()
  in
  let lat = Flipc_obs.Obs.latency (Machine.obs machine) in
  let stage_summary st = Latency.stage_summary lat st in
  let total =
    match stage_summary Latency.Total_stage with
    | Some s -> s
    | None -> failwith "breakdown: no latency samples recorded"
  in
  let t =
    Table.create
      ~title:"BREAKDOWN: where a 120B one-way message spends its time"
      [ "stage (Figure 2 steps)"; "mean us"; "p50 us"; "p99 us"; "share" ]
  in
  let stages =
    [
      ("sender: app enqueue -> engine transmit (2-3)", Latency.Send_stage);
      ("wire: injection + mesh flight (3)", Latency.Wire_stage);
      ("receiver: arrival -> app dequeue (3-4)", Latency.Recv_stage);
      ("total one-way (2-4)", Latency.Total_stage);
    ]
  in
  let measured =
    List.filter_map
      (fun (label, st) ->
        Option.map (fun s -> (label, st, s)) (stage_summary st))
      stages
  in
  List.iter
    (fun (label, _, (s : Summary.t)) ->
      Table.add_row t
        [
          label;
          Table.cell_us s.Summary.mean;
          Table.cell_us s.Summary.p50;
          Table.cell_us s.Summary.p99;
          Fmt.str "%.0f%%" (s.Summary.mean /. total.Summary.mean *. 100.);
        ])
    measured;
  Table.print t;
  Fmt.pr "messages: %d paired, %d unmatched, %d dropped in flight@."
    total.Summary.n (Latency.unmatched lat)
    (Latency.dropped_in_flight lat);
  Fmt.pr
    "both engine passes plus discovery dominate; the wire itself is a@.\
     small slice -- the paper's premise that the messaging system, not@.\
     the interconnect, sets medium-message latency.@.@.";
  write_bench_json "breakdown"
    [
      ("workload", Json.String "pingpong");
      ("fabric", Json.String "mesh 2x1");
      ("message_bytes", Json.Int r.Pingpong.message_bytes);
      ("exchanges", Json.Int r.Pingpong.exchanges);
      ("drops", Json.Int r.Pingpong.drops);
      ("unmatched", Json.Int (Latency.unmatched lat));
      ("dropped_in_flight", Json.Int (Latency.dropped_in_flight lat));
      ( "stages",
        Json.Obj
          (List.map
             (fun (_, st, s) ->
               (Latency.stage_name st, Json.Obj (summary_fields s)))
             measured) );
    ]

(* ------------------------------------------------------------------ *)
(* DESIGN: ablations of this implementation's own design choices (not  *)
(* paper figures): endpoint queue depth, engine poll interval, mesh    *)
(* distance. These back the parameter decisions recorded in DESIGN.md. *)

let design_ablations () =
  (* Queue depth: latency is insensitive, streaming throughput is not. *)
  let t =
    Table.create
      ~title:"DESIGN-1: endpoint queue depth (streaming 120B messages)"
      [ "ring slots"; "usable depth"; "kmsg/s"; "latency us" ]
  in
  List.iter
    (fun queue_capacity ->
      let config = { Config.default with Config.queue_capacity } in
      let tp =
        Flipc_workload.Throughput.measure ~config ~payload_bytes:120
          ~messages:400 ()
      in
      let lat =
        (Pingpong.measure ~config ~payload_bytes:120 ~exchanges:100 ()).Pingpong
        .aggregate_one_way_us
      in
      Table.add_row t
        [
          Table.cell_i queue_capacity;
          Table.cell_i (queue_capacity - 1);
          Table.cell_f ~decimals:0
            (tp.Flipc_workload.Throughput.msgs_per_sec /. 1000.);
          Table.cell_us lat;
        ])
    [ 2; 3; 5; 9; 17 ];
  Table.print t;
  Fmt.pr
    "latency needs only one slot; pipelining (throughput) is what deeper@.\
     rings buy -- the default of 9 slots leaves throughput within a few@.\
     percent of its asymptote.@.@.";
  (* Engine poll interval: the polling-cost component of latency. *)
  let t2 =
    Table.create ~title:"DESIGN-2: engine poll interval vs latency (120B)"
      [ "poll ns"; "latency us" ]
  in
  List.iter
    (fun engine_poll_ns ->
      let config = { Config.default with Config.engine_poll_ns } in
      let lat =
        (Pingpong.measure ~config ~payload_bytes:120 ~exchanges:100 ()).Pingpong
        .aggregate_one_way_us
      in
      Table.add_row t2 [ Table.cell_i engine_poll_ns; Table.cell_us lat ])
    [ 200; 450; 700; 1500; 3000 ];
  Table.print t2;
  Fmt.pr
    "each engine on the path contributes about half an iteration of@.\
     discovery delay, so latency moves with the poll interval.@.@.";
  (* Mesh distance: dimension-order hops are cheap. *)
  let t3 =
    Table.create ~title:"DESIGN-3: mesh distance (120B, 8x8 mesh)"
      [ "hops"; "latency us" ]
  in
  List.iter
    (fun (node_b, hops) ->
      let lat =
        (Pingpong.measure ~cols:8 ~rows:8 ~node_a:0 ~node_b ~payload_bytes:120
           ~exchanges:100 ())
          .Pingpong
          .aggregate_one_way_us
      in
      Table.add_row t3 [ Table.cell_i hops; Table.cell_us lat ])
    [ (1, 1); (7, 7); (63, 14) ];
  Table.print t3;
  Fmt.pr
    "at 40ns/hop the 2-D mesh makes placement nearly irrelevant for@.\
     latency -- the property that let the paper measure one node pair.@.@."

(* ------------------------------------------------------------------ *)
(* EXT-BULK: the bulk-transfer companion — message-size crossover.     *)
(* An extension experiment (the paper's future work, implemented), not *)
(* a paper figure: where does one-sided bulk beat per-message FLIPC?   *)

let bulk_crossover () =
  let t =
    Table.create
      ~title:
        "EXT-BULK: FLIPC messages vs bulk transfer across sizes (one-way)"
      [ "bytes"; "FLIPC us (msgs)"; "bulk us"; "winner" ]
  in
  let flipc_time bytes =
    (* Fixed 256-byte messages (248B payload): latency per message from a
       quick ping-pong, times the number of messages needed. *)
    let per_msg =
      (Pingpong.measure ~payload_bytes:248 ~exchanges:100 ()).Pingpong
      .aggregate_one_way_us
    in
    let msgs = (bytes + 247) / 248 in
    float_of_int msgs *. per_msg
  in
  let bulk_time bytes =
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let bulk = Flipc_bulk.Bulk.create machine in
    let region = Flipc_bulk.Bulk.export bulk ~node:1 ~len:(max bytes 64) in
    let sim = Machine.sim machine in
    let result = ref 0. in
    Machine.spawn_app machine ~node:0 (fun _api ->
        let t0 = Flipc_sim.Engine.now sim in
        Flipc_bulk.Bulk.put bulk ~from:0 region (Bytes.create bytes);
        result := float_of_int (Flipc_sim.Engine.now sim - t0) /. 1000.);
    Machine.run machine;
    Machine.stop_engines machine;
    Machine.run machine;
    !result
  in
  let per_msg_us = flipc_time 248 in
  List.iter
    (fun bytes ->
      let f = flipc_time bytes and b = bulk_time bytes in
      Table.add_row t
        [
          Table.cell_i bytes;
          Table.cell_us f;
          Table.cell_us b;
          (if f < b then "FLIPC" else "bulk");
        ])
    [ 128; 248; 1024; 4096; 16384; 65536 ];
  Table.print t;
  Fmt.pr
    "medium messages belong to FLIPC (%.1fus each); past a few KB the@.\
     rendezvous bulk path wins — the \"all message sizes\" integration the@.\
     paper calls for (future work, implemented; PAM had the same split).@.@."
    per_msg_us

(* ------------------------------------------------------------------ *)
(* EXT-PRIO: transport prioritization + capacity control (extension).  *)

let transport_prio () =
  let measure ~prioritized =
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let sim = Machine.sim machine in
    let ns = Machine.names machine in
    let samples = ref [] in
    let flood_sent = ref 0 in
    (* Receiver: two endpoints, drained constantly. *)
    Machine.spawn_app machine ~node:1 (fun api ->
        let ok = Result.get_ok in
        let rx_hi = ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Recv ()) in
        let rx_lo = ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Recv ()) in
        for _ = 1 to 8 do
          ok (Flipc.Api.post_receive api rx_hi (ok (Flipc.Api.allocate_buffer api)));
          ok (Flipc.Api.post_receive api rx_lo (ok (Flipc.Api.allocate_buffer api)))
        done;
        Flipc.Nameservice.register ns "hi" (Flipc.Api.address api rx_hi);
        Flipc.Nameservice.register ns "lo" (Flipc.Api.address api rx_lo);
        let deadline = Flipc_sim.Vtime.ms 10 in
        while Flipc_sim.Engine.now sim < deadline do
          (match Flipc.Api.receive api rx_hi with
          | Some buf ->
              let stamp =
                Int64.to_int
                  (Bytes.get_int64_le (Flipc.Api.read_payload api buf 8) 0)
              in
              samples :=
                (float_of_int (Flipc_sim.Engine.now sim - stamp) /. 1000.)
                :: !samples;
              ignore (Flipc.Api.post_receive api rx_hi buf)
          | None -> ());
          (match Flipc.Api.receive api rx_lo with
          | Some buf -> ignore (Flipc.Api.post_receive api rx_lo buf)
          | None -> ());
          Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 10
        done);
    (* Flood sender: saturates its endpoint continuously. *)
    Machine.spawn_app machine ~node:0 (fun api ->
        let ok = Result.get_ok in
        let dest = Flipc.Nameservice.lookup ns "lo" in
        let ep =
          if prioritized then
            ok
              (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Send
                 ~priority:1 ~burst:1 ())
          else
            ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Send ())
        in
        Flipc.Api.connect api ep dest;
        let bufs = List.init 8 (fun _ -> ok (Flipc.Api.allocate_buffer api)) in
        let free = Queue.create () in
        List.iter (fun b -> Queue.push b free) bufs;
        let deadline = Flipc_sim.Vtime.ms 10 in
        while Flipc_sim.Engine.now sim < deadline do
          (match Flipc.Api.reclaim api ep with
          | Some b -> Queue.push b free
          | None -> ());
          (match Queue.take_opt free with
          | Some b -> (
              match Flipc.Api.send api ep b with
              | Ok () -> incr flood_sent
              | Error `Full -> Queue.push b free
              | Error _ -> ())
          | None -> ());
          Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 20
        done);
    (* Sporadic high-priority sender on the same node. *)
    Machine.spawn_app machine ~node:0 (fun api ->
        let ok = Result.get_ok in
        let dest = Flipc.Nameservice.lookup ns "hi" in
        let ep =
          if prioritized then
            ok
              (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Send
                 ~priority:9 ())
          else
            ok (Flipc.Api.allocate_endpoint api ~kind:Flipc.Endpoint_kind.Send ())
        in
        Flipc.Api.connect api ep dest;
        let buf = ok (Flipc.Api.allocate_buffer api) in
        for _ = 1 to 60 do
          Flipc_sim.Engine.delay (Flipc_sim.Vtime.us 150);
          let stamp = Bytes.create 8 in
          Bytes.set_int64_le stamp 0
            (Int64.of_int (Flipc_sim.Engine.now sim));
          Flipc.Api.write_payload api buf stamp;
          (match Flipc.Api.send api ep buf with Ok () | Error _ -> ());
          let rec reclaim () =
            match Flipc.Api.reclaim api ep with
            | Some _ -> ()
            | None ->
                Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 10;
                reclaim ()
          in
          reclaim ()
        done);
    Machine.run machine;
    Machine.stop_engines machine;
    Machine.run machine;
    (Summary.of_samples !samples, !flood_sent)
  in
  let fifo, fifo_flood = measure ~prioritized:false in
  let prio, prio_flood = measure ~prioritized:true in
  let t =
    Table.create
      ~title:
        "EXT-PRIO: urgent-endpoint latency while a flood endpoint saturates \
         the same engine"
      [ "transport"; "urgent mean us"; "p95"; "max"; "flood msgs/10ms" ]
  in
  Table.add_row t
    [
      "FIFO scan (baseline)";
      Table.cell_us fifo.Summary.mean;
      Table.cell_us fifo.Summary.p95;
      Table.cell_us fifo.Summary.max;
      Table.cell_i fifo_flood;
    ];
  Table.add_row t
    [
      "prioritized + burst=1 flood";
      Table.cell_us prio.Summary.mean;
      Table.cell_us prio.Summary.p95;
      Table.cell_us prio.Summary.max;
      Table.cell_i prio_flood;
    ];
  Table.print t;
  Fmt.pr
    "the future-work extension (\"real time prioritization and \
     capacity/bandwidth@.control functionality to the basic inter-node \
     transport\"), implemented:@.priority picks the urgent endpoint first; \
     burst caps the flood's share.@.@."

(* ------------------------------------------------------------------ *)
(* EXT-CHAN: cost of the automatic buffer-management layer.            *)

let channel_overhead () =
  let raw =
    (Pingpong.measure ~payload_bytes:120 ~exchanges ()).Pingpong
    .aggregate_one_way_us
  in
  (* Channel ping-pong: same exchange pattern through Channel tx/rx. *)
  let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
  let sim = Machine.sim machine in
  let ns = Machine.names machine in
  let samples = ref [] in
  let n = 200 in
  Machine.spawn_app machine ~node:1 (fun api ->
      let rx = Result.get_ok (Flipc.Channel.create_rx api ()) in
      Flipc.Nameservice.register ns "echo-rx" (Flipc.Channel.address rx);
      let dest = Flipc.Nameservice.lookup ns "client-rx" in
      let tx = Result.get_ok (Flipc.Channel.create_tx api ~dest ()) in
      for _ = 1 to n do
        let rec poll () =
          match Flipc.Channel.recv rx with
          | Some p -> p
          | None ->
              Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 5;
              poll ()
        in
        let payload = poll () in
        ignore (Flipc.Channel.send tx payload)
      done);
  Machine.spawn_app machine ~node:0 (fun api ->
      let rx = Result.get_ok (Flipc.Channel.create_rx api ()) in
      Flipc.Nameservice.register ns "client-rx" (Flipc.Channel.address rx);
      let dest = Flipc.Nameservice.lookup ns "echo-rx" in
      let tx = Result.get_ok (Flipc.Channel.create_tx api ~dest ()) in
      let payload = Bytes.make 116 'c' in
      for _ = 1 to n do
        let t0 = Flipc_sim.Engine.now sim in
        ignore (Flipc.Channel.send tx payload);
        let rec poll () =
          match Flipc.Channel.recv rx with
          | Some p -> p
          | None ->
              Flipc_memsim.Mem_port.instr (Flipc.Api.port api) 5;
              poll ()
        in
        ignore (poll () : Bytes.t);
        samples :=
          (float_of_int (Flipc_sim.Engine.now sim - t0) /. 2000.) :: !samples
      done);
  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let chan = Summary.mean !samples in
  (* Both variants ride the same 128-byte wire message: the channel packs
     116 application bytes + its 4-byte length header. *)
  let t =
    Table.create
      ~title:"EXT-CHAN: raw API vs automatic buffer management (128B message)"
      [ "interface"; "latency us"; "API calls per message" ]
  in
  Table.add_row t [ "raw Api (paper's interface)"; Table.cell_us raw; "4 (send/reclaim/receive/post)" ];
  Table.add_row t [ "Channel (auto buffers)"; Table.cell_us chan; "2 (send/recv)" ];
  Table.print t;
  Fmt.pr
    "overhead of the convenience layer: +%.2fus (one payload copy per side)@.\
     — the buffer-management redesign the paper's future work asks for,@.\
     built above the transport as the paper prescribes.@.@."
    (chan -. raw)

(* ------------------------------------------------------------------ *)
(* DISTRIBUTION: the shape of the one-way latency distribution.         *)

let distribution () =
  let r = Pingpong.measure ~payload_bytes:120 ~exchanges:600 () in
  let one_way = List.map (fun rt -> rt /. 2.) r.Pingpong.round_trips_us in
  let h = Flipc_stats.Histogram.of_samples ~bins:14 one_way in
  Fmt.pr "== DISTRIBUTION: 120B one-way latency, 600 exchanges (us) ==@.";
  Fmt.pr "%a" Flipc_stats.Histogram.pp h;
  let s = r.Pingpong.one_way in
  Fmt.pr "mean %.2f  sd %.2f  p50 %.2f  p95 %.2f  p99 %.2f@." s.Summary.mean
    s.Summary.stddev s.Summary.p50 s.Summary.p95 s.Summary.p99;
  Fmt.pr
    "the spread comes from engine-discovery alignment (up to one poll@.\
     interval per engine on the path, +/-25%% jitter), matching the@.\
     paper's 0.5-0.65us standard deviations.@.@."

(* ------------------------------------------------------------------ *)
(* FAULTS: the reliable channel (extension) on a lossy wire — how the  *)
(* retransmission layer's recovery cost shows up in the latency tail.  *)

let fault_sweep () =
  let module Sim = Flipc_sim.Engine in
  let module Mailbox = Flipc_sim.Sync.Mailbox in
  let module Mem_port = Flipc_memsim.Mem_port in
  let module Api = Flipc.Api in
  let module Endpoint_kind = Flipc.Endpoint_kind in
  let module Faulty = Flipc_net.Faulty in
  let module Retrans = Flipc_flow.Retrans in
  let module Provision = Flipc_flow.Provision in
  let ok = function
    | Ok v -> v
    | Error e -> failwith (Api.error_to_string e)
  in
  let messages = 400 in
  let gap_ns = 25_000 in
  let run loss =
    let config = Provision.config_for ~base:Config.default ~buffers:12 in
    let fault = Faulty.config ~drop:loss ~seed:7 () in
    let machine =
      Machine.create ~config ~fault (Machine.Mesh { cols = 2; rows = 1 }) ()
    in
    let rcfg =
      {
        Retrans.default_config with
        Retrans.rto_ns = 200_000;
        max_rto_ns = 1_600_000;
      }
    in
    let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
    let latencies = ref [] and retrans = ref 0 in
    Machine.spawn_app machine ~node:1 (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        Mailbox.put data_addr (Api.address api data_ep);
        Api.connect api ack_ep (Mailbox.take ack_addr);
        let r =
          Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep
            ~ack_ep ~config:rcfg ()
        in
        let deadline = Flipc_sim.Vtime.ms 500 in
        while
          Retrans.delivered r < messages
          && Sim.now (Machine.sim machine) < deadline
        do
          match Retrans.recv r with
          | Some payload ->
              (* Latency from first transmission: retransmitted messages
                 carry their original stamp, so recovery cost lands in
                 the tail, exactly where a real-time system feels it. *)
              let stamp = Int64.to_int (Bytes.get_int64_le payload 0) in
              let lat = Sim.now (Machine.sim machine) - stamp in
              latencies := (float_of_int lat /. 1_000.) :: !latencies
          | None -> Mem_port.instr (Api.port api) 200
        done);
    Machine.spawn_app machine ~node:0 (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        Mailbox.put ack_addr (Api.address api ack_ep);
        Api.connect api data_ep (Mailbox.take data_addr);
        let s =
          Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
            ~config:rcfg ()
        in
        for _ = 1 to messages do
          let payload = Bytes.create 8 in
          Bytes.set_int64_le payload 0
            (Int64.of_int (Sim.now (Machine.sim machine)));
          let deadline =
            Sim.now (Machine.sim machine) + Flipc_sim.Vtime.ms 100
          in
          (match Retrans.send_deadline s ~deadline payload with
          | Ok () -> ()
          | Error `Timeout -> failwith "fault_sweep: sender timed out");
          (* Pace the offered load so the sweep measures transport and
             recovery latency, not window queueing. *)
          Sim.delay gap_ns
        done;
        let deadline =
          Sim.now (Machine.sim machine) + Flipc_sim.Vtime.ms 100
        in
        (match Retrans.flush_deadline s ~deadline with
        | Ok () -> ()
        | Error `Timeout -> failwith "fault_sweep: flush timed out");
        retrans := Retrans.retransmits s);
    Machine.run machine;
    Machine.stop_engines machine;
    Machine.run machine;
    let dropped =
      match Machine.fault_stats machine with
      | Some f -> f.Faulty.dropped
      | None -> 0
    in
    (List.rev !latencies, !retrans, dropped)
  in
  let t =
    Table.create
      ~title:"FAULTS: reliable channel on a lossy mesh (400 x 8B, paced 25us)"
      [ "loss"; "delivered"; "retransmits"; "wire drops"; "p50 us"; "p99 us" ]
  in
  let rows =
    List.map
      (fun loss ->
        let lats, retrans, dropped = run loss in
        let s = Summary.of_samples lats in
        Table.add_row t
          [
            Fmt.str "%.0f%%" (loss *. 100.);
            Table.cell_i (List.length lats);
            Table.cell_i retrans;
            Table.cell_i dropped;
            Table.cell_us s.Summary.p50;
            Table.cell_us s.Summary.p99;
          ];
        (loss, List.length lats, retrans, dropped, s))
      [ 0.0; 0.02; 0.05; 0.10 ]
  in
  Table.print t;
  Fmt.pr
    "go-back-N over the optimistic transport: the median stays at the@.\
     fault-free floor while the p99 absorbs the retransmission timeouts@.\
     (initial RTO 200us, doubling to 1.6ms).@.@.";
  write_bench_json "faults"
    [
      ("workload", Json.String "retrans channel, 400 x 8B paced 25us");
      ("fabric", Json.String "mesh 2x1 + fault injection");
      ("message_bytes", Json.Int 8);
      ("messages", Json.Int messages);
      ( "points",
        Json.List
          (List.map
             (fun (loss, delivered, retrans, dropped, s) ->
               Json.Obj
                 (("loss", Json.Float loss)
                 :: ("delivered", Json.Int delivered)
                 :: ("retransmits", Json.Int retrans)
                 :: ("wire_drops", Json.Int dropped)
                 :: summary_fields s))
             rows) );
    ]

(* ------------------------------------------------------------------ *)
(* RETRANS-MODES: selective repeat vs go-back-N on a reorder-heavy     *)
(* wire — the ablation behind the SACK rework. Reordering is the case  *)
(* that separates the two: SR buffers the overtakers and never touches *)
(* the wire again, while GBN discards them and replays the window.     *)

let retrans_modes () =
  let module Sim = Flipc_sim.Engine in
  let module Mailbox = Flipc_sim.Sync.Mailbox in
  let module Mem_port = Flipc_memsim.Mem_port in
  let module Api = Flipc.Api in
  let module Endpoint_kind = Flipc.Endpoint_kind in
  let module Faulty = Flipc_net.Faulty in
  let module Retrans = Flipc_flow.Retrans in
  let module Provision = Flipc_flow.Provision in
  let ok = function
    | Ok v -> v
    | Error e -> failwith (Api.error_to_string e)
  in
  let messages =
    match Sys.getenv_opt "RETRANS_MODES_MESSAGES" with
    | Some s -> ( try int_of_string s with _ -> 2_000)
    | None -> 2_000
  in
  let run ~kind ?cost ~fault ~rto_ns ~gap_ns ~mode () =
    let config = Provision.config_for ~base:Config.default ~buffers:12 in
    let machine =
      match cost with
      | Some cost -> Machine.create ~config ~cost ~fault kind ()
      | None -> Machine.create ~config ~fault kind ()
    in
    let rcfg =
      {
        Retrans.default_config with
        Retrans.rto_ns;
        max_rto_ns = 8 * rto_ns;
        mode;
      }
    in
    let data_addr = Mailbox.create () and ack_addr = Mailbox.create () in
    let latencies = ref [] in
    let sstats = ref (0, 0, 0) and acks = ref 0 in
    Machine.spawn_app machine ~node:1 (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        Mailbox.put data_addr (Api.address api data_ep);
        Api.connect api ack_ep (Mailbox.take ack_addr);
        let r =
          Retrans.create_receiver api ~sim:(Machine.sim machine) ~data_ep
            ~ack_ep ~config:rcfg ()
        in
        let deadline = Flipc_sim.Vtime.s 8 in
        while
          Retrans.delivered r < messages
          && Sim.now (Machine.sim machine) < deadline
        do
          match Retrans.recv r with
          | Some payload ->
              (* Latency from first transmission: recovery cost lands in
                 the tail, where a real-time system feels it. *)
              let stamp = Int64.to_int (Bytes.get_int64_le payload 0) in
              let lat = Sim.now (Machine.sim machine) - stamp in
              latencies := (float_of_int lat /. 1_000.) :: !latencies
          | None -> Mem_port.instr (Api.port api) 200
        done;
        acks := Retrans.acks_sent r);
    Machine.spawn_app machine ~node:0 (fun api ->
        let data_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        let ack_ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        Mailbox.put ack_addr (Api.address api ack_ep);
        Api.connect api data_ep (Mailbox.take data_addr);
        let s =
          Retrans.create_sender api ~sim:(Machine.sim machine) ~data_ep ~ack_ep
            ~config:rcfg ()
        in
        for _ = 1 to messages do
          let payload = Bytes.create 8 in
          Bytes.set_int64_le payload 0
            (Int64.of_int (Sim.now (Machine.sim machine)));
          (match Retrans.send s payload with
          | Ok () -> ()
          | Error `Timeout -> failwith "retrans_modes: sender timed out");
          Sim.delay gap_ns
        done;
        (match Retrans.flush s ~timeout_ns:(Flipc_sim.Vtime.s 2) with
        | Ok () -> ()
        | Error `Timeout -> failwith "retrans_modes: flush timed out");
        sstats :=
          (Retrans.retransmits s, Retrans.srtt_ns s, Retrans.rto_current_ns s));
    Machine.run machine;
    Machine.stop_engines machine;
    Machine.run machine;
    let reordered =
      match Machine.fault_stats machine with
      | Some f -> f.Faulty.reordered
      | None -> 0
    in
    let retransmits, srtt_ns, rto_cur = !sstats in
    ( Summary.of_samples (List.rev !latencies),
      List.length !latencies,
      retransmits,
      !acks,
      srtt_ns,
      rto_cur,
      reordered )
  in
  let fabrics =
    [
      ( "mesh",
        Machine.Mesh { cols = 2; rows = 1 },
        None,
        Faulty.config ~reorder:0.3 ~reorder_hold_ns:100_000 ~seed:17 (),
        200_000,
        25_000 );
      ( "ethernet",
        Machine.Ethernet { nodes = 2 },
        Some Flipc_memsim.Cost_model.pc_cluster,
        Faulty.config ~reorder:0.3 ~reorder_hold_ns:500_000 ~seed:17 (),
        1_000_000,
        100_000 );
    ]
  in
  let t =
    Table.create
      ~title:
        (Fmt.str
           "RETRANS-MODES: SR vs go-back-N, 30%% reordered wire (%d x 8B)"
           messages)
      [
        "fabric"; "mode"; "delivered"; "retransmits"; "acks"; "srtt us";
        "p50 us"; "p99 us";
      ]
  in
  let points =
    List.concat_map
      (fun (fname, kind, cost, fault, rto_ns, gap_ns) ->
        List.map
          (fun (mname, mode) ->
            let s, delivered, retransmits, acks, srtt, rto_cur, reordered =
              run ~kind ?cost ~fault ~rto_ns ~gap_ns ~mode ()
            in
            Table.add_row t
              [
                fname;
                mname;
                Table.cell_i delivered;
                Table.cell_i retransmits;
                Table.cell_i acks;
                Table.cell_us (float_of_int srtt /. 1_000.);
                Table.cell_us s.Summary.p50;
                Table.cell_us s.Summary.p99;
              ];
            Json.Obj
              (("fabric", Json.String fname)
              :: ("mode", Json.String mname)
              :: ("delivered", Json.Int delivered)
              :: ("retransmits", Json.Int retransmits)
              :: ("acks_sent", Json.Int acks)
              :: ("srtt_ns", Json.Int srtt)
              :: ("rto_current_ns", Json.Int rto_cur)
              :: ("wire_reordered", Json.Int reordered)
              :: summary_fields s))
          [ ("sr", Retrans.Selective_repeat); ("gbn", Retrans.Go_back_n) ])
      fabrics
  in
  Table.print t;
  Fmt.pr
    "selective repeat holds overtaken frames at the receiver, so a@.\
     reordered wire costs it (almost) no wire traffic; go-back-N@.\
     replays the window for every hole and its p99 absorbs the RTO@.\
     backoff. The adaptive estimator keeps srtt near the fabric RTT@.\
     in both modes.@.@.";
  write_bench_json "retrans_modes"
    [
      ("workload", Json.String "retrans channel, 8B msgs, reorder 30%");
      ("messages", Json.Int messages);
      ("message_bytes", Json.Int 8);
      ("points", Json.List points);
    ]

(* ------------------------------------------------------------------ *)
(* EXT-EM: the Express Messages ancestor, with FLIPC's enhancements     *)
(* applied as knobs (different machine — internal comparisons only).   *)

let express () =
  let em ~buffer_mgmt ~delivery =
    Flipc_baselines.Express.one_way_latency_us ~buffer_mgmt ~delivery
      ~payload_bytes:120 ~exchanges:30 ()
  in
  let t =
    Table.create
      ~title:
        "EXT-EM: Express Messages (iPSC/2) with FLIPC's enhancements as knobs          (120B)"
      [ "buffer mgmt"; "delivery"; "latency us"; "vs original" ]
  in
  let original = em ~buffer_mgmt:`Syscall ~delivery:`Interrupt in
  let row bm bms dl dls =
    let v = em ~buffer_mgmt:bm ~delivery:dl in
    Table.add_row t
      [ bms; dls; Table.cell_us v; Fmt.str "%.2fx" (v /. original) ]
  in
  row `Syscall "system calls (EM)" `Interrupt "interrupt (EM)";
  row `Syscall "system calls (EM)" `Polling "polling";
  row `Shared "shared structure (FLIPC)" `Interrupt "interrupt (EM)";
  row `Shared "shared structure (FLIPC)" `Polling "polling";
  Table.print t;
  Fmt.pr
    "the two changes the paper made to its ancestor's design — wait-free@.\
     shared-structure buffer management instead of system calls, and@.\
     scheduler-mediated delivery instead of interrupting upcalls — are@.\
     each worth a large constant on the iPSC/2-class model. Era-magnitude@.\
     calibration only; never compared against the Paragon numbers.@.@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot operations (real wall clock).  *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let heap_test =
    Test.make ~name:"event-heap push+pop x64"
      (Staged.stage (fun () ->
           let h = Flipc_sim.Heap.create ~cmp:Int.compare () in
           for i = 0 to 63 do
             Flipc_sim.Heap.push h ((i * 37) land 255) i
           done;
           let rec drain () =
             match Flipc_sim.Heap.pop_min h with
             | Some _ -> drain ()
             | None -> ()
           in
           drain ()))
  in
  let prng = Flipc_sim.Prng.create ~seed:1 in
  let prng_test =
    Test.make ~name:"splitmix64 next"
      (Staged.stage (fun () -> ignore (Flipc_sim.Prng.next_int64 prng)))
  in
  let cost = Flipc_memsim.Cost_model.paragon in
  let bus = Flipc_memsim.Bus.create ~cost () in
  let c0 = Flipc_memsim.Cache.create ~name:"c0" () in
  let c1 = Flipc_memsim.Cache.create ~name:"c1" () in
  ignore (Flipc_memsim.Bus.attach bus c0);
  ignore (Flipc_memsim.Bus.attach bus c1);
  let bus_test =
    Test.make ~name:"MESI write ping-pong"
      (Staged.stage (fun () ->
           ignore (Flipc_memsim.Bus.write bus ~port:0 ~addr:0);
           ignore (Flipc_memsim.Bus.write bus ~port:1 ~addr:0)))
  in
  let layout_test =
    Test.make ~name:"layout compute"
      (Staged.stage (fun () -> ignore (Flipc.Layout.compute Config.default)))
  in
  let topo = Flipc_net.Topology.create ~cols:16 ~rows:16 in
  let route_test =
    Test.make ~name:"mesh route 16x16 corner-corner"
      (Staged.stage (fun () ->
           ignore (Flipc_net.Topology.route topo ~src:0 ~dst:255)))
  in
  let sim_exchange_test =
    Test.make ~name:"simulate 5 pingpong exchanges (2-node machine)"
      (Staged.stage (fun () ->
           ignore
             (Pingpong.measure ~cols:2 ~rows:1 ~payload_bytes:120 ~exchanges:5
                ~warmup:0 ())))
  in
  let tests =
    Test.make_grouped ~name:"micro"
      [
        heap_test; prng_test; bus_test; layout_test; route_test;
        sim_exchange_test;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "== MICRO: wall-clock cost of hot operations (Bechamel OLS) ==@.";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if ns > 1_000_000. then Fmt.pr "%-50s %10.2f ms/run@." name (ns /. 1e6)
      else if ns > 1_000. then Fmt.pr "%-50s %10.2f us/run@." name (ns /. 1e3)
      else Fmt.pr "%-50s %10.1f ns/run@." name ns)
    (List.sort Stdlib.compare !rows);
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* ENGINE-SCAN: work-proportional engine scheduling. One hot sender     *)
(* pair while the number of CONFIGURED endpoints grows: the doorbell    *)
(* engine's idle memory traffic tracks active endpoints, the original   *)
(* scanning engine's tracks configured endpoints.                       *)

let engine_scan () =
  let module Latency = Flipc_obs.Latency in
  let module Mem_port = Flipc_memsim.Mem_port in
  (* ENGINE_SCAN_SIZES overrides the endpoint-count sweep (comma-
     separated); scripts/check.sh uses it to run one small size as a CI
     smoke without paying for the 256-endpoint full-scan ablation. *)
  let sizes =
    match Sys.getenv_opt "ENGINE_SCAN_SIZES" with
    | None | Some "" -> [ 8; 64; 256; 4096; 16384 ]
    | Some s -> List.map int_of_string (String.split_on_char ',' s)
  in
  (* The full-scan ablation's idle iteration walks every configured
     endpoint, so at the large sizes that demonstrate flatness it would
     dominate the harness runtime for a number nobody doubts grows
     linearly; it is measured only up to 256 endpoints. *)
  let modes n =
    if n <= 256 then
      [ ("doorbell", Config.Doorbell); ("full_scan", Config.Full_scan) ]
    else [ ("doorbell", Config.Doorbell) ]
  in
  let t =
    Table.create
      ~title:
        "ENGINE-SCAN: idle engine traffic vs configured endpoints (1 hot \
         sender)"
      [
        "endpoints";
        "mode";
        "idle loads/iter";
        "idle iter ns";
        "send p50 us";
        "send p99 us";
        "one-way us";
      ]
  in
  let results = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (mname, sched_mode) ->
          let config =
            { Config.default with Config.endpoints = n; sched_mode }
          in
          let machine =
            Machine.create ~config (Machine.Mesh { cols = 2; rows = 1 }) ()
          in
          let r =
            Pingpong.run ~machine ~node_a:0 ~node_b:1 ~payload_bytes:120
              ~exchanges:200 ()
          in
          let lat = Flipc_obs.Obs.latency (Machine.obs machine) in
          let send =
            match Latency.stage_summary lat Latency.Send_stage with
            | Some s -> s
            | None -> failwith "engine_scan: no send-stage samples"
          in
          let stats =
            Flipc.Msg_engine.stats (Machine.msg_engine (Machine.node machine 0))
          in
          (* Idle measurement on a fresh machine: the hot sender's
             endpoint footprint (one send + one receive endpoint
             allocated) but no traffic, engines never parking within the
             window. A warm-up window first lets the schedule rebuild
             settle and the eager-visit countdown (if any) decay; the
             measured window is steady-state idle polling, which is what
             the work-proportionality claim is about. *)
          let idle_config =
            { config with Config.engine_park_after = 1_000_000 }
          in
          let idle_machine =
            Machine.create ~config:idle_config
              (Machine.Mesh { cols = 2; rows = 1 })
              ()
          in
          Machine.spawn_app ~name:"idle-owner" idle_machine ~node:0 (fun api ->
              let check = function
                | Ok v -> v
                | Error e -> failwith (Flipc.Api.error_to_string e)
              in
              let _recv =
                check
                  (Flipc.Api.allocate_endpoint api
                     ~kind:Flipc.Endpoint_kind.Recv ())
              in
              let _send =
                check
                  (Flipc.Api.allocate_endpoint api
                     ~kind:Flipc.Endpoint_kind.Send ())
              in
              ());
          let sim = Machine.sim idle_machine in
          let node0 = Machine.node idle_machine 0 in
          let port = Machine.coproc_port node0 in
          let idle_stats =
            Flipc.Msg_engine.stats (Machine.msg_engine node0)
          in
          (* Warm-up must outlast the initial schedule rebuilds, whose
             full table scan costs O(endpoints) memory time — at 16384
             endpoints that is tens of virtual milliseconds, far past
             the old fixed 500us. *)
          Machine.run
            ~until:(Flipc_sim.Engine.now sim + 500_000 + (n * 4_000))
            idle_machine;
          Mem_port.reset_counts port;
          let it0 = idle_stats.Flipc.Msg_engine.iterations in
          let t0 = Flipc_sim.Engine.now sim in
          Machine.run ~until:(t0 + 2_000_000) idle_machine;
          let idle_iters = idle_stats.Flipc.Msg_engine.iterations - it0 in
          let idle_ns = Flipc_sim.Engine.now sim - t0 in
          let per it = float_of_int it /. float_of_int (max 1 idle_iters) in
          let loads_per_iter = per (Mem_port.load_count port) in
          let stores_per_iter = per (Mem_port.store_count port) in
          let iter_ns = per idle_ns in
          Table.add_row t
            [
              string_of_int n;
              mname;
              Fmt.str "%.1f" loads_per_iter;
              Fmt.str "%.0f" iter_ns;
              Table.cell_us send.Summary.p50;
              Table.cell_us send.Summary.p99;
              Table.cell_us r.Pingpong.aggregate_one_way_us;
            ];
          results :=
            (n, mname, loads_per_iter, stores_per_iter, iter_ns, send, r, stats)
            :: !results)
        (modes n))
    sizes;
  Table.print t;
  let find n m =
    List.find (fun (n', m', _, _, _, _, _, _) -> n' = n && m' = m) !results
  in
  List.iter
    (fun n ->
      match modes n with
      | _ :: _ :: _ ->
          let _, _, dl, _, _, _, _, _ = find n "doorbell" in
          let _, _, fl, _, _, _, _, _ = find n "full_scan" in
          Fmt.pr "idle load reduction at %3d endpoints: %.0fx@." n (fl /. dl)
      | _ -> ())
    sizes;
  Fmt.pr
    "the scanning engine's idle iteration walks every configured endpoint@.\
     table entry; the doorbell engine touches one epoch word plus one@.\
     doorbell per allocated send endpoint, so idle traffic no longer@.\
     grows with the configured endpoint count.@.@.";
  write_bench_json "engine_scan"
    [
      ("workload", Json.String "pingpong 2x1, 200 exchanges, 120B");
      ( "sizes",
        Json.List
          (List.map
             (fun n ->
               let row mname =
                 let _, _, loads, stores, iter_ns, send, r, stats =
                   find n mname
                 in
                 ( mname,
                   Json.Obj
                     [
                       ("idle_loads_per_iter", Json.Float loads);
                       ("idle_stores_per_iter", Json.Float stores);
                       ("idle_iter_ns", Json.Float iter_ns);
                       ("send_p50_us", Json.Float send.Summary.p50);
                       ("send_p99_us", Json.Float send.Summary.p99);
                       ( "one_way_us",
                         Json.Float r.Pingpong.aggregate_one_way_us );
                       ( "doorbell_hits",
                         Json.Int stats.Flipc.Msg_engine.doorbell_hits );
                       ( "sched_rebuilds",
                         Json.Int stats.Flipc.Msg_engine.sched_rebuilds );
                       ( "idle_scans_avoided",
                         Json.Int stats.Flipc.Msg_engine.idle_scans_avoided );
                     ] )
               in
               match modes n with
               | _ :: _ :: _ ->
                   let _, _, dl, _, _, _, _, _ = find n "doorbell" in
                   let _, _, fl, _, _, _, _, _ = find n "full_scan" in
                   Json.Obj
                     (("endpoints", Json.Int n)
                     :: ("idle_load_reduction", Json.Float (fl /. dl))
                     :: List.map row [ "doorbell"; "full_scan" ])
               | _ ->
                   Json.Obj
                     (("endpoints", Json.Int n) :: List.map row [ "doorbell" ]))
             sizes) );
    ]

(* ------------------------------------------------------------------ *)
(* FIREHOSE: open-loop sustained-load throughput, batched vs           *)
(* unbatched. The pinned configuration (2x2 mesh, 300ns mean gap,      *)
(* 32-deep rings) saturates both arms, so delivered rate measures      *)
(* drain capacity; the batched arm chains DMA descriptors, coalesces   *)
(* doorbells and cursor traffic, and must stay >= 2x the singleton     *)
(* path (bench_diff.sh gates the "speedup" leaf). A sharded cell       *)
(* exercises the multi-engine path and snapshots per-shard counters.   *)

let firehose () =
  let module Firehose = Flipc_workload.Firehose in
  let module Sketch = Flipc_obs.Sketch in
  let senders = 2 and receivers = 2 in
  let duration_us = 1_000 and mean_gap_ns = 300 and seed = 7 in
  let base =
    {
      Config.default with
      Config.queue_capacity = 33;
      total_buffers = 128;
    }
  in
  let batched =
    {
      base with
      Config.engine_tx_batch = 32;
      app_send_burst = 32;
      app_recv_burst = 32;
    }
  in
  let sharded =
    (* 4 streams/node: each receiver stream posts a full 32-deep ring
       plus a staging buffer, so the node pool must cover 4 x 33. *)
    { batched with Config.engine_shards = 2; total_buffers = 256 }
  in
  let q r p =
    match Sketch.quantile r.Firehose.sojourn_us p with
    | Some v -> v
    | None -> 0.
  in
  let run ?streams config =
    Firehose.measure ~config ~senders ~receivers ~duration_us ~mean_gap_ns
      ~seed ?streams ()
  in
  let t =
    Table.create
      ~title:
        "FIREHOSE: open-loop sustained load, 2 senders x 2 receivers, \
         300ns mean gap"
      [
        "arm";
        "offered";
        "delivered";
        "rate msg/s";
        "ratio";
        "p50 us";
        "p99 us";
      ]
  in
  let row name r =
    Table.add_row t
      [
        name;
        string_of_int r.Firehose.offered;
        string_of_int r.Firehose.delivered;
        Fmt.str "%.0f" r.Firehose.delivered_per_sec;
        Fmt.str "%.3f" r.Firehose.delivered_ratio;
        Fmt.str "%.1f" (q r 0.50);
        Fmt.str "%.1f" (q r 0.99);
      ]
  in
  let un = run base in
  let ba = run batched in
  let sh = run ~streams:4 sharded in
  row "unbatched" un;
  row "batched" ba;
  row "batched+2shards" sh;
  Table.print t;
  let speedup = ba.Firehose.delivered_per_sec /. un.Firehose.delivered_per_sec in
  Fmt.pr "batched/unbatched delivered-rate speedup: %.2fx@.@." speedup;
  let arm name r =
    ( name,
      Json.Obj
        [
          ("offered", Json.Int r.Firehose.offered);
          ("sent", Json.Int r.Firehose.sent);
          ("shed", Json.Int r.Firehose.shed);
          ("delivered", Json.Int r.Firehose.delivered);
          ("rx_drops", Json.Int r.Firehose.rx_drops);
          ("delivered_per_sec", Json.Float r.Firehose.delivered_per_sec);
          ("delivered_ratio", Json.Float r.Firehose.delivered_ratio);
          ("sojourn_p50_us", Json.Float (q r 0.50));
          ("sojourn_p99_us", Json.Float (q r 0.99));
          ("sojourn_p999_us", Json.Float (q r 0.999));
          ( "engines",
            Json.List
              (List.map
                 (fun (node, shard, s) ->
                   Json.Obj
                     [
                       ("node", Json.Int node);
                       ("shard", Json.Int shard);
                       ("sends", Json.Int s.Flipc.Msg_engine.sends);
                       ("recvs", Json.Int s.Flipc.Msg_engine.recvs);
                       ( "doorbell_hits",
                         Json.Int s.Flipc.Msg_engine.doorbell_hits );
                     ])
                 r.Firehose.engines) );
        ] )
  in
  write_bench_json "firehose"
    [
      ( "workload",
        Json.String
          "open-loop 2x2 mesh, poisson 300ns mean gap, 1000us window, \
           seed 7, 33-slot rings" );
      ("batched_speedup", Json.Float speedup);
      arm "unbatched" un;
      arm "batched" ba;
      arm "batched_sharded" sh;
    ]

(* ------------------------------------------------------------------ *)
(* DOCTOR-OVERHEAD: cost of the correlation-and-diagnosis layer.       *)
(* The msg_id stamp rides the state store the send path already makes  *)
(* and every emit site is guarded behind Obs.tracing, so the virtual   *)
(* timeline must be bit-identical whether observability is off, the    *)
(* tracer records, or the invariant monitors watch every event —       *)
(* tracing and monitoring cost host time only.                         *)

let doctor_overhead () =
  let module Sim = Flipc_sim.Engine in
  let module Mem_port = Flipc_memsim.Mem_port in
  let module Api = Flipc.Api in
  let module Endpoint_kind = Flipc.Endpoint_kind in
  let module Nameservice = Flipc.Nameservice in
  let module Monitor = Flipc_obs.Monitor in
  let n_exchanges = 400 in
  let run mode =
    let machine = Machine.create (Machine.Mesh { cols = 2; rows = 1 }) () in
    let obs = Machine.obs machine in
    let sink =
      match mode with
      | `Capture path ->
          let s = Flipc_obs.Sink.create ~path () in
          Flipc_obs.Sink.attach s obs;
          Some s
      | _ -> None
    in
    let series =
      match mode with `Series -> Some (Flipc_obs.Series.attach obs) | _ -> None
    in
    let mon =
      match mode with
      | `Off | `Capture _ | `Series -> None
      | `Trace ->
          Flipc_obs.Tracer.enable (Flipc_obs.Obs.tracer obs);
          None
      | `Monitor -> Some (Machine.attach_monitor machine)
    in
    let ns = Machine.names machine in
    let ok = Result.get_ok in
    Machine.spawn_app ~name:"echo" machine ~node:1 (fun api ->
        let rx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        let tx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        for _ = 1 to 2 do
          ok (Api.post_receive api rx (ok (Api.allocate_buffer api)))
        done;
        Nameservice.register ns "echo" (Api.address api rx);
        Api.connect api tx (Nameservice.lookup ns "reply");
        let reply = ok (Api.allocate_buffer api) in
        for _ = 1 to n_exchanges do
          let rec poll () =
            match Api.receive api rx with
            | Some b -> b
            | None ->
                Mem_port.instr (Api.port api) 5;
                poll ()
          in
          ok (Api.post_receive api rx (poll ()));
          ok (Api.send api tx reply);
          let rec reclaim () =
            match Api.reclaim api tx with
            | Some _ -> ()
            | None ->
                Mem_port.instr (Api.port api) 5;
                reclaim ()
          in
          reclaim ()
        done);
    Machine.spawn_app ~name:"driver" machine ~node:0 (fun api ->
        let rx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
        let tx = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
        for _ = 1 to 2 do
          ok (Api.post_receive api rx (ok (Api.allocate_buffer api)))
        done;
        Nameservice.register ns "reply" (Api.address api rx);
        Api.connect api tx (Nameservice.lookup ns "echo");
        let ping = ok (Api.allocate_buffer api) in
        for _ = 1 to n_exchanges do
          ok (Api.send api tx ping);
          let rec reclaim () =
            match Api.reclaim api tx with
            | Some _ -> ()
            | None ->
                Mem_port.instr (Api.port api) 5;
                reclaim ()
          in
          reclaim ();
          let rec poll () =
            match Api.receive api rx with
            | Some b -> b
            | None ->
                Mem_port.instr (Api.port api) 5;
                poll ()
          in
          ok (Api.post_receive api rx (poll ()))
        done);
    let t0 = Sys.time () in
    Machine.run machine;
    Machine.stop_engines machine;
    Machine.run machine;
    let host_ms = (Sys.time () -. t0) *. 1000. in
    let virtual_ns = Sim.now (Machine.sim machine) in
    Option.iter Flipc_obs.Series.sample series;
    let tracer = Flipc_obs.Obs.tracer obs in
    let events =
      match (mon, sink) with
      | Some m, _ -> Monitor.events_seen m
      | None, Some s -> Flipc_obs.Sink.events_written s
      | None, None ->
          Flipc_obs.Tracer.length tracer + Flipc_obs.Tracer.dropped tracer
    in
    let violations =
      match mon with Some m -> List.length (Monitor.violations m) | None -> 0
    in
    Option.iter Flipc_obs.Sink.close sink;
    let windows =
      match series with
      | Some s -> Some (Flipc_obs.Series.window_count s, Flipc_obs.Series.json s)
      | None -> None
    in
    (virtual_ns, host_ms, events, violations, windows)
  in
  let v_off, h_off, _, _, _ = run `Off in
  let v_tr, h_tr, e_tr, _, _ = run `Trace in
  let v_mon, h_mon, e_mon, viol, _ = run `Monitor in
  let file_size path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  let capture_path = Filename.temp_file "flipc_doctor_overhead" ".trace" in
  let v_cap, h_cap, e_cap, _, _ = run (`Capture capture_path) in
  let jsonl_bytes = file_size capture_path in
  Sys.remove capture_path;
  (* Same sink, binary frame codec (selected by the .ftrace suffix):
     identical event stream, so the byte ratio is a pure codec figure. *)
  let binary_path = Filename.temp_file "flipc_doctor_overhead" ".ftrace" in
  let v_bin, h_bin, e_bin, _, _ = run (`Capture binary_path) in
  let binary_bytes = file_size binary_path in
  Sys.remove binary_path;
  let shrink = float_of_int jsonl_bytes /. float_of_int (max 1 binary_bytes) in
  let v_ser, h_ser, e_ser, _, win = run `Series in
  let windows, series_json =
    match win with Some (n, j) -> (n, j) | None -> (0, Json.Null)
  in
  let identical =
    v_off = v_tr && v_off = v_mon && v_off = v_cap && v_off = v_bin
    && v_off = v_ser
  in
  let t =
    Table.create
      ~title:
        "DOCTOR-OVERHEAD: diagnosis layer cost (400 exchanges, 2-node mesh)"
      [ "mode"; "virtual ms"; "host ms"; "events" ]
  in
  let row name v h e =
    Table.add_row t
      [
        name;
        Table.cell_us (float_of_int v /. 1.0e6);
        Table.cell_us h;
        Table.cell_i e;
      ]
  in
  row "off" v_off h_off 0;
  row "tracing" v_tr h_tr e_tr;
  row "tracing+monitors" v_mon h_mon e_mon;
  row "capture sink" v_cap h_cap e_cap;
  row "capture (binary)" v_bin h_bin e_bin;
  row "series tap" v_ser h_ser e_ser;
  Table.print t;
  Fmt.pr "disabled path zero virtual cost (timelines bit-identical): %b@."
    identical;
  Fmt.pr "capture bytes: jsonl=%d binary=%d (%.1fx smaller)@.@." jsonl_bytes
    binary_bytes shrink;
  let mode name v h e extra =
    ( name,
      Json.Obj
        ([
           ("virtual_ns", Json.Int v);
           ("host_ms", Json.Float h);
           ("events", Json.Int e);
         ]
        @ extra) )
  in
  write_bench_json "doctor_overhead"
    [
      ("workload", Json.String "pingpong 2x1, 400 exchanges");
      ( "modes",
        Json.Obj
          [
            mode "off" v_off h_off 0 [];
            mode "tracing" v_tr h_tr e_tr [];
            mode "monitors" v_mon h_mon e_mon
              [ ("monitor_violations", Json.Int viol) ];
            mode "capture" v_cap h_cap e_cap
              [ ("capture_jsonl_bytes", Json.Int jsonl_bytes) ];
            mode "capture_binary" v_bin h_bin e_bin
              [ ("capture_binary_bytes", Json.Int binary_bytes) ];
            mode "series" v_ser h_ser e_ser
              [
                ("series_window_count", Json.Int windows);
                ("series_windows", series_json);
              ];
          ] );
      (* An Int, not a Bool: bench_diff.sh gates numeric leaves only, and
         this one must never regress below 1. *)
      ("virtual_identical", Json.Int (if identical then 1 else 0));
      (* JSONL bytes / binary bytes for the same event stream;
         bench_diff.sh holds every "shrink" leaf at >= 4.0. *)
      ("binary_capture_shrink", Json.Float shrink);
    ]

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig4", "FIG4  latency vs message size", fig4);
    ("compare", "TAB-CMP  120B latency vs NX/PAM/SUNMOS", compare);
    ("cache_ablation", "ABL-CACHE  locks x layout ablation", cache_ablation);
    ("validity", "ABL-CHECKS  validity-check cost", validity);
    ("transient", "TRANSIENT  startup transient", transient);
    ("pam_small", "PAM-SMALL  20-byte crossover", pam_small);
    ("kkt_port", "KKT-PORT  portable engine on 3 platforms", kkt_port);
    ("flow", "DROP-FLOW  discards and provisioning", flow);
    ("bandwidth", "BW-SLOPE  bandwidth story", bandwidth);
    ("rt_isolation", "RT-PRIO  priority isolation", rt_isolation);
    ("design", "DESIGN  implementation design-choice ablations", design_ablations);
    ("logp", "LOGP  LogP-style transport parameters", logp);
    ("congestion", "CONGESTION  incast on the contended mesh", congestion);
    ("breakdown", "BREAKDOWN  one-way latency decomposition", breakdown);
    ("engine_scan", "ENGINE-SCAN  work-proportional scheduling", engine_scan);
    ("firehose", "FIREHOSE  open-loop throughput, batched vs unbatched", firehose);
    ("bulk", "EXT-BULK  bulk-transfer crossover (extension)", bulk_crossover);
    ("transport_prio", "EXT-PRIO  transport priority/capacity (extension)",
     transport_prio);
    ("channel", "EXT-CHAN  channel-layer overhead (extension)", channel_overhead);
    ("express", "EXT-EM  Express Messages ancestor knobs", express);
    ("distribution", "DISTRIBUTION  one-way latency histogram", distribution);
    ("faults", "FAULTS  reliable channel vs injected loss (extension)",
     fault_sweep);
    ("retrans_modes",
     "RETRANS-MODES  selective repeat vs go-back-N ablation (extension)",
     retrans_modes);
    ("doctor_overhead", "DOCTOR-OVERHEAD  diagnosis layer cost (extension)",
     doctor_overhead);
    ("micro", "MICRO  Bechamel data-structure benches", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "list" ] ->
      List.iter (fun (id, desc, _) -> Fmt.pr "%-16s %s@." id desc) experiments
  | [] ->
      Fmt.pr "FLIPC reproduction benchmark harness (all experiments)@.@.";
      List.iter (fun (_, _, f) -> f ()) experiments
  | ids ->
      List.iter
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some (_, _, f) -> f ()
          | None ->
              Fmt.epr "unknown experiment %S (try 'list')@." id;
              exit 1)
        ids
