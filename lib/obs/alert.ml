type quantile = P50 | P99

type rule_kind =
  | Rate_band of { counter : string; min : float option; max : float option }
  | Counter_zero of { counter : string }
  | Quantile_ceiling of { histo : string; q : quantile; ceiling : float }

type rule = { r_name : string; r_kind : rule_kind }

type fired = {
  a_rule : string;
  a_window_start : int;
  a_window_end : int;
  a_value : float;
  a_detail : string;
}

(* ------------------------------------------------------------------ *)
(* Rule parsing.                                                       *)

let num = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let rule_of_json i doc =
  let fail fmt =
    Printf.ksprintf (fun s -> Error (Printf.sprintf "rule %d: %s" i s)) fmt
  in
  let str k = Option.bind (Json.member k doc) Json.to_str in
  let flt k = Option.bind (Json.member k doc) num in
  match str "name" with
  | None -> fail "missing \"name\""
  | Some r_name -> (
      match str "kind" with
      | None -> fail "missing \"kind\""
      | Some "rate_band" -> (
          match str "counter" with
          | None -> fail "rate_band needs \"counter\""
          | Some counter -> (
              match (flt "min", flt "max") with
              | None, None -> fail "rate_band needs \"min\" and/or \"max\""
              | min, max -> Ok { r_name; r_kind = Rate_band { counter; min; max } }))
      | Some "counter_zero" -> (
          match str "counter" with
          | None -> fail "counter_zero needs \"counter\""
          | Some counter -> Ok { r_name; r_kind = Counter_zero { counter } })
      | Some "quantile_ceiling" -> (
          match (str "histo", flt "ceiling") with
          | None, _ -> fail "quantile_ceiling needs \"histo\""
          | _, None -> fail "quantile_ceiling needs \"ceiling\""
          | Some histo, Some ceiling -> (
              match str "q" with
              | None | Some "p99" ->
                  Ok { r_name; r_kind = Quantile_ceiling { histo; q = P99; ceiling } }
              | Some "p50" ->
                  Ok { r_name; r_kind = Quantile_ceiling { histo; q = P50; ceiling } }
              | Some q -> fail "unknown quantile %S (want \"p50\"/\"p99\")" q))
      | Some k -> fail "unknown rule kind %S" k)

let rules_of_json doc =
  match Json.member "rules" doc with
  | Some (Json.List rules) ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> (
            match rule_of_json i r with
            | Ok rule -> go (i + 1) (rule :: acc) rest
            | Error _ as e -> e)
      in
      go 0 [] rules
  | _ -> Error "rules document needs a \"rules\" list"

let load_rules path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          match Json.of_string (really_input_string ic n) with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok doc -> rules_of_json doc)

(* ------------------------------------------------------------------ *)
(* Window evaluation.                                                  *)

let window_field section name w =
  Option.bind (Json.member section w) (Json.member name)

let window_bounds w =
  let b k =
    match Option.bind (Json.member k w) Json.to_int with Some v -> v | None -> 0
  in
  (b "start_ns", b "end_ns")

let eval_rule w rule =
  let w_start, w_end = window_bounds w in
  let fire value detail =
    Some
      {
        a_rule = rule.r_name;
        a_window_start = w_start;
        a_window_end = w_end;
        a_value = value;
        a_detail = detail;
      }
  in
  match rule.r_kind with
  | Rate_band { counter; min; max } -> (
      match
        Option.bind (window_field "counters" counter w) (fun c ->
            Option.bind (Json.member "rate_per_s" c) num)
      with
      | None -> None (* counter not registered in this run: skip *)
      | Some rate ->
          let below = match min with Some m -> rate < m | None -> false in
          let above = match max with Some m -> rate > m | None -> false in
          if below || above then
            fire rate
              (Printf.sprintf "%s rate %.6g/s outside [%s, %s] in [%d, %d)ns"
                 counter rate
                 (match min with Some m -> Printf.sprintf "%.6g" m | None -> "-inf")
                 (match max with Some m -> Printf.sprintf "%.6g" m | None -> "+inf")
                 w_start w_end)
          else None)
  | Counter_zero { counter } -> (
      match
        Option.bind (window_field "counters" counter w) (fun c ->
            Option.bind (Json.member "delta" c) Json.to_int)
      with
      | Some 0 -> None
      | Some delta ->
          fire (float_of_int delta)
            (Printf.sprintf "%s advanced by %d (must stay 0) in [%d, %d)ns"
               counter delta w_start w_end)
      | None -> (
          (* Engine invariant probes (corrupt_frames, drops, ...) export
             as gauges; a must-stay-zero rule reads either section. *)
          match Option.bind (window_field "gauges" counter w) num with
          | None | Some 0. -> None
          | Some v ->
              fire v
                (Printf.sprintf "%s = %.6g (must stay 0) in [%d, %d)ns"
                   counter v w_start w_end)))
  | Quantile_ceiling { histo; q; ceiling } -> (
      match window_field "histos" histo w with
      | None -> None
      | Some h -> (
          match Option.bind (Json.member "count_delta" h) Json.to_int with
          | None | Some 0 -> None (* no fresh observations: stale quantile *)
          | Some _ -> (
              let qname = match q with P50 -> "p50" | P99 -> "p99" in
              match Option.bind (Json.member qname h) num with
              | None -> None
              | Some v ->
                  if v > ceiling then
                    fire v
                      (Printf.sprintf "%s %s %.6g exceeds ceiling %.6g in [%d, %d)ns"
                         histo qname v ceiling w_start w_end)
                  else None)))

let eval_window ~rules w = List.filter_map (eval_rule w) rules

(* ------------------------------------------------------------------ *)
(* The attached engine: a Series tap whose close hook runs the rules   *)
(* and fires typed events back into the stream.                        *)

type t = {
  rules : rule list;
  series : Series.t;
  mutable firings : fired list; (* newest first *)
}

let attach ~rules ?interval ?capacity obs =
  let rec t =
    lazy
      {
        rules;
        series =
          Series.attach ?interval ?capacity
            ~on_window:(fun w ->
              let self = Lazy.force t in
              List.iter
                (fun f ->
                  self.firings <- f :: self.firings;
                  (* Into the trace: the capture and any monitor see the
                     alert at the window boundary that tripped it. *)
                  Obs.event obs
                    (Event.Alert_fired
                       { node = 0; rule = f.a_rule; detail = f.a_detail }))
                (eval_window ~rules w))
            obs;
        firings = [];
      }
  in
  Lazy.force t

let series t = t.series
let sample t = Series.sample t.series
let fired t = List.rev t.firings
let clean t = t.firings = []

let json t =
  Json.List
    (List.map
       (fun f ->
         Json.Obj
           [
             ("rule", Json.String f.a_rule);
             ("window_start_ns", Json.Int f.a_window_start);
             ("window_end_ns", Json.Int f.a_window_end);
             ("value", Json.Float f.a_value);
             ("detail", Json.String f.a_detail);
           ])
       (fired t))

let pp_report fmt t =
  match fired t with
  | [] -> Format.fprintf fmt "alerts: clean (%d rules)@." (List.length t.rules)
  | firings ->
      Format.fprintf fmt "alerts: %d firing(s)@." (List.length firings);
      List.iter
        (fun f -> Format.fprintf fmt "  [%s] %s@." f.a_rule f.a_detail)
        firings
