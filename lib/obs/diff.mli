(** Cross-run capture diffing: [flipc doctor --replay A --against B].

    Re-derives the full diagnosis from two captures (any mix of JSONL
    and binary) and compares them: violations keyed by (rule, node) —
    added, removed, count-changed; per-event-kind counter deltas;
    per-stage latency quantile deltas over all spans; and per-site span
    accounting, where a {e site} is the (source node, destination node)
    pair of a message stream and spans within a site are aligned
    ordinally by first-step time (msg_ids differ across runs, stream
    position does not). *)

type t

(** [compare_runs ~base ~cand] derives and diffs both reports.
    Violations present in [cand] but not [base] are "added" (the
    regression direction {!regressions} counts). *)
val compare_runs : base:Replay.t -> cand:Replay.t -> t

(** Number of (rule, node) violation keys present only in the
    candidate — the CI-gate signal. *)
val regressions : t -> int

(** Machine-readable diff document. *)
val json : t -> Json.t

(** Human report. *)
val pp : Format.formatter -> t -> unit
