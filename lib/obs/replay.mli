(** Offline trace replay: parse a {!Sink} capture back into typed
    events and drive the live diagnosis machinery on it.

    [flipc doctor --replay out.trace] uses this to reproduce a live
    run's report from a file alone: {!steps} feeds
    {!Causal.spans_of_steps} for span reconstruction, and the records
    feed a detached {!Monitor} ({!Monitor.create}/{!Monitor.feed}) for
    the full rule catalogue — same spans, same violations, same
    stalled-stage verdicts as the run that wrote the capture. *)

type record = { r_ts : Flipc_sim.Vtime.t; r_pid : int; r_ev : Event.t }
type t

(** [load path] parses a capture, auto-detecting the format: files
    starting with {!Codec.magic} decode as binary [.ftrace] captures,
    anything else parses as JSONL. [Error] carries the first offending
    line (JSONL) or byte offset (binary). Unknown trailing fields are
    ignored; version mismatches are errors in both formats. *)
val load : string -> (t, string) result

val version : t -> int
val meta : t -> (string * Json.t) list

(** Event records in file (= emission) order. *)
val records : t -> record list

(** [pid -> label] from the trailer (empty if the capture was cut off
    before close). *)
val machines : t -> (int * string) list

(** The run summary the capturing command stored, if any. *)
val summary : t -> Json.t option

(** Records as causal steps (machine labels resolved), time-ordered the
    same way {!Causal.spans} orders live rings. *)
val steps : t -> Causal.step list

(** [Causal.spans_of_steps (steps t)]. *)
val spans : t -> Causal.span list
