module Vtime = Flipc_sim.Vtime
module Engine = Flipc_sim.Engine

type violation = {
  at : Vtime.t;
  rule : string;
  node : int;
  mid : int;
  detail : string;
  history : string;
}

type check = { c_rule : string; c_node : int; c_fn : unit -> string option }

type t = {
  (* Causal-history provider for violation reports: live monitors close
     over their machine's ring, replay monitors over the loaded trace. *)
  history : int -> string;
  limit : int;
  mutable violations : violation list; (* newest first *)
  mutable events_seen : int;
  fired : (string, unit) Hashtbl.t; (* one report per (rule, site) *)
  mutable checks : check list;
  (* per-invariant running state, keyed by (node, global endpoint) *)
  deliver_last : (int * int, int) Hashtbl.t;
  ack_cum : (int * int, int) Hashtbl.t;
  tx_last : (int * int, int) Hashtbl.t;
  grant_count : (int * int, int) Hashtbl.t;
  win_granted : (int * int, int) Hashtbl.t;
  dropped : (int * int, int) Hashtbl.t;
  drops_read : (int * int, int) Hashtbl.t;
  (* KKT RPC state: last call id per client node, outstanding calls *)
  kkt_last_id : (int, int) Hashtbl.t;
  kkt_outstanding : (int * int, unit) Hashtbl.t;
  (* Bulk transfer state, keyed by transfer id *)
  bulk_total : (int, int) Hashtbl.t;
  bulk_next : (int, int) Hashtbl.t; (* next expected chunk offset *)
  bulk_bytes : (int, int) Hashtbl.t; (* bytes accepted so far *)
  bulk_cancelled : (int, unit) Hashtbl.t;
}

let get tbl key = Option.value (Hashtbl.find_opt tbl key) ~default:0
let set tbl key v = Hashtbl.replace tbl key v

let record t ~now ~rule ~node ~ep ~mid detail =
  let site = Printf.sprintf "%s@%d/%d" rule node ep in
  if not (Hashtbl.mem t.fired site) then begin
    Hashtbl.add t.fired site ();
    if List.length t.violations < t.limit then begin
      (* The offending message's causal history, reconstructed at the
         moment of detection. *)
      let history = if mid > 0 then t.history mid else "" in
      t.violations <- { at = now; rule; node; mid; detail; history } :: t.violations
    end
  end

(* The invariant catalogue (see DESIGN.md §13). Each rule fires at most
   once per (rule, node, endpoint) site and captures the triggering
   message's causal span. *)
let on_event t now ev =
  t.events_seen <- t.events_seen + 1;
  let ev_mid = Option.value (Event.mid ev) ~default:0 in
  (match ev with
  | Event.Frame_deliver { node; ep; seq; mid } ->
      let key = (node, ep) in
      let last = get t.deliver_last key in
      (if seq <= last then
         record t ~now ~rule:"retrans.duplicate_delivery" ~node ~ep ~mid
           (Printf.sprintf "frame seq %d delivered again (last delivered %d)"
              seq last)
       else if seq <> last + 1 then
         record t ~now ~rule:"retrans.in_order_delivery" ~node ~ep ~mid
           (Printf.sprintf "frame seq %d delivered after %d (gap of %d)" seq
              last (seq - last - 1)));
      set t.deliver_last key (max seq last)
  | Event.Ack_tx { node; ep; cum; _ } ->
      let key = (node, ep) in
      let prev = get t.ack_cum key in
      if cum < prev then
        record t ~now ~rule:"retrans.cum_ack_monotone" ~node ~ep ~mid:ev_mid
          (Printf.sprintf "cumulative ack moved backwards: %d after %d" cum
             prev)
      else begin
        set t.ack_cum key cum;
        let delivered = get t.deliver_last key in
        if cum > delivered then
          record t ~now ~rule:"retrans.sack_window" ~node ~ep ~mid:ev_mid
            (Printf.sprintf
               "acked cum %d beyond last delivered frame %d (acknowledging \
                frames never released)"
               cum delivered)
      end
  | Event.Frame_tx { node; ep; seq; mid; retransmit = false } ->
      let key = (node, ep) in
      let last = get t.tx_last key in
      if seq <> last + 1 then
        record t ~now ~rule:"retrans.tx_seq_contiguous" ~node ~ep ~mid
          (Printf.sprintf "first transmission of seq %d after %d" seq last)
      else set t.tx_last key seq
  | Event.Credit_grant { node; ep; count } ->
      let key = (node, ep) in
      let prev = get t.grant_count key in
      if count < prev then
        record t ~now ~rule:"window.grant_monotone" ~node ~ep ~mid:ev_mid
          (Printf.sprintf
             "cumulative consumed count moved backwards: %d after %d" count
             prev)
      else set t.grant_count key count
  | Event.Window_send { node; ep; mid; sent; granted; window } ->
      let key = (node, ep) in
      let outstanding = sent - granted in
      let prev_granted = get t.win_granted key in
      if granted < prev_granted then
        record t ~now ~rule:"window.credit_conservation" ~node ~ep ~mid
          (Printf.sprintf "sender's granted count moved backwards: %d after %d"
             granted prev_granted)
      else begin
        set t.win_granted key granted;
        if outstanding < 1 || outstanding > window then
          record t ~now ~rule:"window.credit_conservation" ~node ~ep ~mid
            (Printf.sprintf
               "outstanding %d outside window [1..%d] (sent=%d granted=%d)"
               outstanding window sent granted)
      end
  | Event.Drop { node; ep; reason = Event.No_posted_buffer; _ } ->
      let key = (node, ep) in
      set t.dropped key (get t.dropped key + 1)
  | Event.Drops_read { node; ep; count } ->
      let key = (node, ep) in
      let read = get t.drops_read key + count in
      set t.drops_read key read;
      let dropped = get t.dropped key in
      if read > dropped then
        record t ~now ~rule:"drops.read_reset" ~node ~ep ~mid:ev_mid
          (Printf.sprintf
             "application read %d drops but the engine recorded only %d" read
             dropped)
  (* KKT RPC rules: call ids are allocated monotonically per client and
     a completion must match an outstanding call. The call id doubles as
     the dedup site's endpoint. *)
  | Event.Kkt_call { node; id; mid; _ } ->
      let last = get t.kkt_last_id node in
      if id <= last then
        record t ~now ~rule:"kkt.slot_reuse" ~node ~ep:id ~mid
          (Printf.sprintf
             "call id %d issued out of order (last allocated %d): pending-slot \
              reuse"
             id last)
      else set t.kkt_last_id node id;
      Hashtbl.replace t.kkt_outstanding (node, id) ()
  | Event.Kkt_dispatch { node; id; valid; mid } ->
      if not valid then
        record t ~now ~rule:"kkt.key_validity" ~node ~ep:id ~mid
          (Printf.sprintf
             "call id %d dispatched on a node with no registered handler \
              (invalid key)"
             id)
  | Event.Kkt_complete { node; id; mid } ->
      if Hashtbl.mem t.kkt_outstanding (node, id) then
        Hashtbl.remove t.kkt_outstanding (node, id)
      else
        record t ~now ~rule:"kkt.no_reply_without_request" ~node ~ep:id ~mid
          (Printf.sprintf "call id %d completed with no outstanding request" id)
  (* Bulk transfer rules: chunks must arrive contiguously from the first
     observed offset, completion implies every byte arrived, and a
     cancelled transfer makes no further progress. The transfer id
     doubles as the dedup site's endpoint. *)
  | Event.Bulk_start { transfer; total; _ } ->
      set t.bulk_total transfer total;
      set t.bulk_bytes transfer 0
  | Event.Bulk_chunk { node; transfer; offset; len; mid } ->
      if Hashtbl.mem t.bulk_cancelled transfer then
        record t ~now ~rule:"bulk.no_progress_after_cancel" ~node ~ep:transfer
          ~mid
          (Printf.sprintf "chunk at offset %d accepted after cancel" offset)
      else begin
        (match Hashtbl.find_opt t.bulk_next transfer with
        | Some next when offset <> next ->
            record t ~now ~rule:"bulk.chunk_contiguity" ~node ~ep:transfer ~mid
              (Printf.sprintf
                 "chunk at offset %d but next expected offset is %d (hole or \
                  overlap)"
                 offset next)
        | _ -> ());
        set t.bulk_next transfer (offset + len);
        set t.bulk_bytes transfer (get t.bulk_bytes transfer + len)
      end
  | Event.Bulk_complete { node; transfer; mid } ->
      if Hashtbl.mem t.bulk_cancelled transfer then
        record t ~now ~rule:"bulk.no_progress_after_cancel" ~node ~ep:transfer
          ~mid "transfer completed after cancel"
      else begin
        match Hashtbl.find_opt t.bulk_total transfer with
        | None ->
            record t ~now ~rule:"bulk.completion_implies_all_chunks" ~node
              ~ep:transfer ~mid "transfer completed but was never started"
        | Some total ->
            let got = get t.bulk_bytes transfer in
            if got < total then
              record t ~now ~rule:"bulk.completion_implies_all_chunks" ~node
                ~ep:transfer ~mid
                (Printf.sprintf "transfer completed with %d of %d bytes" got
                   total)
      end
  | Event.Bulk_cancel { transfer; _ } ->
      Hashtbl.replace t.bulk_cancelled transfer ()
  | _ -> ());
  (* Registered machine-state checks (queue pointer ordering, ...) run on
     every event: they are untimed peeks, and the triggering event lends
     its mid so the report can show what the machine was doing. *)
  List.iter
    (fun c ->
      let site = Printf.sprintf "%s@%d/-" c.c_rule c.c_node in
      if not (Hashtbl.mem t.fired site) then
        match c.c_fn () with
        | None -> ()
        | Some detail ->
            record t ~now ~rule:c.c_rule ~node:c.c_node ~ep:(-1) ~mid:ev_mid
              detail)
    t.checks

let create ?(limit = 16) ?(history = fun _ -> "") () =
  {
    history;
    limit;
    violations = [];
    events_seen = 0;
    fired = Hashtbl.create 16;
    checks = [];
    deliver_last = Hashtbl.create 16;
    ack_cum = Hashtbl.create 16;
    tx_last = Hashtbl.create 16;
    grant_count = Hashtbl.create 16;
    win_granted = Hashtbl.create 16;
    dropped = Hashtbl.create 16;
    drops_read = Hashtbl.create 16;
    kkt_last_id = Hashtbl.create 16;
    kkt_outstanding = Hashtbl.create 16;
    bulk_total = Hashtbl.create 16;
    bulk_next = Hashtbl.create 16;
    bulk_bytes = Hashtbl.create 16;
    bulk_cancelled = Hashtbl.create 16;
  }

let feed t ~now ev = on_event t now ev

let attach ?limit obs =
  let history mid =
    match Causal.find (Causal.spans [ obs ]) mid with
    | Some span -> Fmt.str "@[<v>%a@]" Causal.pp_span span
    | None -> ""
  in
  let t = create ?limit ~history () in
  (* Violation reports want the causal history, so monitoring implies
     recording: enable the ring along with the watcher tap. *)
  Tracer.enable (Obs.tracer obs);
  Obs.add_watcher obs (fun now ev -> on_event t now ev);
  let m = Obs.metrics obs in
  Metrics.probe m "monitor.events_seen" (fun () ->
      float_of_int t.events_seen);
  Metrics.probe m "monitor.violations" (fun () ->
      float_of_int (List.length t.violations));
  t

let add_check t ~rule ~node f =
  t.checks <- t.checks @ [ { c_rule = rule; c_node = node; c_fn = f } ]

let violations t = List.rev t.violations
let clean t = t.violations = []
let events_seen t = t.events_seen

let pp_violation fmt v =
  Fmt.pf fmt "@[<v>INVARIANT VIOLATION [%s] at vt=%a on node %d%s@,  %s@]"
    v.rule Vtime.pp v.at v.node
    (if v.mid > 0 then Printf.sprintf " (msg %d)" v.mid else "")
    v.detail;
  if v.history <> "" then Fmt.pf fmt "@,  causal history:@,@[<v 2>  %s@]" v.history

let pp_report fmt t =
  match violations t with
  | [] ->
      Fmt.pf fmt "monitor: clean (%d events checked, 0 violations)@,"
        t.events_seen
  | vs ->
      Fmt.pf fmt "monitor: %d violation(s) in %d events@," (List.length vs)
        t.events_seen;
      List.iter (fun v -> Fmt.pf fmt "%a@," pp_violation v) vs

(* Per-flow virtual-time progress watchdog. A loop that might never
   complete checks [expired] each poll and calls [report] instead of
   spinning forever: the report is the "flight recorder" — every
   machine's registered state reporters, the tail of every event ring,
   and (when known) the stalled message's causal trace with the stage it
   stopped at. *)
module Watchdog = struct
  type w = {
    sim : Engine.t;
    w_name : string;
    budget : Vtime.t;
    mutable deadline : Vtime.t;
  }

  type t = w

  let create ?(budget = Vtime.ms 50) ~sim ~name () =
    { sim; w_name = name; budget; deadline = Vtime.add (Engine.now sim) budget }

  let progress t = t.deadline <- Vtime.add (Engine.now t.sim) t.budget
  let expired t = Vtime.compare (Engine.now t.sim) t.deadline > 0
  let name t = t.w_name

  let rec drop n l =
    if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

  let report ?(events = 30) ?mid t obs_list =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    Fmt.pf fmt
      "@[<v>=== FLIGHT RECORDER: watchdog '%s' expired ===@,\
       no progress for %a of virtual time (now %a)@,"
      t.w_name Vtime.pp t.budget Vtime.pp (Engine.now t.sim);
    (match mid with
    | Some mid when mid > 0 -> (
        match Causal.find (Causal.spans obs_list) mid with
        | Some span ->
            Fmt.pf fmt "stalled flow: msg %d — %s@,@[<v 2>  %a@]@," mid
              (Causal.stalled_stage span) Causal.pp_span span
        | None -> Fmt.pf fmt "stalled flow: msg %d — no events captured@," mid)
    | _ -> ());
    List.iter
      (fun obs ->
        Fmt.pf fmt "-- machine '%s' --@," (Obs.label obs);
        Obs.report obs fmt;
        let entries = Tracer.to_list (Obs.tracer obs) in
        let total = List.length entries in
        let tail =
          if total <= events then entries else drop (total - events) entries
        in
        Fmt.pf fmt "last %d of %d events:@," (List.length tail) total;
        List.iter
          (fun (e : Tracer.entry) ->
            Fmt.pf fmt "  [%9d ns] %a@," (Vtime.to_ns e.ts) Event.pp e.ev)
          tail)
      obs_list;
    Fmt.pf fmt "=== end flight recorder ===@]@.";
    Buffer.contents buf
end
