module Vtime = Flipc_sim.Vtime

type step = { ts : Vtime.t; pid : int; machine : string; ev : Event.t }
type span = { mid : int; steps : step list }

(* Chronological merge of every machine's retained events, each tagged
   with its machine of origin. Per-tracer lists are already in time
   order; the global stable sort keeps emission order within a tick. *)
let merged_entries obs_list =
  List.concat_map
    (fun o ->
      let pid = Obs.id o and machine = Obs.label o in
      List.map
        (fun (e : Tracer.entry) -> { ts = e.ts; pid; machine; ev = e.ev })
        (Tracer.to_list (Obs.tracer o)))
    obs_list
  |> List.stable_sort (fun a b -> compare a.ts b.ts)

let spans_of_steps entries =
  let by_mid : (int, step list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let push mid step =
    match Hashtbl.find_opt by_mid mid with
    | Some l -> l := step :: !l
    | None ->
        Hashtbl.add by_mid mid (ref [ step ]);
        order := mid :: !order
  in
  (* Doorbell events carry no mid (a doorbell covers a whole batch of
     releases); bind each one to every message enqueued on that (node,
     ep) and not yet picked up by an [Engine_tx]. *)
  let awaiting : (int * int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let waiting key =
    match Hashtbl.find_opt awaiting key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add awaiting key l;
        l
  in
  List.iter
    (fun step ->
      (match Event.mid step.ev with Some m -> push m step | None -> ());
      match step.ev with
      | Event.Send_enqueued { node; ep; mid; _ } when mid > 0 ->
          let l = waiting (node, ep) in
          l := !l @ [ mid ]
      | Event.Doorbell { node; ep } ->
          List.iter (fun m -> push m step) !(waiting (node, ep))
      | Event.Engine_tx { node; ep; mid; _ } when mid > 0 ->
          let l = waiting (node, ep) in
          l := List.filter (fun m -> m <> mid) !l
      | _ -> ())
    entries;
  List.rev_map
    (fun mid -> { mid; steps = List.rev !(Hashtbl.find by_mid mid) })
    !order

let spans obs_list = spans_of_steps (merged_entries obs_list)
let find spans mid = List.find_opt (fun s -> s.mid = mid) spans

let stage_of ev =
  match ev with
  | Event.Send_enqueued _ -> "send"
  | Event.Doorbell _ -> "doorbell"
  | Event.Engine_tx _ -> "engine_tx"
  | Event.Fault _ -> "wire_fault"
  | Event.Wire_rx _ -> "wire_rx"
  | Event.Deposit _ -> "queue"
  | Event.Recv_dequeued _ -> "recv"
  | Event.Drop _ -> "drop"
  | Event.Frame_tx { retransmit; _ } ->
      if retransmit then "retransmit" else "frame_tx"
  | Event.Frame_deliver _ -> "frame_deliver"
  | Event.Window_send _ -> "window_send"
  | ev -> Event.name ev

(* What the message is waiting for, judged by the last event observed on
   its path — the vocabulary of watchdog reports. *)
(* A span whose packet the fault injector dropped or corrupted and that
   never reached the far side: the fault fires inside the transmit path,
   so [Engine_tx] can carry the same timestamp and sort after it — judge
   by the whole span, not the last event. A corrupted frame's receiver-
   side checksum discard carries mid 0 (the bits are untrusted), so the
   original span shows only the [Fault_corrupt] marker. *)
let lost_on_wire kind span =
  List.exists
    (fun s ->
      match s.ev with
      | Event.Fault { kind = k; _ } -> k = kind
      | _ -> false)
    span.steps
  && not
       (List.exists
          (fun s ->
            match s.ev with
            | Event.Wire_rx _ | Event.Deposit _ | Event.Recv_dequeued _
            | Event.Drop _ | Event.Frame_deliver _ ->
                true
            | _ -> false)
          span.steps)

let wire_dropped span = lost_on_wire Event.Fault_drop span

let corrupt_verdict =
  "corrupted on the wire (receiver discarded the frame by checksum)"

(* A corrupted frame can still reach the destination engine — [Wire_rx]
   is stamped on arrival, before the checksum runs — so "corrupted and
   discarded" means: a [Fault_corrupt] marker with no delivery evidence
   after it (no deposit, dequeue or frame release; the checksum discard
   itself carries mid 0, its id bits being untrustworthy). *)
let corrupt_discarded span =
  List.exists
    (fun s ->
      match s.ev with
      | Event.Fault { kind = Event.Fault_corrupt; _ } -> true
      | _ -> false)
    span.steps
  && not
       (List.exists
          (fun s ->
            match s.ev with
            | Event.Deposit _ | Event.Recv_dequeued _ | Event.Drop _
            | Event.Frame_deliver _ ->
                true
            | _ -> false)
          span.steps)

let stalled_stage span =
  if wire_dropped span then "dropped on the wire (fault injection)"
  else if corrupt_discarded span then corrupt_verdict
  else
    match List.rev span.steps with
    | [] -> "never sent (no events recorded)"
    | last :: _ -> (
      match last.ev with
      | Event.Send_enqueued _ | Event.Doorbell _ | Event.Frame_tx _
      | Event.Window_send _ ->
          "awaiting engine transmit (send queued, engine has not drained it)"
      | Event.Engine_tx _ -> "awaiting wire arrival (in the fabric)"
      | Event.Fault { kind = Event.Fault_drop; _ } ->
          "dropped on the wire (fault injection)"
      | Event.Fault { kind = Event.Fault_corrupt; _ } -> corrupt_verdict
      | Event.Fault _ -> "awaiting wire arrival (in the fabric, after fault)"
      | Event.Wire_rx _ ->
          "awaiting deposit (arrived, engine has not queued it)"
      | Event.Deposit _ ->
          "awaiting application dequeue (deposited, receiver has not taken \
           it)"
      | Event.Drop { reason; _ } ->
          Printf.sprintf "dropped at destination (%s)"
            (Event.drop_reason_name reason)
      | Event.Recv_dequeued _ | Event.Frame_deliver _ -> "delivered"
      | ev -> Printf.sprintf "after %s" (Event.name ev))

let pp_step fmt s =
  Fmt.pf fmt "[%9d ns] %-24s %-12s %a" (Vtime.to_ns s.ts) s.machine
    (stage_of s.ev) Event.pp s.ev

let pp_span fmt span =
  Fmt.pf fmt "msg %d (%d events) — %s@," span.mid (List.length span.steps)
    (stalled_stage span);
  List.iter (fun s -> Fmt.pf fmt "  %a@," pp_step s) span.steps

(* Frames retransmitted by the reliability layer: every transmission of
   the same (node, ep, seq) carries a fresh message id, so the branches
   of one logical frame are the mids sharing its key. *)
let retransmissions spans =
  let tbl : (int * int * int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun span ->
      List.iter
        (fun step ->
          match step.ev with
          | Event.Frame_tx { node; ep; seq; mid; _ } when mid > 0 -> (
              let key = (node, ep, seq) in
              match Hashtbl.find_opt tbl key with
              | Some l -> if not (List.mem mid !l) then l := !l @ [ mid ]
              | None ->
                  Hashtbl.add tbl key (ref [ mid ]);
                  order := key :: !order)
          | _ -> ())
        span.steps)
    spans;
  List.rev !order
  |> List.filter_map (fun ((node, ep, seq) as key) ->
         match Hashtbl.find_opt tbl key with
         | Some l when List.length !l > 1 -> Some (node, ep, seq, !l)
         | _ -> None)

(* Chrome export with cross-machine flow arrows: each machine keeps its
   instant-event rows (metadata names from the Obs label), and every
   multi-step span additionally contributes tiny "X" slices (flow events
   must bind to an enclosing duration event) chained by s/t/f flow
   events sharing the span's mid as the flow id. *)
let flow_json span =
  let n = List.length span.steps in
  let slice s =
    Json.Obj
      [
        ("name", Json.String (stage_of s.ev));
        ("cat", Json.String "flipc.msg");
        ("ph", Json.String "X");
        ("ts", Json.Float (float_of_int (Vtime.to_ns s.ts) /. 1000.));
        ("dur", Json.Float 0.3);
        ("pid", Json.Int s.pid);
        ("tid", Json.Int (Event.node s.ev));
        ("args", Json.Obj (("mid", Json.Int span.mid) :: Event.args s.ev));
      ]
  in
  let flow i s =
    let ph = if i = 0 then "s" else if i = n - 1 then "f" else "t" in
    let base =
      [
        ("name", Json.String (Printf.sprintf "msg-%d" span.mid));
        ("cat", Json.String "flipc.flow");
        ("ph", Json.String ph);
        ("id", Json.Int span.mid);
        ("ts", Json.Float (float_of_int (Vtime.to_ns s.ts) /. 1000.));
        ("pid", Json.Int s.pid);
        ("tid", Json.Int (Event.node s.ev));
      ]
    in
    Json.Obj (if ph = "f" then base @ [ ("bp", Json.String "e") ] else base)
  in
  if n < 2 then []
  else
    List.concat (List.mapi (fun i s -> [ slice s; flow i s ]) span.steps)

let chrome_json_of obs_list =
  let instants =
    List.concat_map
      (fun o ->
        Tracer.chrome_events ~pid:(Obs.id o) ~process_name:(Obs.label o)
          (Obs.tracer o))
      obs_list
  in
  let flows = List.concat_map flow_json (spans obs_list) in
  Json.Obj
    [
      ("traceEvents", Json.List (instants @ flows));
      ("displayTimeUnit", Json.String "ns");
    ]

let captured_chrome_json () = chrome_json_of (Obs.captured ())
