(** The typed trace-event taxonomy.

    One constructor per interesting transition in a message's life (plus
    engine scheduling and fault-injection markers), replacing the old
    free-form string trace. Endpoint indices are node-global (the same
    indices {!Flipc.Address} carries), virtual timestamps are attached by
    {!Tracer}. The lifecycle events, in path order:

    [Send_enqueued] (application queued a buffer) → [Engine_tx] (engine
    handed the image to the transport) → [Wire_rx] (image arrived at the
    destination engine) → [Deposit] (engine placed it in a posted
    buffer) → [Recv_dequeued] (application took it). [Drop] replaces
    [Deposit] when no buffer is posted or the message is refused. *)

type drop_reason =
  | No_posted_buffer  (** optimistic discard: receiver had no buffer *)
  | Bad_destination  (** undeliverable or null destination *)
  | Corrupt_slot  (** application queued a bad buffer pointer *)
  | Forbidden_destination  (** endpoint's destination restriction refused it *)

type fault_kind = Fault_drop | Fault_duplicate | Fault_reorder | Fault_jitter

type t =
  | Send_enqueued of { node : int; ep : int; dst_node : int; dst_ep : int }
  | Engine_tx of { node : int; ep : int; dst_node : int; dst_ep : int }
  | Wire_rx of { node : int; ep : int }
  | Deposit of { node : int; ep : int }
  | Recv_dequeued of { node : int; ep : int }
  | Drop of { node : int; ep : int; reason : drop_reason }
  | Retransmit of { node : int; ep : int; seq : int }
  | Credit_grant of { node : int; ep : int; count : int }
  | Engine_park of { node : int; idle : int }
  | Engine_wake of { node : int }
  | Fault of { node : int; kind : fault_kind }
  | Note of { node : int; tag : string; detail : string }
      (** escape hatch for ad-hoc instrumentation *)

val drop_reason_name : drop_reason -> string
val fault_kind_name : fault_kind -> string

(** Stable lower-case identifier ([Note] events use their tag). *)
val name : t -> string

(** The node the event happened on. *)
val node : t -> int

(** Structured payload for JSON export, deterministic field order. *)
val args : t -> (string * Json.t) list

val pp : Format.formatter -> t -> unit
