(** The typed trace-event taxonomy.

    One constructor per interesting transition in a message's life (plus
    engine scheduling and fault-injection markers), replacing the old
    free-form string trace. Endpoint indices are node-global (the same
    indices {!Flipc.Address} carries), virtual timestamps are attached by
    {!Tracer}. The lifecycle events, in path order:

    [Send_enqueued] (application queued a buffer) → [Doorbell] (engine
    noticed the endpoint's doorbell) → [Engine_tx] (engine handed the
    image to the transport) → [Wire_rx] (image arrived at the destination
    engine) → [Deposit] (engine placed it in a posted buffer) →
    [Recv_dequeued] (application took it). [Drop] replaces [Deposit] when
    no buffer is posted or the message is refused.

    {b Causal message ids.} Every application send stamps a
    process-unique [mid] into the message's state word (see
    {!Flipc.Msg_buffer}); the lifecycle events above carry it, as do the
    reliability-layer frame events and fault-injection markers, so
    {!Causal} can stitch one message's full cross-machine path back
    together. [mid = 0] means "unstamped/unknown" — {!val:mid} maps it to
    [None]. *)

type drop_reason =
  | No_posted_buffer  (** optimistic discard: receiver had no buffer *)
  | Bad_destination  (** undeliverable or null destination *)
  | Corrupt_slot  (** application queued a bad buffer pointer *)
  | Corrupt_frame  (** frame checksum mismatch on receive: damaged in flight *)
  | Forbidden_destination  (** endpoint's destination restriction refused it *)

type fault_kind =
  | Fault_drop
  | Fault_duplicate
  | Fault_reorder
  | Fault_jitter
  | Fault_corrupt

type bulk_op = Bulk_put | Bulk_get

type t =
  | Send_enqueued of {
      node : int;
      ep : int;
      dst_node : int;
      dst_ep : int;
      mid : int;
    }
  | Doorbell of { node : int; ep : int }
      (** the engine observed this send endpoint's doorbell ring *)
  | Engine_tx of {
      node : int;
      ep : int;
      dst_node : int;
      dst_ep : int;
      mid : int;
    }
  | Wire_rx of { node : int; ep : int; mid : int }
  | Deposit of { node : int; ep : int; mid : int }
  | Recv_dequeued of { node : int; ep : int; mid : int }
  | Drop of { node : int; ep : int; mid : int; reason : drop_reason }
  | Frame_tx of {
      node : int;
      ep : int;
      seq : int;
      mid : int;
      retransmit : bool;
    }  (** {!Flipc_flow.Retrans} put frame [seq] on the wire as message
           [mid]; retransmissions carry a fresh [mid], linked by [seq] *)
  | Frame_deliver of { node : int; ep : int; seq : int; mid : int }
      (** the receiver released frame [seq] to the application, in order *)
  | Ack_tx of { node : int; ep : int; cum : int; sacked : int }
      (** cumulative ack [cum] (+ [sacked] selective-ack bits) sent *)
  | Credit_grant of { node : int; ep : int; count : int }
  | Window_send of {
      node : int;
      ep : int;
      mid : int;
      sent : int;
      granted : int;
      window : int;
    }  (** {!Flipc_flow.Window} sender counters at the moment of a send *)
  | Drops_read of { node : int; ep : int; count : int }
      (** the application read-and-reset [count] drops on [ep] *)
  | Engine_park of { node : int; idle : int }
  | Engine_wake of { node : int }
  | Fault of { node : int; kind : fault_kind; mid : int }
  | Note of { node : int; tag : string; detail : string }
      (** escape hatch for ad-hoc instrumentation *)
  | Kkt_call of { node : int; dst_node : int; id : int; mid : int }
      (** client [node] issued KKT call [id] (monotone per client) *)
  | Kkt_dispatch of { node : int; id : int; valid : bool; mid : int }
      (** server dispatched call [id]; [valid] = a handler was registered *)
  | Kkt_reply of { node : int; dst_node : int; id : int; mid : int }
  | Kkt_complete of { node : int; id : int; mid : int }
      (** the client's blocking call returned *)
  | Bulk_start of {
      node : int;
      dst_node : int;
      transfer : int;
      op : bulk_op;
      total : int;  (** transfer length in bytes *)
      mid : int;
    }
  | Bulk_chunk of { node : int; transfer : int; offset : int; len : int; mid : int }
      (** the data-receiving side accepted one fragment *)
  | Bulk_complete of { node : int; transfer : int; mid : int }
  | Bulk_cancel of { node : int; transfer : int; mid : int }
  | Alert_fired of { node : int; rule : string; detail : string }
      (** an {!Alert} rule tripped on a closed {!Series} window *)

val drop_reason_name : drop_reason -> string
val fault_kind_name : fault_kind -> string
val bulk_op_name : bulk_op -> string

(** Display identifier ([Note] events use their tag, retransmitted
    [Frame_tx] shows as "retransmit"). *)
val name : t -> string

(** Stable wire discriminator: payload-independent, one per constructor.
    This — not {!name} — keys the {!to_json}/{!of_json} round-trip. *)
val kind : t -> string

(** The node the event happened on. *)
val node : t -> int

(** The causal message id the event carries, if stamped. *)
val mid : t -> int option

(** Structured payload for JSON export, deterministic field order. *)
val args : t -> (string * Json.t) list

(** Self-describing record: [{"k": kind, "node": n, ...fields}]. *)
val to_json : t -> Json.t

(** Inverse of {!to_json}. *)
val of_json : Json.t -> (t, string) result

val pp : Format.formatter -> t -> unit
