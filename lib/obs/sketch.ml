(* Log-bucketed quantile sketch: constant storage no matter how many
   observations arrive. Positive values land in geometric buckets with
   ratio gamma = 2^(1/8) (~9% width, so a quantile read is within ~4.4%
   of the true value); count/sum/sum-of-squares/min/max are kept exactly,
   so means and extremes carry no sketch error at all. *)

let gamma_log = log 2.0 /. 8.0

(* Bucket i covers (gamma^(i-1), gamma^i]. Offset shifts the index range
   so values from ~1e-9 up to ~1e15 (plenty for ns..hours in us units)
   fit in a fixed array; anything outside clamps to the end buckets. *)
let offset = 240
let bucket_capacity = 656

type t = {
  buckets : int array;  (* positive observations, log-bucketed *)
  mutable nonpos : int;  (* observations <= 0.0 (exact zero for latencies) *)
  mutable count : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable minv : float;
  mutable maxv : float;
}

let create () =
  {
    buckets = Array.make bucket_capacity 0;
    nonpos = 0;
    count = 0;
    sum = 0.0;
    sumsq = 0.0;
    minv = Float.infinity;
    maxv = Float.neg_infinity;
  }

let clear t =
  Array.fill t.buckets 0 bucket_capacity 0;
  t.nonpos <- 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.sumsq <- 0.0;
  t.minv <- Float.infinity;
  t.maxv <- Float.neg_infinity

let index_of v =
  let i = offset + int_of_float (Float.ceil (log v /. gamma_log)) in
  if i < 0 then 0 else if i >= bucket_capacity then bucket_capacity - 1 else i

(* Geometric midpoint of bucket i: gamma^(i - offset - 1/2). *)
let value_of i = exp (gamma_log *. (float_of_int (i - offset) -. 0.5))

let observe t v =
  if Float.is_nan v then ()
  else begin
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    t.sumsq <- t.sumsq +. (v *. v);
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v;
    if v > 0.0 then
      let i = index_of v in
      t.buckets.(i) <- t.buckets.(i) + 1
    else t.nonpos <- t.nonpos + 1
  end

(* Bucket-wise sum: both sketches use the same fixed geometry, so merging
   loses nothing beyond the resolution each already had. *)
let merge ~into src =
  for i = 0 to bucket_capacity - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.nonpos <- into.nonpos + src.nonpos;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  into.sumsq <- into.sumsq +. src.sumsq;
  if src.minv < into.minv then into.minv <- src.minv;
  if src.maxv > into.maxv then into.maxv <- src.maxv

let count t = t.count
let sum t = t.sum
let min_value t = t.minv
let max_value t = t.maxv
let mean t = if t.count = 0 then None else Some (t.sum /. float_of_int t.count)

let quantile t p =
  if t.count = 0 then None
  else begin
    let rank = int_of_float (Float.ceil (p *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
    let seen = ref t.nonpos in
    let v =
      if !seen >= rank then Stdlib.min 0.0 t.minv
      else begin
        let result = ref t.maxv in
        (try
           for i = 0 to bucket_capacity - 1 do
             seen := !seen + t.buckets.(i);
             if !seen >= rank then begin
               result := value_of i;
               raise Exit
             end
           done
         with Exit -> ());
        !result
      end
    in
    (* Exact extremes bound the sketch estimate. *)
    Some (Float.max t.minv (Float.min t.maxv v))
  end

let stddev t =
  if t.count = 0 then None
  else
    let n = float_of_int t.count in
    let m = t.sum /. n in
    let var = Float.max 0.0 ((t.sumsq /. n) -. (m *. m)) in
    Some (sqrt var)

let summary t : Flipc_stats.Summary.t option =
  if t.count = 0 then None
  else
    Some
      {
        Flipc_stats.Summary.n = t.count;
        mean = t.sum /. float_of_int t.count;
        stddev = (match stddev t with Some s -> s | None -> 0.0);
        min = t.minv;
        max = t.maxv;
        p50 = (match quantile t 0.50 with Some v -> v | None -> 0.0);
        p95 = (match quantile t 0.95 with Some v -> v | None -> 0.0);
        p99 = (match quantile t 0.99 with Some v -> v | None -> 0.0);
      }
