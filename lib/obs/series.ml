module Vtime = Flipc_sim.Vtime
module Summary = Flipc_stats.Summary

(* Numeric view of a snapshot: counters as exact ints, gauges/probes as
   floats, histograms as (count, summary). Sorted by name (inherited
   from [Metrics.snapshot]). *)
type probe_val =
  | P_counter of int
  | P_gauge of float
  | P_histo of int * Summary.t option

let probe_snapshot metrics =
  List.map
    (fun (name, v) ->
      match v with
      | Metrics.Snap_counter c -> (name, P_counter c)
      | Metrics.Snap_gauge g -> (name, P_gauge g)
      | Metrics.Snap_histogram { count; summary; _ } ->
          (name, P_histo (count, summary)))
    (Metrics.snapshot metrics)

type t = {
  obs : Obs.t;
  interval : int; (* ns *)
  mutable w_start : int; (* ns, start of the open window *)
  mutable prev : (string * probe_val) list; (* snapshot at last close *)
  windows : Json.t Ring.t;
  on_window : Json.t -> unit;
}

let prev_counter prev name =
  match List.assoc_opt name prev with Some (P_counter c) -> c | _ -> 0

let prev_histo_count prev name =
  match List.assoc_opt name prev with Some (P_histo (c, _)) -> c | _ -> 0

(* Close [w_start, w_end): per-counter deltas and rates against the last
   closed snapshot, instantaneous gauges, histogram count deltas plus
   current sketch quantiles. *)
let close_window t ~w_end =
  let cur = probe_snapshot (Obs.metrics t.obs) in
  let span_ns = w_end - t.w_start in
  let span_s = float_of_int span_ns /. 1e9 in
  let counters =
    List.filter_map
      (fun (name, v) ->
        match v with
        | P_counter c ->
            let delta = c - prev_counter t.prev name in
            Some
              ( name,
                Json.Obj
                  [
                    ("delta", Json.Int delta);
                    ( "rate_per_s",
                      Json.Float
                        (if span_s > 0. then float_of_int delta /. span_s
                         else 0.) );
                  ] )
        | _ -> None)
      cur
  in
  let gauges =
    List.filter_map
      (fun (name, v) ->
        match v with
        | P_gauge g ->
            Some
              ( name,
                if Float.is_integer g && Float.abs g < 1e15 then
                  Json.Int (int_of_float g)
                else Json.Float g )
        | _ -> None)
      cur
  in
  let histos =
    List.filter_map
      (fun (name, v) ->
        match v with
        | P_histo (count, summary) ->
            Some
              ( name,
                Json.Obj
                  (("count_delta", Json.Int (count - prev_histo_count t.prev name))
                   ::
                   (match summary with
                   | None -> []
                   | Some s ->
                       [
                         ("p50", Json.Float s.Summary.p50);
                         ("p99", Json.Float s.Summary.p99);
                       ])) )
        | _ -> None)
      cur
  in
  let window =
    Json.Obj
      [
        ("start_ns", Json.Int t.w_start);
        ("end_ns", Json.Int w_end);
        ("counters", Json.Obj counters);
        ("gauges", Json.Obj gauges);
        ("histos", Json.Obj histos);
      ]
  in
  Ring.push t.windows window;
  t.prev <- cur;
  t.w_start <- w_end;
  (* After state is rolled forward, so a hook that emits events (the
     alert engine firing into the trace) re-enters a fresh window. *)
  t.on_window window

(* Windows close lazily on the first event past a boundary, so a quiet
   stretch folds into one window spanning several intervals (window
   bounds stay interval-aligned; rates use the true span). *)
let roll t now =
  let now_ns = Vtime.to_ns now in
  let elapsed = now_ns - t.w_start in
  if elapsed >= t.interval then
    close_window t ~w_end:(t.w_start + t.interval * (elapsed / t.interval))

let attach ?(interval = Vtime.us 100) ?(capacity = 512)
    ?(on_window = fun _ -> ()) obs =
  let t =
    {
      obs;
      interval = Vtime.to_ns interval;
      w_start = Vtime.to_ns (Obs.now obs);
      prev = probe_snapshot (Obs.metrics obs);
      windows = Ring.create ~capacity;
      on_window;
    }
  in
  Obs.add_watcher obs (fun now _ev -> roll t now);
  t

(* Close the current partial window at the clock's now (end-of-run
   flush; no-op if nothing elapsed). *)
let sample t =
  let now_ns = Vtime.to_ns (Obs.now t.obs) in
  if now_ns > t.w_start then close_window t ~w_end:now_ns

let window_count t = Ring.length t.windows
let json t = Json.List (Ring.to_list t.windows)

(* ------------------------------------------------------------------ *)
(* Prometheus-style text exposition over a metrics snapshot.           *)

let prom_name name =
  "flipc_" ^ String.map (function '.' | '-' -> '_' | c -> c) name

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" x

let prom_of_snapshot snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let p = prom_name name in
      match v with
      | Metrics.Snap_counter c ->
          line "# TYPE %s counter" p;
          line "%s %d" p c
      | Metrics.Snap_gauge g ->
          line "# TYPE %s gauge" p;
          line "%s %s" p (prom_float g)
      | Metrics.Snap_histogram { count; sum; summary } ->
          line "# TYPE %s summary" p;
          (match summary with
          | None -> ()
          | Some s ->
              line "%s{quantile=\"0.5\"} %s" p (prom_float s.Summary.p50);
              line "%s{quantile=\"0.95\"} %s" p (prom_float s.Summary.p95);
              line "%s{quantile=\"0.99\"} %s" p (prom_float s.Summary.p99));
          line "%s_sum %s" p (prom_float sum);
          line "%s_count %d" p count)
    snap;
  Buffer.contents buf
