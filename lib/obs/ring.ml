type 'a t = {
  slots : 'a option array;
  mutable head : int; (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  { slots = Array.make capacity None; head = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let dropped t = t.dropped
let is_empty t = t.len = 0

let push t x =
  let cap = Array.length t.slots in
  if t.len = cap then begin
    t.slots.(t.head) <- Some x;
    t.head <- (t.head + 1) mod cap;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.slots.((t.head + t.len) mod cap) <- Some x;
    t.len <- t.len + 1
  end

let iter t f =
  let cap = Array.length t.slots in
  for i = 0 to t.len - 1 do
    match t.slots.((t.head + i) mod cap) with
    | Some x -> f x
    | None -> assert false
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

let to_list t = List.rev (fold t ~init:[] (fun acc x -> x :: acc))

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0
