(** Minimal JSON document builder.

    Everything the observability layer exports (metric snapshots, Chrome
    traces, bench result files) goes through this one deterministic
    serializer: fields render in the order given, floats as plain JSON
    numbers ([NaN]/[infinity] degrade to [null]), so identical runs
    produce byte-identical files. {!of_string} is the inverse, used by
    {!Replay} to read trace captures back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering. *)
val to_string : t -> string

(** [to_channel oc t] writes the compact rendering plus a newline. *)
val to_channel : out_channel -> t -> unit

(** [of_string s] parses one JSON document. Numeric literals without a
    fraction or exponent become [Int]; the rest become [Float]. *)
val of_string : string -> (t, string) result

(** [member key doc] looks up [key] in an [Obj] ([None] otherwise). *)
val member : string -> t -> t option

val to_int : t -> int option
val to_str : t -> string option
