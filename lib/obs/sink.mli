(** Streaming trace sink: persistent flight-data capture.

    Spills typed events to a compact JSONL file as they happen, so a
    failure that out-lives the in-memory ring can still be diagnosed
    offline ({!Replay} + [flipc doctor --replay]). The CLI wires one up
    behind [--capture out.trace] on every subcommand, attaching it to
    each machine the run creates via {!Obs.on_create}.

    {b File format} (one JSON document per line):
    - header: [{"flipc_trace":1,"meta":{...}}] — version + free-form
      run metadata;
    - records: [{"t":<ns>,"pid":<obs id>,"k":<kind>,...fields}] — one
      self-describing {!Event.t} per line ({!Event.to_json}), virtual
      timestamps preserved exactly, in emission order;
    - trailer: [{"machines":[{"pid":..,"label":..}],"summary":...}] —
      machine labels (only final at close) and an optional run summary
      a replaying doctor echoes back.

    Attaching first spills the machine's current ring contents, then
    streams every subsequent event through a watcher — so attaching at
    creation captures everything regardless of ring wrap, and a mid-run
    attach captures the retained tail plus the whole future.

    {b Binary captures.} A path ending in [.ftrace] (or an explicit
    [~format:`Binary]) selects the compact {!Codec} binary format
    instead of JSONL: same header/records/trailer structure, one
    length-prefixed frame per event, ~8x smaller. {!Replay.load}
    auto-detects either format, so downstream tooling is unaffected. *)

type t

(** The trace format version written in the header line. *)
val format_version : int

(** The path suffix that selects the binary format by default. *)
val binary_suffix : string

(** [create ~path ()] opens [path] and writes the versioned header.
    [format] overrides the suffix-based format choice. *)
val create :
  ?meta:(string * Json.t) list ->
  ?format:[ `Jsonl | `Binary ] ->
  path:string ->
  unit ->
  t

(** [attach t obs] spills [obs]'s retained ring, then streams its
    future events (registers a watcher, making {!Obs.tracing} true).
    Idempotent per bundle. *)
val attach : t -> Obs.t -> unit

(** [record t ~now ~pid ev] writes one event record directly. *)
val record : t -> now:Flipc_sim.Vtime.t -> pid:int -> Event.t -> unit

(** [set_summary t j] attaches a run summary to the trailer. *)
val set_summary : t -> Json.t -> unit

val events_written : t -> int
val path : t -> string

(** Write the trailer and close the file. Further events are ignored. *)
val close : t -> unit
