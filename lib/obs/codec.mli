(** Versioned binary trace codec: the compact on-disk twin of the JSONL
    capture format.

    A binary capture is the magic string {!magic} followed by a version
    byte and then a stream of length-prefixed frames. Each frame body
    starts with a one-byte opcode: metadata (the header's [meta]
    object), one event record, or the trailer (machine labels plus the
    optional run summary). Event frames carry the pid and a
    zigzag-varint timestamp {e delta} against the previous event frame,
    then a per-constructor tag byte and the variant's fields as zigzag
    varints (strings length-prefixed) in declaration order — ~8x
    smaller than the JSONL line for a typical lifecycle event.

    {!Sink} writes this format when the capture path ends in [.ftrace];
    {!Replay.load} auto-detects it by sniffing {!magic}, so every
    consumer of a capture (doctor, diff, tests) is format-agnostic.
    Decoding is strict: a truncated frame, an unknown opcode or event
    tag, or a varint running past the frame all produce [Error] naming
    the offending byte offset. *)

(** First bytes of every binary capture. *)
val magic : string

(** The binary format version written after {!magic}. *)
val format_version : int

(** One decoded event record: timestamp (ns), pid, event. *)
type record = { c_ts : int; c_pid : int; c_ev : Event.t }

(** {1 Frame-level primitives}

    Exposed so property tests can check encode∘decode = identity
    without going through a file. *)

(** [encode_event buf ~prev_ts ~ts ~pid ev] appends one event frame.
    [prev_ts] is the previous event frame's timestamp (0 for the
    first); the frame stores [ts - prev_ts] zigzag-encoded. *)
val encode_event : Buffer.t -> prev_ts:int -> ts:int -> pid:int -> Event.t -> unit

(** [decode_event s ~pos ~prev_ts] decodes the event frame starting at
    [pos], returning the record and the offset of the next frame. *)
val decode_event :
  string -> pos:int -> prev_ts:int -> (record * int, string) result

(** {1 Streaming encoder} *)

type encoder

(** [to_channel oc] writes the magic + version and returns an encoder. *)
val to_channel : out_channel -> encoder

(** The channel the encoder writes to (for the owner to close). *)
val channel : encoder -> out_channel

(** Write the run-metadata frame (the JSONL header's [meta] object). *)
val write_meta : encoder -> (string * Json.t) list -> unit

(** Append one event frame (timestamps are delta-encoded internally). *)
val write_event : encoder -> now:Flipc_sim.Vtime.t -> pid:int -> Event.t -> unit

(** Write the trailer frame: machine labels and the optional summary. *)
val write_trailer :
  encoder -> machines:(int * string) list -> summary:Json.t option -> unit

(** {1 Whole-file decoding} *)

type decoded = {
  d_meta : (string * Json.t) list;
  d_records : record list;  (** file (= emission) order *)
  d_machines : (int * string) list;
  d_summary : Json.t option;
}

(** [read_file path] decodes a whole binary capture. *)
val read_file : string -> (decoded, string) result

(** [is_binary path] sniffs {!magic} (false for short/unreadable files). *)
val is_binary : string -> bool
