(** Fixed-capacity drop-oldest ring buffer.

    The storage discipline for every bounded observability store (event
    traces, latency sample windows): pushes never fail and never grow
    memory; once full, each push overwrites the oldest element and bumps
    the {!dropped} counter, so a long soak keeps the most recent window
    and an honest account of what it shed. *)

type 'a t

(** [create ~capacity] holds at most [capacity] elements.
    Raises [Invalid_argument] if [capacity < 1]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Elements currently held (at most [capacity]). *)
val length : 'a t -> int

(** Elements overwritten since creation (or the last {!clear}). *)
val dropped : 'a t -> int

val is_empty : 'a t -> bool

(** [push t x] appends [x], evicting the oldest element when full. *)
val push : 'a t -> 'a -> unit

(** Oldest-first iteration over the retained window. *)
val iter : 'a t -> ('a -> unit) -> unit

val fold : 'a t -> init:'b -> ('b -> 'a -> 'b) -> 'b

(** Oldest-first list of the retained window. *)
val to_list : 'a t -> 'a list

(** Empty the ring and reset the dropped counter. *)
val clear : 'a t -> unit
