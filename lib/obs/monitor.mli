(** Online invariant monitors and the progress watchdog.

    A monitor is a synchronous watcher on one machine's typed event
    stream ({!Obs.add_watcher}): as events arrive it checks the safety
    properties of FLIPC's wait-free handoffs and records the first
    violation per site with the offending message's id and causal
    history. Attaching a monitor enables event construction machine-wide
    (it makes {!Obs.tracing} true) and enables the ring, so histories
    can be reconstructed; the disabled path is untouched.

    The invariant catalogue (DESIGN.md §13):
    - [retrans.duplicate_delivery] / [retrans.in_order_delivery] — the
      reliability layer releases each frame exactly once, in sequence
      order.
    - [retrans.tx_seq_contiguous] — first transmissions leave in
      sequence order.
    - [retrans.cum_ack_monotone] / [retrans.sack_window] — cumulative
      acks never move backwards and never acknowledge frames that were
      not delivered.
    - [window.credit_conservation] / [window.grant_monotone] — a credit
      sender's outstanding count stays within the window and the
      cumulative counters never regress.
    - [drops.read_reset] — the application's read-and-reset drop counts
      never exceed the drops the engine recorded.
    - [kkt.slot_reuse] / [kkt.key_validity] /
      [kkt.no_reply_without_request] — KKT call ids stay monotone per
      client, requests only dispatch to registered handlers, and every
      completion matches an outstanding call.
    - [bulk.chunk_contiguity] / [bulk.completion_implies_all_chunks] /
      [bulk.no_progress_after_cancel] — bulk chunks arrive contiguously,
      completion implies every byte arrived, and cancelled transfers
      make no further progress.
    - machine-registered state checks (e.g. endpoint queue pointer
      ordering, registered by {!Flipc.Machine.attach_monitor}) run on
      every event via {!add_check}.

    Monitors also run detached from any machine: {!create} + {!feed}
    drive the same rule engine over a replayed event stream
    ({!Replay}), producing the same violations as the live run. *)

type violation = {
  at : Flipc_sim.Vtime.t;
  rule : string;
  node : int;
  mid : int;  (** offending (or triggering) message id; 0 if unknown *)
  detail : string;
  history : string;  (** rendered causal span of [mid] at detection *)
}

type t

(** [create ()] builds a detached monitor: feed it events explicitly
    with {!feed}. [limit] caps retained violations (default 16; each
    site reports at most once); [history] supplies the rendered causal
    span for a violation's mid (default: none). *)
val create : ?limit:int -> ?history:(int -> string) -> unit -> t

(** [feed t ~now ev] runs every rule against one event — the same code
    path a live watcher uses. *)
val feed : t -> now:Flipc_sim.Vtime.t -> Event.t -> unit

(** [attach obs] registers the monitor on [obs]. [limit] caps retained
    violations (default 16; each site reports at most once). Also
    registers [monitor.events_seen] and [monitor.violations] metric
    probes on the bundle's registry. *)
val attach : ?limit:int -> Obs.t -> t

(** [add_check t ~rule ~node f] registers an untimed machine-state check
    run after every event; returning [Some detail] fires [rule]. *)
val add_check : t -> rule:string -> node:int -> (unit -> string option) -> unit

(** Oldest first. *)
val violations : t -> violation list

val clean : t -> bool
val events_seen : t -> int
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> t -> unit

(** Per-flow virtual-time progress deadlines with flight-recorder dumps:
    poll loops call {!Watchdog.progress} when they advance and check
    {!Watchdog.expired} each retry; on expiry they render
    {!Watchdog.report} and abort instead of spinning forever. *)
module Watchdog : sig
  type t

  (** [create ~sim ~name ()] arms a deadline [budget] (default 50 ms of
      virtual time) from now. *)
  val create :
    ?budget:Flipc_sim.Vtime.t ->
    sim:Flipc_sim.Engine.t ->
    name:string ->
    unit ->
    t

  (** Push the deadline out by the budget — call on every unit of
      real progress. *)
  val progress : t -> unit

  val expired : t -> bool
  val name : t -> string

  (** The flight recorder: every machine's registered reporters
      ({!Obs.add_reporter}), the last [events] ring entries per machine
      (default 30), and — given the stalled flow's [mid] — its causal
      trace with the stage it stopped at. *)
  val report : ?events:int -> ?mid:int -> t -> Obs.t list -> string
end
