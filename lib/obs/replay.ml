module Vtime = Flipc_sim.Vtime

type record = { r_ts : Vtime.t; r_pid : int; r_ev : Event.t }

type t = {
  version : int;
  meta : (string * Json.t) list;
  records : record list; (* file (= emission) order *)
  machines : (int * string) list; (* pid -> label, from the trailer *)
  summary : Json.t option;
}

let version t = t.version
let meta t = t.meta
let records t = t.records
let machines t = t.machines
let summary t = t.summary

let parse_line ~lineno line state =
  let version, meta, records, machines, summary = state in
  match Json.of_string line with
  | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
  | Ok doc -> (
      match Json.member "flipc_trace" doc with
      | Some (Json.Int v) ->
          let meta =
            match Json.member "meta" doc with
            | Some (Json.Obj fields) -> fields
            | _ -> []
          in
          Ok (Some v, meta, records, machines, summary)
      | Some _ -> Error (Printf.sprintf "line %d: bad version field" lineno)
      | None -> (
          match Json.member "machines" doc with
          | Some (Json.List ms) ->
              let machines =
                List.filter_map
                  (fun m ->
                    match
                      ( Option.bind (Json.member "pid" m) Json.to_int,
                        Option.bind (Json.member "label" m) Json.to_str )
                    with
                    | Some pid, Some label -> Some (pid, label)
                    | _ -> None)
                  ms
              in
              Ok (version, meta, records, machines, Json.member "summary" doc)
          | _ -> (
              match
                ( Option.bind (Json.member "t" doc) Json.to_int,
                  Option.bind (Json.member "pid" doc) Json.to_int )
              with
              | Some ts, Some pid -> (
                  match Event.of_json doc with
                  | Ok ev ->
                      Ok
                        ( version,
                          meta,
                          { r_ts = Vtime.ns ts; r_pid = pid; r_ev = ev }
                          :: records,
                          machines,
                          summary )
                  | Error msg ->
                      Error (Printf.sprintf "line %d: %s" lineno msg))
              | _ ->
                  Error
                    (Printf.sprintf "line %d: not a trace record" lineno))))

let load_binary path =
  match Codec.read_file path with
  | Error _ as e -> e
  | Ok d ->
      Ok
        {
          version = Codec.format_version;
          meta = d.Codec.d_meta;
          records =
            List.map
              (fun r ->
                {
                  r_ts = Vtime.ns r.Codec.c_ts;
                  r_pid = r.Codec.c_pid;
                  r_ev = r.Codec.c_ev;
                })
              d.Codec.d_records;
          machines = d.Codec.d_machines;
          summary = d.Codec.d_summary;
        }

let load_jsonl path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let finally () = close_in_noerr ic in
      Fun.protect ~finally (fun () ->
          let rec loop lineno state =
            match input_line ic with
            | exception End_of_file -> Ok state
            | "" -> loop (lineno + 1) state
            | line -> (
                match parse_line ~lineno line state with
                | Ok state -> loop (lineno + 1) state
                | Error _ as e -> e)
          in
          match loop 1 (None, [], [], [], None) with
          | Error _ as e -> e
          | Ok (None, _, _, _, _) ->
              Error "not a flipc trace (missing header line)"
          | Ok (Some version, meta, records, machines, summary) ->
              if version <> Sink.format_version then
                Error
                  (Printf.sprintf "unsupported trace version %d (want %d)"
                     version Sink.format_version)
              else
                Ok
                  {
                    version;
                    meta;
                    records = List.rev records;
                    machines;
                    summary;
                  })

(* One loader for both capture formats: binary files announce
   themselves with the codec magic; anything else is treated as the
   JSONL format (whose own header check rejects non-traces). *)
let load path = if Codec.is_binary path then load_binary path else load_jsonl path

(* File order is global emission order; the stable re-sort by timestamp
   mirrors what [Causal.spans] does to live rings, so span construction
   sees the records in an identical order. *)
let steps t =
  List.map
    (fun r ->
      {
        Causal.ts = r.r_ts;
        pid = r.r_pid;
        machine =
          (match List.assoc_opt r.r_pid t.machines with
          | Some label -> label
          | None -> Printf.sprintf "flipc machine %d" r.r_pid);
        ev = r.r_ev;
      })
    t.records
  |> List.stable_sort (fun (a : Causal.step) b -> compare a.ts b.ts)

let spans t = Causal.spans_of_steps (steps t)
