module Vtime = Flipc_sim.Vtime

let magic = "FTRC"
let format_version = 1

(* Frame opcodes (first body byte). *)
let op_meta = 0x01
let op_event = 0x02
let op_trailer = 0x03

type record = { c_ts : int; c_pid : int; c_ev : Event.t }

(* ------------------------------------------------------------------ *)
(* Primitive writers: LEB128 varints over OCaml's native int, zigzag   *)
(* for anything that can be negative (timestamp deltas, ep = -1).      *)

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag u = (u lsr 1) lxor (-(u land 1))

let put_varint buf n =
  let n = ref n in
  let fin = ref false in
  while not !fin do
    let b = !n land 0x7f in
    (* Logical shift: the 63-bit pattern of a zigzagged max_int still
       terminates. *)
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      fin := true
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let put_int buf n = put_varint buf (zigzag n)
let put_byte buf b = Buffer.add_char buf (Char.chr (b land 0xff))
let put_bool buf b = put_byte buf (if b then 1 else 0)

let put_str buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

(* ------------------------------------------------------------------ *)
(* Primitive readers. Decoding is strict: running past the end, an     *)
(* overlong varint, or a bad enum byte raise [Bad] with the offset.    *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let get_byte s pos =
  if !pos >= String.length s then bad "truncated frame at byte %d" !pos;
  let c = Char.code s.[!pos] in
  incr pos;
  c

let get_varint s pos =
  let rec go shift acc groups =
    if groups > 9 then bad "overlong varint at byte %d" !pos;
    let b = get_byte s pos in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc (groups + 1)
  in
  go 0 0 1

let get_int s pos = unzigzag (get_varint s pos)

let get_str s pos =
  let len = get_varint s pos in
  if len < 0 || !pos + len > String.length s then
    bad "truncated string at byte %d" !pos;
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

let get_bool s pos =
  match get_byte s pos with
  | 0 -> false
  | 1 -> true
  | b -> bad "bad bool byte 0x%02x at %d" b (!pos - 1)

(* ------------------------------------------------------------------ *)
(* Event bodies: one tag byte per constructor, fields in declaration   *)
(* order. Tag values are part of the format — append-only.             *)

let drop_reason_byte = function
  | Event.No_posted_buffer -> 0
  | Event.Bad_destination -> 1
  | Event.Corrupt_slot -> 2
  | Event.Corrupt_frame -> 3
  | Event.Forbidden_destination -> 4

let drop_reason_of_byte pos = function
  | 0 -> Event.No_posted_buffer
  | 1 -> Event.Bad_destination
  | 2 -> Event.Corrupt_slot
  | 3 -> Event.Corrupt_frame
  | 4 -> Event.Forbidden_destination
  | b -> bad "bad drop reason 0x%02x at %d" b (pos - 1)

let fault_kind_byte = function
  | Event.Fault_drop -> 0
  | Event.Fault_duplicate -> 1
  | Event.Fault_reorder -> 2
  | Event.Fault_jitter -> 3
  | Event.Fault_corrupt -> 4

let fault_kind_of_byte pos = function
  | 0 -> Event.Fault_drop
  | 1 -> Event.Fault_duplicate
  | 2 -> Event.Fault_reorder
  | 3 -> Event.Fault_jitter
  | 4 -> Event.Fault_corrupt
  | b -> bad "bad fault kind 0x%02x at %d" b (pos - 1)

let bulk_op_byte = function Event.Bulk_put -> 0 | Event.Bulk_get -> 1

let bulk_op_of_byte pos = function
  | 0 -> Event.Bulk_put
  | 1 -> Event.Bulk_get
  | b -> bad "bad bulk op 0x%02x at %d" b (pos - 1)

let encode_ev buf ev =
  let tag t = put_byte buf t in
  let i n = put_int buf n in
  match ev with
  | Event.Send_enqueued { node; ep; dst_node; dst_ep; mid } ->
      tag 0; i node; i ep; i dst_node; i dst_ep; i mid
  | Event.Doorbell { node; ep } -> tag 1; i node; i ep
  | Event.Engine_tx { node; ep; dst_node; dst_ep; mid } ->
      tag 2; i node; i ep; i dst_node; i dst_ep; i mid
  | Event.Wire_rx { node; ep; mid } -> tag 3; i node; i ep; i mid
  | Event.Deposit { node; ep; mid } -> tag 4; i node; i ep; i mid
  | Event.Recv_dequeued { node; ep; mid } -> tag 5; i node; i ep; i mid
  | Event.Drop { node; ep; mid; reason } ->
      tag 6; i node; i ep; i mid; put_byte buf (drop_reason_byte reason)
  | Event.Frame_tx { node; ep; seq; mid; retransmit } ->
      tag 7; i node; i ep; i seq; i mid; put_bool buf retransmit
  | Event.Frame_deliver { node; ep; seq; mid } ->
      tag 8; i node; i ep; i seq; i mid
  | Event.Ack_tx { node; ep; cum; sacked } -> tag 9; i node; i ep; i cum; i sacked
  | Event.Credit_grant { node; ep; count } -> tag 10; i node; i ep; i count
  | Event.Window_send { node; ep; mid; sent; granted; window } ->
      tag 11; i node; i ep; i mid; i sent; i granted; i window
  | Event.Drops_read { node; ep; count } -> tag 12; i node; i ep; i count
  | Event.Engine_park { node; idle } -> tag 13; i node; i idle
  | Event.Engine_wake { node } -> tag 14; i node
  | Event.Fault { node; kind; mid } ->
      tag 15; i node; put_byte buf (fault_kind_byte kind); i mid
  | Event.Note { node; tag = t; detail } ->
      tag 16; i node; put_str buf t; put_str buf detail
  | Event.Kkt_call { node; dst_node; id; mid } ->
      tag 17; i node; i dst_node; i id; i mid
  | Event.Kkt_dispatch { node; id; valid; mid } ->
      tag 18; i node; i id; put_bool buf valid; i mid
  | Event.Kkt_reply { node; dst_node; id; mid } ->
      tag 19; i node; i dst_node; i id; i mid
  | Event.Kkt_complete { node; id; mid } -> tag 20; i node; i id; i mid
  | Event.Bulk_start { node; dst_node; transfer; op; total; mid } ->
      tag 21; i node; i dst_node; i transfer;
      put_byte buf (bulk_op_byte op); i total; i mid
  | Event.Bulk_chunk { node; transfer; offset; len; mid } ->
      tag 22; i node; i transfer; i offset; i len; i mid
  | Event.Bulk_complete { node; transfer; mid } -> tag 23; i node; i transfer; i mid
  | Event.Bulk_cancel { node; transfer; mid } -> tag 24; i node; i transfer; i mid
  | Event.Alert_fired { node; rule; detail } ->
      tag 25; i node; put_str buf rule; put_str buf detail

let decode_ev s pos =
  let i () = get_int s pos in
  match get_byte s pos with
  | 0 ->
      let node = i () in let ep = i () in let dst_node = i () in
      let dst_ep = i () in let mid = i () in
      Event.Send_enqueued { node; ep; dst_node; dst_ep; mid }
  | 1 ->
      let node = i () in let ep = i () in
      Event.Doorbell { node; ep }
  | 2 ->
      let node = i () in let ep = i () in let dst_node = i () in
      let dst_ep = i () in let mid = i () in
      Event.Engine_tx { node; ep; dst_node; dst_ep; mid }
  | 3 ->
      let node = i () in let ep = i () in let mid = i () in
      Event.Wire_rx { node; ep; mid }
  | 4 ->
      let node = i () in let ep = i () in let mid = i () in
      Event.Deposit { node; ep; mid }
  | 5 ->
      let node = i () in let ep = i () in let mid = i () in
      Event.Recv_dequeued { node; ep; mid }
  | 6 ->
      let node = i () in let ep = i () in let mid = i () in
      let reason = drop_reason_of_byte !pos (get_byte s pos) in
      Event.Drop { node; ep; mid; reason }
  | 7 ->
      let node = i () in let ep = i () in let seq = i () in
      let mid = i () in let retransmit = get_bool s pos in
      Event.Frame_tx { node; ep; seq; mid; retransmit }
  | 8 ->
      let node = i () in let ep = i () in let seq = i () in let mid = i () in
      Event.Frame_deliver { node; ep; seq; mid }
  | 9 ->
      let node = i () in let ep = i () in let cum = i () in let sacked = i () in
      Event.Ack_tx { node; ep; cum; sacked }
  | 10 ->
      let node = i () in let ep = i () in let count = i () in
      Event.Credit_grant { node; ep; count }
  | 11 ->
      let node = i () in let ep = i () in let mid = i () in
      let sent = i () in let granted = i () in let window = i () in
      Event.Window_send { node; ep; mid; sent; granted; window }
  | 12 ->
      let node = i () in let ep = i () in let count = i () in
      Event.Drops_read { node; ep; count }
  | 13 ->
      let node = i () in let idle = i () in
      Event.Engine_park { node; idle }
  | 14 ->
      let node = i () in
      Event.Engine_wake { node }
  | 15 ->
      let node = i () in
      let kind = fault_kind_of_byte !pos (get_byte s pos) in
      let mid = i () in
      Event.Fault { node; kind; mid }
  | 16 ->
      let node = i () in let tag = get_str s pos in let detail = get_str s pos in
      Event.Note { node; tag; detail }
  | 17 ->
      let node = i () in let dst_node = i () in let id = i () in let mid = i () in
      Event.Kkt_call { node; dst_node; id; mid }
  | 18 ->
      let node = i () in let id = i () in let valid = get_bool s pos in
      let mid = i () in
      Event.Kkt_dispatch { node; id; valid; mid }
  | 19 ->
      let node = i () in let dst_node = i () in let id = i () in let mid = i () in
      Event.Kkt_reply { node; dst_node; id; mid }
  | 20 ->
      let node = i () in let id = i () in let mid = i () in
      Event.Kkt_complete { node; id; mid }
  | 21 ->
      let node = i () in let dst_node = i () in let transfer = i () in
      let op = bulk_op_of_byte !pos (get_byte s pos) in
      let total = i () in let mid = i () in
      Event.Bulk_start { node; dst_node; transfer; op; total; mid }
  | 22 ->
      let node = i () in let transfer = i () in let offset = i () in
      let len = i () in let mid = i () in
      Event.Bulk_chunk { node; transfer; offset; len; mid }
  | 23 ->
      let node = i () in let transfer = i () in let mid = i () in
      Event.Bulk_complete { node; transfer; mid }
  | 24 ->
      let node = i () in let transfer = i () in let mid = i () in
      Event.Bulk_cancel { node; transfer; mid }
  | 25 ->
      let node = i () in let rule = get_str s pos in let detail = get_str s pos in
      Event.Alert_fired { node; rule; detail }
  | t -> bad "unknown event tag 0x%02x at %d" t (!pos - 1)

(* ------------------------------------------------------------------ *)
(* Frames: varint body length, then the body (opcode first).           *)

let add_frame buf body =
  put_varint buf (Buffer.length body);
  Buffer.add_buffer buf body

let encode_event buf ~prev_ts ~ts ~pid ev =
  let body = Buffer.create 32 in
  put_byte body op_event;
  put_varint body pid;
  put_int body (ts - prev_ts);
  encode_ev body ev;
  add_frame buf body

(* Reads the frame at [pos]; returns the body string, the opcode
   position offset inside the file, and the next frame's offset. *)
let read_frame s pos =
  let len = get_varint s pos in
  if len <= 0 || !pos + len > String.length s then
    bad "truncated frame at byte %d (len %d)" !pos len;
  let body = String.sub s !pos len in
  let next = !pos + len in
  pos := next;
  (body, next)

let decode_event_body body ~prev_ts =
  let bpos = ref 0 in
  (match get_byte body bpos with
  | b when b = op_event -> ()
  | b -> bad "expected event frame, got opcode 0x%02x" b);
  let pid = get_varint body bpos in
  let dt = get_int body bpos in
  let ev = decode_ev body bpos in
  if !bpos <> String.length body then
    bad "trailing bytes in event frame (%d of %d consumed)" !bpos
      (String.length body);
  { c_ts = prev_ts + dt; c_pid = pid; c_ev = ev }

let decode_event s ~pos ~prev_ts =
  let p = ref pos in
  match
    let body, next = read_frame s p in
    (decode_event_body body ~prev_ts, next)
  with
  | r -> Ok r
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Streaming encoder.                                                  *)

type encoder = {
  oc : out_channel;
  scratch : Buffer.t;
  mutable e_prev_ts : int;
}

let to_channel oc =
  output_string oc magic;
  output_char oc (Char.chr format_version);
  { oc; scratch = Buffer.create 64; e_prev_ts = 0 }

let channel e = e.oc

let flush_scratch e =
  Buffer.output_buffer e.oc e.scratch;
  Buffer.clear e.scratch

let write_meta e meta =
  let body = Buffer.create 64 in
  put_byte body op_meta;
  put_str body (Json.to_string (Json.Obj meta));
  add_frame e.scratch body;
  flush_scratch e

let write_event e ~now ~pid ev =
  let ts = Vtime.to_ns now in
  encode_event e.scratch ~prev_ts:e.e_prev_ts ~ts ~pid ev;
  e.e_prev_ts <- ts;
  flush_scratch e

let write_trailer e ~machines ~summary =
  let body = Buffer.create 64 in
  put_byte body op_trailer;
  put_varint body (List.length machines);
  List.iter
    (fun (pid, label) ->
      put_varint body pid;
      put_str body label)
    machines;
  (match summary with
  | None -> put_bool body false
  | Some s ->
      put_bool body true;
      put_str body (Json.to_string s));
  add_frame e.scratch body;
  flush_scratch e

(* ------------------------------------------------------------------ *)
(* Whole-file decoding.                                                *)

type decoded = {
  d_meta : (string * Json.t) list;
  d_records : record list;
  d_machines : (int * string) list;
  d_summary : Json.t option;
}

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_json_field what s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> bad "bad %s json: %s" what e

let read_file path =
  match read_all path with
  | exception Sys_error msg -> Error msg
  | s -> (
      match
        let n = String.length s in
        let mlen = String.length magic in
        if n < mlen + 1 || String.sub s 0 mlen <> magic then
          bad "not a binary flipc trace (missing %S magic)" magic;
        let version = Char.code s.[mlen] in
        if version <> format_version then
          bad "unsupported binary trace version %d (want %d)" version
            format_version;
        let pos = ref (mlen + 1) in
        let meta = ref [] in
        let records = ref [] in
        let machines = ref [] in
        let summary = ref None in
        let prev_ts = ref 0 in
        while !pos < n do
          let body, _next = read_frame s pos in
          let bpos = ref 0 in
          match get_byte body bpos with
          | b when b = op_meta -> (
              match parse_json_field "meta" (get_str body bpos) with
              | Json.Obj fields -> meta := fields
              | _ -> bad "meta frame is not an object")
          | b when b = op_event ->
              let r = decode_event_body body ~prev_ts:!prev_ts in
              prev_ts := r.c_ts;
              records := r :: !records
          | b when b = op_trailer ->
              let count = get_varint body bpos in
              let ms = ref [] in
              for _ = 1 to count do
                let pid = get_varint body bpos in
                let label = get_str body bpos in
                ms := (pid, label) :: !ms
              done;
              machines := List.rev !ms;
              if get_bool body bpos then
                summary := Some (parse_json_field "summary" (get_str body bpos))
          | b -> bad "unknown frame opcode 0x%02x" b
        done;
        {
          d_meta = !meta;
          d_records = List.rev !records;
          d_machines = !machines;
          d_summary = !summary;
        }
      with
      | d -> Ok d
      | exception Bad msg -> Error msg)

let is_binary path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (String.length magic) with
          | s -> s = magic
          | exception End_of_file -> false)
