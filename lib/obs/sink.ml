module Vtime = Flipc_sim.Vtime

type t = {
  oc : out_channel;
  path : string;
  mutable machines : Obs.t list; (* newest first *)
  mutable events : int;
  mutable summary : Json.t option;
  mutable closed : bool;
}

let format_version = 1

let create ?(meta = []) ~path () =
  let oc = open_out path in
  Json.to_channel oc
    (Json.Obj
       [ ("flipc_trace", Json.Int format_version); ("meta", Json.Obj meta) ]);
  {
    oc;
    path;
    machines = [];
    events = 0;
    summary = None;
    closed = false;
  }

let record t ~now ~pid ev =
  if not t.closed then begin
    let fields =
      match Event.to_json ev with Json.Obj f -> f | other -> [ ("ev", other) ]
    in
    Json.to_channel t.oc
      (Json.Obj
         (("t", Json.Int (Vtime.to_ns now)) :: ("pid", Json.Int pid) :: fields));
    t.events <- t.events + 1
  end

let attach t obs =
  if not (List.exists (fun o -> Obs.id o = Obs.id obs) t.machines) then begin
    t.machines <- obs :: t.machines;
    let pid = Obs.id obs in
    (* Spill whatever the ring already holds (mid-run attach), then
       stream every later event through a watcher — so a wrapping ring
       loses nothing once the sink is attached. *)
    List.iter
      (fun (e : Tracer.entry) -> record t ~now:e.ts ~pid e.ev)
      (Tracer.to_list (Obs.tracer obs));
    Obs.add_watcher obs (fun now ev -> record t ~now ~pid ev)
  end

let set_summary t summary = t.summary <- Some summary
let events_written t = t.events
let path t = t.path

let close t =
  if not t.closed then begin
    t.closed <- true;
    let machines =
      List.sort (fun a b -> compare (Obs.id a) (Obs.id b)) t.machines
    in
    Json.to_channel t.oc
      (Json.Obj
         (( "machines",
            Json.List
              (List.map
                 (fun o ->
                   Json.Obj
                     [
                       ("pid", Json.Int (Obs.id o));
                       ("label", Json.String (Obs.label o));
                     ])
                 machines) )
         ::
         (match t.summary with
         | None -> []
         | Some s -> [ ("summary", s) ])));
    close_out t.oc
  end
