module Vtime = Flipc_sim.Vtime

type mode = Jsonl of out_channel | Binary of Codec.encoder

type t = {
  mode : mode;
  path : string;
  mutable machines : Obs.t list; (* newest first *)
  mutable events : int;
  mutable summary : Json.t option;
  mutable closed : bool;
}

let format_version = 1

let binary_suffix = ".ftrace"

let create ?(meta = []) ?format ~path () =
  let binary =
    match format with
    | Some `Binary -> true
    | Some `Jsonl -> false
    | None -> Filename.check_suffix path binary_suffix
  in
  let oc = open_out_bin path in
  let mode =
    if binary then begin
      let enc = Codec.to_channel oc in
      Codec.write_meta enc meta;
      Binary enc
    end
    else begin
      Json.to_channel oc
        (Json.Obj
           [ ("flipc_trace", Json.Int format_version); ("meta", Json.Obj meta) ]);
      Jsonl oc
    end
  in
  { mode; path; machines = []; events = 0; summary = None; closed = false }

let record t ~now ~pid ev =
  if not t.closed then begin
    (match t.mode with
    | Jsonl oc ->
        let fields =
          match Event.to_json ev with
          | Json.Obj f -> f
          | other -> [ ("ev", other) ]
        in
        Json.to_channel oc
          (Json.Obj
             (("t", Json.Int (Vtime.to_ns now)) :: ("pid", Json.Int pid)
             :: fields))
    | Binary enc -> Codec.write_event enc ~now ~pid ev);
    t.events <- t.events + 1
  end

let attach t obs =
  if not (List.exists (fun o -> Obs.id o = Obs.id obs) t.machines) then begin
    t.machines <- obs :: t.machines;
    let pid = Obs.id obs in
    (* Spill whatever the ring already holds (mid-run attach), then
       stream every later event through a watcher — so a wrapping ring
       loses nothing once the sink is attached. *)
    List.iter
      (fun (e : Tracer.entry) -> record t ~now:e.ts ~pid e.ev)
      (Tracer.to_list (Obs.tracer obs));
    Obs.add_watcher obs (fun now ev -> record t ~now ~pid ev)
  end

let set_summary t summary = t.summary <- Some summary
let events_written t = t.events
let path t = t.path

let close t =
  if not t.closed then begin
    t.closed <- true;
    let machines =
      List.sort (fun a b -> compare (Obs.id a) (Obs.id b)) t.machines
    in
    let labelled = List.map (fun o -> (Obs.id o, Obs.label o)) machines in
    match t.mode with
    | Jsonl oc ->
        Json.to_channel oc
          (Json.Obj
             (( "machines",
                Json.List
                  (List.map
                     (fun (pid, label) ->
                       Json.Obj
                         [
                           ("pid", Json.Int pid); ("label", Json.String label);
                         ])
                     labelled) )
             ::
             (match t.summary with
             | None -> []
             | Some s -> [ ("summary", s) ])));
        close_out oc
    | Binary enc ->
        Codec.write_trailer enc ~machines:labelled ~summary:t.summary;
        close_out (Codec.channel enc)
  end
