module Summary = Flipc_stats.Summary
module Histogram = Flipc_stats.Histogram

type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Histograms are log-bucketed sketches: constant storage, exact
   count/sum, quantiles within one bucket width (see {!Sketch}). *)
type histo = { sketch : Sketch.t }

type value =
  | Counter of counter
  | Gauge of gauge
  | Histo of histo
  | Probe of (unit -> float)

type t = { tbl : (string, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let valid_name name =
  name <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       name

let check_name name =
  if not (valid_name name) then
    invalid_arg
      (Printf.sprintf
         "Metrics: bad metric name %S (want dotted alphanumerics, e.g. \
          \"node0.engine.sends\")"
         name)

let find_or_add t name ~make ~cast =
  check_name name;
  match Hashtbl.find_opt t.tbl name with
  | Some v -> (
      match cast v with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered with another type"
               name))
  | None ->
      let x = make () in
      x

let counter t name =
  find_or_add t name
    ~cast:(function Counter c -> Some c | _ -> None)
    ~make:(fun () ->
      let c = { c = 0 } in
      Hashtbl.replace t.tbl name (Counter c);
      c)

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name =
  find_or_add t name
    ~cast:(function Gauge g -> Some g | _ -> None)
    ~make:(fun () ->
      let g = { g = 0. } in
      Hashtbl.replace t.tbl name (Gauge g);
      g)

let set g v = g.g <- v
let gauge_value g = g.g

let histogram t name =
  find_or_add t name
    ~cast:(function Histo h -> Some h | _ -> None)
    ~make:(fun () ->
      let h = { sketch = Sketch.create () } in
      Hashtbl.replace t.tbl name (Histo h);
      h)

let observe h v = Sketch.observe h.sketch v
let histo_count h = Sketch.count h.sketch
let histo_sum h = Sketch.sum h.sketch
let histo_quantile h p = Sketch.quantile h.sketch p
let histo_summary h = Sketch.summary h.sketch

let probe t name f =
  check_name name;
  (* Last registration wins: probes are re-registered when a component is
     rebuilt (e.g. a fresh Retrans sender on the same endpoints). *)
  Hashtbl.replace t.tbl name (Probe f)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type snap_value =
  | Snap_counter of int
  | Snap_gauge of float
  | Snap_histogram of { count : int; sum : float; summary : Summary.t option }

type snapshot = (string * snap_value) list

let snapshot t =
  Hashtbl.fold
    (fun name v acc ->
      let sv =
        match v with
        | Counter c -> Snap_counter c.c
        | Gauge g -> Snap_gauge g.g
        | Probe f -> Snap_gauge (f ())
        | Histo h ->
            Snap_histogram
              {
                count = Sketch.count h.sketch;
                sum = Sketch.sum h.sketch;
                summary = Sketch.summary h.sketch;
              }
      in
      (name, sv) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_snapshot fmt snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Snap_counter c -> Fmt.pf fmt "%-40s %d@." name c
      | Snap_gauge g ->
          if Float.is_integer g && Float.abs g < 1e15 then
            Fmt.pf fmt "%-40s %.0f@." name g
          else Fmt.pf fmt "%-40s %g@." name g
      | Snap_histogram { count; summary; _ } -> (
          match summary with
          | None -> Fmt.pf fmt "%-40s count=%d@." name count
          | Some s ->
              Fmt.pf fmt
                "%-40s count=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f@."
                name count s.Summary.mean s.Summary.p50 s.Summary.p95
                s.Summary.p99 s.Summary.max))
    snap

let summary_json (s : Summary.t) =
  Json.Obj
    [
      ("n", Json.Int s.Summary.n);
      ("mean", Json.Float s.Summary.mean);
      ("stddev", Json.Float s.Summary.stddev);
      ("min", Json.Float s.Summary.min);
      ("max", Json.Float s.Summary.max);
      ("p50", Json.Float s.Summary.p50);
      ("p95", Json.Float s.Summary.p95);
      ("p99", Json.Float s.Summary.p99);
    ]

let snapshot_json snap =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Snap_counter c -> Json.Int c
           | Snap_gauge g ->
               if Float.is_integer g && Float.abs g < 1e15 then
                 Json.Int (int_of_float g)
               else Json.Float g
           | Snap_histogram { count; sum; summary } ->
               Json.Obj
                 (("count", Json.Int count)
                  :: ("sum", Json.Float sum)
                  ::
                  (match summary with
                  | None -> []
                  | Some s -> [ ("summary", summary_json s) ])) ))
       snap)
