(** Per-message latency breakdown: who owns each microsecond.

    Messages are stamped (in virtual time) at the four transitions of
    the optimistic path — application send-enqueue, engine transmit,
    arrival at the destination engine, application dequeue — and the
    deltas are accumulated per stage:

    - [Send_stage]: enqueue → engine transmit (engine pickup/discovery
      plus the transmit-side processing);
    - [Wire_stage]: engine transmit → destination-engine arrival
      (DMA/injection plus fabric flight);
    - [Recv_stage]: arrival → application dequeue (deposit plus
      receive-side discovery);
    - [Total_stage]: enqueue → dequeue (end to end).

    By construction each message's stage deltas sum exactly to its
    end-to-end latency; the stage means therefore sum to the total mean
    (percentiles, being order statistics, need not).

    Stamps are paired by destination endpoint in FIFO order, so no
    message identifier travels on the wire; on a reliable in-order
    fabric the pairing is exact. Fault injection (drops, duplicates,
    reordering) breaks FIFO pairing: mismatches are shed into
    {!unmatched} rather than corrupting queues, and stage attribution
    degrades to an approximation — use lossless runs for exact
    breakdowns. Engine-discarded messages are retired via {!discarded}
    and counted in {!dropped_in_flight}.

    All storage is bounded: per-stage accumulators are constant-size
    log-bucketed sketches ({!Sketch}) and match queues are capped. *)

type t

type stage = Send_stage | Wire_stage | Recv_stage | Total_stage

val stage_name : stage -> string
val all_stages : stage list

val create : unit -> t

(** {1 Stamping (called by the instrumented stack)} *)

val send_enqueued : t -> now:int -> dst_node:int -> dst_ep:int -> unit

(** The engine refused a queued message (forbidden/undeliverable):
    retire its pending send stamp. *)
val send_refused : t -> dst_node:int -> dst_ep:int -> unit

val engine_tx : t -> now:int -> dst_node:int -> dst_ep:int -> unit
val wire_rx : t -> now:int -> node:int -> ep:int -> unit

(** The destination engine deposited the handled message. *)
val deposited : t -> node:int -> ep:int -> unit

(** The destination engine discarded the handled message. *)
val discarded : t -> node:int -> ep:int -> unit

val recv_dequeued : t -> now:int -> node:int -> ep:int -> unit

(** {1 Results} *)

(** Messages that completed this stage (all-time, exact). *)
val stage_count : t -> stage -> int

(** All-time sum in microseconds (exact). *)
val stage_sum_us : t -> stage -> float

(** All-time mean in microseconds ([None] before any sample). *)
val stage_mean_us : t -> stage -> float option

(** Sketch percentiles + exact moments over all observations. *)
val stage_summary : t -> stage -> Flipc_stats.Summary.t option

(** Stamps that found no partner (fault-injected fabrics, shed queue
    entries). Zero on a lossless in-order run. *)
val unmatched : t -> int

(** Messages the engine discarded between wire arrival and deposit. *)
val dropped_in_flight : t -> int

val pp : Format.formatter -> t -> unit
val json : t -> Json.t
