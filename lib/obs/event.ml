type drop_reason =
  | No_posted_buffer
  | Bad_destination
  | Corrupt_slot
  | Forbidden_destination

type fault_kind = Fault_drop | Fault_duplicate | Fault_reorder | Fault_jitter

type t =
  | Send_enqueued of { node : int; ep : int; dst_node : int; dst_ep : int }
  | Engine_tx of { node : int; ep : int; dst_node : int; dst_ep : int }
  | Wire_rx of { node : int; ep : int }
  | Deposit of { node : int; ep : int }
  | Recv_dequeued of { node : int; ep : int }
  | Drop of { node : int; ep : int; reason : drop_reason }
  | Retransmit of { node : int; ep : int; seq : int }
  | Credit_grant of { node : int; ep : int; count : int }
  | Engine_park of { node : int; idle : int }
  | Engine_wake of { node : int }
  | Fault of { node : int; kind : fault_kind }
  | Note of { node : int; tag : string; detail : string }

let drop_reason_name = function
  | No_posted_buffer -> "no_posted_buffer"
  | Bad_destination -> "bad_destination"
  | Corrupt_slot -> "corrupt_slot"
  | Forbidden_destination -> "forbidden_destination"

let fault_kind_name = function
  | Fault_drop -> "drop"
  | Fault_duplicate -> "duplicate"
  | Fault_reorder -> "reorder"
  | Fault_jitter -> "jitter"

let name = function
  | Send_enqueued _ -> "send_enqueued"
  | Engine_tx _ -> "engine_tx"
  | Wire_rx _ -> "wire_rx"
  | Deposit _ -> "deposit"
  | Recv_dequeued _ -> "recv_dequeued"
  | Drop _ -> "drop"
  | Retransmit _ -> "retransmit"
  | Credit_grant _ -> "credit_grant"
  | Engine_park _ -> "engine_park"
  | Engine_wake _ -> "engine_wake"
  | Fault _ -> "fault"
  | Note { tag; _ } -> tag

let node = function
  | Send_enqueued { node; _ }
  | Engine_tx { node; _ }
  | Wire_rx { node; _ }
  | Deposit { node; _ }
  | Recv_dequeued { node; _ }
  | Drop { node; _ }
  | Retransmit { node; _ }
  | Credit_grant { node; _ }
  | Engine_park { node; _ }
  | Engine_wake { node; _ }
  | Fault { node; _ }
  | Note { node; _ } -> node

let args = function
  | Send_enqueued { ep; dst_node; dst_ep; _ } | Engine_tx { ep; dst_node; dst_ep; _ }
    ->
      [
        ("ep", Json.Int ep);
        ("dst_node", Json.Int dst_node);
        ("dst_ep", Json.Int dst_ep);
      ]
  | Wire_rx { ep; _ } | Deposit { ep; _ } | Recv_dequeued { ep; _ } ->
      [ ("ep", Json.Int ep) ]
  | Drop { ep; reason; _ } ->
      [ ("ep", Json.Int ep); ("reason", Json.String (drop_reason_name reason)) ]
  | Retransmit { ep; seq; _ } -> [ ("ep", Json.Int ep); ("seq", Json.Int seq) ]
  | Credit_grant { ep; count; _ } ->
      [ ("ep", Json.Int ep); ("count", Json.Int count) ]
  | Engine_park { idle; _ } -> [ ("idle_iterations", Json.Int idle) ]
  | Engine_wake _ -> []
  | Fault { kind; _ } -> [ ("kind", Json.String (fault_kind_name kind)) ]
  | Note { detail; _ } -> [ ("detail", Json.String detail) ]

let pp fmt ev =
  Fmt.pf fmt "n%d %-14s" (node ev) (name ev);
  List.iter
    (fun (k, v) ->
      match v with
      | Json.Int i -> Fmt.pf fmt " %s=%d" k i
      | Json.String s -> Fmt.pf fmt " %s=%s" k s
      | v -> Fmt.pf fmt " %s=%s" k (Json.to_string v))
    (args ev)
