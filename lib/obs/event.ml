type drop_reason =
  | No_posted_buffer
  | Bad_destination
  | Corrupt_slot
  | Corrupt_frame
  | Forbidden_destination

type fault_kind =
  | Fault_drop
  | Fault_duplicate
  | Fault_reorder
  | Fault_jitter
  | Fault_corrupt

type t =
  | Send_enqueued of {
      node : int;
      ep : int;
      dst_node : int;
      dst_ep : int;
      mid : int;
    }
  | Doorbell of { node : int; ep : int }
  | Engine_tx of {
      node : int;
      ep : int;
      dst_node : int;
      dst_ep : int;
      mid : int;
    }
  | Wire_rx of { node : int; ep : int; mid : int }
  | Deposit of { node : int; ep : int; mid : int }
  | Recv_dequeued of { node : int; ep : int; mid : int }
  | Drop of { node : int; ep : int; mid : int; reason : drop_reason }
  | Frame_tx of {
      node : int;
      ep : int;
      seq : int;
      mid : int;
      retransmit : bool;
    }
  | Frame_deliver of { node : int; ep : int; seq : int; mid : int }
  | Ack_tx of { node : int; ep : int; cum : int; sacked : int }
  | Credit_grant of { node : int; ep : int; count : int }
  | Window_send of {
      node : int;
      ep : int;
      mid : int;
      sent : int;
      granted : int;
      window : int;
    }
  | Drops_read of { node : int; ep : int; count : int }
  | Engine_park of { node : int; idle : int }
  | Engine_wake of { node : int }
  | Fault of { node : int; kind : fault_kind; mid : int }
  | Note of { node : int; tag : string; detail : string }

let drop_reason_name = function
  | No_posted_buffer -> "no_posted_buffer"
  | Bad_destination -> "bad_destination"
  | Corrupt_slot -> "corrupt_slot"
  | Corrupt_frame -> "corrupt_frame"
  | Forbidden_destination -> "forbidden_destination"

let fault_kind_name = function
  | Fault_drop -> "drop"
  | Fault_duplicate -> "duplicate"
  | Fault_reorder -> "reorder"
  | Fault_jitter -> "jitter"
  | Fault_corrupt -> "corrupt"

let name = function
  | Send_enqueued _ -> "send_enqueued"
  | Doorbell _ -> "doorbell"
  | Engine_tx _ -> "engine_tx"
  | Wire_rx _ -> "wire_rx"
  | Deposit _ -> "deposit"
  | Recv_dequeued _ -> "recv_dequeued"
  | Drop _ -> "drop"
  | Frame_tx { retransmit; _ } ->
      if retransmit then "retransmit" else "frame_tx"
  | Frame_deliver _ -> "frame_deliver"
  | Ack_tx _ -> "ack_tx"
  | Credit_grant _ -> "credit_grant"
  | Window_send _ -> "window_send"
  | Drops_read _ -> "drops_read"
  | Engine_park _ -> "engine_park"
  | Engine_wake _ -> "engine_wake"
  | Fault _ -> "fault"
  | Note { tag; _ } -> tag

let node = function
  | Send_enqueued { node; _ }
  | Doorbell { node; _ }
  | Engine_tx { node; _ }
  | Wire_rx { node; _ }
  | Deposit { node; _ }
  | Recv_dequeued { node; _ }
  | Drop { node; _ }
  | Frame_tx { node; _ }
  | Frame_deliver { node; _ }
  | Ack_tx { node; _ }
  | Credit_grant { node; _ }
  | Window_send { node; _ }
  | Drops_read { node; _ }
  | Engine_park { node; _ }
  | Engine_wake { node; _ }
  | Fault { node; _ }
  | Note { node; _ } -> node

let mid = function
  | Send_enqueued { mid; _ }
  | Engine_tx { mid; _ }
  | Wire_rx { mid; _ }
  | Deposit { mid; _ }
  | Recv_dequeued { mid; _ }
  | Drop { mid; _ }
  | Frame_tx { mid; _ }
  | Frame_deliver { mid; _ }
  | Window_send { mid; _ }
  | Fault { mid; _ } ->
      if mid > 0 then Some mid else None
  | Doorbell _ | Ack_tx _ | Credit_grant _ | Drops_read _ | Engine_park _
  | Engine_wake _ | Note _ ->
      None

let args = function
  | Send_enqueued { ep; dst_node; dst_ep; mid; _ }
  | Engine_tx { ep; dst_node; dst_ep; mid; _ } ->
      [
        ("ep", Json.Int ep);
        ("dst_node", Json.Int dst_node);
        ("dst_ep", Json.Int dst_ep);
        ("mid", Json.Int mid);
      ]
  | Doorbell { ep; _ } -> [ ("ep", Json.Int ep) ]
  | Wire_rx { ep; mid; _ } | Deposit { ep; mid; _ } | Recv_dequeued { ep; mid; _ }
    ->
      [ ("ep", Json.Int ep); ("mid", Json.Int mid) ]
  | Drop { ep; mid; reason; _ } ->
      [
        ("ep", Json.Int ep);
        ("mid", Json.Int mid);
        ("reason", Json.String (drop_reason_name reason));
      ]
  | Frame_tx { ep; seq; mid; retransmit; _ } ->
      [
        ("ep", Json.Int ep);
        ("seq", Json.Int seq);
        ("mid", Json.Int mid);
        ("retransmit", Json.Bool retransmit);
      ]
  | Frame_deliver { ep; seq; mid; _ } ->
      [ ("ep", Json.Int ep); ("seq", Json.Int seq); ("mid", Json.Int mid) ]
  | Ack_tx { ep; cum; sacked; _ } ->
      [ ("ep", Json.Int ep); ("cum", Json.Int cum); ("sacked", Json.Int sacked) ]
  | Credit_grant { ep; count; _ } ->
      [ ("ep", Json.Int ep); ("count", Json.Int count) ]
  | Window_send { ep; mid; sent; granted; window; _ } ->
      [
        ("ep", Json.Int ep);
        ("mid", Json.Int mid);
        ("sent", Json.Int sent);
        ("granted", Json.Int granted);
        ("window", Json.Int window);
      ]
  | Drops_read { ep; count; _ } ->
      [ ("ep", Json.Int ep); ("count", Json.Int count) ]
  | Engine_park { idle; _ } -> [ ("idle_iterations", Json.Int idle) ]
  | Engine_wake _ -> []
  | Fault { kind; mid; _ } ->
      [ ("kind", Json.String (fault_kind_name kind)); ("mid", Json.Int mid) ]
  | Note { detail; _ } -> [ ("detail", Json.String detail) ]

let pp fmt ev =
  Fmt.pf fmt "n%d %-14s" (node ev) (name ev);
  List.iter
    (fun (k, v) ->
      match v with
      | Json.Int i -> Fmt.pf fmt " %s=%d" k i
      | Json.String s -> Fmt.pf fmt " %s=%s" k s
      | v -> Fmt.pf fmt " %s=%s" k (Json.to_string v))
    (args ev)
