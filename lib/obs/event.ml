type drop_reason =
  | No_posted_buffer
  | Bad_destination
  | Corrupt_slot
  | Corrupt_frame
  | Forbidden_destination

type fault_kind =
  | Fault_drop
  | Fault_duplicate
  | Fault_reorder
  | Fault_jitter
  | Fault_corrupt

type bulk_op = Bulk_put | Bulk_get

type t =
  | Send_enqueued of {
      node : int;
      ep : int;
      dst_node : int;
      dst_ep : int;
      mid : int;
    }
  | Doorbell of { node : int; ep : int }
  | Engine_tx of {
      node : int;
      ep : int;
      dst_node : int;
      dst_ep : int;
      mid : int;
    }
  | Wire_rx of { node : int; ep : int; mid : int }
  | Deposit of { node : int; ep : int; mid : int }
  | Recv_dequeued of { node : int; ep : int; mid : int }
  | Drop of { node : int; ep : int; mid : int; reason : drop_reason }
  | Frame_tx of {
      node : int;
      ep : int;
      seq : int;
      mid : int;
      retransmit : bool;
    }
  | Frame_deliver of { node : int; ep : int; seq : int; mid : int }
  | Ack_tx of { node : int; ep : int; cum : int; sacked : int }
  | Credit_grant of { node : int; ep : int; count : int }
  | Window_send of {
      node : int;
      ep : int;
      mid : int;
      sent : int;
      granted : int;
      window : int;
    }
  | Drops_read of { node : int; ep : int; count : int }
  | Engine_park of { node : int; idle : int }
  | Engine_wake of { node : int }
  | Fault of { node : int; kind : fault_kind; mid : int }
  | Note of { node : int; tag : string; detail : string }
  | Kkt_call of { node : int; dst_node : int; id : int; mid : int }
  | Kkt_dispatch of { node : int; id : int; valid : bool; mid : int }
  | Kkt_reply of { node : int; dst_node : int; id : int; mid : int }
  | Kkt_complete of { node : int; id : int; mid : int }
  | Bulk_start of {
      node : int;
      dst_node : int;
      transfer : int;
      op : bulk_op;
      total : int;
      mid : int;
    }
  | Bulk_chunk of { node : int; transfer : int; offset : int; len : int; mid : int }
  | Bulk_complete of { node : int; transfer : int; mid : int }
  | Bulk_cancel of { node : int; transfer : int; mid : int }
  | Alert_fired of { node : int; rule : string; detail : string }

let drop_reason_name = function
  | No_posted_buffer -> "no_posted_buffer"
  | Bad_destination -> "bad_destination"
  | Corrupt_slot -> "corrupt_slot"
  | Corrupt_frame -> "corrupt_frame"
  | Forbidden_destination -> "forbidden_destination"

let fault_kind_name = function
  | Fault_drop -> "drop"
  | Fault_duplicate -> "duplicate"
  | Fault_reorder -> "reorder"
  | Fault_jitter -> "jitter"
  | Fault_corrupt -> "corrupt"

let bulk_op_name = function Bulk_put -> "put" | Bulk_get -> "get"

let name = function
  | Send_enqueued _ -> "send_enqueued"
  | Doorbell _ -> "doorbell"
  | Engine_tx _ -> "engine_tx"
  | Wire_rx _ -> "wire_rx"
  | Deposit _ -> "deposit"
  | Recv_dequeued _ -> "recv_dequeued"
  | Drop _ -> "drop"
  | Frame_tx { retransmit; _ } ->
      if retransmit then "retransmit" else "frame_tx"
  | Frame_deliver _ -> "frame_deliver"
  | Ack_tx _ -> "ack_tx"
  | Credit_grant _ -> "credit_grant"
  | Window_send _ -> "window_send"
  | Drops_read _ -> "drops_read"
  | Engine_park _ -> "engine_park"
  | Engine_wake _ -> "engine_wake"
  | Fault _ -> "fault"
  | Note { tag; _ } -> tag
  | Kkt_call _ -> "kkt_call"
  | Kkt_dispatch _ -> "kkt_dispatch"
  | Kkt_reply _ -> "kkt_reply"
  | Kkt_complete _ -> "kkt_complete"
  | Bulk_start _ -> "bulk_start"
  | Bulk_chunk _ -> "bulk_chunk"
  | Bulk_complete _ -> "bulk_complete"
  | Bulk_cancel _ -> "bulk_cancel"
  | Alert_fired { rule; _ } -> "alert:" ^ rule

(* Stable wire discriminator: unlike [name] it never depends on payload
   ([Frame_tx] is always "frame_tx", [Note] is always "note"), so a
   trace record round-trips through {!to_json}/{!of_json}. *)
let kind = function
  | Send_enqueued _ -> "send_enqueued"
  | Doorbell _ -> "doorbell"
  | Engine_tx _ -> "engine_tx"
  | Wire_rx _ -> "wire_rx"
  | Deposit _ -> "deposit"
  | Recv_dequeued _ -> "recv_dequeued"
  | Drop _ -> "drop"
  | Frame_tx _ -> "frame_tx"
  | Frame_deliver _ -> "frame_deliver"
  | Ack_tx _ -> "ack_tx"
  | Credit_grant _ -> "credit_grant"
  | Window_send _ -> "window_send"
  | Drops_read _ -> "drops_read"
  | Engine_park _ -> "engine_park"
  | Engine_wake _ -> "engine_wake"
  | Fault _ -> "fault"
  | Note _ -> "note"
  | Kkt_call _ -> "kkt_call"
  | Kkt_dispatch _ -> "kkt_dispatch"
  | Kkt_reply _ -> "kkt_reply"
  | Kkt_complete _ -> "kkt_complete"
  | Bulk_start _ -> "bulk_start"
  | Bulk_chunk _ -> "bulk_chunk"
  | Bulk_complete _ -> "bulk_complete"
  | Bulk_cancel _ -> "bulk_cancel"
  | Alert_fired _ -> "alert_fired"

let node = function
  | Send_enqueued { node; _ }
  | Doorbell { node; _ }
  | Engine_tx { node; _ }
  | Wire_rx { node; _ }
  | Deposit { node; _ }
  | Recv_dequeued { node; _ }
  | Drop { node; _ }
  | Frame_tx { node; _ }
  | Frame_deliver { node; _ }
  | Ack_tx { node; _ }
  | Credit_grant { node; _ }
  | Window_send { node; _ }
  | Drops_read { node; _ }
  | Engine_park { node; _ }
  | Engine_wake { node; _ }
  | Fault { node; _ }
  | Note { node; _ }
  | Kkt_call { node; _ }
  | Kkt_dispatch { node; _ }
  | Kkt_reply { node; _ }
  | Kkt_complete { node; _ }
  | Bulk_start { node; _ }
  | Bulk_chunk { node; _ }
  | Bulk_complete { node; _ }
  | Bulk_cancel { node; _ }
  | Alert_fired { node; _ } -> node

let mid = function
  | Send_enqueued { mid; _ }
  | Engine_tx { mid; _ }
  | Wire_rx { mid; _ }
  | Deposit { mid; _ }
  | Recv_dequeued { mid; _ }
  | Drop { mid; _ }
  | Frame_tx { mid; _ }
  | Frame_deliver { mid; _ }
  | Window_send { mid; _ }
  | Fault { mid; _ }
  | Kkt_call { mid; _ }
  | Kkt_dispatch { mid; _ }
  | Kkt_reply { mid; _ }
  | Kkt_complete { mid; _ }
  | Bulk_start { mid; _ }
  | Bulk_chunk { mid; _ }
  | Bulk_complete { mid; _ }
  | Bulk_cancel { mid; _ } ->
      if mid > 0 then Some mid else None
  | Doorbell _ | Ack_tx _ | Credit_grant _ | Drops_read _ | Engine_park _
  | Engine_wake _ | Note _ | Alert_fired _ ->
      None

let args = function
  | Send_enqueued { ep; dst_node; dst_ep; mid; _ }
  | Engine_tx { ep; dst_node; dst_ep; mid; _ } ->
      [
        ("ep", Json.Int ep);
        ("dst_node", Json.Int dst_node);
        ("dst_ep", Json.Int dst_ep);
        ("mid", Json.Int mid);
      ]
  | Doorbell { ep; _ } -> [ ("ep", Json.Int ep) ]
  | Wire_rx { ep; mid; _ } | Deposit { ep; mid; _ } | Recv_dequeued { ep; mid; _ }
    ->
      [ ("ep", Json.Int ep); ("mid", Json.Int mid) ]
  | Drop { ep; mid; reason; _ } ->
      [
        ("ep", Json.Int ep);
        ("mid", Json.Int mid);
        ("reason", Json.String (drop_reason_name reason));
      ]
  | Frame_tx { ep; seq; mid; retransmit; _ } ->
      [
        ("ep", Json.Int ep);
        ("seq", Json.Int seq);
        ("mid", Json.Int mid);
        ("retransmit", Json.Bool retransmit);
      ]
  | Frame_deliver { ep; seq; mid; _ } ->
      [ ("ep", Json.Int ep); ("seq", Json.Int seq); ("mid", Json.Int mid) ]
  | Ack_tx { ep; cum; sacked; _ } ->
      [ ("ep", Json.Int ep); ("cum", Json.Int cum); ("sacked", Json.Int sacked) ]
  | Credit_grant { ep; count; _ } ->
      [ ("ep", Json.Int ep); ("count", Json.Int count) ]
  | Window_send { ep; mid; sent; granted; window; _ } ->
      [
        ("ep", Json.Int ep);
        ("mid", Json.Int mid);
        ("sent", Json.Int sent);
        ("granted", Json.Int granted);
        ("window", Json.Int window);
      ]
  | Drops_read { ep; count; _ } ->
      [ ("ep", Json.Int ep); ("count", Json.Int count) ]
  | Engine_park { idle; _ } -> [ ("idle_iterations", Json.Int idle) ]
  | Engine_wake _ -> []
  | Fault { kind; mid; _ } ->
      [ ("kind", Json.String (fault_kind_name kind)); ("mid", Json.Int mid) ]
  | Note { detail; _ } -> [ ("detail", Json.String detail) ]
  | Kkt_call { dst_node; id; mid; _ } | Kkt_reply { dst_node; id; mid; _ } ->
      [
        ("dst_node", Json.Int dst_node);
        ("id", Json.Int id);
        ("mid", Json.Int mid);
      ]
  | Kkt_dispatch { id; valid; mid; _ } ->
      [ ("id", Json.Int id); ("valid", Json.Bool valid); ("mid", Json.Int mid) ]
  | Kkt_complete { id; mid; _ } ->
      [ ("id", Json.Int id); ("mid", Json.Int mid) ]
  | Bulk_start { dst_node; transfer; op; total; mid; _ } ->
      [
        ("dst_node", Json.Int dst_node);
        ("transfer", Json.Int transfer);
        ("op", Json.String (bulk_op_name op));
        ("total", Json.Int total);
        ("mid", Json.Int mid);
      ]
  | Bulk_chunk { transfer; offset; len; mid; _ } ->
      [
        ("transfer", Json.Int transfer);
        ("offset", Json.Int offset);
        ("len", Json.Int len);
        ("mid", Json.Int mid);
      ]
  | Bulk_complete { transfer; mid; _ } | Bulk_cancel { transfer; mid; _ } ->
      [ ("transfer", Json.Int transfer); ("mid", Json.Int mid) ]
  | Alert_fired { rule; detail; _ } ->
      [ ("rule", Json.String rule); ("detail", Json.String detail) ]

(* ------------------------------------------------------------------ *)
(* Self-describing trace records: kind + node + the variant's fields.  *)

let to_json ev =
  let fields =
    match ev with
    (* [args] drops the Note tag (it doubles as [name]); restore it. *)
    | Note { tag; detail; _ } ->
        [ ("tag", Json.String tag); ("detail", Json.String detail) ]
    | ev -> args ev
  in
  Json.Obj
    (("k", Json.String (kind ev)) :: ("node", Json.Int (node ev)) :: fields)

let drop_reason_of_name = function
  | "no_posted_buffer" -> Some No_posted_buffer
  | "bad_destination" -> Some Bad_destination
  | "corrupt_slot" -> Some Corrupt_slot
  | "corrupt_frame" -> Some Corrupt_frame
  | "forbidden_destination" -> Some Forbidden_destination
  | _ -> None

let fault_kind_of_name = function
  | "drop" -> Some Fault_drop
  | "duplicate" -> Some Fault_duplicate
  | "reorder" -> Some Fault_reorder
  | "jitter" -> Some Fault_jitter
  | "corrupt" -> Some Fault_corrupt
  | _ -> None

let bulk_op_of_name = function
  | "put" -> Some Bulk_put
  | "get" -> Some Bulk_get
  | _ -> None

exception Bad_record of string

let of_json doc =
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad_record s)) fmt in
  let int k =
    match Json.member k doc with
    | Some (Json.Int i) -> i
    | _ -> fail "missing int field %S" k
  in
  let str k =
    match Json.member k doc with
    | Some (Json.String s) -> s
    | _ -> fail "missing string field %S" k
  in
  let bool k =
    match Json.member k doc with
    | Some (Json.Bool b) -> b
    | _ -> fail "missing bool field %S" k
  in
  match
    let node = int "node" in
    match str "k" with
    | "send_enqueued" ->
        Send_enqueued
          {
            node;
            ep = int "ep";
            dst_node = int "dst_node";
            dst_ep = int "dst_ep";
            mid = int "mid";
          }
    | "doorbell" -> Doorbell { node; ep = int "ep" }
    | "engine_tx" ->
        Engine_tx
          {
            node;
            ep = int "ep";
            dst_node = int "dst_node";
            dst_ep = int "dst_ep";
            mid = int "mid";
          }
    | "wire_rx" -> Wire_rx { node; ep = int "ep"; mid = int "mid" }
    | "deposit" -> Deposit { node; ep = int "ep"; mid = int "mid" }
    | "recv_dequeued" -> Recv_dequeued { node; ep = int "ep"; mid = int "mid" }
    | "drop" ->
        let reason =
          match drop_reason_of_name (str "reason") with
          | Some r -> r
          | None -> fail "unknown drop reason %S" (str "reason")
        in
        Drop { node; ep = int "ep"; mid = int "mid"; reason }
    | "frame_tx" ->
        Frame_tx
          {
            node;
            ep = int "ep";
            seq = int "seq";
            mid = int "mid";
            retransmit = bool "retransmit";
          }
    | "frame_deliver" ->
        Frame_deliver { node; ep = int "ep"; seq = int "seq"; mid = int "mid" }
    | "ack_tx" ->
        Ack_tx { node; ep = int "ep"; cum = int "cum"; sacked = int "sacked" }
    | "credit_grant" -> Credit_grant { node; ep = int "ep"; count = int "count" }
    | "window_send" ->
        Window_send
          {
            node;
            ep = int "ep";
            mid = int "mid";
            sent = int "sent";
            granted = int "granted";
            window = int "window";
          }
    | "drops_read" -> Drops_read { node; ep = int "ep"; count = int "count" }
    | "engine_park" -> Engine_park { node; idle = int "idle_iterations" }
    | "engine_wake" -> Engine_wake { node }
    | "fault" ->
        let kind =
          match fault_kind_of_name (str "kind") with
          | Some k -> k
          | None -> fail "unknown fault kind %S" (str "kind")
        in
        Fault { node; kind; mid = int "mid" }
    | "note" -> Note { node; tag = str "tag"; detail = str "detail" }
    | "kkt_call" ->
        Kkt_call
          { node; dst_node = int "dst_node"; id = int "id"; mid = int "mid" }
    | "kkt_dispatch" ->
        Kkt_dispatch { node; id = int "id"; valid = bool "valid"; mid = int "mid" }
    | "kkt_reply" ->
        Kkt_reply
          { node; dst_node = int "dst_node"; id = int "id"; mid = int "mid" }
    | "kkt_complete" -> Kkt_complete { node; id = int "id"; mid = int "mid" }
    | "bulk_start" ->
        let op =
          match bulk_op_of_name (str "op") with
          | Some op -> op
          | None -> fail "unknown bulk op %S" (str "op")
        in
        Bulk_start
          {
            node;
            dst_node = int "dst_node";
            transfer = int "transfer";
            op;
            total = int "total";
            mid = int "mid";
          }
    | "bulk_chunk" ->
        Bulk_chunk
          {
            node;
            transfer = int "transfer";
            offset = int "offset";
            len = int "len";
            mid = int "mid";
          }
    | "bulk_complete" ->
        Bulk_complete { node; transfer = int "transfer"; mid = int "mid" }
    | "bulk_cancel" ->
        Bulk_cancel { node; transfer = int "transfer"; mid = int "mid" }
    | "alert_fired" ->
        Alert_fired { node; rule = str "rule"; detail = str "detail" }
    | k -> fail "unknown event kind %S" k
  with
  | ev -> Ok ev
  | exception Bad_record msg -> Error msg

let pp fmt ev =
  Fmt.pf fmt "n%d %-14s" (node ev) (name ev);
  List.iter
    (fun (k, v) ->
      match v with
      | Json.Int i -> Fmt.pf fmt " %s=%d" k i
      | Json.String s -> Fmt.pf fmt " %s=%s" k s
      | v -> Fmt.pf fmt " %s=%s" k (Json.to_string v))
    (args ev)
