module Engine = Flipc_sim.Engine

type t = {
  id : int;
  sim : Engine.t;
  metrics : Metrics.t;
  tracer : Tracer.t;
  latency : Latency.t;
  mutable label : string;
  mutable watchers : (Flipc_sim.Vtime.t -> Event.t -> unit) list;
  mutable reporters : (Format.formatter -> unit) list;
}

let next_id = ref 0

(* Global capture: while active, every Obs.t created anywhere in the
   process starts with tracing enabled and is remembered, so a CLI
   `--trace out.json` flag can collect timelines from machines built
   deep inside workload helpers without plumbing. *)
let capture_box : t list ref option ref = ref None

let start_capture () =
  match !capture_box with
  | Some _ -> ()
  | None -> capture_box := Some (ref [])

let stop_capture () = capture_box := None
let capturing () = !capture_box <> None

let captured () =
  match !capture_box with Some l -> List.rev !l | None -> []

(* Creation hooks: tooling (e.g. a trace sink behind a CLI `--capture`
   flag) registers one to be handed every bundle the process creates,
   however deep inside workload helpers. *)
let hooks : (int * (t -> unit)) list ref = ref []
let next_hook = ref 0

let on_create f =
  incr next_hook;
  let hid = !next_hook in
  hooks := !hooks @ [ (hid, f) ];
  fun () -> hooks := List.filter (fun (h, _) -> h <> hid) !hooks

let create ?(tracing = false) ?(trace_capacity = 65_536) ~sim () =
  let id = !next_id in
  incr next_id;
  let tracing = tracing || capturing () in
  let t =
    {
      id;
      sim;
      metrics = Metrics.create ();
      tracer = Tracer.create ~capacity:trace_capacity ~enabled:tracing ();
      latency = Latency.create ();
      label = Printf.sprintf "flipc machine %d" id;
      watchers = [];
      reporters = [];
    }
  in
  (match !capture_box with Some l -> l := t :: !l | None -> ());
  List.iter (fun (_, f) -> f t) !hooks;
  t

let id t = t.id
let sim t = t.sim
let metrics t = t.metrics
let tracer t = t.tracer
let latency t = t.latency
let now t = Engine.now t.sim
let label t = t.label
let set_label t s = t.label <- s

(* Watchers piggyback on the tracing gate: every emit site already asks
   [tracing] before building its event, so a registered watcher turns
   those same sites on without touching them. *)
let tracing t = Tracer.enabled t.tracer || t.watchers <> []

let add_watcher t f = t.watchers <- t.watchers @ [ f ]

let event t ev =
  let now = Engine.now t.sim in
  Tracer.emit t.tracer ~now ev;
  match t.watchers with
  | [] -> ()
  | ws -> List.iter (fun f -> f now ev) ws

let add_reporter t f = t.reporters <- t.reporters @ [ f ]
let report t fmt = List.iter (fun f -> f fmt) t.reporters

let chrome_json_of list =
  let events =
    List.concat_map
      (fun t ->
        Tracer.chrome_events ~pid:t.id ~process_name:t.label t.tracer)
      list
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ns");
    ]

let chrome_json t = chrome_json_of [ t ]
let captured_chrome_json () = chrome_json_of (captured ())
