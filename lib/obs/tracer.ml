module Vtime = Flipc_sim.Vtime

type entry = { ts : Vtime.t; ev : Event.t }

type t = { mutable enabled : bool; ring : entry Ring.t }

let create ?(capacity = 65_536) ?(enabled = false) () =
  { enabled; ring = Ring.create ~capacity }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled

let emit t ~now ev = if t.enabled then Ring.push t.ring { ts = now; ev }

let length t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let to_list t = Ring.to_list t.ring
let clear t = Ring.clear t.ring

let pp fmt t =
  Ring.iter t.ring (fun e ->
      Fmt.pf fmt "[%a] %a@." Vtime.pp e.ts Event.pp e.ev)

(* Chrome trace_event format: instant events ("ph":"i", thread scope),
   timestamps in (fractional) microseconds, one pid per machine and one
   tid per node so chrome://tracing / Perfetto shows a row per node. *)
let chrome_event ~pid e =
  Json.Obj
    [
      ("name", Json.String (Event.name e.ev));
      ("cat", Json.String "flipc");
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Float (float_of_int (Vtime.to_ns e.ts) /. 1000.));
      ("pid", Json.Int pid);
      ("tid", Json.Int (Event.node e.ev));
      ("args", Json.Obj (Event.args e.ev));
    ]

let chrome_metadata ~pid ~process_name nodes =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("name", Json.String process_name) ]);
    ]
  :: List.map
       (fun node ->
         Json.Obj
           [
             ("name", Json.String "thread_name");
             ("ph", Json.String "M");
             ("pid", Json.Int pid);
             ("tid", Json.Int node);
             ("args", Json.Obj [ ("name", Json.String (Fmt.str "node %d" node)) ]);
           ])
       nodes

let chrome_events ?(pid = 0) ?process_name t =
  let nodes =
    Ring.fold t.ring ~init:[] (fun acc e ->
        let n = Event.node e.ev in
        if List.mem n acc then acc else n :: acc)
    |> List.sort Int.compare
  in
  let events =
    List.rev (Ring.fold t.ring ~init:[] (fun acc e -> chrome_event ~pid e :: acc))
  in
  let process_name =
    match process_name with
    | Some n -> n
    | None -> Fmt.str "flipc machine %d" pid
  in
  chrome_metadata ~pid ~process_name nodes @ events

let chrome_json ?pid t =
  Json.Obj
    [
      ("traceEvents", Json.List (chrome_events ?pid ?process_name:None t));
      ("displayTimeUnit", Json.String "ns");
    ]
