(** Bounded typed-event trace with Chrome [trace_event] export.

    Replaces ad-hoc string traces on the message path: components emit
    {!Event.t} values stamped with virtual time into a fixed-capacity
    drop-oldest ring ({!Ring}), so tracing a week-long soak costs bounded
    memory and reports how many early events it shed ({!dropped}).

    A disabled tracer costs one branch per {!emit}; construction of the
    event value is the caller's concern (guard hot paths on {!enabled}). *)

type entry = { ts : Flipc_sim.Vtime.t; ev : Event.t }

type t

(** [create ()] makes a tracer holding at most [capacity] (default
    65536) events, disabled unless [enabled]. *)
val create : ?capacity:int -> ?enabled:bool -> unit -> t

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

(** [emit t ~now ev] records the event if the tracer is enabled. *)
val emit : t -> now:Flipc_sim.Vtime.t -> Event.t -> unit

(** Events currently retained. *)
val length : t -> int

(** Events evicted since creation/clear. *)
val dropped : t -> int

(** Oldest first. *)
val to_list : t -> entry list

val clear : t -> unit

(** One line per retained event. *)
val pp : Format.formatter -> t -> unit

(** Chrome [trace_event] array entries (metadata + instant events),
    suitable for merging several tracers into one file. [pid]
    distinguishes machines (default 0); nodes map to thread rows.
    [process_name] overrides the "flipc machine <pid>" metadata row. *)
val chrome_events : ?pid:int -> ?process_name:string -> t -> Json.t list

(** A complete [{"traceEvents": [...]}] document for chrome://tracing
    or Perfetto. *)
val chrome_json : ?pid:int -> t -> Json.t
