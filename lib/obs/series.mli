(** Virtual-time time-series sampler over the metrics registry.

    Scale claims need windowed rates and per-window percentiles, not one
    end-of-run snapshot. A series tap divides virtual time into
    fixed-interval windows and closes each one with the counter deltas
    (and per-second rates), instantaneous gauge values, and histogram
    count deltas plus current sketch quantiles accumulated during it.

    Windows close {e lazily}, driven by the machine's own event stream
    (a watcher tap — host-time cost only, never virtual time): the first
    event past a window boundary closes the elapsed span, so a quiet
    stretch folds into one wider (still interval-aligned) window rather
    than fabricating empty ones. Call {!sample} at end of run to flush
    the final partial window. Retained windows are ring-bounded. *)

type t

(** [attach obs] registers the tap. [interval] is the window width in
    virtual time (default 100 us); [capacity] bounds retained windows
    (default 512, drop-oldest). [on_window] runs once per closed window
    with its JSON (after the window is pushed and the next one opened,
    so the hook may itself emit events — {!Alert} fires typed alert
    events from here). Registering the watcher makes {!Obs.tracing}
    true. *)
val attach :
  ?interval:Flipc_sim.Vtime.t ->
  ?capacity:int ->
  ?on_window:(Json.t -> unit) ->
  Obs.t ->
  t

(** Close the current partial window at the machine's current virtual
    time (no-op if nothing has elapsed). *)
val sample : t -> unit

val window_count : t -> int

(** Retained windows, oldest first. Each window is an object with
    [start_ns], [end_ns], [counters] (per-name delta + rate_per_s),
    [gauges] and [histos] (count_delta + p50/p99). *)
val json : t -> Json.t

(** Prometheus-style text exposition of a snapshot: counters and gauges
    verbatim, histograms as summaries with quantile labels plus
    [_sum]/[_count]; names are prefixed [flipc_] with dots and dashes
    mapped to underscores. *)
val prom_of_snapshot : Metrics.snapshot -> string
