module Vtime = Flipc_sim.Vtime

(* ------------------------------------------------------------------ *)
(* One side's derived report.                                          *)

type site_stat = {
  st_spans : int;
  st_completed : int;
  st_totals : float array; (* completed spans' total ns, stream order *)
}

type side = {
  s_records : int;
  s_spans : int;
  s_violations : ((string * int) * int) list; (* (rule, node) -> count *)
  s_counters : (string * int) list; (* event kind -> count *)
  s_stages : (string * float array) list; (* stage -> durations ns *)
  s_sites : ((int * int) * site_stat) list;
}

type t = { base : side; cand : side }

let bump assoc key =
  match List.assoc_opt key !assoc with
  | Some n -> assoc := (key, n + 1) :: List.remove_assoc key !assoc
  | None -> assoc := (key, 1) :: !assoc

(* The canonical lifecycle milestones a latency stage spans. *)
let milestones = [ "send_enqueued"; "engine_tx"; "wire_rx"; "deposit"; "recv_dequeued" ]

let stage_names =
  [
    ("send", ("send_enqueued", "engine_tx"));
    ("wire", ("engine_tx", "wire_rx"));
    ("queue", ("wire_rx", "deposit"));
    ("recv", ("deposit", "recv_dequeued"));
    ("total", ("send_enqueued", "recv_dequeued"));
  ]

let span_milestones (span : Causal.span) =
  List.filter_map
    (fun name ->
      List.find_opt (fun (s : Causal.step) -> Event.kind s.ev = name) span.steps
      |> Option.map (fun (s : Causal.step) -> (name, Vtime.to_ns s.ts)))
    milestones

let derive (capture : Replay.t) =
  let records = Replay.records capture in
  (* Violations: a detached monitor over the record stream. *)
  let mon = Monitor.create () in
  List.iter (fun r -> Monitor.feed mon ~now:r.Replay.r_ts r.Replay.r_ev) records;
  let violations = ref [] in
  List.iter
    (fun v -> bump violations (v.Monitor.rule, v.Monitor.node))
    (Monitor.violations mon);
  (* Counters: event-kind population. *)
  let counters = ref [] in
  List.iter (fun r -> bump counters (Event.kind r.Replay.r_ev)) records;
  (* Spans -> stage durations and per-site stream accounting. *)
  let spans = Replay.spans capture in
  let stages = Hashtbl.create 8 in
  let sites = Hashtbl.create 8 in
  List.iter
    (fun (span : Causal.span) ->
      let ms = span_milestones span in
      List.iter
        (fun (stage, (from_k, to_k)) ->
          match (List.assoc_opt from_k ms, List.assoc_opt to_k ms) with
          | Some t0, Some t1 when t1 >= t0 ->
              let l =
                match Hashtbl.find_opt stages stage with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.add stages stage l;
                    l
              in
              l := float_of_int (t1 - t0) :: !l
          | _ -> ())
        stage_names;
      (* Site: source node of the first step, destination node of the
         delivery (or the wire arrival) if one happened. *)
      let src =
        match span.steps with s :: _ -> Event.node s.ev | [] -> -1
      in
      let dst =
        match
          List.find_opt
            (fun (s : Causal.step) ->
              match s.ev with
              | Event.Recv_dequeued _ | Event.Deposit _ | Event.Wire_rx _ ->
                  true
              | _ -> false)
            span.steps
        with
        | Some s -> Event.node s.ev
        | None -> -1
      in
      let completed =
        List.exists
          (fun (s : Causal.step) ->
            match s.ev with Event.Recv_dequeued _ -> true | _ -> false)
          span.steps
      in
      let total_ns =
        match (List.assoc_opt "send_enqueued" ms, List.assoc_opt "recv_dequeued" ms)
        with
        | Some t0, Some t1 when t1 >= t0 -> Some (float_of_int (t1 - t0))
        | _ -> None
      in
      let cur =
        match Hashtbl.find_opt sites (src, dst) with
        | Some c -> c
        | None -> { st_spans = 0; st_completed = 0; st_totals = [||] }
      in
      Hashtbl.replace sites (src, dst)
        {
          st_spans = cur.st_spans + 1;
          st_completed = (cur.st_completed + if completed then 1 else 0);
          st_totals =
            (match total_ns with
            | Some t -> Array.append cur.st_totals [| t |]
            | None -> cur.st_totals);
        })
    spans;
  {
    s_records = List.length records;
    s_spans = List.length spans;
    s_violations =
      List.sort compare !violations;
    s_counters = List.sort compare !counters;
    s_stages =
      Hashtbl.fold (fun k l acc -> (k, Array.of_list !l) :: acc) stages []
      |> List.sort compare;
    s_sites =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) sites [] |> List.sort compare;
  }

let compare_runs ~base ~cand = { base = derive base; cand = derive cand }

(* ------------------------------------------------------------------ *)
(* Diff views.                                                         *)

let quantile arr p =
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let sorted = Array.copy arr in
    Array.sort compare sorted;
    Some sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  end

let violation_sets t =
  let keys side = List.map fst side.s_violations in
  let base_keys = keys t.base and cand_keys = keys t.cand in
  let added =
    List.filter (fun k -> not (List.mem k base_keys)) cand_keys
  in
  let removed =
    List.filter (fun k -> not (List.mem k cand_keys)) base_keys
  in
  let changed =
    List.filter_map
      (fun (k, bc) ->
        match List.assoc_opt k t.cand.s_violations with
        | Some cc when cc <> bc -> Some (k, bc, cc)
        | _ -> None)
      t.base.s_violations
  in
  (added, removed, changed)

let regressions t =
  let added, _, _ = violation_sets t in
  List.length added

let us ns = ns /. 1000.

let stage_rows t =
  List.filter_map
    (fun (stage, _) ->
      let b = List.assoc_opt stage t.base.s_stages in
      let c = List.assoc_opt stage t.cand.s_stages in
      let q side p = Option.bind side (fun a -> quantile a p) in
      match (q b 0.5, q c 0.5) with
      | None, None -> None
      | bp50, cp50 ->
          Some (stage, bp50, cp50, q b 0.99, q c 0.99))
    stage_names

let counter_rows t =
  let kinds =
    List.sort_uniq compare
      (List.map fst t.base.s_counters @ List.map fst t.cand.s_counters)
  in
  List.filter_map
    (fun k ->
      let b = Option.value ~default:0 (List.assoc_opt k t.base.s_counters) in
      let c = Option.value ~default:0 (List.assoc_opt k t.cand.s_counters) in
      if b = 0 && c = 0 then None else Some (k, b, c))
    kinds

let site_rows t =
  let keys =
    List.sort_uniq compare
      (List.map fst t.base.s_sites @ List.map fst t.cand.s_sites)
  in
  List.map
    (fun key ->
      let get side =
        Option.value
          ~default:{ st_spans = 0; st_completed = 0; st_totals = [||] }
          (List.assoc_opt key side.s_sites)
      in
      let b = get t.base and c = get t.cand in
      (* Ordinal alignment: pair the i-th completed span of the stream
         in each run and take the median per-pair latency shift. *)
      let pairs = min (Array.length b.st_totals) (Array.length c.st_totals) in
      let pair_delta =
        if pairs = 0 then None
        else
          quantile
            (Array.init pairs (fun i -> c.st_totals.(i) -. b.st_totals.(i)))
            0.5
      in
      (key, b, c, pair_delta))
    keys

let opt_us_json = function
  | None -> Json.Null
  | Some ns -> Json.Float (us ns)

let json t =
  let added, removed, changed = violation_sets t in
  let vkey (rule, node) = [ ("rule", Json.String rule); ("node", Json.Int node) ] in
  Json.Obj
    [
      ( "records",
        Json.Obj
          [
            ("base", Json.Int t.base.s_records);
            ("cand", Json.Int t.cand.s_records);
          ] );
      ( "spans",
        Json.Obj
          [
            ("base", Json.Int t.base.s_spans);
            ("cand", Json.Int t.cand.s_spans);
          ] );
      ( "violations",
        Json.Obj
          [
            ( "added",
              Json.List
                (List.map
                   (fun k ->
                     Json.Obj
                       (vkey k
                       @ [
                           ( "count",
                             Json.Int
                               (Option.value ~default:0
                                  (List.assoc_opt k t.cand.s_violations)) );
                         ]))
                   added) );
            ( "removed",
              Json.List
                (List.map
                   (fun k ->
                     Json.Obj
                       (vkey k
                       @ [
                           ( "count",
                             Json.Int
                               (Option.value ~default:0
                                  (List.assoc_opt k t.base.s_violations)) );
                         ]))
                   removed) );
            ( "changed",
              Json.List
                (List.map
                   (fun (k, bc, cc) ->
                     Json.Obj
                       (vkey k
                       @ [ ("base", Json.Int bc); ("cand", Json.Int cc) ]))
                   changed) );
          ] );
      ( "counters",
        Json.List
          (List.map
             (fun (k, b, c) ->
               Json.Obj
                 [
                   ("kind", Json.String k);
                   ("base", Json.Int b);
                   ("cand", Json.Int c);
                   ("delta", Json.Int (c - b));
                 ])
             (counter_rows t)) );
      ( "stages",
        Json.List
          (List.map
             (fun (stage, bp50, cp50, bp99, cp99) ->
               Json.Obj
                 [
                   ("stage", Json.String stage);
                   ("base_p50_us", opt_us_json bp50);
                   ("cand_p50_us", opt_us_json cp50);
                   ("base_p99_us", opt_us_json bp99);
                   ("cand_p99_us", opt_us_json cp99);
                 ])
             (stage_rows t)) );
      ( "sites",
        Json.List
          (List.map
             (fun ((src, dst), b, c, pair_delta) ->
               Json.Obj
                 [
                   ("src", Json.Int src);
                   ("dst", Json.Int dst);
                   ("base_spans", Json.Int b.st_spans);
                   ("cand_spans", Json.Int c.st_spans);
                   ("base_completed", Json.Int b.st_completed);
                   ("cand_completed", Json.Int c.st_completed);
                   ("pair_p50_delta_us", opt_us_json pair_delta);
                 ])
             (site_rows t)) );
      ("violations_added", Json.Int (List.length added));
    ]

let pp fmt t =
  let added, removed, changed = violation_sets t in
  Format.fprintf fmt "capture diff (candidate vs baseline)@.";
  Format.fprintf fmt "  records %d -> %d, spans %d -> %d@." t.base.s_records
    t.cand.s_records t.base.s_spans t.cand.s_spans;
  if added = [] && removed = [] && changed = [] then
    Format.fprintf fmt "  violations: no change (%d keys)@."
      (List.length t.base.s_violations)
  else begin
    List.iter
      (fun ((rule, node) as k) ->
        Format.fprintf fmt "  violation ADDED   %s on node %d (x%d)@." rule node
          (Option.value ~default:0 (List.assoc_opt k t.cand.s_violations)))
      added;
    List.iter
      (fun ((rule, node) as k) ->
        Format.fprintf fmt "  violation removed %s on node %d (was x%d)@." rule
          node
          (Option.value ~default:0 (List.assoc_opt k t.base.s_violations)))
      removed;
    List.iter
      (fun ((rule, node), bc, cc) ->
        Format.fprintf fmt "  violation count   %s on node %d: %d -> %d@." rule
          node bc cc)
      changed
  end;
  List.iter
    (fun (stage, bp50, cp50, bp99, cp99) ->
      let f = function None -> "-" | Some ns -> Printf.sprintf "%.2f" (us ns) in
      Format.fprintf fmt "  stage %-6s p50 %sus -> %sus, p99 %sus -> %sus@."
        stage (f bp50) (f cp50) (f bp99) (f cp99))
    (stage_rows t);
  List.iter
    (fun ((src, dst), (b : site_stat), (c : site_stat), pair_delta) ->
      Format.fprintf fmt
        "  site %d->%d spans %d/%d completed %d/%d pair-p50 shift %s@." src dst
        b.st_spans c.st_spans b.st_completed c.st_completed
        (match pair_delta with
        | None -> "-"
        | Some ns -> Printf.sprintf "%+.2fus" (us ns)))
    (site_rows t);
  let top =
    List.filter (fun (_, b, c) -> b <> c) (counter_rows t)
  in
  if top = [] then Format.fprintf fmt "  event counters: identical@."
  else
    List.iter
      (fun (k, b, c) ->
        Format.fprintf fmt "  events %-15s %d -> %d (%+d)@." k b c (c - b))
      top
