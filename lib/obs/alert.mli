(** Declarative alerting over {!Series} windows.

    Turns the windowed telemetry tap into a standing tripwire: each
    closed window is checked against a rule set, and every violation is
    recorded {e and} fired back into the event stream as a typed
    {!Event.Alert_fired} — so alerts land in the trace capture, survive
    replay, and a CI gate can fail a run on them ([flipc alert],
    [flipc metrics --alerts rules.json]).

    {b Rule grammar} (JSON, see DESIGN.md §18):
    {v
    { "rules": [
        { "name": "tx-rate", "kind": "rate_band",
          "counter": "node0.engine.tx-frames", "min": 1.0, "max": 5e6 },
        { "name": "no-drops", "kind": "counter_zero",
          "counter": "node0.engine.corrupt-frames" },
        { "name": "p99-slo", "kind": "quantile_ceiling",
          "histo": "lat.total.us", "q": "p99", "ceiling": 500.0 } ] }
    v}

    - [rate_band]: the counter's per-window [rate_per_s] must stay in
      [[min, max]] (either bound optional, at least one required); a
      window where the counter is absent is skipped.
    - [counter_zero]: the counter's per-window [delta] must be 0. When
      the name is not a registered counter it is looked up among the
      gauges instead (engine invariant probes — [corrupt_frames],
      [drops], [rx_truncations] — export as gauges) and the gauge value
      itself must be 0.
    - [quantile_ceiling]: the histogram's current [p50]/[p99] must not
      exceed [ceiling]; windows with no new observations
      ([count_delta = 0]) are skipped, so a stale quantile cannot
      re-fire forever. *)

type quantile = P50 | P99

type rule_kind =
  | Rate_band of { counter : string; min : float option; max : float option }
  | Counter_zero of { counter : string }
  | Quantile_ceiling of { histo : string; q : quantile; ceiling : float }

type rule = { r_name : string; r_kind : rule_kind }

(** One firing: the rule, the window it tripped on, the observed value
    and a human-readable sentence. *)
type fired = {
  a_rule : string;
  a_window_start : int;  (** ns *)
  a_window_end : int;  (** ns *)
  a_value : float;
  a_detail : string;
}

type t

(** {1 Rule parsing} *)

(** Parse a [{"rules": [...]}] document; [Error] names the first bad
    rule. *)
val rules_of_json : Json.t -> (rule list, string) result

(** [load_rules path] reads and parses a rules file. *)
val load_rules : string -> (rule list, string) result

(** {1 Evaluation} *)

(** [eval_window ~rules w] checks one {!Series} window (the JSON shape
    {!Series.json} documents) and returns the firings, rule order. *)
val eval_window : rules:rule list -> Json.t -> fired list

(** [attach ~rules obs] registers a {!Series} tap (same [interval] /
    [capacity] defaults) whose window-close hook evaluates the rules;
    each firing is recorded and emitted as {!Event.Alert_fired} into
    [obs]'s event stream. *)
val attach :
  rules:rule list ->
  ?interval:Flipc_sim.Vtime.t ->
  ?capacity:int ->
  Obs.t ->
  t

(** The underlying series tap (for [Series.json] etc.). *)
val series : t -> Series.t

(** Flush the current partial window through the rules (end of run). *)
val sample : t -> unit

(** Firings so far, oldest first. *)
val fired : t -> fired list

(** No rule has fired. *)
val clean : t -> bool

(** Firings as a JSON list (one object per firing). *)
val json : t -> Json.t

(** Human report: one line per firing, or an all-clear. *)
val pp_report : Format.formatter -> t -> unit
