(** Log-bucketed quantile sketch with constant memory.

    Replaces the old grow-forever / ring-windowed sample lists behind
    {!Metrics} histograms and {!Latency} stage accumulators. Positive
    observations land in geometric buckets of ratio [2^(1/8)] (fixed
    {!bucket_capacity} slots, out-of-range values clamp to the edge
    buckets), so a quantile read is accurate to within one bucket width
    (~9%, i.e. ≤ ~4.4% from the geometric midpoint). Count, sum,
    sum-of-squares, min and max are exact regardless of volume. *)

type t

(** Number of allocated bucket slots — a compile-time constant, so the
    storage bound is independent of observation count. *)
val bucket_capacity : int

val create : unit -> t
val clear : t -> unit

(** [observe t v] records one observation. [NaN] is ignored. *)
val observe : t -> float -> unit

(** [merge ~into src] folds [src]'s observations into [into] (bucket-wise;
    exact for count/sum/extremes, no resolution loss for quantiles).
    [src] is unchanged. *)
val merge : into:t -> t -> unit

val count : t -> int
val sum : t -> float

(** Exact extremes; [infinity] / [neg_infinity] when empty. *)
val min_value : t -> float

val max_value : t -> float
val mean : t -> float option
val stddev : t -> float option

(** [quantile t p] for [p] in [0,1]; estimate clamped to [min,max]. *)
val quantile : t -> float -> float option

(** Full {!Flipc_stats.Summary.t} (percentiles from the sketch, moments
    exact); [None] when empty. *)
val summary : t -> Flipc_stats.Summary.t option
