module Summary = Flipc_stats.Summary

type stage = Send_stage | Wire_stage | Recv_stage | Total_stage

let stage_name = function
  | Send_stage -> "send"
  | Wire_stage -> "wire"
  | Recv_stage -> "recv"
  | Total_stage -> "total"

let all_stages = [ Send_stage; Wire_stage; Recv_stage; Total_stage ]

(* Matching queues between consecutive stamps, keyed by destination
   (node-global) endpoint. Every stage of a message's life knows its
   destination address — the sender wrote it, the wire image carries it,
   and the receiving endpoint is it — and each hop preserves FIFO order
   per destination on a reliable fabric, so pairing stamps needs no
   per-message identifier in the wire format. *)
type rec_state = {
  (* send-enqueue stamps awaiting engine pickup *)
  q_tx : (int, int Queue.t) Hashtbl.t;
  (* (t0, t1) awaiting arrival at the destination engine *)
  q_wire : (int, (int * int) Queue.t) Hashtbl.t;
  (* (t0, t1, t2) sitting in the destination engine's incoming queue *)
  q_handle : (int, (int * int * int) Queue.t) Hashtbl.t;
  (* (t0, t1, t2) deposited, awaiting application dequeue *)
  q_recv : (int, (int * int * int) Queue.t) Hashtbl.t;
}

(* Per-stage accumulator: a constant-storage sketch over microsecond
   samples (exact count/sum, log-bucketed quantiles). *)
type stage_acc = { sketch : Sketch.t }

type t = {
  state : rec_state;
  stages : stage_acc array; (* indexed by stage order in [all_stages] *)
  mutable unmatched : int;
  mutable dropped_in_flight : int;
  queue_cap : int;
}

let stage_index = function
  | Send_stage -> 0
  | Wire_stage -> 1
  | Recv_stage -> 2
  | Total_stage -> 3

let create () =
  {
    state =
      {
        q_tx = Hashtbl.create 32;
        q_wire = Hashtbl.create 32;
        q_handle = Hashtbl.create 32;
        q_recv = Hashtbl.create 32;
      };
    stages = Array.init 4 (fun _ -> { sketch = Sketch.create () });
    unmatched = 0;
    dropped_in_flight = 0;
    queue_cap = 65_536;
  }

let key ~node ~ep = (node lsl 20) lor (ep land 0xFFFFF)

let q tbl k =
  match Hashtbl.find_opt tbl k with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add tbl k q;
      q

(* A queue that outgrows the cap means a stamp stream with no matching
   downstream stage (e.g. a fuzzing workload sending into the void);
   shed the oldest so memory stays bounded. *)
let push_capped t queue x =
  if Queue.length queue >= t.queue_cap then begin
    ignore (Queue.pop queue);
    t.unmatched <- t.unmatched + 1
  end;
  Queue.push x queue

let observe t stage ~ns =
  let acc = t.stages.(stage_index stage) in
  Sketch.observe acc.sketch (float_of_int ns /. 1000.)

let send_enqueued t ~now ~dst_node ~dst_ep =
  push_capped t (q t.state.q_tx (key ~node:dst_node ~ep:dst_ep)) now

(* The engine refused the message after enqueue (forbidden destination or
   undeliverable address): retire the pending send stamp. *)
let send_refused t ~dst_node ~dst_ep =
  let queue = q t.state.q_tx (key ~node:dst_node ~ep:dst_ep) in
  if Queue.is_empty queue then t.unmatched <- t.unmatched + 1
  else ignore (Queue.pop queue)

let engine_tx t ~now ~dst_node ~dst_ep =
  let k = key ~node:dst_node ~ep:dst_ep in
  let t0 =
    match Queue.take_opt (q t.state.q_tx k) with
    | Some t0 ->
        observe t Send_stage ~ns:(now - t0);
        t0
    | None ->
        t.unmatched <- t.unmatched + 1;
        now
  in
  push_capped t (q t.state.q_wire k) (t0, now)

let wire_rx t ~now ~node ~ep =
  let k = key ~node ~ep in
  let t0, t1 =
    match Queue.take_opt (q t.state.q_wire k) with
    | Some (t0, t1) ->
        observe t Wire_stage ~ns:(now - t1);
        (t0, t1)
    | None ->
        t.unmatched <- t.unmatched + 1;
        (now, now)
  in
  push_capped t (q t.state.q_handle k) (t0, t1, now)

(* The destination engine processes its incoming queue in arrival order,
   so the head of [q_handle] is exactly the message being handled. *)
let take_handled t ~node ~ep =
  Queue.take_opt (q t.state.q_handle (key ~node ~ep))

let deposited t ~node ~ep =
  match take_handled t ~node ~ep with
  | Some stamps -> push_capped t (q t.state.q_recv (key ~node ~ep)) stamps
  | None -> t.unmatched <- t.unmatched + 1

let discarded t ~node ~ep =
  match take_handled t ~node ~ep with
  | Some _ -> t.dropped_in_flight <- t.dropped_in_flight + 1
  | None -> t.unmatched <- t.unmatched + 1

let recv_dequeued t ~now ~node ~ep =
  match Queue.take_opt (q t.state.q_recv (key ~node ~ep)) with
  | Some (t0, _t1, t2) ->
      observe t Recv_stage ~ns:(now - t2);
      observe t Total_stage ~ns:(now - t0)
  | None -> t.unmatched <- t.unmatched + 1

let stage_count t stage = Sketch.count t.stages.(stage_index stage).sketch
let stage_sum_us t stage = Sketch.sum t.stages.(stage_index stage).sketch
let stage_mean_us t stage = Sketch.mean t.stages.(stage_index stage).sketch
let stage_summary t stage = Sketch.summary t.stages.(stage_index stage).sketch

let unmatched t = t.unmatched
let dropped_in_flight t = t.dropped_in_flight

let pp fmt t =
  List.iter
    (fun stage ->
      match stage_summary t stage with
      | None -> Fmt.pf fmt "%-6s (no samples)@." (stage_name stage)
      | Some s ->
          Fmt.pf fmt "%-6s n=%-7d mean=%8.2fus p50=%8.2fus p99=%8.2fus@."
            (stage_name stage) (stage_count t stage) s.Summary.mean
            s.Summary.p50 s.Summary.p99)
    all_stages;
  if t.unmatched > 0 || t.dropped_in_flight > 0 then
    Fmt.pf fmt "unmatched=%d dropped-in-flight=%d@." t.unmatched
      t.dropped_in_flight

let json t =
  Json.Obj
    (List.map
       (fun stage ->
         ( stage_name stage,
           Json.Obj
             (("count", Json.Int (stage_count t stage))
              ::
              (match stage_summary t stage with
              | None -> []
              | Some s -> [ ("us", Metrics.summary_json s) ])) ))
       all_stages
    @ [
        ("unmatched", Json.Int t.unmatched);
        ("dropped_in_flight", Json.Int t.dropped_in_flight);
      ])
