type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must render as valid JSON numbers: no "nan"/"inf" tokens, and
   always with a digit after any exponent sign. %.12g round-trips every
   latency value this codebase produces. *)
let float_repr x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then s
    else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let to_channel oc t =
  output_string oc (to_string t);
  output_char oc '\n'
