type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must render as valid JSON numbers: no "nan"/"inf" tokens, and
   always with a digit after any exponent sign. %.12g round-trips every
   latency value this codebase produces. *)
let float_repr x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then s
    else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let to_channel oc t =
  output_string oc (to_string t);
  output_char oc '\n'

(* Recursive-descent parser, the inverse of [emit]. Numbers without a
   '.', 'e' or 'E' parse as [Int]; everything else as [Float]. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; loop ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; loop ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; loop ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
          | Some 'u' ->
              advance ();
              let c = parse_hex4 () in
              (* Traces only ever escape control characters; encode the
                 rare general code point as UTF-8. *)
              if c < 0x80 then Buffer.add_char buf (Char.chr c)
              else if c < 0x800 then (
                Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F))))
              else (
                Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F))));
              loop ()
          | _ -> fail "bad escape")
      | Some c -> advance (); Buffer.add_char buf c; loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
          is_float := true;
          true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* Out-of-range integer literal: degrade to float. *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
