(** Named-metric registry: counters, gauges, histograms and pull-probes.

    One registry per machine. Names are dotted paths following the
    scheme documented in DESIGN.md §10 (e.g. [node0.engine.sends],
    [node1.retrans.ep2.rto_ns], [fabric.faults.dropped]); {!snapshot}
    returns every registered metric sorted by name, so two identical
    (same-seed) runs produce identical, diffable snapshots.

    Two registration styles:
    - {b push}: obtain a {!counter}/{!gauge}/{!histogram} handle once and
      update it from the hot path;
    - {b pull} ({!probe}): register a sampling closure over state a
      component already maintains (how [Msg_engine.stats],
      [Retrans]'s retry/RTO state, [Faulty]'s fault tallies and
      [Window]'s credit-drop count are exported without double
      bookkeeping). Probes are read at snapshot time.

    Histograms keep a bounded window of recent samples (drop-oldest, see
    {!Ring}) plus all-time count and sum; snapshot percentiles are over
    the retained window. *)

type t
type counter
type gauge
type histo

val create : unit -> t

(** [counter t name] finds or registers a counter. Raises
    [Invalid_argument] when [name] is malformed or already registered as
    a different metric type. *)
val counter : t -> string -> counter

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** [histogram t name] finds or registers a histogram whose sample
    window holds [capacity] (default 65536) most-recent observations. *)
val histogram : ?capacity:int -> t -> string -> histo

val observe : histo -> float -> unit

(** All-time observation count (including evicted samples). *)
val histo_count : histo -> int

(** The retained sample window, oldest first. *)
val histo_samples : histo -> float list

(** [probe t name f] registers (or replaces) a pull-metric: [f ()] is
    read at each snapshot and reported as a gauge. *)
val probe : t -> string -> (unit -> float) -> unit

(** {1 Snapshots} *)

type snap_value =
  | Snap_counter of int
  | Snap_gauge of float
  | Snap_histogram of {
      count : int;  (** all-time observations *)
      sum : float;  (** all-time sum *)
      window_dropped : int;  (** samples evicted from the window *)
      summary : Flipc_stats.Summary.t option;
          (** percentiles over the retained window; [None] when empty *)
    }

(** Sorted by metric name: deterministic and diffable. *)
type snapshot = (string * snap_value) list

val snapshot : t -> snapshot

(** One metric per line, name-aligned. *)
val pp_snapshot : Format.formatter -> snapshot -> unit

(** JSON object keyed by metric name (same sorted order). *)
val snapshot_json : snapshot -> Json.t

(** Reusable JSON rendering of a {!Flipc_stats.Summary.t}. *)
val summary_json : Flipc_stats.Summary.t -> Json.t
