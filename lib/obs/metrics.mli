(** Named-metric registry: counters, gauges, histograms and pull-probes.

    One registry per machine. Names are dotted paths following the
    scheme documented in DESIGN.md §10 (e.g. [node0.engine.sends],
    [node1.retrans.ep2.rto_ns], [fabric.faults.dropped]); {!snapshot}
    returns every registered metric sorted by name, so two identical
    (same-seed) runs produce identical, diffable snapshots.

    Two registration styles:
    - {b push}: obtain a {!counter}/{!gauge}/{!histogram} handle once and
      update it from the hot path;
    - {b pull} ({!probe}): register a sampling closure over state a
      component already maintains (how [Msg_engine.stats],
      [Retrans]'s retry/RTO state, [Faulty]'s fault tallies and
      [Window]'s credit-drop count are exported without double
      bookkeeping). Probes are read at snapshot time.

    Histograms are log-bucketed sketches ({!Sketch}): constant storage
    regardless of observation volume, exact all-time count and sum,
    quantiles accurate to within one geometric bucket width. *)

type t
type counter
type gauge
type histo

val create : unit -> t

(** [counter t name] finds or registers a counter. Raises
    [Invalid_argument] when [name] is malformed or already registered as
    a different metric type. *)
val counter : t -> string -> counter

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** [histogram t name] finds or registers a sketch-backed histogram. *)
val histogram : t -> string -> histo

val observe : histo -> float -> unit

(** All-time observation count (exact). *)
val histo_count : histo -> int

(** All-time sum (exact). *)
val histo_sum : histo -> float

(** Sketch quantile for [p] in [0,1]; [None] when empty. *)
val histo_quantile : histo -> float -> float option

val histo_summary : histo -> Flipc_stats.Summary.t option

(** [probe t name f] registers (or replaces) a pull-metric: [f ()] is
    read at each snapshot and reported as a gauge. *)
val probe : t -> string -> (unit -> float) -> unit

(** {1 Snapshots} *)

type snap_value =
  | Snap_counter of int
  | Snap_gauge of float
  | Snap_histogram of {
      count : int;  (** all-time observations (exact) *)
      sum : float;  (** all-time sum (exact) *)
      summary : Flipc_stats.Summary.t option;
          (** sketch percentiles + exact moments; [None] when empty *)
    }

(** Sorted by metric name: deterministic and diffable. *)
type snapshot = (string * snap_value) list

val snapshot : t -> snapshot

(** One metric per line, name-aligned. *)
val pp_snapshot : Format.formatter -> snapshot -> unit

(** JSON object keyed by metric name (same sorted order). *)
val snapshot_json : snapshot -> Json.t

(** Reusable JSON rendering of a {!Flipc_stats.Summary.t}. *)
val summary_json : Flipc_stats.Summary.t -> Json.t
