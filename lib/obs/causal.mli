(** Causal message tracing: reconstruct one message's path across every
    captured machine.

    Every application send stamps a process-unique message id (mid) into
    the message (see {!Flipc.Msg_buffer}); the typed events along the
    path carry it. This module merges the event rings of several
    {!Obs.t} bundles, groups the mid-carrying events into per-message
    {e spans} (send → doorbell → engine tx → wire → engine rx → queue →
    recv, with fault and drop markers), and renders them as text or as
    linked Chrome trace flow-events.

    Doorbell events carry no mid — the engine observes one doorbell for
    a whole batch of releases — so they are bound to spans by interval:
    a doorbell on (node, ep) attaches to every message enqueued there
    whose [Engine_tx] has not yet been observed.

    Retransmissions by {!Flipc_flow.Retrans} stamp a {e fresh} mid per
    wire traversal; the [Frame_tx] events link them by sequence number
    ({!retransmissions}). *)

type step = {
  ts : Flipc_sim.Vtime.t;
  pid : int;  (** originating {!Obs.id} *)
  machine : string;  (** originating {!Obs.label} *)
  ev : Event.t;
}

type span = { mid : int; steps : step list (** time order *) }

(** All spans reconstructible from these bundles' tracers, ordered by
    first appearance. *)
val spans : Obs.t list -> span list

(** Same grouping over an explicit time-ordered step list — the entry
    point for offline {!Replay} of captured traces. [spans obs_list] is
    [spans_of_steps] of the merged live rings. *)
val spans_of_steps : step list -> span list

val find : span list -> int -> span option

(** Short stage name of one event ("send", "engine_tx", "wire_rx", …). *)
val stage_of : Event.t -> string

(** What the message is waiting for (or how it ended), judged by the
    span's last event — the stage named in watchdog reports. *)
val stalled_stage : span -> string

val pp_step : Format.formatter -> step -> unit
val pp_span : Format.formatter -> span -> unit

(** Frames the reliability layer transmitted more than once:
    [(node, ep, seq, mids)] with one mid per wire traversal. *)
val retransmissions : span list -> (int * int * int * int list) list

(** Merged Chrome trace document: per-machine instant rows (named after
    each {!Obs.label}) plus cross-machine flow arrows for every
    multi-step span. *)
val chrome_json_of : Obs.t list -> Json.t

(** {!chrome_json_of} over {!Obs.captured}. *)
val captured_chrome_json : unit -> Json.t
