(** Per-machine observability bundle: metrics registry + typed event
    tracer + per-message latency breakdown, sharing the machine's
    virtual clock.

    {!Machine.create} builds one per machine and threads it through the
    engines, the application interface, the flow-control libraries and
    the fault injector. Metrics and latency stamping are always on
    (they cost only host time, never virtual time, so they cannot
    perturb measured latencies); event tracing is off by default —
    enable it via [tracing], {!Tracer.enable} on {!tracer}, or a
    {!start_capture} window. *)

type t

(** [create ~sim ()] builds a bundle on [sim]'s clock. [tracing]
    enables the event tracer from the start ([trace_capacity] bounds
    it); [latency_capacity] bounds the per-stage sample windows. *)
val create :
  ?tracing:bool ->
  ?trace_capacity:int ->
  ?latency_capacity:int ->
  sim:Flipc_sim.Engine.t ->
  unit ->
  t

(** Process-unique id (creation order); the [pid] in Chrome exports. *)
val id : t -> int

val sim : t -> Flipc_sim.Engine.t
val metrics : t -> Metrics.t
val tracer : t -> Tracer.t
val latency : t -> Latency.t

(** Current virtual time. *)
val now : t -> Flipc_sim.Vtime.t

(** Whether the event tracer is recording — hot paths check this before
    constructing an event. *)
val tracing : t -> bool

(** [event t ev] records [ev] at the current virtual time (no-op when
    tracing is off). *)
val event : t -> Event.t -> unit

(** Chrome [trace_event] document for this machine's tracer. *)
val chrome_json : t -> Json.t

(** {1 Global capture}

    For tooling that cannot reach machines built inside workload
    helpers: between [start_capture ()] and [stop_capture ()], every
    bundle created in the process starts with tracing enabled and is
    remembered. *)

val start_capture : unit -> unit
val stop_capture : unit -> unit
val capturing : unit -> bool

(** Bundles created during the active capture window, oldest first. *)
val captured : unit -> t list

(** Merged Chrome trace of every captured bundle (machines become
    processes, nodes become threads). *)
val captured_chrome_json : unit -> Json.t
