(** Per-machine observability bundle: metrics registry + typed event
    tracer + per-message latency breakdown, sharing the machine's
    virtual clock.

    {!Machine.create} builds one per machine and threads it through the
    engines, the application interface, the flow-control libraries and
    the fault injector. Metrics and latency stamping are always on
    (they cost only host time, never virtual time, so they cannot
    perturb measured latencies); event tracing is off by default —
    enable it via [tracing], {!Tracer.enable} on {!tracer}, or a
    {!start_capture} window. *)

type t

(** [create ~sim ()] builds a bundle on [sim]'s clock. [tracing]
    enables the event tracer from the start ([trace_capacity] bounds
    it). Latency accumulators are constant-size sketches and need no
    capacity. *)
val create :
  ?tracing:bool -> ?trace_capacity:int -> sim:Flipc_sim.Engine.t -> unit -> t

(** Process-unique id (creation order); the [pid] in Chrome exports. *)
val id : t -> int

val sim : t -> Flipc_sim.Engine.t
val metrics : t -> Metrics.t
val tracer : t -> Tracer.t
val latency : t -> Latency.t

(** Current virtual time. *)
val now : t -> Flipc_sim.Vtime.t

(** Human-readable machine name, used as the Chrome process name
    (default ["flipc machine <id>"]). *)
val label : t -> string

val set_label : t -> string -> unit

(** Whether events should be constructed — true when the tracer records
    {e or} a watcher is registered. Hot paths check this before
    constructing an event. *)
val tracing : t -> bool

(** [event t ev] records [ev] at the current virtual time and feeds it
    to every registered watcher (no-op when {!tracing} is false). *)
val event : t -> Event.t -> unit

(** {1 Watchers and reporters}

    Watchers are synchronous taps on the typed event stream — the online
    invariant monitors ({!Monitor}) register one. Registering a watcher
    makes {!tracing} true, so the existing emit guards feed it without
    enabling the ring. Reporters contribute machine state to flight
    recorder dumps ({!Monitor.Watchdog}): {!Flipc.Machine} registers one
    that prints engine stats and endpoint queue depths. *)

val add_watcher : t -> (Flipc_sim.Vtime.t -> Event.t -> unit) -> unit
val add_reporter : t -> (Format.formatter -> unit) -> unit

(** Run every registered reporter. *)
val report : t -> Format.formatter -> unit

(** Chrome [trace_event] document for this machine's tracer. *)
val chrome_json : t -> Json.t

(** {1 Global capture}

    For tooling that cannot reach machines built inside workload
    helpers: between [start_capture ()] and [stop_capture ()], every
    bundle created in the process starts with tracing enabled and is
    remembered. *)

val start_capture : unit -> unit
val stop_capture : unit -> unit
val capturing : unit -> bool

(** Bundles created during the active capture window, oldest first. *)
val captured : unit -> t list

(** [on_create f] registers a hook run on every subsequently created
    bundle (after capture-window registration); returns a disposer.
    {!Sink.attach} uses this to capture machines built deep inside
    workload helpers. *)
val on_create : (t -> unit) -> unit -> unit

(** Merged Chrome trace of every captured bundle (machines become
    processes, nodes become threads). *)
val captured_chrome_json : unit -> Json.t
