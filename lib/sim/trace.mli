(** Lightweight event trace for debugging simulations.

    Entries live in a fixed-capacity drop-oldest ring (default
    {!default_capacity}), so an always-on trace over a long soak keeps
    the most recent window in bounded memory; {!dropped} counts what was
    shed. Disabled traces cost one branch per record call.

    For structured, machine-readable tracing of the messaging stack use
    [Flipc_obs.Tracer]; this module remains the free-form string trace
    for simulator internals and tests. *)

type entry = { time : Vtime.t; tag : string; message : string }

type t

val default_capacity : int

(** [create ()] makes a trace holding at most [capacity] (default
    {!default_capacity}) entries. Raises [Invalid_argument] if
    [capacity < 1]. *)
val create : ?capacity:int -> ?enabled:bool -> unit -> t

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool
val capacity : t -> int

(** Entries evicted (oldest-first) since creation or the last [clear]. *)
val dropped : t -> int

(** [record t ~now ~tag message] appends an entry if tracing is enabled,
    evicting the oldest entry when the ring is full. *)
val record : t -> now:Vtime.t -> tag:string -> string -> unit

(** [recordf] is [record] with a format string; the message is only built
    when tracing is enabled. *)
val recordf :
  t -> now:Vtime.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Retained entries, oldest first. *)
val to_list : t -> entry list

val length : t -> int
val clear : t -> unit

(** [dump fmt t] prints one line per retained entry. *)
val dump : Format.formatter -> t -> unit
