type entry = { time : Vtime.t; tag : string; message : string }

(* Fixed-capacity drop-oldest ring: long soaks with tracing left on keep
   the most recent window instead of exhausting memory. (flipc_obs has a
   general ring, but it sits above this library in the dependency order,
   so the few lines are inlined here.) *)
type t = {
  mutable enabled : bool;
  slots : entry option array;
  mutable head : int; (* index of the oldest entry *)
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 8192

let create ?(capacity = default_capacity) ?(enabled = false) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  {
    enabled;
    slots = Array.make capacity None;
    head = 0;
    len = 0;
    dropped = 0;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled
let capacity t = Array.length t.slots
let dropped t = t.dropped

let push t e =
  let cap = Array.length t.slots in
  if t.len = cap then begin
    t.slots.(t.head) <- Some e;
    t.head <- (t.head + 1) mod cap;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.slots.((t.head + t.len) mod cap) <- Some e;
    t.len <- t.len + 1
  end

let record t ~now ~tag message =
  if t.enabled then push t { time = now; tag; message }

let recordf t ~now ~tag fmt =
  if t.enabled then
    Fmt.kstr (fun message -> push t { time = now; tag; message }) fmt
  else
    (* [ikfprintf] consumes the arguments without interpreting the format
       string: a disabled trace formats nothing. *)
    Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let iter t f =
  let cap = Array.length t.slots in
  for i = 0 to t.len - 1 do
    match t.slots.((t.head + i) mod cap) with
    | Some e -> f e
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let length t = t.len

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let dump fmt t =
  iter t (fun e ->
      Fmt.pf fmt "[%a] %-12s %s@." Vtime.pp e.time e.tag e.message)
